package perspector_test

import (
	"strings"
	"testing"

	"perspector"
)

// fastConfig keeps API tests quick.
func fastConfig() perspector.Config {
	cfg := perspector.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 20
	return cfg
}

func TestStockSuites(t *testing.T) {
	suites := perspector.StockSuites(fastConfig())
	if len(suites) != 6 {
		t.Fatalf("expected 6 stock suites, got %d", len(suites))
	}
	want := []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"}
	for i, s := range suites {
		if s.Name != want[i] {
			t.Fatalf("suite %d is %q, want %q", i, s.Name, want[i])
		}
		if len(s.Specs) == 0 {
			t.Fatalf("suite %q is empty", s.Name)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	s, err := perspector.SuiteByName("nbench", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "nbench" {
		t.Fatalf("name %q", s.Name)
	}
	if _, err := perspector.SuiteByName("nope", fastConfig()); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestMeasureAndScore(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := perspector.Score(m, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if scores.Suite != "nbench" {
		t.Fatalf("scores.Suite = %q", scores.Suite)
	}
	if scores.Coverage < 0 || scores.Spread < 0 || scores.Spread > 1 {
		t.Fatalf("implausible scores: %+v", scores)
	}
}

func TestCompareJointNormalization(t *testing.T) {
	cfg := fastConfig()
	var ms []*perspector.Measurement
	for _, name := range []string{"nbench", "sgxgauge"} {
		s, err := perspector.SuiteByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := perspector.Measure(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	scores, err := perspector.Compare(ms, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("got %d score sets", len(scores))
	}
	// SGXGauge (real-world, big footprints) must out-cover Nbench
	// (tiny steady kernels) under shared normalization.
	if scores[1].Coverage <= scores[0].Coverage {
		t.Fatalf("sgxgauge coverage %v not above nbench %v",
			scores[1].Coverage, scores[0].Coverage)
	}
}

func TestEventGroups(t *testing.T) {
	all, err := perspector.EventGroup("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 14 {
		t.Fatalf("all group has %d counters", len(all))
	}
	llc, err := perspector.EventGroup("llc")
	if err != nil {
		t.Fatal(err)
	}
	if len(llc) != 4 {
		t.Fatalf("llc group has %d counters", len(llc))
	}
	if _, err := perspector.EventGroup("bogus"); err == nil {
		t.Fatal("bogus group accepted")
	}
}

func TestFocusedScoring(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("sgxgauge", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optsAll := perspector.DefaultOptions()
	optsLLC := perspector.DefaultOptions()
	optsLLC.Counters, err = perspector.EventGroup("llc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := perspector.Score(m, optsAll)
	if err != nil {
		t.Fatal(err)
	}
	l, err := perspector.Score(m, optsLLC)
	if err != nil {
		t.Fatal(err)
	}
	if a == l {
		t.Fatal("focused scoring identical to full scoring")
	}
}

func TestCustomSuite(t *testing.T) {
	cfg := fastConfig()
	workloads := []perspector.Workload{
		{
			Name: "stream", Instructions: cfg.Instructions, Seed: 1,
			Phases: []perspector.Phase{{
				Name: "sweep", Weight: 1, LoadFrac: 0.5,
				LoadPattern: perspector.Sequential{WorkingSet: 1 << 24},
			}},
		},
		{
			Name: "chase", Instructions: cfg.Instructions, Seed: 2,
			Phases: []perspector.Phase{{
				Name: "walk", Weight: 1, LoadFrac: 0.5,
				LoadPattern: perspector.PointerChase{WorkingSet: 1 << 22},
			}},
		},
		{
			Name: "branchy", Instructions: cfg.Instructions, Seed: 3,
			Phases: []perspector.Phase{{
				Name: "spin", Weight: 1, BranchFrac: 0.4,
				BranchRegularity: 0.2, BranchTakenProb: 0.5,
			}},
		},
	}
	s, err := perspector.NewSuite("custom", workloads)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := perspector.Score(m, perspector.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestNewSuiteValidation(t *testing.T) {
	if _, err := perspector.NewSuite("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := perspector.NewSuite("x", nil); err == nil {
		t.Fatal("no workloads accepted")
	}
	bad := []perspector.Workload{{Name: "w"}} // zero instructions
	if _, err := perspector.NewSuite("x", bad); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestGenerateSubset(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("spec17", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := perspector.GenerateSubset(m, perspector.DefaultOptions(),
		perspector.DefaultSubsetOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 8 {
		t.Fatalf("subset size %d", len(res.Names))
	}
	for _, n := range res.Names {
		if !strings.HasPrefix(n, "spec17.") {
			t.Fatalf("foreign workload %q in subset", n)
		}
	}
}

func TestDetectPhasesAPI(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		if i < 30 {
			series[i] = 5
		} else {
			series[i] = 500
		}
	}
	changes, err := perspector.DetectPhases(series, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("detected %d changes", len(changes))
	}
}

func TestHierarchicalBaselineAPI(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := perspector.HierarchicalBaseline(m, perspector.DefaultOptions(),
		perspector.AverageLinkage, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || len(res.Labels) != len(m.Workloads) {
		t.Fatalf("baseline result %+v", res)
	}
	if res.Silhouette < -1 || res.Silhouette > 1 {
		t.Fatalf("silhouette %v out of range", res.Silhouette)
	}
	if len(res.Representatives) != 3 {
		t.Fatalf("representatives %v", res.Representatives)
	}
	seen := map[int]bool{}
	for _, r := range res.Representatives {
		if r < 0 || r >= len(m.Workloads) || seen[r] {
			t.Fatalf("bad representative set %v", res.Representatives)
		}
		seen[r] = true
	}
}

func TestProfilePhasesAPI(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := perspector.ProfilePhases(m, perspector.DefaultOptions(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Boundaries) != len(m.Workloads) {
		t.Fatalf("boundaries %v", prof.Boundaries)
	}
	for _, b := range prof.Boundaries {
		if b < 0 {
			t.Fatalf("negative boundary count %d", b)
		}
	}
}

func TestScoreStabilityAPI(t *testing.T) {
	cfg := fastConfig()
	var runs []*perspector.Measurement
	for r := 0; r < 3; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)
		s, err := perspector.SuiteByName("nbench", runCfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := perspector.Measure(s, runCfg)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, m)
	}
	st, err := perspector.ScoreStability(runs, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 3 {
		t.Fatalf("runs = %d", st.Runs)
	}
	rel := st.RelativeStdDev()
	// Different seeds = different random inputs; still the same suite, so
	// relative spread should be bounded.
	if rel.Cluster > 0.6 || rel.Coverage > 0.6 {
		t.Fatalf("implausible instability: %+v", rel)
	}
}

func TestCalibrateAPI(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := perspector.Calibrate(s, cfg, 1_000_000, 1_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Specs) != len(s.Specs) {
		t.Fatal("calibration changed workload count")
	}
	changed := false
	for i := range cal.Specs {
		if cal.Specs[i].Instructions != s.Specs[i].Instructions {
			changed = true
		}
	}
	if !changed {
		t.Fatal("calibration changed nothing")
	}
}

func TestCounterRedundancyAPI(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("spec17", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := perspector.CounterRedundancy(m, perspector.DefaultOptions(), 0.85)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.R < -1 || p.R > 1 {
			t.Fatalf("correlation out of range: %+v", p)
		}
		if p.A == p.B {
			t.Fatalf("self-pair: %+v", p)
		}
	}
}

func TestImportExportAPI(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := perspector.ExportJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := perspector.ImportJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := perspector.Score(m, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := perspector.Score(back, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("scores changed across export/import: %+v vs %+v", a, b)
	}
}

func TestAugmentAPI(t *testing.T) {
	cfg := fastConfig()
	base, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := perspector.SuiteByName("sgxgauge", cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseMeas, err := perspector.Measure(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	poolMeas, err := perspector.Measure(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := perspector.Augment(baseMeas, poolMeas, perspector.DefaultOptions(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aug.Names) != 2 || len(aug.Trace) != 3 {
		t.Fatalf("augmentation %+v", aug)
	}
	for _, n := range aug.Names {
		if !strings.HasPrefix(n, "sgxgauge.") {
			t.Fatalf("candidate %q not from the pool", n)
		}
	}
	// Greedy optimality of the first pick: no single candidate beats the
	// chosen one under the default objective. (Coverage alone need not
	// rise: own-bounds renormalization is not monotone under additions.)
	objective := func(s perspector.Scores) float64 {
		return 4*s.Coverage + s.Trend/100 - s.Cluster - s.Spread/2
	}
	best := objective(aug.Trace[1])
	for i := range poolMeas.Workloads {
		trial := &perspector.Measurement{Suite: baseMeas.Suite}
		trial.Workloads = append(trial.Workloads, baseMeas.Workloads...)
		trial.Workloads = append(trial.Workloads, poolMeas.Workloads[i])
		s, err := perspector.Score(trial, perspector.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if objective(s) > best+1e-9 {
			t.Fatalf("candidate %d beats the greedy pick: %.4f > %.4f",
				i, objective(s), best)
		}
	}
}

func TestMeasureDeterministicAcrossCalls(t *testing.T) {
	cfg := fastConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workloads {
		if a.Workloads[i].Totals != b.Workloads[i].Totals {
			t.Fatal("Measure not deterministic")
		}
	}
}
