package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perspector"
	"perspector/internal/jobs"
	"perspector/internal/server"
)

// TestClientAgainstLiveService drives the example client end to end
// against an httptest instance of the real service: upload a CSV
// matrix, long-poll the result, print the table.
func TestClientAgainstLiveService(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	q := jobs.New(jobs.EngineRunner(nil), jobs.Options{Workers: 1, Log: log})
	ts := httptest.NewServer(server.New(server.Config{Queue: q, Log: log}).Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Drain(ctx)
	}()

	// Produce a real counter matrix the way a user would (export a
	// measured suite as CSV).
	cfg := perspector.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counters, err := perspector.EventGroup("all")
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := perspector.ExportCSV(&csv, m, counters); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "totals.csv")
	if err := os.WriteFile(file, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(ts.URL, file, "nbench", &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"job j-", "submitted", "cluster", "trend", "coverage", "spread", "nbench"} {
		if !strings.Contains(text, want) {
			t.Errorf("client output missing %q:\n%s", want, text)
		}
	}

	// A missing file fails locally; an undecodable upload surfaces the
	// service's 400 with its error text.
	if err := run(ts.URL, filepath.Join(dir, "nope.csv"), "x", io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,counter,matrix\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(ts.URL, bad, "x", io.Discard)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad upload error = %v, want the service's 400", err)
	}
}
