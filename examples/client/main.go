// Command client is a minimal example consumer of the perspectord API:
// it uploads a CSV counter matrix (workload × counter totals, as written
// by `perspector dump` or `perspector export -format csv`), waits for
// the scoring job to finish, and prints the returned score table.
//
// Usage:
//
//	client -addr http://localhost:8080 -f totals.csv -name mysuite
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

// The wire types are declared locally on purpose: the example shows
// exactly what an external consumer — which cannot import perspector's
// internal packages — needs in order to talk to the service. []byte
// fields travel as base64 strings, encoding/json's default.

type traceUpload struct {
	Format string `json:"format"`
	Name   string `json:"name"`
	Data   []byte `json:"data"`
}

type jobRequest struct {
	Kind  string       `json:"kind"`
	Trace *traceUpload `json:"trace"`
}

type submitResponse struct {
	Job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"job"`
	Deduped bool `json:"deduped"`
}

type scoreSet struct {
	Kind   string `json:"kind"`
	Group  string `json:"group"`
	Source string `json:"source"`
	Suites []struct {
		Suite    string  `json:"suite"`
		Cluster  float64 `json:"cluster"`
		Trend    float64 `json:"trend"`
		Coverage float64 `json:"coverage"`
		Spread   float64 `json:"spread"`
	} `json:"suites"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "perspectord base URL")
	file := flag.String("f", "", "CSV counter matrix to upload (required)")
	name := flag.String("name", "uploaded", "suite name for the upload")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "client: -f is required")
		os.Exit(2)
	}
	if err := run(*addr, *file, *name, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
}

// apiError extracts the service's {"error": "..."} body for a non-2xx
// response.
func apiError(resp *http.Response) error {
	data, _ := io.ReadAll(resp.Body)
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, body.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, data)
}

func run(addr, file, name string, out io.Writer) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	body, err := json.Marshal(jobRequest{
		Kind:  "score",
		Trace: &traceUpload{Format: "csv", Name: name, Data: data},
	})
	if err != nil {
		return err
	}

	resp, err := http.Post(addr+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	fmt.Fprintf(out, "job %s submitted (%s)\n", sub.Job.ID, sub.Job.State)

	// wait=1 long-polls: the response arrives when the job is terminal.
	resp, err = http.Get(addr + "/api/v1/jobs/" + sub.Job.ID + "/result?wait=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var set scoreSet
	if err := json.NewDecoder(resp.Body).Decode(&set); err != nil {
		return err
	}

	fmt.Fprintf(out, "%-14s %10s %10s %10s %10s\n", "suite", "cluster", "trend", "coverage", "spread")
	for _, s := range set.Suites {
		fmt.Fprintf(out, "%-14s %10.4f %10.2f %10.5f %10.4f\n",
			s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
	}
	return nil
}
