// Real data: score counter measurements that did NOT come from the
// built-in simulator. The workflow is the one the paper's tool supports
// on hardware: collect per-workload PMU totals with `perf stat`, convert
// them to the trace CSV format, and let Perspector score the suite.
//
// This example writes a small CSV (as a stand-in for converted perf
// output), imports it, and scores it. TrendScore needs time series, so
// totals-only data yields the other three scores.
//
//	go run ./examples/realdata
package main

import (
	"fmt"
	"log"
	"strings"

	"perspector"
)

// perfCSV is what a converter would produce from `perf stat -x,` output:
// one row per workload, one column per Table-IV event.
const perfCSV = `workload,cpu-cycles,branch-instructions,branch-misses,dtlb_walk_pending,cycle_activity.stalls_mem_any,page-faults,dTLB-loads,dTLB-stores,dTLB-load-misses,dTLB-store-misses,LLC-loads,LLC-stores,LLC-load-misses,LLC-store-misses
compress,48123456789,9123456789,412345678,1234567890,19876543210,12345,15234567890,5123456789,91234567,31234567,812345678,212345678,412345678,112345678
graph500,93123456789,7123456789,912345678,9876543210,61234567890,456789,18234567890,3123456789,2812345678,912345678,4812345678,912345678,3812345678,712345678
keyvalue,61234567890,8123456789,612345678,4234567890,31234567890,98765,16234567890,4523456789,1212345678,412345678,2212345678,512345678,1412345678,312345678
sort,52123456789,10123456789,1512345678,2234567890,22876543210,23456,14234567890,6123456789,512345678,212345678,1212345678,612345678,812345678,412345678
fft,45123456789,6123456789,112345678,834567890,15876543210,8901,13234567890,4123456789,212345678,91234567,612345678,312345678,312345678,112345678
webserver,71234567890,9523456789,812345678,5234567890,41234567890,345678,15734567890,4823456789,1512345678,512345678,2812345678,712345678,1912345678,412345678
`

func main() {
	// 1. Import the totals matrix.
	meas, err := perspector.ImportCSV(strings.NewReader(perfCSV), "mysuite")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d workloads from perf-style CSV\n", len(meas.Workloads))

	// 2. Score. (Score needs series for the TrendScore; on totals-only
	// data use the redundancy/coverage analyses and a simulated reference
	// for trend comparisons.)
	opts := perspector.DefaultOptions()
	pairs, err := perspector.CounterRedundancy(meas, opts, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nredundant counter pairs (|r| >= 0.9): %d\n", len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %-32s ~ %-32s r = %+.3f\n", p.A, p.B, p.R)
	}

	// 3. Compare the imported suite against a simulated stock suite under
	// joint normalization, using the trend-free score set.
	cfg := perspector.DefaultConfig()
	cfg.Instructions = 100_000
	cfg.Samples = 25
	stock, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		log.Fatal(err)
	}
	stockMeas, err := perspector.Measure(stock, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The imported suite has no series; compare on the three total-based
	// scores by scoring each suite against the shared normalization.
	// (Compare would attempt the TrendScore, so score the pair manually.)
	fmt.Println("\nnote: imported data has no time series; TrendScore omitted")
	for _, m := range []*perspector.Measurement{meas, stockMeas} {
		scores, err := perspector.ScoreTotalsOnly(m, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s cluster %7.4f  coverage %8.5f  spread %7.4f\n",
			scores.Suite, scores.Cluster, scores.Coverage, scores.Spread)
	}
}
