// Subset generation (§IV-C of the paper): reduce SPEC'17's 43 workloads
// to a representative subset of 8 using Latin Hypercube Sampling over the
// PMU-counter space, then verify the subset's Perspector scores deviate
// only slightly from the full suite's.
//
//	go run ./examples/subset [size]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"perspector"
)

func main() {
	size := 8
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad size %q: %v", os.Args[1], err)
		}
		size = v
	}

	cfg := perspector.DefaultConfig()
	suite, err := perspector.SuiteByName("spec17", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measuring %s (%d workloads)...\n", suite.Name, len(suite.Specs))
	meas, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := perspector.GenerateSubset(meas, perspector.DefaultOptions(),
		perspector.DefaultSubsetOptions(size))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nselected %d of %d workloads:\n", size, len(suite.Specs))
	for _, n := range res.Names {
		fmt.Println("  ", n)
	}
	fmt.Printf("\n%-8s %10s %10s %10s %10s\n", "", "cluster", "trend", "coverage", "spread")
	fmt.Printf("%-8s %10.4f %10.2f %10.5f %10.4f\n", "full",
		res.Full.Cluster, res.Full.Trend, res.Full.Coverage, res.Full.Spread)
	fmt.Printf("%-8s %10.4f %10.2f %10.5f %10.4f\n", "subset",
		res.Subset.Cluster, res.Subset.Trend, res.Subset.Coverage, res.Subset.Spread)
	fmt.Printf("\nmean relative deviation: %.2f%%\n", 100*res.Deviation)
	fmt.Println("(the paper reports 6.53% for SPEC'17 43→8)")
}
