// Multicore: score a suite executed as rate-style process clones on a
// shared-LLC multicore machine, and see how contention moves the
// Perspector scores — the "appropriately tune them for a target system"
// use case from the paper's abstract. A suite that looks well-balanced on
// one core can lose coverage or gain clustering once the shared cache is
// contended.
//
//	go run ./examples/multicore [threads]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"perspector"
)

func main() {
	threads := 4
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			log.Fatalf("bad thread count %q", os.Args[1])
		}
		threads = v
	}

	cfg := perspector.DefaultConfig()
	cfg.Instructions = 200_000 // per clone
	suite, err := perspector.SuiteByName("parsec", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measuring %s solo and with %d rate-style clones...\n", suite.Name, threads)
	solo, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := perspector.MeasureMulticore(suite, cfg, threads)
	if err != nil {
		log.Fatal(err)
	}
	multi.Suite = suite.Name + "-rate" // distinct name for the comparison

	scores, err := perspector.Compare([]*perspector.Measurement{solo, multi},
		perspector.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %10s %10s %10s %10s\n",
		"configuration", "cluster", "trend", "coverage", "spread")
	for _, s := range scores {
		fmt.Printf("%-14s %10.4f %10.2f %10.5f %10.4f\n",
			s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
	}
	fmt.Println("\nShared-LLC contention shifts every workload toward memory-bound")
	fmt.Println("behaviour; suites that discriminated workloads by cache locality")
	fmt.Println("lose that signal on a contended machine.")
}
