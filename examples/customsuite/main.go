// Custom suite: build your own benchmark suite from workload
// specifications, score it, and see where it stands next to the six stock
// suites. This is the "rigorously create a suite of workloads and tune
// them for a target system" use case from the paper's abstract.
//
//	go run ./examples/customsuite
package main

import (
	"fmt"
	"log"

	"perspector"
)

func main() {
	cfg := perspector.DefaultConfig()

	// A small in-house suite: a streaming ETL job, a key-value cache, a
	// compiler-like pointer workload, and a crypto kernel. Each phase
	// controls the instruction mix, access pattern, and branch behaviour.
	workloads := []perspector.Workload{
		{
			Name: "etl-pipeline", Instructions: cfg.Instructions, Seed: 101,
			Phases: []perspector.Phase{
				{Name: "ingest", Weight: 0.4, LoadFrac: 0.5, StoreFrac: 0.1, BranchFrac: 0.06,
					LoadPattern:      perspector.Sequential{WorkingSet: 64 << 20},
					BranchRegularity: 0.95, BranchTakenProb: 0.9, BranchSites: 4},
				{Name: "transform", Weight: 0.4, LoadFrac: 0.3, StoreFrac: 0.2, BranchFrac: 0.14,
					LoadPattern:      perspector.HotCold{HotSet: 1 << 20, ColdSet: 32 << 20, HotFrac: 0.7},
					BranchRegularity: 0.6, BranchTakenProb: 0.55, BranchSites: 16},
				{Name: "emit", Weight: 0.2, StoreFrac: 0.45, BranchFrac: 0.05,
					StorePattern:     perspector.Sequential{WorkingSet: 32 << 20},
					BranchRegularity: 0.95, BranchTakenProb: 0.93, BranchSites: 2},
			},
		},
		{
			Name: "kv-cache", Instructions: cfg.Instructions, Seed: 102,
			Phases: []perspector.Phase{
				{Name: "serve", Weight: 1, LoadFrac: 0.4, StoreFrac: 0.08,
					SyscallFrac: 0.08, BranchFrac: 0.12,
					LoadPattern:      perspector.Zipf{WorkingSet: 96 << 20, Alpha: 1.0},
					BranchRegularity: 0.65, BranchTakenProb: 0.6, BranchSites: 12},
			},
		},
		{
			Name: "ir-optimizer", Instructions: cfg.Instructions, Seed: 103,
			Phases: []perspector.Phase{
				{Name: "walk", Weight: 0.7, LoadFrac: 0.48, StoreFrac: 0.06, BranchFrac: 0.18,
					LoadPattern:      perspector.PointerChase{WorkingSet: 48 << 20},
					BranchRegularity: 0.4, BranchTakenProb: 0.5, BranchSites: 24},
				{Name: "rewrite", Weight: 0.3, LoadFrac: 0.3, StoreFrac: 0.26, BranchFrac: 0.1,
					LoadPattern:      perspector.Random{WorkingSet: 16 << 20},
					BranchRegularity: 0.7, BranchTakenProb: 0.65, BranchSites: 10},
			},
		},
		{
			Name: "aes-kernel", Instructions: cfg.Instructions, Seed: 104,
			Phases: []perspector.Phase{
				{Name: "rounds", Weight: 1, LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.04,
					LoadPattern:      perspector.Sequential{WorkingSet: 8 << 20},
					BranchRegularity: 0.98, BranchTakenProb: 0.96, BranchSites: 1},
			},
		},
	}

	custom, err := perspector.NewSuite("inhouse", workloads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring the custom suite and the six stock suites...")
	measurements, err := perspector.MeasureAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := perspector.Measure(custom, cfg)
	if err != nil {
		log.Fatal(err)
	}
	measurements = append(measurements, cm)

	scores, err := perspector.Compare(measurements, perspector.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %10s %10s %10s %10s\n",
		"suite", "cluster", "trend", "coverage", "spread")
	for _, s := range scores {
		marker := "  "
		if s.Suite == "inhouse" {
			marker = "->"
		}
		fmt.Printf("%s %-8s %10.4f %10.2f %10.5f %10.4f\n",
			marker, s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
	}
	fmt.Println("\nUse the scores to iterate: add workloads until coverage rises")
	fmt.Println("without the cluster score rising with it.")
}
