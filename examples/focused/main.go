// Focused scoring (§IV-B of the paper): compare all six stock suites
// under the full event set, then under only LLC-related and only
// TLB-related events — the analysis a researcher runs when stress-testing
// one subsystem rather than the whole machine.
//
//	go run ./examples/focused
package main

import (
	"fmt"
	"log"

	"perspector"
)

func main() {
	cfg := perspector.DefaultConfig()
	fmt.Println("measuring all six suites (this simulates every workload)...")
	measurements, err := perspector.MeasureAll(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, group := range []string{"all", "llc", "tlb"} {
		opts := perspector.DefaultOptions()
		opts.Counters, err = perspector.EventGroup(group)
		if err != nil {
			log.Fatal(err)
		}
		scores, err := perspector.Compare(measurements, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s events ---\n", group)
		fmt.Printf("%-10s %10s %10s %10s %10s\n",
			"suite", "cluster", "trend", "coverage", "spread")
		for _, s := range scores {
			fmt.Printf("%-10s %10.4f %10.2f %10.5f %10.4f\n",
				s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
		}
	}
	fmt.Println("\nInterpretation: a suite that dominates coverage with all events")
	fmt.Println("but collapses under a focused group (LMbench under TLB events)")
	fmt.Println("is a poor choice for stress-testing that subsystem.")
}
