// Quickstart: measure one benchmark suite on the built-in simulator and
// print its four Perspector quality scores.
//
//	go run ./examples/quickstart [suite]
//
// suite defaults to "parsec"; any of parsec, spec17, ligra, lmbench,
// nbench, sgxgauge works.
package main

import (
	"fmt"
	"log"
	"os"

	"perspector"
)

func main() {
	name := "parsec"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	cfg := perspector.DefaultConfig()
	suite, err := perspector.SuiteByName(name, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measuring %s (%d workloads, %d instructions each)...\n",
		suite.Name, len(suite.Specs), cfg.Instructions)
	meas, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}

	scores, err := perspector.Score(meas, perspector.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPerspector scores for %s:\n", scores.Suite)
	fmt.Printf("  ClusterScore  %8.4f  (lower is better: workloads should not clump)\n", scores.Cluster)
	fmt.Printf("  TrendScore    %8.2f  (higher is better: diverse phase behaviour)\n", scores.Trend)
	fmt.Printf("  CoverageScore %8.5f  (higher is better: parameter space covered)\n", scores.Coverage)
	fmt.Printf("  SpreadScore   %8.4f  (lower is better: uniform coverage)\n", scores.Spread)
}
