package uarch

import (
	"context"
	"fmt"

	"perspector/internal/perf"
)

// MultiCore simulates N cores with private L1/L2/dTLB/branch state and a
// shared L3, interleaving the cores' instruction streams round-robin —
// the contention structure multithreaded suites like PARSEC exercise on
// the Table-II machine (6 cores, shared 12 MiB LLC). PMU events aggregate
// across cores, matching how system-wide `perf stat -a` counts.
//
// The model is deliberately simple: round-robin interleaving at
// instruction granularity approximates symmetric simultaneous progress;
// it captures LLC capacity contention (the first-order multicore effect
// on Table-IV counters) and ignores coherence and bandwidth queueing.
type MultiCore struct {
	cfg   MachineConfig
	cores []*Machine
	l3    *Cache
}

// NewMultiCore builds n cores from a shared config. Each core gets
// private L1, L2, TLB and branch state; the L3 from cfg.L3 is shared.
func NewMultiCore(cfg MachineConfig, n int) (*MultiCore, error) {
	if n < 1 {
		return nil, fmt.Errorf("uarch: NewMultiCore with %d cores", n)
	}
	shared, err := NewCache(cfg.L3)
	if err != nil {
		return nil, err
	}
	mc := &MultiCore{cfg: cfg, l3: shared}
	for i := 0; i < n; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		// Replace the private L3 with the shared one.
		m.l3 = shared
		mc.cores = append(mc.cores, m)
	}
	return mc, nil
}

// Cores returns the number of cores.
func (mc *MultiCore) Cores() int { return len(mc.cores) }

// Reset restores power-on state on every core and the shared L3.
func (mc *MultiCore) Reset() {
	for _, c := range mc.cores {
		c.Reset() // resets the shared L3 repeatedly; idempotent
	}
	mc.l3.Reset()
}

// RunParallel executes one program per core (len(progs) must equal the
// core count), interleaving instructions round-robin until every program
// has executed maxInstrPerCore instructions or ended. It returns one
// aggregated measurement; the workload name is taken from the first
// program. Sampling (cfg.SampleInterval) applies to the aggregate
// instruction count.
func (mc *MultiCore) RunParallel(progs []Program, maxInstrPerCore uint64) (*perf.Measurement, error) {
	return mc.RunParallelContext(context.Background(), progs, maxInstrPerCore)
}

// RunParallelContext is RunParallel with cooperative cancellation; the
// interleaved loop polls ctx on the same stride as Machine.RunContext,
// measured in aggregate instructions.
func (mc *MultiCore) RunParallelContext(ctx context.Context, progs []Program, maxInstrPerCore uint64) (*perf.Measurement, error) {
	if len(progs) != len(mc.cores) {
		return nil, fmt.Errorf("uarch: RunParallel got %d programs for %d cores", len(progs), len(mc.cores))
	}
	if maxInstrPerCore == 0 {
		return nil, fmt.Errorf("uarch: RunParallel with zero instruction budget")
	}
	meas := &perf.Measurement{Workload: progs[0].Name()}
	pmu := &meas.Totals
	ts := &meas.Series
	ts.Interval = mc.cfg.SampleInterval

	stride := checkStride(mc.cfg.SampleInterval)
	executed := make([]uint64, len(progs))
	done := make([]bool, len(progs))
	remaining := len(progs)
	var instr Instr
	var total uint64
	var prev perf.Values
	for remaining > 0 {
		for i, prog := range progs {
			if done[i] {
				continue
			}
			if executed[i] >= maxInstrPerCore || !prog.Next(&instr) {
				done[i] = true
				remaining--
				continue
			}
			executed[i]++
			total++
			pmu.Add(perf.CPUCycles, mc.cores[i].step(&instr, pmu))
			if mc.cfg.SampleInterval > 0 && total%mc.cfg.SampleInterval == 0 {
				mc.cores[i].chargeOSNoise(pmu)
				delta := pmu.Sub(prev)
				prev = *pmu
				for c := perf.Counter(0); c < perf.NumCounters; c++ {
					ts.Samples[c] = append(ts.Samples[c], float64(delta.Get(c)))
				}
			}
			if total%stride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
		}
	}
	return meas, nil
}
