package uarch

import (
	"testing"
	"testing/quick"

	"perspector/internal/rng"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 1024, LineB: 64, Ways: 2})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103f) {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if c.Access(0x1040) {
		t.Fatal("next-line cold access hit")
	}
}

func TestCacheGeometry(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 32 << 10, LineB: 64, Ways: 8})
	if c.LineBytes() != 64 || c.Ways() != 8 || c.Sets() != 64 {
		t.Fatalf("geometry: line=%d ways=%d sets=%d", c.LineBytes(), c.Ways(), c.Sets())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct construction of a 2-way, 1-set cache: 2 lines total.
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 128, LineB: 64, Ways: 2})
	if c.Sets() != 1 {
		t.Fatalf("sets = %d, want 1", c.Sets())
	}
	c.Access(0x0)  // A miss
	c.Access(0x40) // B miss
	c.Access(0x0)  // A hit (A becomes MRU)
	c.Access(0x80) // C miss, evicts LRU = B
	if !c.Access(0x0) {
		t.Fatal("A evicted despite being MRU")
	}
	if c.Access(0x40) {
		t.Fatal("B survived despite being LRU victim")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set equal to capacity has ~100% hits after warmup.
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 4096, LineB: 64, Ways: 4})
	lines := 4096 / 64
	for round := 0; round < 3; round++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	acc, miss := c.Stats()
	if acc != uint64(3*lines) {
		t.Fatalf("accesses = %d", acc)
	}
	if miss != uint64(lines) {
		t.Fatalf("misses = %d, want %d (cold only)", miss, lines)
	}
}

func TestCacheThrashing(t *testing.T) {
	// A working set of 2× capacity swept sequentially misses every time
	// with LRU.
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 1024, LineB: 64, Ways: 2})
	lines := 2 * 1024 / 64
	for round := 0; round < 3; round++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	acc, miss := c.Stats()
	if miss != acc {
		t.Fatalf("thrash: %d misses of %d accesses, want all misses", miss, acc)
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", SizeB: 1024, LineB: 64, Ways: 2})
	c.Access(0x1000)
	c.Reset()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if c.Access(0x1000) {
		t.Fatal("Reset did not invalidate lines")
	}
}

func TestCacheConfigErrors(t *testing.T) {
	bad := []CacheConfig{
		{SizeB: 0, LineB: 64, Ways: 2},
		{SizeB: 1024, LineB: 0, Ways: 2},
		{SizeB: 1024, LineB: 64, Ways: 0},
		{SizeB: 1000, LineB: 64, Ways: 2}, // not divisible
		{SizeB: 1024, LineB: 48, Ways: 2}, // line size not a power of two
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCacheMissesNeverExceedAccesses(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := NewCache(CacheConfig{Name: "q", SizeB: 2048, LineB: 64, Ways: 4})
		if err != nil {
			return false
		}
		src := rng.New(seed)
		for i := 0; i < 2000; i++ {
			c.Access(uint64(src.Intn(1 << 20)))
		}
		acc, miss := c.Stats()
		return miss <= acc && acc == 2000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb, err := NewTLB(DefaultTLBConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := tlb.Translate(0x1000)
	if !r.L1Miss || !r.Walked {
		t.Fatalf("cold translate = %+v, want full miss", r)
	}
	r = tlb.Translate(0x1800) // same 4K page
	if r.L1Miss {
		t.Fatalf("same-page translate missed: %+v", r)
	}
}

func TestTLBL2Backing(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{
		L1Entries: 4, L1Ways: 4, L2Entries: 64, L2Ways: 4,
		PageB: 4096, WalkCycles: 30, L2HitCycles: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch 8 pages: L1 (4 entries) cannot hold them, L2 (64) can.
	for p := 0; p < 8; p++ {
		tlb.Translate(uint64(p) * 4096)
	}
	// Second sweep: all L1 misses should hit L2 (no walks).
	_, _, walksBefore := tlb.Stats()
	for p := 0; p < 8; p++ {
		r := tlb.Translate(uint64(p) * 4096)
		if r.Walked {
			t.Fatalf("page %d walked despite L2 capacity", p)
		}
		_ = r
	}
	_, _, walksAfter := tlb.Stats()
	if walksAfter != walksBefore {
		t.Fatal("second sweep triggered walks")
	}
}

func TestTLBHugeWorkingSetWalks(t *testing.T) {
	tlb, err := NewTLB(DefaultTLBConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Sweep 4096 pages twice: far beyond 1536 L2 entries, every access
	// in the second sweep still walks.
	for round := 0; round < 2; round++ {
		for p := 0; p < 4096; p++ {
			tlb.Translate(uint64(p) * 4096)
		}
	}
	acc, _, walks := tlb.Stats()
	if acc != 8192 {
		t.Fatalf("accesses = %d", acc)
	}
	if walks != 8192 {
		t.Fatalf("walks = %d, want all (sequential sweep beyond capacity)", walks)
	}
}

func TestTLBConfigErrors(t *testing.T) {
	cfg := DefaultTLBConfig()
	cfg.PageB = 1000
	if _, err := NewTLB(cfg); err == nil {
		t.Fatal("non-power-of-two page accepted")
	}
}

func TestTLBReset(t *testing.T) {
	tlb, err := NewTLB(DefaultTLBConfig())
	if err != nil {
		t.Fatal(err)
	}
	tlb.Translate(0x1000)
	tlb.Reset()
	acc, misses, walks := tlb.Stats()
	if acc != 0 || misses != 0 || walks != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if r := tlb.Translate(0x1000); !r.Walked {
		t.Fatal("Reset did not clear entries")
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp, err := NewBranchPredictor(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Always-taken branch: near-perfect after warmup.
	for i := 0; i < 1000; i++ {
		bp.Predict(0x400000, true)
	}
	_, miss := bp.Stats()
	if miss > 5 {
		t.Fatalf("always-taken mispredicts = %d", miss)
	}
}

func TestBranchPredictorLearnsPattern(t *testing.T) {
	bp, err := NewBranchPredictor(14, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Period-4 pattern TTNT: gshare history disambiguates it.
	pattern := []bool{true, true, false, true}
	for i := 0; i < 4000; i++ {
		bp.Predict(0x400100, pattern[i%4])
	}
	pred, miss := bp.Stats()
	if float64(miss)/float64(pred) > 0.1 {
		t.Fatalf("pattern miss rate = %d/%d", miss, pred)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp, err := NewBranchPredictor(14, 10)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 10000; i++ {
		bp.Predict(0x400200, src.Bool(0.5))
	}
	pred, miss := bp.Stats()
	rate := float64(miss) / float64(pred)
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random-branch miss rate = %v, want ~0.5", rate)
	}
}

func TestBranchPredictorConfigErrors(t *testing.T) {
	if _, err := NewBranchPredictor(0, 0); err == nil {
		t.Fatal("zero table accepted")
	}
	if _, err := NewBranchPredictor(30, 8); err == nil {
		t.Fatal("oversized table accepted")
	}
	if _, err := NewBranchPredictor(8, 10); err == nil {
		t.Fatal("history > table accepted")
	}
}

func TestBranchPredictorReset(t *testing.T) {
	bp, err := NewBranchPredictor(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	bp.Predict(1, true)
	bp.Reset()
	pred, miss := bp.Stats()
	if pred != 0 || miss != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := NewCache(CacheConfig{Name: "b", SizeB: 32 << 10, LineB: 64, Ways: 8})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func BenchmarkTLBTranslate(b *testing.B) {
	tlb, err := NewTLB(DefaultTLBConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Translate(addrs[i&4095])
	}
}

func BenchmarkBranchPredict(b *testing.B) {
	bp, err := NewBranchPredictor(14, 12)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	outcomes := make([]bool, 4096)
	for i := range outcomes {
		outcomes[i] = src.Bool(0.7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Predict(uint64(i&1023), outcomes[i&4095])
	}
}
