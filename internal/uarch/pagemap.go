package uarch

// pageBitmap tracks which virtual pages have been faulted in. It replaces
// the former map[uint64]struct{}: a page-walk now costs one chunk lookup
// (usually memoized away) plus a bit test instead of a map probe, and the
// dense [512]uint64 chunks are far smaller than map buckets for the
// clustered page numbers real workloads touch. Sparse far-apart regions
// (e.g. multicore thread offsets at 1 TiB spacing) each get their own
// chunk, so memory stays proportional to pages actually touched.
type pageBitmap struct {
	chunks map[uint64]*pageChunk
	// Memoized last chunk: page-walk locality makes consecutive faults
	// overwhelmingly land in the same chunk.
	lastIdx uint64
	last    *pageChunk
}

// pageChunkBits is the log2 of pages per chunk: 2^15 pages = one
// [512]uint64 = 4 KiB of bitmap covering 128 MiB of 4-KiB-page address
// space.
const pageChunkBits = 15

type pageChunk [1 << pageChunkBits / 64]uint64

func (b *pageBitmap) init() {
	b.chunks = make(map[uint64]*pageChunk)
	b.last = nil
	b.lastIdx = 0
}

// testAndSet marks page as touched and reports whether it already was.
func (b *pageBitmap) testAndSet(page uint64) bool {
	idx := page >> pageChunkBits
	ch := b.last
	if ch == nil || b.lastIdx != idx {
		ch = b.chunks[idx]
		if ch == nil {
			ch = new(pageChunk)
			b.chunks[idx] = ch
		}
		b.last, b.lastIdx = ch, idx
	}
	word := page >> 6 & (1<<(pageChunkBits-6) - 1)
	bit := uint64(1) << (page & 63)
	if ch[word]&bit != 0 {
		return true
	}
	ch[word] |= bit
	return false
}

// reset forgets every touched page.
func (b *pageBitmap) reset() {
	// Drop the chunks rather than zeroing them: a fresh workload usually
	// touches a different footprint, and chunk allocation is cheap next to
	// the faults that cause it.
	clear(b.chunks)
	b.last = nil
	b.lastIdx = 0
}
