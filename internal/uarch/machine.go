package uarch

import (
	"context"
	"fmt"
	"unsafe"

	"perspector/internal/perf"
)

// InstrKind classifies one dynamic instruction.
type InstrKind uint8

const (
	// ALU is a register-only instruction (1 cycle).
	ALU InstrKind = iota
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch.
	Branch
	// Syscall models an OS entry (fixed cost plus a page-fault chance
	// charged by the workload through the Fault flag).
	Syscall
)

// Instr is one dynamic instruction handed to the machine by a workload
// program. Addr is the virtual address for Load/Store; PC and Taken
// describe Branch instructions; Fault marks a Syscall that raises a page
// fault (e.g. mmap-backed I/O).
type Instr struct {
	Addr  uint64
	PC    uint64
	Kind  InstrKind
	Taken bool
	Fault bool
}

// Program is a workload: a resettable generator of dynamic instructions.
// Next fills in instr and reports false when the program has ended.
type Program interface {
	// Name identifies the workload.
	Name() string
	// Next produces the next dynamic instruction.
	Next(instr *Instr) bool
	// Reset rewinds the program to the beginning with its original seed.
	Reset()
}

// BatchProgram is a Program that can emit instructions in blocks,
// avoiding one interface dispatch per dynamic instruction. NextBatch
// fills dst from the front and returns how many instructions it produced;
// a short count means the program ended. The instruction sequence MUST be
// byte-identical to what repeated Next calls would produce — the golden
// equivalence tests pin both paths to the same counters.
type BatchProgram interface {
	Program
	// NextBatch produces up to len(dst) instructions into dst[0:n].
	NextBatch(dst []Instr) int
}

// MachineConfig assembles the full core model. Latencies are in cycles.
type MachineConfig struct {
	L1                CacheConfig
	L2                CacheConfig
	L3                CacheConfig
	TLB               TLBConfig
	BranchTableBits   uint
	BranchHistoryBits uint

	// DRAMCycles is the miss-to-memory latency.
	DRAMCycles int
	// MispredictPenalty is the pipeline flush cost of a branch miss.
	MispredictPenalty int
	// SyscallCycles is the base cost of a syscall.
	SyscallCycles int
	// MinorFaultCycles is the OS cost of a minor page fault (first touch).
	MinorFaultCycles int
	// SampleInterval is the instruction distance between PMU samples;
	// 0 disables sampling.
	SampleInterval uint64
	// CountersOnly skips the sampled time series entirely: no per-counter
	// sample slices are allocated and no per-interval delta snapshots are
	// taken. The interval countdown itself still runs — the OS-noise model
	// charges the PMU at sample boundaries, so identical boundaries are
	// what keep totals bit-identical to a full sampled run. Callers that
	// never read Series (totals-only CSV, spread/compare scoring) set this
	// to drop the bookkeeping the measurement would throw away.
	CountersOnly bool
	// OSNoiseFrac models background kernel activity (timer interrupts,
	// scheduler ticks, RCU callbacks) as a fraction of each sample
	// interval's instructions executed in the kernel with a typical
	// kernel profile. Real PMU measurements always contain this steady
	// trickle; without it, counters that the workload barely exercises
	// degenerate into sparse random staircases that distort trend
	// analysis. 0 disables the model.
	OSNoiseFrac float64
	// NextLinePrefetch enables a simple L2 next-line prefetcher: on an L2
	// miss for line X, line X+1 is installed into L2 (and L3) without
	// charging demand-miss events. Streaming workloads then hit in L2 on
	// roughly every other line, halving their LLC traffic — the classic
	// hardware-prefetching effect. Off by default so the paper's
	// reproduction stays prefetcher-free; used by the ablation bench.
	NextLinePrefetch bool
}

// DefaultMachineConfig mirrors the Table-II machine at per-core scale:
// 32 KiB L1D, 256 KiB L2, 12 MiB L3, Skylake-class latencies.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		L1:                CacheConfig{Name: "L1D", SizeB: 32 << 10, LineB: 64, Ways: 8, LatencyC: 4},
		L2:                CacheConfig{Name: "L2", SizeB: 256 << 10, LineB: 64, Ways: 8, LatencyC: 12},
		L3:                CacheConfig{Name: "L3", SizeB: 12 << 20, LineB: 64, Ways: 16, LatencyC: 40},
		TLB:               DefaultTLBConfig(),
		BranchTableBits:   14,
		BranchHistoryBits: 12,
		DRAMCycles:        200,
		MispredictPenalty: 15,
		SyscallCycles:     400,
		MinorFaultCycles:  2500,
		SampleInterval:    0,
		OSNoiseFrac:       0.005,
	}
}

// Machine is one simulated core with its private cache/TLB hierarchy.
type Machine struct {
	cfg        MachineConfig
	l1, l2, l3 *Cache
	tlb        *TLB
	bp         *BranchPredictor
	pageBits   uint
	touched    pageBitmap // pages already faulted in
	batch      []Instr    // block buffer reused across RunContext calls
	// noiseAcc carries fractional OS-noise event counts between samples
	// so small rates accumulate deterministically.
	noiseAcc [perf.NumCounters]float64
}

// NewMachine builds a machine from a config.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	l1, err := NewCache(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache(cfg.L3)
	if err != nil {
		return nil, err
	}
	tlb, err := NewTLB(cfg.TLB)
	if err != nil {
		return nil, err
	}
	bp, err := NewBranchPredictor(cfg.BranchTableBits, cfg.BranchHistoryBits)
	if err != nil {
		return nil, err
	}
	if cfg.DRAMCycles <= 0 || cfg.MispredictPenalty < 0 {
		return nil, fmt.Errorf("uarch: invalid latency configuration")
	}
	pageBits, err := exactLog2(uint64(cfg.TLB.PageB))
	if err != nil {
		return nil, fmt.Errorf("uarch: page size: %w", err)
	}
	m := &Machine{
		cfg: cfg, l1: l1, l2: l2, l3: l3, tlb: tlb, bp: bp,
		pageBits: pageBits,
	}
	m.touched.init()
	return m, nil
}

// Reset restores the machine to power-on state (cold caches, cold TLB,
// reset predictor, no touched pages).
func (m *Machine) Reset() {
	m.l1.Reset()
	m.l2.Reset()
	m.l3.Reset()
	m.tlb.Reset()
	m.bp.Reset()
	m.touched.reset()
	m.noiseAcc = [perf.NumCounters]float64{}
}

// osNoiseRates gives the per-kernel-instruction event rates of the
// background-activity model: a typical interrupt/scheduler profile
// (branchy code over cold kernel data structures). Indexed by
// perf.Counter; a flat array so chargeOSNoise never walks a Go map.
var osNoiseRates = [perf.NumCounters]float64{
	perf.CPUCycles:          2.0,
	perf.BranchInstructions: 0.20,
	perf.BranchMisses:       0.02,
	perf.StallsMemAny:       0.50,
	perf.DTLBLoads:          0.25,
	perf.DTLBStores:         0.08,
	perf.DTLBLoadMisses:     0.020,
	perf.DTLBStoreMisses:    0.006,
	perf.DTLBWalkPending:    0.40, // ≈ walk rate × walk cycles
	perf.LLCLoads:           0.030,
	perf.LLCStores:          0.010,
	perf.LLCLoadMisses:      0.020,
	perf.LLCStoreMisses:     0.006,
	perf.PageFaults:         0.0002,
}

// chargeOSNoise adds one sample interval's worth of background kernel
// activity to the PMU, carrying fractional counts across intervals. Each
// counter accumulates independently, so the switch from map iteration to
// an indexed loop changes no emitted value.
func (m *Machine) chargeOSNoise(pmu *perf.Values) {
	if m.cfg.OSNoiseFrac <= 0 || m.cfg.SampleInterval == 0 {
		return
	}
	kernelInstr := m.cfg.OSNoiseFrac * float64(m.cfg.SampleInterval)
	for c := perf.Counter(0); c < perf.NumCounters; c++ {
		rate := osNoiseRates[c]
		if rate == 0 {
			continue
		}
		m.noiseAcc[c] += rate * kernelInstr
		if whole := uint64(m.noiseAcc[c]); whole > 0 {
			pmu.Add(c, whole)
			m.noiseAcc[c] -= float64(whole)
		}
	}
}

// Run executes prog for at most maxInstr dynamic instructions (or to
// completion if the program ends earlier) and returns the PMU measurement.
// Sampling follows cfg.SampleInterval.
func (m *Machine) Run(prog Program, maxInstr uint64) (*perf.Measurement, error) {
	return m.RunContext(context.Background(), prog, maxInstr)
}

// cancelStride bounds the instruction distance between context checks in
// the simulation loops, so cancellation latency stays well under one
// sample batch even when sampling is disabled or the interval is huge
// (e.g. calibration probes with Samples = 1).
const cancelStride = 4096

// checkStride returns the context-poll period for a sample interval.
func checkStride(sampleInterval uint64) uint64 {
	if sampleInterval > 0 && sampleInterval < cancelStride {
		return sampleInterval
	}
	return cancelStride
}

// blockCap bounds the batch size for RunContext; it equals cancelStride
// so a full block never delays a cancellation poll. The emit-then-step
// round trip streams the buffer sequentially, so the ~96 KiB worst case
// prefetches cleanly — smaller blocks measured slower, not faster.
const blockCap = cancelStride

// blockSizeFor picks the batch size for RunContext: ideally the largest
// divisor of the sample interval not exceeding blockCap, so in steady
// state every block is full and a sample boundary coincides with a block
// boundary. Intervals with no usable divisor (e.g. primes) fall back to
// blockCap; the countdown clamp in RunContext keeps sampling exact
// either way, this just keeps blocks large.
func blockSizeFor(interval uint64) uint64 {
	if interval == 0 {
		return blockCap
	}
	if interval <= blockCap {
		return interval
	}
	for d := uint64(blockCap); d >= blockCap/8; d-- {
		if interval%d == 0 {
			return d
		}
	}
	return blockCap
}

// maxSamplePrealloc caps the per-counter sample capacity reserved up
// front, so a pathological interval cannot ask for gigabytes.
const maxSamplePrealloc = 1 << 20

// RunContext is Run with cooperative cancellation: the loop polls ctx at
// block boundaries (never more than ~cancelStride instructions apart) and
// returns ctx.Err() as soon as it fires. The partial measurement is
// discarded — counters from an interrupted execution would silently skew
// every downstream score.
//
// Instructions are pulled in fixed blocks through BatchProgram when the
// workload implements it (all stock workloads do), falling back to
// per-instruction Next otherwise. Sampling uses countdown arithmetic: a
// block never crosses a sample boundary, so the PMU snapshot happens at
// exactly the same instruction numbers as the legacy per-instruction
// loop, and every emitted counter stays bit-identical.
func (m *Machine) RunContext(ctx context.Context, prog Program, maxInstr uint64) (*perf.Measurement, error) {
	if maxInstr == 0 {
		return nil, fmt.Errorf("uarch: Run with maxInstr == 0")
	}
	meas := &perf.Measurement{Workload: prog.Name()}
	pmu := &meas.Totals
	ts := &meas.Series
	interval := m.cfg.SampleInterval
	ts.Interval = interval
	countersOnly := m.cfg.CountersOnly
	if interval > 0 && !countersOnly {
		expected := maxInstr / interval
		if expected > maxSamplePrealloc {
			expected = maxSamplePrealloc
		}
		for c := range ts.Samples {
			ts.Samples[c] = make([]float64, 0, expected)
		}
	}

	block := blockSizeFor(interval)
	if uint64(cap(m.batch)) < block {
		m.batch = make([]Instr, block)
	}
	buf := m.batch[:block]
	bprog, batched := prog.(BatchProgram)

	checkEvery := cancelStride / block // ≥ 1 because block ≤ cancelStride
	var sinceCheck uint64
	toSample := interval
	var prev perf.Values
	var executed uint64
	for executed < maxInstr {
		n := block
		if rem := maxInstr - executed; rem < n {
			n = rem
		}
		if interval > 0 && toSample < n {
			n = toSample
		}
		var got int
		if batched {
			got = bprog.NextBatch(buf[:n])
		} else {
			for got = 0; got < int(n); got++ {
				if !prog.Next(&buf[got]) {
					break
				}
			}
		}
		// CPUCycles accumulates locally and lands in one Add per block;
		// blocks never cross a sample boundary, so every sample still
		// snapshots identical cumulative counters.
		pmu.Add(perf.CPUCycles, m.stepBlock(buf[:got], pmu))
		executed += uint64(got)
		if interval > 0 {
			toSample -= uint64(got) // got ≤ n ≤ toSample: no underflow
			if toSample == 0 {
				// The noise charge stays on the boundary even in
				// counters-only mode: its fractional accumulation is a
				// per-interval floating-point sequence, so only identical
				// boundaries reproduce the full run's totals bit-for-bit.
				m.chargeOSNoise(pmu)
				if !countersOnly {
					delta := pmu.Sub(prev)
					prev = *pmu
					for c := perf.Counter(0); c < perf.NumCounters; c++ {
						ts.Samples[c] = append(ts.Samples[c], float64(delta.Get(c)))
					}
				}
				toSample = interval
			}
		}
		if uint64(got) < n {
			break // program ended
		}
		if sinceCheck++; sinceCheck >= checkEvery {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return meas, nil
}

// step executes one instruction, charging PMU events, and returns its
// cycle cost; the caller accounts CPUCycles (batched per block in
// RunContext, per instruction in the multicore interleaver).
func (m *Machine) step(in *Instr, pmu *perf.Values) uint64 {
	return m.stepBlock(unsafe.Slice(in, 1), pmu)
}

// stepBlock executes a block of instructions, charging PMU events, and
// returns the block's total cycle cost (the caller accounts CPUCycles).
// The per-kind switch lives directly in the block loop and every config
// latency is hoisted into a local, so the hot path pays no call or
// config-field reload per instruction. Event counts accumulate in locals
// and flush to the PMU once per block — RunContext never lets a block
// cross a sample boundary, so every sample reads the same values it
// would with per-instruction Adds.
func (m *Machine) stepBlock(buf []Instr, pmu *perf.Values) uint64 {
	var (
		tlb, l1, l2, l3 = m.tlb, m.l1, m.l2, m.l3
		l1Lat           = uint64(m.cfg.L1.LatencyC)
		l2Lat           = uint64(m.cfg.L2.LatencyC)
		l3Lat           = uint64(m.cfg.L3.LatencyC)
		dram            = uint64(m.cfg.DRAMCycles)
		walkC           = uint64(m.cfg.TLB.WalkCycles)
		tlbL2Hit        = uint64(m.cfg.TLB.L2HitCycles)
		minorFault      = uint64(m.cfg.MinorFaultCycles)
		mispredict      = uint64(m.cfg.MispredictPenalty)
		syscallC        = uint64(m.cfg.SyscallCycles)
		prefetch        = m.cfg.NextLinePrefetch
		lineB           = uint64(m.cfg.L2.LineB)
		pageBits        = m.pageBits
	)
	cycles := uint64(len(buf)) // base CPI of 1 for issue
	var (
		dtlbLoads, dtlbStores, dtlbLoadMiss, dtlbStoreMiss uint64
		walkPending, pageFaults                            uint64
		llcLoads, llcStores, llcLoadMiss, llcStoreMiss     uint64
		stallsMem, branches, branchMiss                    uint64
	)
	for i := range buf {
		in := &buf[i]
		switch in.Kind {
		case ALU:
			// Base cycle only.

		case Load, Store:
			isLoad := in.Kind == Load
			// dTLB lookup. Translate and Access inline as their repeat
			// memos (same page / line as the previous lookup), so the
			// common local-access case resolves without a call; block-level
			// memo duplication on top of that measured as a pure loss.
			if isLoad {
				dtlbLoads++
			} else {
				dtlbStores++
			}
			tr := tlb.Translate(in.Addr)
			if tr.L1Miss {
				if isLoad {
					dtlbLoadMiss++
				} else {
					dtlbStoreMiss++
				}
				if tr.Walked {
					walkPending += walkC
					cycles += walkC
					// First touch of a page raises a minor fault.
					if !m.touched.testAndSet(in.Addr >> pageBits) {
						pageFaults++
						cycles += minorFault
					}
				} else {
					cycles += tlbL2Hit
				}
			}

			// Cache hierarchy. L1 hits overlap with the pipeline.
			var memStall uint64
			switch {
			case l1.Access(in.Addr):
				memStall = l1Lat
			case l2.Access(in.Addr):
				memStall = l2Lat
			default:
				// Reached the LLC.
				if isLoad {
					llcLoads++
				} else {
					llcStores++
				}
				if l3.Access(in.Addr) {
					memStall = l3Lat
				} else {
					if isLoad {
						llcLoadMiss++
					} else {
						llcStoreMiss++
					}
					memStall = dram
				}
				if prefetch {
					// Install the next line into L2/L3 silently (prefetches
					// are not demand events and overlap with the demand miss).
					next := in.Addr + lineB
					l2.Access(next)
					l3.Access(next)
				}
			}
			// L1 hits overlap with the pipeline; anything slower stalls.
			if memStall > l1Lat {
				stall := memStall - l1Lat
				stallsMem += stall
				cycles += stall
			}

		case Branch:
			branches++
			if !m.bp.Predict(in.PC, in.Taken) {
				branchMiss++
				cycles += mispredict
			}

		case Syscall:
			cycles += syscallC
			if in.Fault {
				pageFaults++
				cycles += minorFault
			}
		}
	}

	pmu.Add(perf.DTLBLoads, dtlbLoads)
	pmu.Add(perf.DTLBStores, dtlbStores)
	pmu.Add(perf.DTLBLoadMisses, dtlbLoadMiss)
	pmu.Add(perf.DTLBStoreMisses, dtlbStoreMiss)
	pmu.Add(perf.DTLBWalkPending, walkPending)
	pmu.Add(perf.PageFaults, pageFaults)
	pmu.Add(perf.LLCLoads, llcLoads)
	pmu.Add(perf.LLCStores, llcStores)
	pmu.Add(perf.LLCLoadMisses, llcLoadMiss)
	pmu.Add(perf.LLCStoreMisses, llcStoreMiss)
	pmu.Add(perf.StallsMemAny, stallsMem)
	pmu.Add(perf.BranchInstructions, branches)
	pmu.Add(perf.BranchMisses, branchMiss)
	return cycles
}

// CacheStats exposes per-level accesses/misses for tests and diagnostics.
func (m *Machine) CacheStats() (l1a, l1m, l2a, l2m, l3a, l3m uint64) {
	l1a, l1m = m.l1.Stats()
	l2a, l2m = m.l2.Stats()
	l3a, l3m = m.l3.Stats()
	return
}

// TLBStats exposes TLB accesses, first-level misses and walks.
func (m *Machine) TLBStats() (accesses, l1Misses, walks uint64) {
	return m.tlb.Stats()
}

// BranchStats exposes branch predictions and mispredictions.
func (m *Machine) BranchStats() (predicts, mispredicts uint64) {
	return m.bp.Stats()
}
