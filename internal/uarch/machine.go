package uarch

import (
	"context"
	"fmt"

	"perspector/internal/perf"
)

// InstrKind classifies one dynamic instruction.
type InstrKind uint8

const (
	// ALU is a register-only instruction (1 cycle).
	ALU InstrKind = iota
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch.
	Branch
	// Syscall models an OS entry (fixed cost plus a page-fault chance
	// charged by the workload through the Fault flag).
	Syscall
)

// Instr is one dynamic instruction handed to the machine by a workload
// program. Addr is the virtual address for Load/Store; PC and Taken
// describe Branch instructions; Fault marks a Syscall that raises a page
// fault (e.g. mmap-backed I/O).
type Instr struct {
	Kind  InstrKind
	Addr  uint64
	PC    uint64
	Taken bool
	Fault bool
}

// Program is a workload: a resettable generator of dynamic instructions.
// Next fills in instr and reports false when the program has ended.
type Program interface {
	// Name identifies the workload.
	Name() string
	// Next produces the next dynamic instruction.
	Next(instr *Instr) bool
	// Reset rewinds the program to the beginning with its original seed.
	Reset()
}

// MachineConfig assembles the full core model. Latencies are in cycles.
type MachineConfig struct {
	L1                CacheConfig
	L2                CacheConfig
	L3                CacheConfig
	TLB               TLBConfig
	BranchTableBits   uint
	BranchHistoryBits uint

	// DRAMCycles is the miss-to-memory latency.
	DRAMCycles int
	// MispredictPenalty is the pipeline flush cost of a branch miss.
	MispredictPenalty int
	// SyscallCycles is the base cost of a syscall.
	SyscallCycles int
	// MinorFaultCycles is the OS cost of a minor page fault (first touch).
	MinorFaultCycles int
	// SampleInterval is the instruction distance between PMU samples;
	// 0 disables sampling.
	SampleInterval uint64
	// OSNoiseFrac models background kernel activity (timer interrupts,
	// scheduler ticks, RCU callbacks) as a fraction of each sample
	// interval's instructions executed in the kernel with a typical
	// kernel profile. Real PMU measurements always contain this steady
	// trickle; without it, counters that the workload barely exercises
	// degenerate into sparse random staircases that distort trend
	// analysis. 0 disables the model.
	OSNoiseFrac float64
	// NextLinePrefetch enables a simple L2 next-line prefetcher: on an L2
	// miss for line X, line X+1 is installed into L2 (and L3) without
	// charging demand-miss events. Streaming workloads then hit in L2 on
	// roughly every other line, halving their LLC traffic — the classic
	// hardware-prefetching effect. Off by default so the paper's
	// reproduction stays prefetcher-free; used by the ablation bench.
	NextLinePrefetch bool
}

// DefaultMachineConfig mirrors the Table-II machine at per-core scale:
// 32 KiB L1D, 256 KiB L2, 12 MiB L3, Skylake-class latencies.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		L1:                CacheConfig{Name: "L1D", SizeB: 32 << 10, LineB: 64, Ways: 8, LatencyC: 4},
		L2:                CacheConfig{Name: "L2", SizeB: 256 << 10, LineB: 64, Ways: 8, LatencyC: 12},
		L3:                CacheConfig{Name: "L3", SizeB: 12 << 20, LineB: 64, Ways: 16, LatencyC: 40},
		TLB:               DefaultTLBConfig(),
		BranchTableBits:   14,
		BranchHistoryBits: 12,
		DRAMCycles:        200,
		MispredictPenalty: 15,
		SyscallCycles:     400,
		MinorFaultCycles:  2500,
		SampleInterval:    0,
		OSNoiseFrac:       0.005,
	}
}

// Machine is one simulated core with its private cache/TLB hierarchy.
type Machine struct {
	cfg        MachineConfig
	l1, l2, l3 *Cache
	tlb        *TLB
	bp         *BranchPredictor
	pageBits   uint
	touched    map[uint64]struct{} // pages already faulted in
	// noiseAcc carries fractional OS-noise event counts between samples
	// so small rates accumulate deterministically.
	noiseAcc [perf.NumCounters]float64
}

// NewMachine builds a machine from a config.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	l1, err := NewCache(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache(cfg.L3)
	if err != nil {
		return nil, err
	}
	tlb, err := NewTLB(cfg.TLB)
	if err != nil {
		return nil, err
	}
	bp, err := NewBranchPredictor(cfg.BranchTableBits, cfg.BranchHistoryBits)
	if err != nil {
		return nil, err
	}
	if cfg.DRAMCycles <= 0 || cfg.MispredictPenalty < 0 {
		return nil, fmt.Errorf("uarch: invalid latency configuration")
	}
	return &Machine{
		cfg: cfg, l1: l1, l2: l2, l3: l3, tlb: tlb, bp: bp,
		pageBits: log2(uint64(cfg.TLB.PageB)),
		touched:  make(map[uint64]struct{}),
	}, nil
}

// Reset restores the machine to power-on state (cold caches, cold TLB,
// reset predictor, no touched pages).
func (m *Machine) Reset() {
	m.l1.Reset()
	m.l2.Reset()
	m.l3.Reset()
	m.tlb.Reset()
	m.bp.Reset()
	m.touched = make(map[uint64]struct{})
	m.noiseAcc = [perf.NumCounters]float64{}
}

// osNoiseRates gives the per-kernel-instruction event rates of the
// background-activity model: a typical interrupt/scheduler profile
// (branchy code over cold kernel data structures).
var osNoiseRates = map[perf.Counter]float64{
	perf.CPUCycles:          2.0,
	perf.BranchInstructions: 0.20,
	perf.BranchMisses:       0.02,
	perf.StallsMemAny:       0.50,
	perf.DTLBLoads:          0.25,
	perf.DTLBStores:         0.08,
	perf.DTLBLoadMisses:     0.020,
	perf.DTLBStoreMisses:    0.006,
	perf.DTLBWalkPending:    0.40, // ≈ walk rate × walk cycles
	perf.LLCLoads:           0.030,
	perf.LLCStores:          0.010,
	perf.LLCLoadMisses:      0.020,
	perf.LLCStoreMisses:     0.006,
	perf.PageFaults:         0.0002,
}

// chargeOSNoise adds one sample interval's worth of background kernel
// activity to the PMU, carrying fractional counts across intervals.
func (m *Machine) chargeOSNoise(pmu *perf.Values) {
	if m.cfg.OSNoiseFrac <= 0 || m.cfg.SampleInterval == 0 {
		return
	}
	kernelInstr := m.cfg.OSNoiseFrac * float64(m.cfg.SampleInterval)
	for c, rate := range osNoiseRates {
		m.noiseAcc[c] += rate * kernelInstr
		if whole := uint64(m.noiseAcc[c]); whole > 0 {
			pmu.Add(c, whole)
			m.noiseAcc[c] -= float64(whole)
		}
	}
}

// Run executes prog for at most maxInstr dynamic instructions (or to
// completion if the program ends earlier) and returns the PMU measurement.
// Sampling follows cfg.SampleInterval.
func (m *Machine) Run(prog Program, maxInstr uint64) (*perf.Measurement, error) {
	return m.RunContext(context.Background(), prog, maxInstr)
}

// cancelStride bounds the instruction distance between context checks in
// the simulation loops, so cancellation latency stays well under one
// sample batch even when sampling is disabled or the interval is huge
// (e.g. calibration probes with Samples = 1).
const cancelStride = 4096

// checkStride returns the context-poll period for a sample interval.
func checkStride(sampleInterval uint64) uint64 {
	if sampleInterval > 0 && sampleInterval < cancelStride {
		return sampleInterval
	}
	return cancelStride
}

// RunContext is Run with cooperative cancellation: the loop polls ctx
// every few thousand instructions (never more than one sample interval
// apart) and returns ctx.Err() as soon as it fires. The partial
// measurement is discarded — counters from an interrupted execution would
// silently skew every downstream score.
func (m *Machine) RunContext(ctx context.Context, prog Program, maxInstr uint64) (*perf.Measurement, error) {
	if maxInstr == 0 {
		return nil, fmt.Errorf("uarch: Run with maxInstr == 0")
	}
	meas := &perf.Measurement{Workload: prog.Name()}
	pmu := &meas.Totals
	ts := &meas.Series
	ts.Interval = m.cfg.SampleInterval

	stride := checkStride(m.cfg.SampleInterval)
	var prev perf.Values
	var instr Instr
	var executed uint64
	for executed < maxInstr && prog.Next(&instr) {
		executed++
		m.step(&instr, pmu)
		if m.cfg.SampleInterval > 0 && executed%m.cfg.SampleInterval == 0 {
			m.chargeOSNoise(pmu)
			delta := pmu.Sub(prev)
			prev = *pmu
			for c := perf.Counter(0); c < perf.NumCounters; c++ {
				ts.Samples[c] = append(ts.Samples[c], float64(delta.Get(c)))
			}
		}
		if executed%stride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return meas, nil
}

// step executes one instruction, charging cycles and PMU events.
func (m *Machine) step(in *Instr, pmu *perf.Values) {
	cycles := uint64(1) // base CPI of 1 for issue

	switch in.Kind {
	case ALU:
		// Base cycle only.

	case Load, Store:
		isLoad := in.Kind == Load
		// dTLB lookup.
		if isLoad {
			pmu.Add(perf.DTLBLoads, 1)
		} else {
			pmu.Add(perf.DTLBStores, 1)
		}
		tr := m.tlb.Translate(in.Addr)
		if tr.L1Miss {
			if isLoad {
				pmu.Add(perf.DTLBLoadMisses, 1)
			} else {
				pmu.Add(perf.DTLBStoreMisses, 1)
			}
			if tr.Walked {
				walk := uint64(m.cfg.TLB.WalkCycles)
				pmu.Add(perf.DTLBWalkPending, walk)
				cycles += walk
				// First touch of a page raises a minor fault.
				page := in.Addr >> m.pageBits
				if _, ok := m.touched[page]; !ok {
					m.touched[page] = struct{}{}
					pmu.Add(perf.PageFaults, 1)
					cycles += uint64(m.cfg.MinorFaultCycles)
				}
			} else {
				cycles += uint64(m.cfg.TLB.L2HitCycles)
			}
		}

		// Cache hierarchy.
		var memStall uint64
		switch {
		case m.l1.Access(in.Addr):
			memStall = uint64(m.cfg.L1.LatencyC)
		case m.l2.Access(in.Addr):
			memStall = uint64(m.cfg.L2.LatencyC)
		default:
			// Reached the LLC.
			if isLoad {
				pmu.Add(perf.LLCLoads, 1)
			} else {
				pmu.Add(perf.LLCStores, 1)
			}
			if m.l3.Access(in.Addr) {
				memStall = uint64(m.cfg.L3.LatencyC)
			} else {
				if isLoad {
					pmu.Add(perf.LLCLoadMisses, 1)
				} else {
					pmu.Add(perf.LLCStoreMisses, 1)
				}
				memStall = uint64(m.cfg.DRAMCycles)
			}
			if m.cfg.NextLinePrefetch {
				// Install the next line into L2/L3 silently (prefetches
				// are not demand events and overlap with the demand miss).
				next := in.Addr + uint64(m.cfg.L2.LineB)
				m.l2.Access(next)
				m.l3.Access(next)
			}
		}
		// L1 hits overlap with the pipeline; anything slower stalls.
		if memStall > uint64(m.cfg.L1.LatencyC) {
			stall := memStall - uint64(m.cfg.L1.LatencyC)
			pmu.Add(perf.StallsMemAny, stall)
			cycles += stall
		}

	case Branch:
		pmu.Add(perf.BranchInstructions, 1)
		if !m.bp.Predict(in.PC, in.Taken) {
			pmu.Add(perf.BranchMisses, 1)
			cycles += uint64(m.cfg.MispredictPenalty)
		}

	case Syscall:
		cycles += uint64(m.cfg.SyscallCycles)
		if in.Fault {
			pmu.Add(perf.PageFaults, 1)
			cycles += uint64(m.cfg.MinorFaultCycles)
		}
	}

	pmu.Add(perf.CPUCycles, cycles)
}

// CacheStats exposes per-level accesses/misses for tests and diagnostics.
func (m *Machine) CacheStats() (l1a, l1m, l2a, l2m, l3a, l3m uint64) {
	l1a, l1m = m.l1.Stats()
	l2a, l2m = m.l2.Stats()
	l3a, l3m = m.l3.Stats()
	return
}

// TLBStats exposes TLB accesses, first-level misses and walks.
func (m *Machine) TLBStats() (accesses, l1Misses, walks uint64) {
	return m.tlb.Stats()
}

// BranchStats exposes branch predictions and mispredictions.
func (m *Machine) BranchStats() (predicts, mispredicts uint64) {
	return m.bp.Stats()
}
