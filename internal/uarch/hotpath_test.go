package uarch

import (
	"sync"
	"testing"

	"perspector/internal/rng"
)

// TestSetIndexMatchesModulo pins the division-free set selection against
// the modulo it replaces, across every geometry the simulator configures
// (including the non-power-of-two 12288-set L3 and the TLB levels that
// reuse Cache with one-byte lines) plus adversarial synthetic shapes.
// Random 64-bit lines routinely push the odd-factor quotient past 2^32,
// so both the Lemire reduction and its wide fallback are exercised.
func TestSetIndexMatchesModulo(t *testing.T) {
	mc := DefaultMachineConfig()
	cfgs := []CacheConfig{
		mc.L1, // 64 sets
		mc.L2, // 512 sets
		mc.L3, // 12288 sets = 3 << 12
		{Name: "dTLB-L1", SizeB: mc.TLB.L1Entries, LineB: 1, Ways: mc.TLB.L1Ways},
		{Name: "dTLB-L2", SizeB: mc.TLB.L2Entries, LineB: 1, Ways: mc.TLB.L2Ways},
		{Name: "odd-80", SizeB: 80 * 64 * 2, LineB: 64, Ways: 2}, // 80 = 5 << 4
		{Name: "odd-48", SizeB: 48 * 64 * 4, LineB: 64, Ways: 4}, // 48 = 3 << 4
		{Name: "prime-7", SizeB: 7 * 64, LineB: 64, Ways: 1},     // odd with shift 0
		{Name: "one-set", SizeB: 64 * 16, LineB: 64, Ways: 16},   // degenerate single set
	}
	src := rng.New(0x5e71dece)
	for _, cfg := range cfgs {
		c, err := NewCache(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for i := 0; i < 200_000; i++ {
			line := src.Uint64()
			switch i % 4 {
			case 1:
				line >>= 6 // typical line-number magnitude
			case 2:
				line &= 1<<20 - 1 // small working set
			case 3:
				line |= 1 << 63 // force the wide-quotient fallback
			}
			if got, want := c.setIndex(line), line%c.numSets; got != want {
				t.Fatalf("%s: setIndex(%#x) = %d, want %d (sets=%d)",
					cfg.Name, line, got, want, c.numSets)
			}
		}
	}
}

func TestCacheRejectsTooManyWays(t *testing.T) {
	_, err := NewCache(CacheConfig{Name: "wide", SizeB: 17 * 64, LineB: 64, Ways: 17})
	if err == nil {
		t.Fatal("17-way cache accepted; packed-LRU order word only holds 16 ways")
	}
}

func TestPageBitmap(t *testing.T) {
	var b pageBitmap
	b.init()
	pages := []uint64{0, 1, 63, 64, 1 << pageChunkBits, 1 << 40, 1<<52 - 1}
	for _, p := range pages {
		if b.testAndSet(p) {
			t.Fatalf("page %#x reported touched before first touch", p)
		}
		if !b.testAndSet(p) {
			t.Fatalf("page %#x not remembered after touch", p)
		}
	}
	// Neighbours of touched pages stay untouched.
	if b.testAndSet(2) {
		t.Fatal("untouched neighbour page reported touched")
	}
	b.reset()
	for _, p := range pages {
		if b.testAndSet(p) {
			t.Fatalf("page %#x survived reset", p)
		}
	}
}

// TestPoolReuseIsDeterministic checks the pooling contract: a machine
// dirtied by one workload and recycled through the pool measures exactly
// like a freshly built one.
func TestPoolReuseIsDeterministic(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.SampleInterval = 500

	fresh, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(newStrideProg(5000), 5000)
	if err != nil {
		t.Fatal(err)
	}

	var pool MachinePool
	dirty, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dirty.Run(newStrideProg(3000), 3000); err != nil {
		t.Fatal(err)
	}
	pool.Put(dirty)

	recycled, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if recycled != dirty {
		t.Fatal("pool did not hand back the recycled machine")
	}
	got, err := recycled.Run(newStrideProg(5000), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Totals != want.Totals {
		t.Fatalf("recycled machine diverges from fresh:\nfresh:    %v\nrecycled: %v", want.Totals, got.Totals)
	}
}

// TestPoolConcurrentGetPut hammers the pool from many goroutines; run
// under -race this doubles as the pool's synchronization test.
func TestPoolConcurrentGetPut(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.L3.SizeB = 64 << 10 // keep per-machine state small for the test
	var pool MachinePool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m, err := pool.Get(cfg)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Run(newStrideProg(200), 200); err != nil {
					t.Error(err)
					return
				}
				pool.Put(m)
			}
		}()
	}
	wg.Wait()
}

// strideProg is a minimal deterministic program for machine-level tests
// and benchmarks: a fixed repeating kind pattern with striding loads and
// alternating branches, no RNG in the emission path.
type strideProg struct {
	n, limit uint64
}

func newStrideProg(limit uint64) *strideProg { return &strideProg{limit: limit} }

func (p *strideProg) Name() string { return "stride" }

func (p *strideProg) Next(in *Instr) bool {
	if p.n >= p.limit {
		return false
	}
	i := p.n
	p.n++
	switch i % 8 {
	case 0, 3:
		*in = Instr{Kind: Load, Addr: i * 24}
	case 5:
		*in = Instr{Kind: Store, Addr: i * 40}
	case 6:
		*in = Instr{Kind: Branch, PC: 0x400000 + i%32*4, Taken: i%3 != 0}
	default:
		*in = Instr{Kind: ALU}
	}
	return true
}

func (p *strideProg) Reset() { p.n = 0 }

// BenchmarkMachineStep measures the per-instruction cost of the machine's
// execution loop itself — dispatch, cache/TLB lookups, PMU accounting —
// with a deterministic generator whose own cost is a few ALU operations.
// Reported together with BenchmarkCacheAccess and BenchmarkTLBTranslate
// in BENCH_simulator.json to localize regressions below the suite level.
func BenchmarkMachineStep(b *testing.B) {
	cfg := DefaultMachineConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(b.N)
	b.ResetTimer()
	if _, err := m.Run(newStrideProg(n), n); err != nil {
		b.Fatal(err)
	}
}
