package uarch

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

// scriptProgram replays a fixed instruction slice.
type scriptProgram struct {
	name   string
	instrs []Instr
	pos    int
}

func (p *scriptProgram) Name() string { return p.name }
func (p *scriptProgram) Reset()       { p.pos = 0 }
func (p *scriptProgram) Next(in *Instr) bool {
	if p.pos >= len(p.instrs) {
		return false
	}
	*in = p.instrs[p.pos]
	p.pos++
	return true
}

func newTestMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine(DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineALUOnly(t *testing.T) {
	m := newTestMachine(t)
	prog := &scriptProgram{name: "alu", instrs: make([]Instr, 100)}
	meas, err := m.Run(prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Workload != "alu" {
		t.Fatalf("workload name %q", meas.Workload)
	}
	if got := meas.Totals.Get(perf.CPUCycles); got != 100 {
		t.Fatalf("ALU-only cycles = %d, want 100 (CPI 1)", got)
	}
	for _, c := range []perf.Counter{perf.DTLBLoads, perf.LLCLoads, perf.BranchInstructions, perf.PageFaults} {
		if meas.Totals.Get(c) != 0 {
			t.Fatalf("ALU-only program counted %v = %d", c, meas.Totals.Get(c))
		}
	}
}

func TestMachineMaxInstrTruncates(t *testing.T) {
	m := newTestMachine(t)
	prog := &scriptProgram{name: "alu", instrs: make([]Instr, 100)}
	meas, err := m.Run(prog, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := meas.Totals.Get(perf.CPUCycles); got != 40 {
		t.Fatalf("truncated run cycles = %d, want 40", got)
	}
}

func TestMachineRunZeroInstr(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.Run(&scriptProgram{}, 0); err == nil {
		t.Fatal("maxInstr=0 accepted")
	}
}

func TestMachineLoadCounts(t *testing.T) {
	m := newTestMachine(t)
	// Two loads to the same address: one cold miss chain, one L1 hit.
	prog := &scriptProgram{name: "ld", instrs: []Instr{
		{Kind: Load, Addr: 0x10000},
		{Kind: Load, Addr: 0x10000},
	}}
	meas, err := m.Run(prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	tot := &meas.Totals
	if tot.Get(perf.DTLBLoads) != 2 {
		t.Fatalf("dTLB-loads = %d", tot.Get(perf.DTLBLoads))
	}
	if tot.Get(perf.DTLBLoadMisses) != 1 {
		t.Fatalf("dTLB-load-misses = %d", tot.Get(perf.DTLBLoadMisses))
	}
	if tot.Get(perf.LLCLoads) != 1 || tot.Get(perf.LLCLoadMisses) != 1 {
		t.Fatalf("LLC loads/misses = %d/%d, want 1/1",
			tot.Get(perf.LLCLoads), tot.Get(perf.LLCLoadMisses))
	}
	if tot.Get(perf.PageFaults) != 1 {
		t.Fatalf("page faults = %d (first touch)", tot.Get(perf.PageFaults))
	}
	if tot.Get(perf.DTLBWalkPending) == 0 {
		t.Fatal("no walk cycles recorded")
	}
	if tot.Get(perf.StallsMemAny) == 0 {
		t.Fatal("no memory stalls recorded for a DRAM miss")
	}
}

func TestMachineStoreCounts(t *testing.T) {
	m := newTestMachine(t)
	prog := &scriptProgram{name: "st", instrs: []Instr{
		{Kind: Store, Addr: 0x20000},
	}}
	meas, err := m.Run(prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Totals.Get(perf.DTLBStores) != 1 || meas.Totals.Get(perf.DTLBStoreMisses) != 1 {
		t.Fatal("store TLB counts wrong")
	}
	if meas.Totals.Get(perf.LLCStores) != 1 || meas.Totals.Get(perf.LLCStoreMisses) != 1 {
		t.Fatal("store LLC counts wrong")
	}
	if meas.Totals.Get(perf.DTLBLoads) != 0 {
		t.Fatal("store counted as load")
	}
}

func TestMachineBranchCounts(t *testing.T) {
	m := newTestMachine(t)
	instrs := make([]Instr, 2000)
	for i := range instrs {
		instrs[i] = Instr{Kind: Branch, PC: 0x400000, Taken: true}
	}
	meas, err := m.Run(&scriptProgram{name: "br", instrs: instrs}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Totals.Get(perf.BranchInstructions) != 2000 {
		t.Fatalf("branches = %d", meas.Totals.Get(perf.BranchInstructions))
	}
	// Always-taken: only warmup misses.
	if meas.Totals.Get(perf.BranchMisses) > 5 {
		t.Fatalf("always-taken misses = %d", meas.Totals.Get(perf.BranchMisses))
	}
}

func TestMachineSyscallAndFault(t *testing.T) {
	m := newTestMachine(t)
	meas, err := m.Run(&scriptProgram{name: "sys", instrs: []Instr{
		{Kind: Syscall},
		{Kind: Syscall, Fault: true},
	}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Totals.Get(perf.PageFaults) != 1 {
		t.Fatalf("syscall faults = %d", meas.Totals.Get(perf.PageFaults))
	}
	cfg := DefaultMachineConfig()
	wantMin := uint64(2 + 2*cfg.SyscallCycles + cfg.MinorFaultCycles)
	if got := meas.Totals.Get(perf.CPUCycles); got != wantMin {
		t.Fatalf("syscall cycles = %d, want %d", got, wantMin)
	}
}

func TestMachineSampling(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.SampleInterval = 10
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instrs := make([]Instr, 100)
	for i := range instrs {
		instrs[i] = Instr{Kind: Load, Addr: uint64(i) * 64}
	}
	meas, err := m.Run(&scriptProgram{name: "s", instrs: instrs}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Series.Len() != 10 {
		t.Fatalf("samples = %d, want 10", meas.Series.Len())
	}
	// Sum of deltas equals the total for every counter.
	for c := perf.Counter(0); c < perf.NumCounters; c++ {
		sum := 0.0
		for _, v := range meas.Series.Series(c) {
			sum += v
		}
		if uint64(sum) != meas.Totals.Get(c) {
			t.Fatalf("%v: series sum %v != total %d", c, sum, meas.Totals.Get(c))
		}
	}
}

func TestMachineSamplingDisabled(t *testing.T) {
	m := newTestMachine(t) // SampleInterval = 0
	meas, err := m.Run(&scriptProgram{name: "n", instrs: make([]Instr, 50)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Series.Len() != 0 {
		t.Fatal("sampling ran despite interval 0")
	}
}

func TestMachineDeterminism(t *testing.T) {
	mkProg := func() *scriptProgram {
		src := rng.New(55)
		instrs := make([]Instr, 5000)
		for i := range instrs {
			switch src.Intn(4) {
			case 0:
				instrs[i] = Instr{Kind: ALU}
			case 1:
				instrs[i] = Instr{Kind: Load, Addr: uint64(src.Intn(1 << 24))}
			case 2:
				instrs[i] = Instr{Kind: Store, Addr: uint64(src.Intn(1 << 24))}
			case 3:
				instrs[i] = Instr{Kind: Branch, PC: uint64(src.Intn(256)), Taken: src.Bool(0.6)}
			}
		}
		return &scriptProgram{name: "d", instrs: instrs}
	}
	m1 := newTestMachine(t)
	m2 := newTestMachine(t)
	a, err := m1.Run(mkProg(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.Run(mkProg(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals != b.Totals {
		t.Fatalf("non-deterministic totals:\n%v\n%v", a.Totals, b.Totals)
	}
}

func TestMachineReset(t *testing.T) {
	m := newTestMachine(t)
	prog := &scriptProgram{name: "r", instrs: []Instr{{Kind: Load, Addr: 0x1000}}}
	first, err := m.Run(prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	prog.Reset()
	second, err := m.Run(prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	if first.Totals != second.Totals {
		t.Fatal("Reset did not restore cold state")
	}
}

func TestMachineCacheLocalityVisible(t *testing.T) {
	// A small hot loop (fits L1) vs a large sweep (misses everywhere) must
	// differ strongly in stalls and LLC events — the signal the suites rely on.
	mkLoop := func(ws int, n int) *scriptProgram {
		instrs := make([]Instr, n)
		for i := range instrs {
			instrs[i] = Instr{Kind: Load, Addr: uint64((i * 64) % ws)}
		}
		return &scriptProgram{name: "loop", instrs: instrs}
	}
	hot := newTestMachine(t)
	hotMeas, err := hot.Run(mkLoop(16<<10, 20000), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cold := newTestMachine(t)
	coldMeas, err := cold.Run(mkLoop(64<<20, 20000), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if hotMeas.Totals.Get(perf.LLCLoadMisses)*10 >= coldMeas.Totals.Get(perf.LLCLoadMisses) {
		t.Fatalf("LLC misses: hot %d vs cold %d — locality invisible",
			hotMeas.Totals.Get(perf.LLCLoadMisses), coldMeas.Totals.Get(perf.LLCLoadMisses))
	}
	if hotMeas.Totals.Get(perf.CPUCycles) >= coldMeas.Totals.Get(perf.CPUCycles) {
		t.Fatal("hot loop not faster than cold sweep")
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	mkSweep := func(n int) *scriptProgram {
		instrs := make([]Instr, n)
		for i := range instrs {
			instrs[i] = Instr{Kind: Load, Addr: uint64(i) * 64} // fresh line each access
		}
		return &scriptProgram{name: "sweep", instrs: instrs}
	}
	run := func(prefetch bool, prog *scriptProgram) *perf.Measurement {
		cfg := DefaultMachineConfig()
		cfg.NextLinePrefetch = prefetch
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := m.Run(prog, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return meas
	}
	const n = 50000
	off := run(false, mkSweep(n))
	on := run(true, mkSweep(n))
	// A pure stream with next-line prefetching hits L2 on every other
	// line: LLC loads should drop to ~half.
	offLLC := off.Totals.Get(perf.LLCLoads)
	onLLC := on.Totals.Get(perf.LLCLoads)
	if onLLC*3 > offLLC*2 {
		t.Fatalf("prefetcher barely helped: LLC loads %d -> %d", offLLC, onLLC)
	}
	if on.Totals.Get(perf.CPUCycles) >= off.Totals.Get(perf.CPUCycles) {
		t.Fatal("prefetcher did not speed up the sweep")
	}

	// Random traffic must be essentially unaffected.
	mkRand := func() *scriptProgram {
		src := rng.New(3)
		instrs := make([]Instr, n)
		for i := range instrs {
			instrs[i] = Instr{Kind: Load, Addr: uint64(src.Intn(1<<28)) &^ 63}
		}
		return &scriptProgram{name: "rand", instrs: instrs}
	}
	offR := run(false, mkRand())
	onR := run(true, mkRand())
	offMiss := offR.Totals.Get(perf.LLCLoadMisses)
	onMiss := onR.Totals.Get(perf.LLCLoadMisses)
	lo, hi := offMiss, onMiss
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 1.05*float64(lo) {
		t.Fatalf("prefetcher changed random misses too much: %d vs %d", offMiss, onMiss)
	}
}

func TestMachineStatsAccessors(t *testing.T) {
	m := newTestMachine(t)
	prog := &scriptProgram{name: "s", instrs: []Instr{
		{Kind: Load, Addr: 0x1000},
		{Kind: Load, Addr: 0x1000},
		{Kind: Branch, PC: 1, Taken: true},
	}}
	if _, err := m.Run(prog, 10); err != nil {
		t.Fatal(err)
	}
	l1a, l1m, l2a, l2m, l3a, l3m := m.CacheStats()
	if l1a != 2 || l1m != 1 {
		t.Fatalf("L1 stats %d/%d", l1a, l1m)
	}
	if l2a != 1 || l2m != 1 || l3a != 1 || l3m != 1 {
		t.Fatalf("L2/L3 stats %d/%d %d/%d", l2a, l2m, l3a, l3m)
	}
	acc, miss, walks := m.TLBStats()
	if acc != 2 || miss != 1 || walks != 1 {
		t.Fatalf("TLB stats %d/%d/%d", acc, miss, walks)
	}
	pred, mis := m.BranchStats()
	if pred != 1 || mis > 1 {
		t.Fatalf("branch stats %d/%d", pred, mis)
	}
}

func TestOSNoiseAccounting(t *testing.T) {
	// With sampling on, an ALU-only program still accumulates background
	// kernel events; with OSNoiseFrac = 0 (or sampling off) it does not.
	mkProg := func() *scriptProgram {
		// Long enough that even the slowest noise rates (LLC misses at
		// 0.02 per kernel instruction × 5 kernel instructions per sample)
		// accumulate to whole events.
		return &scriptProgram{name: "alu", instrs: make([]Instr, 100000)}
	}
	run := func(noise float64, interval uint64) *perf.Measurement {
		cfg := DefaultMachineConfig()
		cfg.OSNoiseFrac = noise
		cfg.SampleInterval = interval
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := m.Run(mkProg(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return meas
	}
	noisy := run(0.005, 1000)
	if noisy.Totals.Get(perf.LLCLoadMisses) == 0 {
		t.Fatal("OS noise produced no LLC misses")
	}
	if noisy.Totals.Get(perf.DTLBLoads) == 0 {
		t.Fatal("OS noise produced no TLB loads")
	}
	// Noise misses must stay below noise accesses.
	if noisy.Totals.Get(perf.LLCLoadMisses) > noisy.Totals.Get(perf.DTLBLoads) {
		t.Fatal("noise profile violates miss <= access")
	}
	clean := run(0, 1000)
	for _, c := range []perf.Counter{perf.LLCLoadMisses, perf.DTLBLoads, perf.PageFaults} {
		if clean.Totals.Get(c) != 0 {
			t.Fatalf("noise disabled but %v = %d", c, clean.Totals.Get(c))
		}
	}
	unsampled := run(0.005, 0)
	if unsampled.Totals.Get(perf.DTLBLoads) != 0 {
		t.Fatal("noise charged without sampling")
	}
	// The noise trickle scales with the noise fraction.
	big := run(0.05, 1000)
	if big.Totals.Get(perf.DTLBLoads) < 5*noisy.Totals.Get(perf.DTLBLoads) {
		t.Fatalf("10x noise fraction gave %d vs %d loads",
			big.Totals.Get(perf.DTLBLoads), noisy.Totals.Get(perf.DTLBLoads))
	}
}

func TestHugePagesCollapseTLBMisses(t *testing.T) {
	// The Table-II system disables transparent huge pages; the model can
	// explore the alternative: with 2 MiB pages the dTLB reach explodes
	// and the walk counters collapse for page-thrashing workloads.
	mkChase := func() *scriptProgram {
		src := rng.New(4)
		instrs := make([]Instr, 40000)
		for i := range instrs {
			// 64 MiB random working set: 16k 4-KiB pages, far beyond the
			// TLB, but only 32 2-MiB pages.
			instrs[i] = Instr{Kind: Load, Addr: uint64(src.Intn(64<<20)) &^ 63}
		}
		return &scriptProgram{name: "chase", instrs: instrs}
	}
	run := func(pageB int) *perf.Measurement {
		cfg := DefaultMachineConfig()
		cfg.TLB.PageB = pageB
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := m.Run(mkChase(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return meas
	}
	small := run(4096)
	huge := run(2 << 20)
	if huge.Totals.Get(perf.DTLBLoadMisses)*20 > small.Totals.Get(perf.DTLBLoadMisses) {
		t.Fatalf("huge pages barely helped TLB: %d -> %d",
			small.Totals.Get(perf.DTLBLoadMisses), huge.Totals.Get(perf.DTLBLoadMisses))
	}
	if huge.Totals.Get(perf.PageFaults) >= small.Totals.Get(perf.PageFaults) {
		t.Fatal("huge pages did not reduce first-touch faults")
	}
	// Cache behaviour is untouched by the page size.
	if huge.Totals.Get(perf.LLCLoads) != small.Totals.Get(perf.LLCLoads) {
		t.Fatalf("page size changed LLC loads: %d vs %d",
			small.Totals.Get(perf.LLCLoads), huge.Totals.Get(perf.LLCLoads))
	}
}

func BenchmarkMachineRun(b *testing.B) {
	src := rng.New(9)
	instrs := make([]Instr, 100000)
	for i := range instrs {
		switch src.Intn(10) {
		case 0, 1, 2:
			instrs[i] = Instr{Kind: Load, Addr: uint64(src.Intn(1 << 26))}
		case 3:
			instrs[i] = Instr{Kind: Store, Addr: uint64(src.Intn(1 << 26))}
		case 4, 5:
			instrs[i] = Instr{Kind: Branch, PC: uint64(src.Intn(1024)), Taken: src.Bool(0.7)}
		default:
			instrs[i] = Instr{Kind: ALU}
		}
	}
	prog := &scriptProgram{name: "bench", instrs: instrs}
	m, err := NewMachine(DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Reset()
		m.Reset()
		if _, err := m.Run(prog, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(instrs)))
}
