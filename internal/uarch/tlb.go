package uarch

import "fmt"

// TLB is a two-level data TLB. The first level is small and fully modelled
// with set-associative LRU; the second level backs it. A miss in both
// levels triggers a page walk whose cycle cost the caller charges via the
// WalkCycles config.
type TLB struct {
	l1, l2   *Cache
	pageBits uint
	// lastPageP1 is the most recently translated page + 1 (0 = none): the
	// TLB-level repeat memo. After any translation the page is resident
	// and MRU in the first level, so a repeat is a guaranteed hit with a
	// no-op promote. Keeping the memo on the TLB itself (rather than
	// reaching through l1) holds Translate inside the inlining budget.
	lastPageP1 uint64
	// Lifetime statistics.
	accesses uint64
	l1Misses uint64
	walks    uint64
}

// TLBConfig describes the two TLB levels in entries (not bytes).
type TLBConfig struct {
	L1Entries int
	L1Ways    int
	L2Entries int
	L2Ways    int
	PageB     int // page size in bytes (power of two)
	// WalkCycles is the cycle cost of a full page-table walk.
	WalkCycles int
	// L2HitCycles is the extra latency of an L1-miss/L2-hit lookup.
	L2HitCycles int
}

// DefaultTLBConfig mirrors a Skylake-class dTLB: 64-entry 4-way L1,
// 1536-entry 12-way STLB, 4 KiB pages, ~30-cycle walks.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{
		L1Entries: 64, L1Ways: 4,
		L2Entries: 1536, L2Ways: 12,
		PageB:      4096,
		WalkCycles: 30, L2HitCycles: 7,
	}
}

// NewTLB builds a TLB; the page size must be a power of two and entry
// counts must divide into whole sets, like caches.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	pageBits, err := exactLog2(uint64(cfg.PageB))
	if err != nil {
		return nil, fmt.Errorf("uarch: page size: %w", err)
	}
	// Reuse Cache with "line size" = 1 so the page number itself indexes.
	l1, err := NewCache(CacheConfig{Name: "dTLB-L1", SizeB: cfg.L1Entries, LineB: 1, Ways: cfg.L1Ways})
	if err != nil {
		return nil, fmt.Errorf("uarch: TLB L1: %w", err)
	}
	l2, err := NewCache(CacheConfig{Name: "dTLB-L2", SizeB: cfg.L2Entries, LineB: 1, Ways: cfg.L2Ways})
	if err != nil {
		return nil, fmt.Errorf("uarch: TLB L2: %w", err)
	}
	return &TLB{l1: l1, l2: l2, pageBits: pageBits}, nil
}

// TLBResult describes one translation.
type TLBResult struct {
	// L1Miss is true when the first level missed (the dTLB-load/store-miss
	// events of Table IV).
	L1Miss bool
	// Walked is true when both levels missed and a page walk ran.
	Walked bool
}

// Translate looks up the page of addr, filling both levels on miss. The
// body is only the first level's repeat-page memo — consecutive accesses
// inside one page are the common case, and keeping just that test here
// lets Translate inline at every call site — with translateSlow carrying
// the two-level probe.
func (t *TLB) Translate(addr uint64) TLBResult {
	if addr>>t.pageBits+1 == t.lastPageP1 {
		t.accesses++
		return TLBResult{}
	}
	return t.translateSlow(addr >> t.pageBits)
}

// translateSlow probes both TLB levels for page (already known to miss
// the repeat memo), filling them on miss. The first level's own memo is
// skipped — it tracks the same page as lastPageP1 — so the probe goes
// straight to accessSlow. The inner caches' access counters are purely
// internal (TLB.Stats reports the TLB's own counters), so the memo path
// not incrementing them is unobservable.
func (t *TLB) translateSlow(page uint64) TLBResult {
	t.accesses++
	t.lastPageP1 = page + 1
	if t.l1.accessSlow(page) {
		return TLBResult{}
	}
	t.l1Misses++
	if t.l2.Access(page) {
		return TLBResult{L1Miss: true}
	}
	t.walks++
	return TLBResult{L1Miss: true, Walked: true}
}

// Stats returns lifetime access, L1-miss and walk counts.
func (t *TLB) Stats() (accesses, l1Misses, walks uint64) {
	return t.accesses, t.l1Misses, t.walks
}

// Reset clears entries and statistics.
func (t *TLB) Reset() {
	t.l1.Reset()
	t.l2.Reset()
	t.lastPageP1 = 0
	t.accesses, t.l1Misses, t.walks = 0, 0, 0
}
