package uarch

import (
	"runtime"
	"sync"
)

// machineKey is the structural part of a MachineConfig: the fields that
// size allocations (cache/TLB geometry, predictor tables). Machines are
// reusable across configs that share a key — latencies, sampling and
// prefetch settings are plain values overwritten on Get.
type machineKey struct {
	L1, L2, L3                         CacheConfig
	TLB                                TLBConfig
	BranchTableBits, BranchHistoryBits uint
}

func keyOf(cfg MachineConfig) machineKey {
	return machineKey{
		L1: cfg.L1, L2: cfg.L2, L3: cfg.L3, TLB: cfg.TLB,
		BranchTableBits: cfg.BranchTableBits, BranchHistoryBits: cfg.BranchHistoryBits,
	}
}

// MachinePool recycles Machines between workload runs. A Table-II machine
// owns ~3 MiB of L3 tag/LRU state plus TLB and predictor tables; suite
// measurement and perspectord jobs build one per workload, so without
// reuse a busy daemon reallocates (and re-faults) those arrays thousands
// of times. Get returns a reset machine whose structural geometry matches
// cfg, building one only when the pool is empty.
//
// Unlike sync.Pool, entries survive GC cycles and the pool is bounded:
// at most GOMAXPROCS machines are retained per structural key, matching
// the maximum simulator parallelism of the worker pool above it.
type MachinePool struct {
	mu   sync.Mutex
	idle map[machineKey][]*Machine
}

// DefaultMachinePool is the process-wide pool used by suite measurement.
var DefaultMachinePool MachinePool

// Reconfigure rewrites the machine's non-structural configuration
// (latencies, sampling, prefetch) and resets it to power-on state —
// exactly what Get does to a pooled machine — and reports whether it
// could: a cfg with different structural geometry (cache/TLB sizing,
// predictor tables) needs a different machine and leaves this one
// untouched. Suite workers use it to keep one machine across the
// workloads they shard, bypassing the pool lock between items.
func (m *Machine) Reconfigure(cfg MachineConfig) bool {
	if keyOf(cfg) != keyOf(m.cfg) {
		return false
	}
	m.cfg = cfg
	m.Reset()
	return true
}

// Get returns a machine configured as cfg: a pooled one reset and
// rewritten with cfg's non-structural fields when available, a freshly
// built one otherwise.
func (p *MachinePool) Get(cfg MachineConfig) (*Machine, error) {
	key := keyOf(cfg)
	p.mu.Lock()
	if ms := p.idle[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		p.idle[key] = ms[:len(ms)-1]
		p.mu.Unlock()
		m.cfg = cfg
		m.Reset()
		return m, nil
	}
	p.mu.Unlock()
	return NewMachine(cfg)
}

// Put returns a machine to the pool. Machines beyond the per-key bound
// are dropped for the GC. Put(nil) is a no-op so callers can defer it
// unconditionally.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	key := keyOf(m.cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle == nil {
		p.idle = make(map[machineKey][]*Machine)
	}
	if len(p.idle[key]) >= runtime.GOMAXPROCS(0) {
		return
	}
	p.idle[key] = append(p.idle[key], m)
}
