// Package uarch is the hardware substrate of the reproduction: an
// instruction-level microarchitecture simulator that stands in for the
// paper's Xeon E-2186G + perf setup (Table II / Table IV). It models a
// three-level set-associative cache hierarchy, a two-level data TLB with a
// page-walk cost model, a gshare branch predictor, an OS page-fault model,
// and an in-order core with cycle accounting, all feeding a PMU that
// exposes exactly the Table-IV events as totals and sampled time series.
package uarch

import (
	"fmt"
	"math/bits"
)

// maxCacheWays bounds associativity: the per-set record packs the recency
// order as 4-bit way indices into one 64-bit word, so at most 16 ways fit.
// Every modelled structure (Table-II caches, Skylake dTLB) is ≤ 16-way.
const maxCacheWays = 16

// Set storage is one flat []uint64 with a ways+2-word record per set:
//
//	word 0        packed LRU recency order (4-bit way indices,
//	              nibble 0 = MRU, nibble ways−1 = LRU)
//	word 1        per-way valid bits
//	words 2..     one full line-number tag per way
//
// Fusing the three into one contiguous record keeps a lookup inside a
// couple of host cache lines instead of touching three separate slices,
// and sizing the record by the actual associativity (rather than a
// fixed maxCacheWays array) halves the footprint of 8-way levels — the
// difference between a simulated L2's tag state thrashing the host L1
// and living in it.
const setHeaderWords = 2

// Cache is a set-associative cache with true-LRU replacement. Only tag
// state is modelled — Perspector needs hit/miss behaviour, not data.
// Set selection is line-number modulo set-count, which admits
// non-power-of-two set counts (e.g. the 12 MiB L3 of Table II has 12288
// sets); the modulo itself is computed division-free (see setIndex).
type Cache struct {
	name     string
	lineBits uint
	ways     int
	numSets  uint64
	stride   uint64 // ways + setHeaderWords, words per set record
	data     []uint64

	// Division-free set selection: numSets = odd << setShift, so
	// line % numSets = ((line>>setShift) % odd) << setShift | line&lowMask.
	// The odd-factor modulo uses a precomputed Lemire reciprocal.
	setShift uint
	lowMask  uint64
	odd      uint64
	oddRecip uint64 // ceil(2^64 / odd), valid when odd > 1

	initOrder uint64
	orderMask uint64 // low 4*ways bits of the order word

	// Repeat memo: the most recently accessed line. After any access —
	// hit or miss — that line is resident and MRU in its set, so an
	// immediately repeated access is a hit whose LRU promote is a no-op;
	// only the access counter needs to move. Page-level structures (the
	// TLB reuses Cache with 1-byte lines) repeat for every consecutive
	// access inside a page, making this the common case for local
	// workloads. haveLast guards the first access (0 is a valid line).
	lastLine uint64
	haveLast bool

	accesses uint64
	misses   uint64
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeB    int // total capacity in bytes
	LineB    int // line size in bytes (power of two)
	Ways     int // associativity
	LatencyC int // hit latency in cycles
}

// exactLog2 returns log2(v) for exact powers of two and an error
// otherwise. The previous silent-flooring log2 let a 48-byte line size
// slip through construction with corrupted indexing; geometry is now
// rejected up front.
func exactLog2(v uint64) (uint, error) {
	if v == 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("%d is not a power of two", v)
	}
	return uint(bits.TrailingZeros64(v)), nil
}

// NewCache builds a cache from a config. The line size must be a power of
// two; the set count may be any positive integer (the Table-II L3 has
// 12288 sets).
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeB <= 0 || cfg.LineB <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("uarch: cache %q has non-positive geometry", cfg.Name)
	}
	lineBits, err := exactLog2(uint64(cfg.LineB))
	if err != nil {
		return nil, fmt.Errorf("uarch: cache %q line size: %w", cfg.Name, err)
	}
	if cfg.Ways > maxCacheWays {
		return nil, fmt.Errorf("uarch: cache %q associativity %d exceeds %d-way packed-LRU limit", cfg.Name, cfg.Ways, maxCacheWays)
	}
	if cfg.SizeB%(cfg.LineB*cfg.Ways) != 0 {
		return nil, fmt.Errorf("uarch: cache %q size %d not divisible by line*ways", cfg.Name, cfg.SizeB)
	}
	sets := uint64(cfg.SizeB / (cfg.LineB * cfg.Ways))
	c := &Cache{
		name:     cfg.Name,
		lineBits: lineBits,
		ways:     cfg.Ways,
		numSets:  sets,
		stride:   uint64(cfg.Ways) + setHeaderWords,
	}
	c.data = make([]uint64, sets*c.stride)
	// Shift counts ≥ 64 yield 0 in Go, so 16 ways mask to the full word.
	c.orderMask = uint64(1)<<(4*uint(cfg.Ways)) - 1
	c.setShift = uint(bits.TrailingZeros64(sets))
	c.lowMask = uint64(1)<<c.setShift - 1
	c.odd = sets >> c.setShift
	if c.odd > 1 {
		// floor(2^64/odd)+1; ^uint64(0)/odd == floor(2^64/odd) because an
		// odd divisor > 1 never divides 2^64 exactly.
		c.oddRecip = ^uint64(0)/c.odd + 1
	}
	for w := 0; w < cfg.Ways; w++ {
		c.initOrder |= uint64(w) << (4 * uint(w))
	}
	c.Reset()
	return c, nil
}

// setIndex computes line % numSets without a division on the hot path.
// With numSets = odd << setShift the identity
//
//	line % (odd<<k) = ((line>>k) % odd) << k | line & (1<<k − 1)
//
// reduces the problem to a modulo by the odd factor, which is computed
// with the Lemire–Kaser precomputed-reciprocal reduction (exact for
// operands below 2^32; larger quotients — unreachable for any realistic
// address — fall back to the hardware divide).
func (c *Cache) setIndex(line uint64) uint64 {
	low := line & c.lowMask
	if c.odd == 1 {
		return low
	}
	q := line >> c.setShift
	var r uint64
	if q < 1<<32 {
		r, _ = bits.Mul64(c.oddRecip*q, c.odd)
	} else {
		r = q % c.odd
	}
	return r<<c.setShift | low
}

// Access looks up addr, updating LRU state, and on a miss installs the
// line. It returns true on a hit.
//
// Ways fill in index order and are never invalidated individually, so the
// valid mask is always a dense prefix: its popcount doubles as the fill
// level, the hit scan needs no per-way valid test, and a not-full install
// always lands in way occ — which sits at recency position occ, because
// unfilled ways keep their initial relative order behind every filled
// way. A full-set miss evicts the LRU way, which is a pure rotate of the
// order word. Misses therefore never scan for a recency position.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineBits
	if line == c.lastLine && c.haveLast {
		return true
	}
	c.lastLine = line
	c.haveLast = true
	s := c.data[c.setIndex(line)*c.stride:]
	occ := uint(bits.TrailingZeros64(^s[1]))
	// Probe in recency order by walking the packed order word: temporal
	// locality lands most hits on the first (MRU) probe, and the walk
	// position doubles as the promote position, so hits never re-scan.
	// Filled ways occupy the first occ positions (unfilled ways keep
	// their initial relative order behind every filled way). (A linear
	// tag scan with a branchless order-word position find measured slower
	// here: it gives up the MRU-first early exit.)
	o := s[0]
	for pos := uint(0); pos < occ; pos++ {
		w := o & 0xF
		if s[setHeaderWords+w] == line {
			splice(&s[0], w, pos)
			return true
		}
		o >>= 4
	}
	c.misses++
	var victim uint64
	if occ < uint(c.ways) {
		victim = uint64(occ)
		s[1] |= 1 << occ
		splice(&s[0], victim, occ)
	} else {
		victim = s[0] >> (4 * uint(c.ways-1)) & 0xF
		s[0] = (s[0]<<4 | victim) & c.orderMask
	}
	s[setHeaderWords+victim] = line
	return false
}

// splice moves the way at nibble position pos of the order word to MRU,
// shifting everything more recent up by one nibble — the constant-word
// equivalent of the old byte-per-way rank increment loop.
func splice(order *uint64, way uint64, pos uint) {
	if pos == 0 {
		return
	}
	o := *order
	shift := 4 * pos
	below := o & (uint64(1)<<shift - 1)
	above := o &^ (uint64(1)<<(shift+4) - 1)
	*order = above | below<<4 | way
}

// Stats returns lifetime access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Reset invalidates all lines and zeroes statistics. Tags need no
// clearing: the valid word gates every probe, and installs overwrite.
func (c *Cache) Reset() {
	for base := uint64(0); base < uint64(len(c.data)); base += c.stride {
		c.data[base] = c.initOrder
		c.data[base+1] = 0
	}
	c.haveLast = false
	c.accesses, c.misses = 0, 0
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
