// Package uarch is the hardware substrate of the reproduction: an
// instruction-level microarchitecture simulator that stands in for the
// paper's Xeon E-2186G + perf setup (Table II / Table IV). It models a
// three-level set-associative cache hierarchy, a two-level data TLB with a
// page-walk cost model, a gshare branch predictor, an OS page-fault model,
// and an in-order core with cycle accounting, all feeding a PMU that
// exposes exactly the Table-IV events as totals and sampled time series.
package uarch

import (
	"fmt"
	"math/bits"
)

// maxCacheWays bounds associativity: the per-set recency order packs
// 4-bit way indices into one 64-bit word, so at most 16 ways fit. Every
// modelled structure (Table-II caches, Skylake dTLB) is ≤ 16-way.
const maxCacheWays = 16

// waysStride is the tag-row stride in words: rows are padded to the full
// nibble range so a 4-bit way index provably stays in bounds (see
// NewCache). The padding is at most 8 words per set.
const waysStride = maxCacheWays

// Cache state is structure-of-arrays, one array per field across sets:
//
//	order[set]          packed LRU recency order (4-bit way indices,
//	                    nibble 0 = MRU, nibble ways−1 = LRU)
//	occ[set]            fill level (ways fill in index order and are never
//	                    invalidated individually, so validity is always a
//	                    dense prefix and one byte carries it)
//	tags[set*16+w]      full line-number tag of way w (rows padded to the
//	                    4-bit nibble range; see waysStride)
//
// The split replaces the former ways+2-word per-set record. Two effects
// pay for it: the hit probe is a linear scan over a contiguous ≤128-byte
// tag row (independent loads the CPU can overlap and unroll, where the
// packed-record walk chained each probe behind a nibble shift of the
// order word), and the per-set metadata the loop actually touches every
// access — order word and fill byte — packs 64 sets per host cache line
// in the occ array instead of being strewn through 144-byte records, so
// scattered L3 traffic stops thrashing the host L1 with tag rows it
// never reads.
type Cache struct {
	name     string
	lineBits uint
	ways     int
	numSets  uint64

	order []uint64 // packed LRU order per set
	occ   []uint8  // dense-prefix fill level per set
	tags  []uint64 // tags[set*ways + way]

	// Division-free set selection: numSets = odd << setShift, so
	// line % numSets = ((line>>setShift) % odd) << setShift | line&lowMask.
	// The odd-factor modulo uses a precomputed Lemire reciprocal.
	setShift uint
	lowMask  uint64
	odd      uint64
	oddRecip uint64 // ceil(2^64 / odd), valid when odd > 1

	initOrder uint64
	orderMask uint64 // low 4*ways bits of the order word

	// Repeat memo: the most recently accessed line, stored as line+1 so
	// the zero value means "none" without a separate guard bool (keeps
	// Access within the inlining budget; a line of ^uint64(0) merely
	// never memo-hits and resolves through the ordinary probe). After
	// any access — hit or miss — that line is resident and MRU in its
	// set, so an immediately repeated access is a hit whose LRU promote
	// is a no-op; only the access counter needs to move. Page-level
	// structures (the TLB reuses Cache with 1-byte lines) repeat for
	// every consecutive access inside a page, making this the common
	// case for local workloads.
	lastLineP1 uint64

	accesses uint64
	misses   uint64
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeB    int // total capacity in bytes
	LineB    int // line size in bytes (power of two)
	Ways     int // associativity
	LatencyC int // hit latency in cycles
}

// exactLog2 returns log2(v) for exact powers of two and an error
// otherwise. The previous silent-flooring log2 let a 48-byte line size
// slip through construction with corrupted indexing; geometry is now
// rejected up front.
func exactLog2(v uint64) (uint, error) {
	if v == 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("%d is not a power of two", v)
	}
	return uint(bits.TrailingZeros64(v)), nil
}

// NewCache builds a cache from a config. The line size must be a power of
// two; the set count may be any positive integer (the Table-II L3 has
// 12288 sets).
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeB <= 0 || cfg.LineB <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("uarch: cache %q has non-positive geometry", cfg.Name)
	}
	lineBits, err := exactLog2(uint64(cfg.LineB))
	if err != nil {
		return nil, fmt.Errorf("uarch: cache %q line size: %w", cfg.Name, err)
	}
	if cfg.Ways > maxCacheWays {
		return nil, fmt.Errorf("uarch: cache %q associativity %d exceeds %d-way packed-LRU limit", cfg.Name, cfg.Ways, maxCacheWays)
	}
	if cfg.SizeB%(cfg.LineB*cfg.Ways) != 0 {
		return nil, fmt.Errorf("uarch: cache %q size %d not divisible by line*ways", cfg.Name, cfg.SizeB)
	}
	sets := uint64(cfg.SizeB / (cfg.LineB * cfg.Ways))
	c := &Cache{
		name:     cfg.Name,
		lineBits: lineBits,
		ways:     cfg.Ways,
		numSets:  sets,
	}
	// order and tags share one backing allocation; occ is its own byte
	// array (64 sets per host line — the densest metadata in the loop).
	// Tag rows are padded to waysStride regardless of associativity: the
	// probe indexes a row with a 4-bit nibble of the order word, and a
	// constant full-nibble row bound is what lets the compiler drop the
	// bounds check from every probe (and the row offset become a shift).
	backing := make([]uint64, sets+sets*waysStride)
	c.order = backing[:sets:sets]
	c.tags = backing[sets:]
	c.occ = make([]uint8, sets)
	// Shift counts ≥ 64 yield 0 in Go, so 16 ways mask to the full word.
	c.orderMask = uint64(1)<<(4*uint(cfg.Ways)) - 1
	c.setShift = uint(bits.TrailingZeros64(sets))
	c.lowMask = uint64(1)<<c.setShift - 1
	c.odd = sets >> c.setShift
	if c.odd > 1 {
		// floor(2^64/odd)+1; ^uint64(0)/odd == floor(2^64/odd) because an
		// odd divisor > 1 never divides 2^64 exactly.
		c.oddRecip = ^uint64(0)/c.odd + 1
	}
	for w := 0; w < cfg.Ways; w++ {
		c.initOrder |= uint64(w) << (4 * uint(w))
	}
	c.Reset()
	return c, nil
}

// setIndex computes line % numSets without a division on the hot path.
// With numSets = odd << setShift the identity
//
//	line % (odd<<k) = ((line>>k) % odd) << k | line & (1<<k − 1)
//
// reduces the problem to a modulo by the odd factor, which is computed
// with the Lemire–Kaser precomputed-reciprocal reduction (exact for
// operands below 2^32; larger quotients — unreachable for any realistic
// address — fall back to the hardware divide).
func (c *Cache) setIndex(line uint64) uint64 {
	low := line & c.lowMask
	if c.odd == 1 {
		return low
	}
	q := line >> c.setShift
	var r uint64
	if q < 1<<32 {
		r, _ = bits.Mul64(c.oddRecip*q, c.odd)
	} else {
		r = q % c.odd
	}
	return r<<c.setShift | low
}

// Access looks up addr, updating LRU state, and on a miss installs the
// line. It returns true on a hit. The body is only the repeat-line memo —
// small enough to inline at every call site, so local workloads resolve
// most lookups without a function call — and accessSlow carries the
// actual probe.
func (c *Cache) Access(addr uint64) bool {
	if addr>>c.lineBits+1 == c.lastLineP1 {
		c.accesses++
		return true
	}
	return c.accessSlow(addr >> c.lineBits)
}

// accessSlow is the non-memo path: probe the set, promote on hit, install
// (evicting LRU when full) on miss.
//
// Ways fill in index order and are never invalidated individually, so the
// fill level occ describes validity completely, and unfilled ways keep
// their initial relative order behind every filled way — the first occ
// nibbles of the order word are exactly the filled ways, most recent
// first. The hit scan walks those nibbles, so temporally local workloads
// hit within the first probe or two and a hit already knows its recency
// position (no separate search before the promote). Unlike the old
// packed-record walk, the probes carry no serial dependency: position
// p's way index is an independent shift of the same order word, so the
// CPU can overlap the tag loads. A not-full install always lands in way
// occ, at recency position occ; a full-set miss evicts the LRU way, a
// pure rotate of the order word. (A fill-order scan over the contiguous
// tag row — with a branch-free SWAR recency lookup on hit — measured
// faster on miss-heavy microbenchmarks but ~20% slower at suite level,
// where near-MRU hits dominate; see EXPERIMENTS.md.)
func (c *Cache) accessSlow(line uint64) bool {
	c.accesses++
	c.lastLineP1 = line + 1
	set := c.setIndex(line)
	base := set * waysStride
	tags := c.tags[base : base+waysStride : base+waysStride]
	o := c.order[set]
	occ := uint(c.occ[set])
	for p := uint(0); p < occ; p++ {
		w := o >> (4 * p) & 0xF
		if tags[w] == line {
			splice(&c.order[set], w, p)
			return true
		}
	}
	c.misses++
	if occ < uint(c.ways) {
		c.occ[set] = uint8(occ + 1)
		tags[occ&0xF] = line
		splice(&c.order[set], uint64(occ), occ)
	} else {
		victim := o >> (4 * uint(c.ways-1)) & 0xF
		c.order[set] = (o<<4 | victim) & c.orderMask
		tags[victim] = line
	}
	return false
}

// splice moves the way at nibble position pos of the order word to MRU,
// shifting everything more recent up by one nibble.
func splice(order *uint64, way uint64, pos uint) {
	if pos == 0 {
		return
	}
	o := *order
	shift := 4 * pos
	below := o & (uint64(1)<<shift - 1)
	above := o &^ (uint64(1)<<(shift+4) - 1)
	*order = above | below<<4 | way
}

// Stats returns lifetime access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Reset invalidates all lines and zeroes statistics. Tags need no
// clearing: the fill level gates every probe, and installs overwrite.
func (c *Cache) Reset() {
	for i := range c.order {
		c.order[i] = c.initOrder
	}
	clear(c.occ)
	c.lastLineP1 = 0
	c.accesses, c.misses = 0, 0
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
