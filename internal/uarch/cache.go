// Package uarch is the hardware substrate of the reproduction: an
// instruction-level microarchitecture simulator that stands in for the
// paper's Xeon E-2186G + perf setup (Table II / Table IV). It models a
// three-level set-associative cache hierarchy, a two-level data TLB with a
// page-walk cost model, a gshare branch predictor, an OS page-fault model,
// and an in-order core with cycle accounting, all feeding a PMU that
// exposes exactly the Table-IV events as totals and sampled time series.
package uarch

import "fmt"

// Cache is a set-associative cache with true-LRU replacement. Only tag
// state is modelled — Perspector needs hit/miss behaviour, not data.
// Set selection is line-number modulo set-count, which admits
// non-power-of-two set counts (e.g. the 12 MiB L3 of Table II has 12288
// sets); tags store the full line number.
type Cache struct {
	name     string
	lineBits uint
	ways     int
	numSets  uint64
	tags     []uint64 // tags[set*ways + way] holds the full line number
	valid    []bool
	lru      []uint8 // recency rank per way: 0 = MRU
	accesses uint64
	misses   uint64
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeB    int // total capacity in bytes
	LineB    int // line size in bytes (power of two)
	Ways     int // associativity
	LatencyC int // hit latency in cycles
}

// NewCache builds a cache from a config. Size, line size and the derived
// set count must be powers of two.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeB <= 0 || cfg.LineB <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("uarch: cache %q has non-positive geometry", cfg.Name)
	}
	if cfg.SizeB%(cfg.LineB*cfg.Ways) != 0 {
		return nil, fmt.Errorf("uarch: cache %q size %d not divisible by line*ways", cfg.Name, cfg.SizeB)
	}
	sets := cfg.SizeB / (cfg.LineB * cfg.Ways)
	if cfg.LineB&(cfg.LineB-1) != 0 {
		return nil, fmt.Errorf("uarch: cache %q needs a power-of-two line size", cfg.Name)
	}
	c := &Cache{
		name:     cfg.Name,
		lineBits: log2(uint64(cfg.LineB)),
		ways:     cfg.Ways,
		numSets:  uint64(sets),
		tags:     make([]uint64, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		lru:      make([]uint8, sets*cfg.Ways),
	}
	if cfg.Ways > 255 {
		return nil, fmt.Errorf("uarch: cache %q associativity %d exceeds LRU rank width", cfg.Name, cfg.Ways)
	}
	c.initLRU()
	return c, nil
}

func log2(v uint64) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Access looks up addr, updating LRU state, and on a miss installs the
// line. It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineBits
	set := line % c.numSets
	tag := line
	base := int(set) * c.ways

	hitWay := -1
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}
	c.misses++
	// Install into the LRU way (highest rank, preferring invalid ways).
	victim := 0
	worst := uint8(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			worst = c.lru[base+w]
			victim = w
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.touch(base, victim)
	return false
}

// touch promotes way to MRU within its set. Ranks form a permutation of
// 0..ways−1 per set (established by initLRU), which the partial increment
// below preserves, so the LRU victim is always unique.
func (c *Cache) touch(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// initLRU seeds each set's recency ranks with the permutation 0..ways−1.
func (c *Cache) initLRU() {
	for s := 0; s < int(c.numSets); s++ {
		for w := 0; w < c.ways; w++ {
			c.lru[s*c.ways+w] = uint8(w)
		}
	}
}

// Stats returns lifetime access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Reset invalidates all lines and zeroes statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.tags[i] = 0
	}
	c.initLRU()
	c.accesses, c.misses = 0, 0
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
