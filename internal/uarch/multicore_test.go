package uarch

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

// mkStreams builds n scripted programs, each sweeping its own region of
// the given working set.
func mkStreamProgs(n int, wsPerCore uint64, instrs int) []Program {
	progs := make([]Program, n)
	for c := 0; c < n; c++ {
		base := uint64(c) << 33
		ins := make([]Instr, instrs)
		for i := range ins {
			ins[i] = Instr{Kind: Load, Addr: base + (uint64(i)*64)%wsPerCore}
		}
		progs[c] = &scriptProgram{name: "core" + string(rune('0'+c)), instrs: ins}
	}
	return progs
}

func TestMultiCoreBasics(t *testing.T) {
	cfg := DefaultMachineConfig()
	mc, err := NewMultiCore(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cores() != 4 {
		t.Fatalf("cores = %d", mc.Cores())
	}
	progs := mkStreamProgs(4, 1<<20, 10000)
	meas, err := mc.RunParallel(progs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// All 40000 loads executed.
	if got := meas.Totals.Get(perf.DTLBLoads); got != 40000 {
		t.Fatalf("aggregate loads = %d, want 40000", got)
	}
	if meas.Totals.Get(perf.CPUCycles) < 40000 {
		t.Fatal("CPI < 1 in aggregate")
	}
}

func TestMultiCoreErrors(t *testing.T) {
	cfg := DefaultMachineConfig()
	if _, err := NewMultiCore(cfg, 0); err == nil {
		t.Fatal("0 cores accepted")
	}
	mc, err := NewMultiCore(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.RunParallel(mkStreamProgs(3, 1<<20, 10), 100); err == nil {
		t.Fatal("program/core mismatch accepted")
	}
	if _, err := mc.RunParallel(mkStreamProgs(2, 1<<20, 10), 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestMultiCoreLLCContention(t *testing.T) {
	// Four cores each re-sweeping a 4 MiB region: together 16 MiB exceeds
	// the shared 12 MiB L3, so misses explode versus one core running the
	// same per-core working set alone.
	const ws = 4 << 20
	const instrs = 200_000

	solo, err := NewMultiCore(DefaultMachineConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	soloMeas, err := solo.RunParallel(mkStreamProgs(1, ws, instrs), 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	quad, err := NewMultiCore(DefaultMachineConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	quadMeas, err := quad.RunParallel(mkStreamProgs(4, ws, instrs), 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	// Per-core miss rate: misses / loads.
	soloRate := float64(soloMeas.Totals.Get(perf.LLCLoadMisses)) /
		float64(soloMeas.Totals.Get(perf.LLCLoads))
	quadRate := float64(quadMeas.Totals.Get(perf.LLCLoadMisses)) /
		float64(quadMeas.Totals.Get(perf.LLCLoads))
	if quadRate < 2*soloRate {
		t.Fatalf("no LLC contention visible: solo miss rate %.3f, quad %.3f", soloRate, quadRate)
	}
}

func TestMultiCorePrivateStateIsolated(t *testing.T) {
	// A branch-heavy core must not disturb another core's predictor: the
	// victim's miss count should match its solo run exactly (branch state
	// is private; only the shared L3 couples cores, and these programs
	// don't touch memory).
	mkBranchProg := func(seed uint64, regular bool) *scriptProgram {
		src := rng.New(seed)
		ins := make([]Instr, 20000)
		for i := range ins {
			taken := true
			if !regular {
				taken = src.Bool(0.5)
			}
			ins[i] = Instr{Kind: Branch, PC: 0x400000, Taken: taken}
		}
		return &scriptProgram{name: "br", instrs: ins}
	}
	solo, err := NewMultiCore(DefaultMachineConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	soloMeas, err := solo.RunParallel([]Program{mkBranchProg(1, true)}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	pair, err := NewMultiCore(DefaultMachineConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pairMeas, err := pair.RunParallel(
		[]Program{mkBranchProg(1, true), mkBranchProg(2, false)}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	// Pair misses = victim solo misses + the hostile core's own misses;
	// the regular core alone has near-zero misses, so the pair total must
	// be dominated by the hostile core and the regular core's share
	// unchanged. Check: pair misses >= hostile-ish and
	// pair regular-core contribution == solo (can't separate directly, so
	// assert pair >= solo and solo is tiny).
	soloMisses := soloMeas.Totals.Get(perf.BranchMisses)
	if soloMisses > 5 {
		t.Fatalf("regular branch program missed %d times solo", soloMisses)
	}
	pairMisses := pairMeas.Totals.Get(perf.BranchMisses)
	if pairMisses < 5000 {
		t.Fatalf("hostile core misses not visible: %d", pairMisses)
	}
}

func TestMultiCoreDeterministic(t *testing.T) {
	run := func() perf.Values {
		mc, err := NewMultiCore(DefaultMachineConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := mc.RunParallel(mkStreamProgs(3, 2<<20, 30000), 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return meas.Totals
	}
	if run() != run() {
		t.Fatal("multicore run not deterministic")
	}
}

func TestMultiCoreSampling(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.SampleInterval = 1000
	mc, err := NewMultiCore(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := mc.RunParallel(mkStreamProgs(2, 1<<20, 5000), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Series.Len() != 10 {
		t.Fatalf("samples = %d, want 10 (10000 aggregate instructions)", meas.Series.Len())
	}
}

func BenchmarkMultiCore4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc, err := NewMultiCore(DefaultMachineConfig(), 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mc.RunParallel(mkStreamProgs(4, 4<<20, 50000), 1<<30); err != nil {
			b.Fatal(err)
		}
	}
}
