package uarch

import "fmt"

// BranchPredictor is a gshare predictor: the global history register is
// XOR-folded with the branch PC to index a table of 2-bit saturating
// counters.
type BranchPredictor struct {
	table      []uint8
	mask       uint64
	history    uint64
	histBits   uint
	predicts   uint64
	mispredict uint64
}

// NewBranchPredictor builds a gshare predictor with 2^tableBits counters
// and historyBits bits of global history.
func NewBranchPredictor(tableBits, historyBits uint) (*BranchPredictor, error) {
	if tableBits == 0 || tableBits > 24 {
		return nil, fmt.Errorf("uarch: branch table bits %d out of (0,24]", tableBits)
	}
	if historyBits > tableBits {
		return nil, fmt.Errorf("uarch: history bits %d exceed table bits %d", historyBits, tableBits)
	}
	bp := &BranchPredictor{
		table:    make([]uint8, 1<<tableBits),
		mask:     (1 << tableBits) - 1,
		histBits: historyBits,
	}
	// Initialize to weakly-taken, the conventional power-on state.
	for i := range bp.table {
		bp.table[i] = 2
	}
	return bp, nil
}

// Predict consumes one branch with program counter pc and actual outcome
// taken, returning true when the prediction was correct. State (counters
// and history) is updated.
func (bp *BranchPredictor) Predict(pc uint64, taken bool) bool {
	idx := (pc ^ bp.history) & bp.mask
	ctr := bp.table[idx]
	predictedTaken := ctr >= 2
	bp.predicts++
	correct := predictedTaken == taken
	if !correct {
		bp.mispredict++
	}
	// Saturating update.
	if taken && ctr < 3 {
		bp.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		bp.table[idx] = ctr - 1
	}
	// Shift history.
	bp.history = ((bp.history << 1) | boolBit(taken)) & ((1 << bp.histBits) - 1)
	return correct
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats returns lifetime prediction and misprediction counts.
func (bp *BranchPredictor) Stats() (predicts, mispredicts uint64) {
	return bp.predicts, bp.mispredict
}

// Reset restores the power-on state.
func (bp *BranchPredictor) Reset() {
	for i := range bp.table {
		bp.table[i] = 2
	}
	bp.history = 0
	bp.predicts, bp.mispredict = 0, 0
}
