// Package buildinfo surfaces the binary's build identity — module
// version, VCS revision, and Go runtime — from debug.ReadBuildInfo. Both
// CLIs print it under -version and perspectord embeds it in /healthz, so
// every artifact a run produces can be traced back to the build that made
// it without an external stamping step.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, when the build
	// recorded one; Modified marks a dirty working tree.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
	// GoVersion, OS and Arch describe the toolchain and target.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// Read collects the build identity. It never fails: binaries built
// without module support just report unknowns.
func Read() Info {
	info := Info{
		Version:   "unknown",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// Print renders the -version output for the named command.
func Print(w io.Writer, cmd string) {
	i := Read()
	fmt.Fprintf(w, "%s %s", cmd, i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(w, " (%s", rev)
		if i.Modified {
			fmt.Fprint(w, "-dirty")
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintf(w, " %s %s/%s\n", i.GoVersion, i.OS, i.Arch)
}
