package fleet

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a TenantLimiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedLimiter(rate float64, burst int) (*TenantLimiter, *fakeClock) {
	l := NewTenantLimiter(rate, burst)
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	l.now = c.now
	return l, c
}

func TestTenantLimiterBurstThenDeny(t *testing.T) {
	l, _ := newClockedLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("acme"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("acme")
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry < time.Second {
		t.Errorf("Retry-After %v < 1s", retry)
	}
	// Other tenants have their own bucket.
	if ok, _ := l.Allow("globex"); !ok {
		t.Error("fresh tenant denied while another is throttled")
	}
}

func TestTenantLimiterRefill(t *testing.T) {
	l, clock := newClockedLimiter(2, 2) // 2 tokens/s, burst 2
	l.Allow("acme")
	l.Allow("acme")
	if ok, _ := l.Allow("acme"); ok {
		t.Fatal("empty bucket admitted")
	}
	clock.advance(600 * time.Millisecond) // refills 1.2 tokens
	if ok, _ := l.Allow("acme"); !ok {
		t.Fatal("bucket did not refill at rate")
	}
	if ok, _ := l.Allow("acme"); ok {
		t.Fatal("refill exceeded elapsed-time budget")
	}
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("acme"); !ok {
			t.Fatalf("burst token %d missing after long idle", i)
		}
	}
	if ok, _ := l.Allow("acme"); ok {
		t.Fatal("bucket refilled past burst cap")
	}
}

func TestTenantLimiterNilAdmitsEverything(t *testing.T) {
	var l *TenantLimiter
	for i := 0; i < 100; i++ {
		if ok, retry := l.Allow("anyone"); !ok || retry != 0 {
			t.Fatalf("nil limiter denied (retry %v)", retry)
		}
	}
	if NewTenantLimiter(0, 10) != nil || NewTenantLimiter(5, 0) != nil {
		t.Error("non-positive rate/burst should build the nil limiter")
	}
	if l.Tenants() != 0 {
		t.Error("nil limiter reports tenants")
	}
}

func TestTenantLimiterOverflowBucket(t *testing.T) {
	l, _ := newClockedLimiter(1, 1)
	l.maxTenants = 2
	l.Allow("t0")
	l.Allow("t1")
	if got := l.Tenants(); got != 2 {
		t.Fatalf("Tenants() = %d, want 2", got)
	}
	// Every further name shares one overflow bucket: the first spend
	// empties it for all of them.
	if ok, _ := l.Allow("t2"); !ok {
		t.Fatal("first overflow request denied")
	}
	for i := 3; i < 10; i++ {
		if ok, _ := l.Allow(fmt.Sprintf("t%d", i)); ok {
			t.Fatalf("overflow tenant t%d admitted from the shared empty bucket", i)
		}
	}
	if got := l.Tenants(); got != 2 {
		t.Errorf("overflow grew the tenant table to %d", got)
	}
}
