package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/store"
)

// fleetMux exposes a coordinator over HTTP the way internal/server
// does, so Worker's client loop can be exercised without importing the
// server package (which imports this one).
func fleetMux(c *Coordinator) http.Handler {
	reply := func(w http.ResponseWriter, v any, err error) {
		switch {
		case errors.Is(err, ErrUnknownNode):
			http.Error(w, err.Error(), http.StatusNotFound)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(v)
		}
	}
	handle := func(mux *http.ServeMux, path string, fn func(*http.Request) (any, error)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			v, err := fn(r)
			reply(w, v, err)
		})
	}
	mux := http.NewServeMux()
	handle(mux, "/api/v1/fleet/join", func(r *http.Request) (any, error) {
		var req JoinRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, err
		}
		return c.Join(req)
	})
	handle(mux, "/api/v1/fleet/heartbeat", func(r *http.Request) (any, error) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, err
		}
		return c.Heartbeat(req)
	})
	handle(mux, "/api/v1/fleet/pull", func(r *http.Request) (any, error) {
		var req PullRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, err
		}
		return c.Pull(r.Context(), req)
	})
	handle(mux, "/api/v1/fleet/results", func(r *http.Request) (any, error) {
		var req ResultPush
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, err
		}
		return map[string]bool{"ok": true}, c.PushResult(req)
	})
	handle(mux, "/api/v1/fleet/leave", func(r *http.Request) (any, error) {
		var req JoinRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, err
		}
		return map[string]bool{"ok": true}, c.Leave(req.NodeID)
	})
	return mux
}

// stubRunner resolves every job instantly with a set derived from the
// request, so fleet mechanics are tested without the simulation engine.
func stubRunner(ctx context.Context, h *jobs.Handle) (store.ScoreSet, error) {
	h.SetStage("measure", 1)
	h.AddInstructions(1000)
	h.Advance(1)
	req := h.Request()
	suites := make([]store.SuiteScores, len(req.Suites))
	for i, s := range req.Suites {
		suites[i] = store.SuiteScores{Suite: s, Cluster: 1, Trend: 1, Coverage: 1, Spread: 1}
	}
	return store.ScoreSet{
		Schema: store.SchemaVersion,
		Kind:   req.Kind,
		Group:  req.Group,
		Source: fmt.Sprintf("stub:%v", req.Suites),
		Suites: suites,
	}, nil
}

func scoreRequest(suite string) jobs.Request {
	return jobs.Request{Kind: store.KindScore, Suites: []string{suite}}
}

// startWorker builds a full worker node (stub-runner queue + JSONL
// replica) against the coordinator URL and runs it until the returned
// stop function is called; stop blocks through the graceful drain.
func startWorker(t *testing.T, url, id string, capacity int) (stop func(), st *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open worker store: %v", err)
	}
	q := jobs.New(stubRunner, jobs.Options{Workers: capacity, MaxQueue: 256, Store: st})
	w, err := NewWorker(WorkerOptions{
		Coordinator: url,
		NodeID:      id,
		Capacity:    capacity,
		Queue:       q,
		Store:       st,
		PullWait:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new worker: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s run: %v", id, err)
			}
		case <-time.After(10 * time.Second):
			t.Errorf("worker %s did not drain", id)
		}
		drainCtx, dc := context.WithTimeout(context.Background(), 5*time.Second)
		defer dc()
		q.Drain(drainCtx)
	}, st
}

func newTestCoordinator(t *testing.T) (*Coordinator, *store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open coordinator store: %v", err)
	}
	c := NewCoordinator(CoordinatorOptions{Store: st, HeartbeatEvery: 200 * time.Millisecond})
	srv := httptest.NewServer(fleetMux(c))
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, st, srv
}

func TestCoordinatorUnroutedThenDelivered(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	defer c.Close()

	req := scoreRequest("parsec")
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	type res struct {
		set store.ScoreSet
		err error
	}
	got := make(chan res, 1)
	go func() {
		set, _, err := c.Dispatch(context.Background(), req.Key(), req)
		got <- res{set, err}
	}()

	// No workers yet: the dispatch parks as unrouted.
	waitFor(t, "dispatch parked unrouted", func() bool { return c.Status().Unrouted == 1 })

	if _, err := c.Join(JoinRequest{NodeID: "n1", Capacity: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Status().Unrouted != 0 {
		t.Fatal("join did not route the parked dispatch")
	}
	pull, err := c.Pull(context.Background(), PullRequest{NodeID: "n1", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pull.Dispatches) != 1 {
		t.Fatalf("pulled %d dispatches, want 1", len(pull.Dispatches))
	}
	d := pull.Dispatches[0]
	if d.Key != req.Key() {
		t.Errorf("dispatch key %q, want %q", d.Key, req.Key())
	}
	want := store.ScoreSet{Schema: store.SchemaVersion, Kind: store.KindScore, Source: "done"}
	err = c.PushResult(ResultPush{
		NodeID: "n1", DispatchID: d.ID, Key: d.Key,
		At: time.Now().UTC().Format(time.RFC3339Nano), Set: &want, Instructions: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("dispatch returned error: %v", r.err)
	}
	if r.set.Source != "done" {
		t.Errorf("dispatch returned set source %q, want done", r.set.Source)
	}
	if st := c.Status(); st.RepLen != 1 {
		t.Errorf("replication log length %d, want 1", st.RepLen)
	}
}

func TestCoordinatorExpiryRequeuesDelivered(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	defer c.Close()

	req := scoreRequest("ligra")
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(JoinRequest{NodeID: "n1", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Dispatch(context.Background(), req.Key(), req)
		got <- err
	}()
	waitFor(t, "dispatch queued for n1", func() bool {
		st := c.Status()
		return len(st.Nodes) == 1 && st.Nodes[0].Pending == 1
	})
	pull, err := c.Pull(context.Background(), PullRequest{NodeID: "n1", Max: 1})
	if err != nil || len(pull.Dispatches) != 1 {
		t.Fatalf("pull: %v, %d dispatches", err, len(pull.Dispatches))
	}
	d := pull.Dispatches[0]

	// n1 crashes: force the expiry path (the sweeper's action, without
	// waiting out a heartbeat timeout).
	c.mu.Lock()
	c.removeNodeLocked(c.nodes["n1"], true)
	c.mu.Unlock()

	// The delivered dispatch is back in the unrouted pool; a new node
	// inherits and finishes it.
	if st := c.Status(); st.Unrouted != 1 {
		t.Fatalf("unrouted = %d after crash expiry, want 1", st.Unrouted)
	}
	if _, err := c.Join(JoinRequest{NodeID: "n2", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	pull2, err := c.Pull(context.Background(), PullRequest{NodeID: "n2", Max: 1})
	if err != nil || len(pull2.Dispatches) != 1 {
		t.Fatalf("pull after re-join: %v, %d dispatches", err, len(pull2.Dispatches))
	}
	if pull2.Dispatches[0].ID != d.ID {
		t.Fatalf("re-dispatch ID %d, want %d", pull2.Dispatches[0].ID, d.ID)
	}

	// n1's ghost reports a failure for the re-routed dispatch: stale,
	// must not fail the job out from under n2.
	err = c.PushResult(ResultPush{
		NodeID: "n1", DispatchID: d.ID, Key: d.Key,
		Error: &jobs.ErrorInfo{Message: "ghost failure"},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		t.Fatalf("stale error from expired node completed the dispatch: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	set := store.ScoreSet{Schema: store.SchemaVersion, Kind: store.KindScore}
	if err := c.PushResult(ResultPush{NodeID: "n2", DispatchID: d.ID, Key: d.Key, Set: &set}); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("dispatch failed after re-route: %v", err)
	}
}

func TestCoordinatorAbandonCancelsDelivered(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	defer c.Close()

	req := scoreRequest("nbench")
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(JoinRequest{NodeID: "n1", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Dispatch(ctx, req.Key(), req)
		got <- err
	}()
	waitFor(t, "dispatch queued", func() bool {
		st := c.Status()
		return len(st.Nodes) == 1 && st.Nodes[0].Pending == 1
	})
	pull, err := c.Pull(context.Background(), PullRequest{NodeID: "n1", Max: 1})
	if err != nil || len(pull.Dispatches) != 1 {
		t.Fatalf("pull: %v, %d dispatches", err, len(pull.Dispatches))
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned dispatch returned %v, want context.Canceled", err)
	}
	hb, err := c.Heartbeat(HeartbeatRequest{NodeID: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Cancels) != 1 || hb.Cancels[0] != pull.Dispatches[0].ID {
		t.Fatalf("heartbeat cancels = %v, want [%d]", hb.Cancels, pull.Dispatches[0].ID)
	}
}

func TestFleetEndToEndThroughWorkers(t *testing.T) {
	c, coordStore, srv := newTestCoordinator(t)
	queue := jobs.New(jobs.RemoteRunner(c), jobs.Options{Workers: 8, MaxQueue: 256, Store: coordStore})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		queue.Drain(ctx)
	}()

	stop1, st1 := startWorker(t, srv.URL, "w1", 2)
	stop2, st2 := startWorker(t, srv.URL, "w2", 2)
	defer stop2()

	waitFor(t, "both workers joined", func() bool { return c.Peers() == 2 })
	if got := c.Capacity(); got != 4 {
		t.Errorf("fleet capacity %d, want 4", got)
	}

	// Submit the six stock suites plus a duplicate of the first; the
	// duplicate must fold into the coordinator queue (fleet-wide dedup).
	suites := []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"}
	ids := make([]string, 0, len(suites))
	for _, s := range suites {
		snap, deduped, err := queue.Submit(scoreRequest(s))
		if err != nil {
			t.Fatalf("submit %s: %v", s, err)
		}
		if deduped {
			t.Fatalf("fresh submission %s reported deduped", s)
		}
		ids = append(ids, snap.ID)
	}
	if _, deduped, err := queue.Submit(scoreRequest("parsec")); err != nil || !deduped {
		t.Fatalf("duplicate parsec submission: deduped=%v err=%v", deduped, err)
	}

	for i, id := range ids {
		done, err := queue.Done(id)
		if err != nil {
			t.Fatalf("done %s: %v", id, err)
		}
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("job %s (%s) did not finish", id, suites[i])
		}
		set, ok, jerr := queue.Result(id)
		if !ok {
			t.Fatalf("job %s (%s) has no result: %v", id, suites[i], jerr)
		}
		if want := fmt.Sprintf("stub:[%s]", suites[i]); set.Source != want {
			t.Errorf("job %s result source %q, want %q", id, set.Source, want)
		}
	}

	// Results replicate everywhere: the coordinator replica has all six
	// (via the queue's store path), and both workers converge through
	// piggybacked replication even for keys the other node executed.
	converged := func() bool {
		return len(coordStore.Records()) == 6 &&
			len(st1.Records()) == 6 && len(st2.Records()) == 6
	}
	for deadline := time.Now().Add(10 * time.Second); !converged(); {
		if time.Now().After(deadline) {
			t.Fatalf("replication did not converge: coordinator=%d w1=%d w2=%d records, want 6 each",
				len(coordStore.Records()), len(st1.Records()), len(st2.Records()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Work actually spread over the ring: every dispatch went somewhere,
	// and the per-node split matches 6 total.
	st := c.Status()
	var dispatched uint64
	for _, n := range st.Nodes {
		dispatched += n.Dispatched
	}
	if dispatched != 6 {
		t.Errorf("fleet dispatched %d jobs, want 6", dispatched)
	}

	// Graceful drain: stop w1, then the same submission still completes
	// on the survivor — and replays from the replicated store without
	// re-dispatching (records already hold the key).
	stop1()
	waitFor(t, "w1 departed", func() bool { return c.Peers() == 1 })
	snap, _, err := queue.Submit(scoreRequest("parsec"))
	if err != nil {
		t.Fatal(err)
	}
	done, err := queue.Done(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("post-drain resubmission did not finish")
	}
	final, _ := queue.Get(snap.ID)
	if !final.Replayed {
		t.Errorf("post-drain resubmission state %s replayed=%v; want replay from the replica", final.State, final.Replayed)
	}
}

func TestWorkerLifecycleGoroutineLeaks(t *testing.T) {
	c, coordStore, srv := newTestCoordinator(t)
	queue := jobs.New(jobs.RemoteRunner(c), jobs.Options{Workers: 2, MaxQueue: 64, Store: coordStore})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		queue.Drain(ctx)
	}()

	// Warm one full join/execute/drain cycle so lazy pools (HTTP
	// transport keep-alives, timer goroutines) exist before the baseline.
	warmStop, _ := startWorker(t, srv.URL, "warm", 1)
	snap, _, err := queue.Submit(scoreRequest("parsec"))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := queue.Done(snap.ID); err == nil {
		<-done
	}
	warmStop()
	waitFor(t, "warm worker departed", func() bool { return c.Peers() == 0 })

	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			time.Sleep(20 * time.Millisecond)
			if m := runtime.NumGoroutine(); m <= n {
				return m
			} else {
				n = m
			}
		}
		return n
	}
	before := settle()

	for round := 0; round < 3; round++ {
		stop, _ := startWorker(t, srv.URL, fmt.Sprintf("cycle-%d", round), 2)
		waitFor(t, "cycle worker joined", func() bool { return c.Peers() == 1 })
		snap, _, err := queue.Submit(scoreRequest("spec17"))
		if err != nil {
			t.Fatal(err)
		}
		if done, err := queue.Done(snap.ID); err == nil {
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("cycle job did not finish")
			}
		}
		stop()
		waitFor(t, "cycle worker departed", func() bool { return c.Peers() == 0 })
	}

	after := settle()
	if after > before+3 {
		t.Errorf("goroutines grew %d -> %d across 3 worker join/drain cycles", before, after)
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
