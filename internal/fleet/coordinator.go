package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"perspector/internal/cache"
	"perspector/internal/jobs"
	"perspector/internal/stage"
	"perspector/internal/store"
)

// ErrUnknownNode rejects pulls/heartbeats from a node the coordinator
// does not know — it crashed out of the membership table or was expired.
// The worker's reaction is to re-join (and receive a fresh backfill).
var ErrUnknownNode = errors.New("fleet: unknown node")

// ErrClosed rejects dispatches after Close.
var ErrClosed = errors.New("fleet: coordinator closed")

// CoordinatorOptions wires the coordinator's collaborators and tuning.
type CoordinatorOptions struct {
	// Store is the coordinator's result replica: reads are served from
	// it and joins are backfilled from it. May be nil (memory-only
	// replication log, no backfill).
	Store *store.Store
	// Log receives fleet lifecycle events; nil discards them.
	Log *slog.Logger
	// HeartbeatEvery is the cadence workers are told to report at
	// (default 3s); HeartbeatTimeout expires a silent node (default
	// 3×HeartbeatEvery). Pulls count as liveness too.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// VNodes is the virtual-node count per worker (default 64).
	VNodes int
}

// Coordinator owns fleet membership, per-node dispatch queues, and the
// replication log. It implements jobs.Dispatcher, so a jobs.Queue built
// with jobs.RemoteRunner(coord) is a drop-in distributed backend for
// the existing HTTP API.
type Coordinator struct {
	opt CoordinatorOptions

	mu    sync.Mutex
	nodes map[string]*node
	ring  *Ring
	// unrouted holds dispatches admitted before any worker joined; the
	// first join drains it through the ring.
	unrouted []*dispatch
	// delivered maps dispatch ID to its in-flight dispatch, from pull
	// delivery until the result pushes back (or the node expires and the
	// dispatch is re-routed).
	delivered map[uint64]*dispatch
	seq       uint64
	// rep is the replication log: every successful result in arrival
	// order. Workers sync deltas by index, idempotently.
	rep    []store.Record
	closed bool

	stop chan struct{}
	done chan struct{}
}

type node struct {
	id       string
	capacity int
	joinedAt time.Time
	lastSeen time.Time

	pending []*dispatch
	cancels []uint64
	// wake is closed (and replaced) whenever pending or cancels gain
	// entries, releasing the node's long-polling pull.
	wake chan struct{}

	queueDepth  int
	inflight    int
	instrPerSec float64
	dispatched  uint64
	completed   uint64
}

type dispatch struct {
	id  uint64
	key string
	req jobs.Request
	// node is the current assignment ("" while unrouted).
	node string
	res  chan pushedResult // buffered 1; delivered at most once
	// done flips under the coordinator mutex when the result is
	// delivered or the dispatcher abandoned the job.
	done bool
}

type pushedResult struct {
	set   store.ScoreSet
	instr uint64
	err   *jobs.ErrorInfo
}

// NewCoordinator starts a coordinator and its expiry sweeper.
func NewCoordinator(opt CoordinatorOptions) *Coordinator {
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = 3 * time.Second
	}
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = 3 * opt.HeartbeatEvery
	}
	if opt.VNodes < 1 {
		opt.VNodes = DefaultVNodes
	}
	c := &Coordinator{
		opt:       opt,
		nodes:     make(map[string]*node),
		ring:      NewRing(nil, opt.VNodes),
		delivered: make(map[uint64]*dispatch),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go c.sweeper()
	return c
}

// Close stops the sweeper and fails all outstanding dispatches, so no
// Dispatch caller blocks past it. Call after draining the job queue.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	fail := func(d *dispatch) {
		if !d.done {
			d.done = true
			d.res <- pushedResult{err: &jobs.ErrorInfo{Message: ErrClosed.Error()}}
		}
	}
	for _, d := range c.unrouted {
		fail(d)
	}
	c.unrouted = nil
	for _, n := range c.nodes {
		for _, d := range n.pending {
			fail(d)
		}
		n.pending = nil
		wakeLocked(n)
	}
	for _, d := range c.delivered {
		fail(d)
	}
	c.delivered = make(map[uint64]*dispatch)
	c.mu.Unlock()
	<-c.done
}

// sweeper expires nodes that stopped heartbeating and re-routes their
// work.
func (c *Coordinator) sweeper() {
	defer close(c.done)
	t := time.NewTicker(c.opt.HeartbeatTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for id, n := range c.nodes {
				if now.Sub(n.lastSeen) > c.opt.HeartbeatTimeout {
					c.opt.Log.Warn("fleet node expired", "node", id, "last_seen", n.lastSeen)
					c.removeNodeLocked(n, true)
				}
			}
			c.mu.Unlock()
		}
	}
}

// Dispatch implements jobs.Dispatcher: route the job to its owning node
// and block until the result streams back or ctx is cancelled.
func (c *Coordinator) Dispatch(ctx context.Context, key string, req jobs.Request) (store.ScoreSet, uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return store.ScoreSet{}, 0, ErrClosed
	}
	c.seq++
	d := &dispatch{id: c.seq, key: key, req: req, res: make(chan pushedResult, 1)}
	c.routeLocked(d)
	c.mu.Unlock()

	select {
	case r := <-d.res:
		if r.err != nil {
			return store.ScoreSet{}, r.instr, remoteError(r.err)
		}
		return r.set, r.instr, nil
	case <-ctx.Done():
		c.abandon(d)
		return store.ScoreSet{}, 0, ctx.Err()
	}
}

// remoteError reconstructs a worker failure so the coordinator's job
// snapshot carries the same stage tags and cancellation verdict a local
// failure would.
func remoteError(info *jobs.ErrorInfo) error {
	err := errors.New(info.Message)
	if info.Canceled {
		err = fmt.Errorf("%w: %s", context.Canceled, info.Message)
	}
	if info.Stage != "" {
		err = stage.Wrap(stage.Stage(info.Stage), info.Suite, info.Workload, err)
	}
	return err
}

// routeLocked assigns d to the ring owner of its key, or parks it until
// a worker joins.
func (c *Coordinator) routeLocked(d *dispatch) {
	owner := c.ring.Owner(cache.RingPoint(d.key))
	if owner == "" {
		d.node = ""
		c.unrouted = append(c.unrouted, d)
		return
	}
	d.node = owner
	n := c.nodes[owner]
	n.pending = append(n.pending, d)
	wakeLocked(n)
}

// wakeLocked releases the node's long-polling pull, if any.
func wakeLocked(n *node) {
	close(n.wake)
	n.wake = make(chan struct{})
}

// rerouteLocked re-derives every undelivered dispatch's owner after a
// membership change. Only dispatches whose arc moved change queues.
func (c *Coordinator) rerouteLocked() {
	moved := c.unrouted
	c.unrouted = nil
	for _, n := range c.nodes {
		keep := n.pending[:0]
		for _, d := range n.pending {
			if c.ring.Owner(cache.RingPoint(d.key)) == n.id {
				keep = append(keep, d)
			} else {
				moved = append(moved, d)
			}
		}
		n.pending = keep
	}
	for _, d := range moved {
		c.routeLocked(d)
	}
}

// removeNodeLocked drops a node from membership and re-homes its work:
// undelivered dispatches re-route immediately; delivered ones re-route
// too when requeue is set (crash expiry) — the at-most-once result
// delivery makes a racing duplicate execution harmless.
func (c *Coordinator) removeNodeLocked(n *node, requeue bool) {
	delete(c.nodes, n.id)
	c.ring = NewRing(c.nodeIDsLocked(), c.opt.VNodes)
	wakeLocked(n) // release its pull; the retry sees ErrUnknownNode
	pending := n.pending
	n.pending = nil
	for _, d := range pending {
		c.routeLocked(d)
	}
	if requeue {
		for id, d := range c.delivered {
			if d.node == n.id && !d.done {
				delete(c.delivered, id)
				c.routeLocked(d)
			}
		}
	}
	c.rerouteLocked()
}

func (c *Coordinator) nodeIDsLocked() []string {
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	return ids
}

// abandon withdraws a dispatch whose submitter's context died. A
// delivered dispatch turns into a cancel notice for its node.
func (c *Coordinator) abandon(d *dispatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d.done {
		return
	}
	d.done = true
	if cur, ok := c.delivered[d.id]; ok && cur == d {
		delete(c.delivered, d.id)
		if n, ok := c.nodes[d.node]; ok {
			n.cancels = append(n.cancels, d.id)
			wakeLocked(n)
		}
		return
	}
	// Undelivered: drop it from wherever it queues.
	if d.node == "" {
		c.unrouted = removeDispatch(c.unrouted, d)
		return
	}
	if n, ok := c.nodes[d.node]; ok {
		n.pending = removeDispatch(n.pending, d)
	}
}

func removeDispatch(ds []*dispatch, d *dispatch) []*dispatch {
	for i, x := range ds {
		if x == d {
			return append(ds[:i], ds[i+1:]...)
		}
	}
	return ds
}

// Join registers (or re-registers) a worker and hands it the
// newest-per-key backfill from the coordinator replica.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	if req.NodeID == "" {
		return JoinResponse{}, fmt.Errorf("fleet: join without a node_id")
	}
	if req.Capacity < 1 {
		req.Capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return JoinResponse{}, ErrClosed
	}
	now := time.Now()
	n, ok := c.nodes[req.NodeID]
	if !ok {
		n = &node{id: req.NodeID, joinedAt: now, wake: make(chan struct{})}
		c.nodes[req.NodeID] = n
		c.ring = NewRing(c.nodeIDsLocked(), c.opt.VNodes)
		c.rerouteLocked()
	}
	n.capacity = req.Capacity
	n.lastSeen = now
	c.opt.Log.Info("fleet node joined", "node", req.NodeID, "capacity", req.Capacity, "peers", len(c.nodes))
	var backfill []store.Record
	if c.opt.Store != nil {
		backfill = c.opt.Store.Records()
	}
	return JoinResponse{
		Peers:           len(c.nodes),
		Backfill:        backfill,
		RepSeq:          uint64(len(c.rep)),
		HeartbeatMillis: c.opt.HeartbeatEvery.Milliseconds(),
	}, nil
}

// Leave is graceful departure: the worker has finished and pushed its
// in-flight work, so only undelivered dispatches need re-homing.
func (c *Coordinator) Leave(nodeID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[nodeID]
	if !ok {
		return ErrUnknownNode
	}
	c.removeNodeLocked(n, false)
	c.opt.Log.Info("fleet node left", "node", nodeID, "peers", len(c.nodes))
	return nil
}

// Heartbeat refreshes liveness and load, returning piggybacked
// replication delta and cancel notices.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[req.NodeID]
	if !ok {
		return HeartbeatResponse{}, ErrUnknownNode
	}
	n.lastSeen = time.Now()
	n.queueDepth = req.QueueDepth
	n.inflight = req.Inflight
	n.instrPerSec = req.InstrPerSec
	return HeartbeatResponse{
		Peers:   len(c.nodes),
		Rep:     c.repDeltaLocked(req.RepSeq),
		RepSeq:  uint64(len(c.rep)),
		Cancels: drainCancelsLocked(n),
	}, nil
}

// repDeltaLocked returns the replication records past seq.
func (c *Coordinator) repDeltaLocked(seq uint64) []store.Record {
	if seq >= uint64(len(c.rep)) {
		return nil
	}
	return append([]store.Record(nil), c.rep[seq:]...)
}

func drainCancelsLocked(n *node) []uint64 {
	out := n.cancels
	n.cancels = nil
	return out
}

// Pull hands the node up to req.Max of its pending dispatches,
// long-polling until req.WaitMillis when it has none and no other
// traffic (cancels, replication delta) is due.
func (c *Coordinator) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	if req.Max < 1 {
		req.Max = 1
	}
	var deadline <-chan time.Time
	if req.WaitMillis > 0 {
		t := time.NewTimer(time.Duration(req.WaitMillis) * time.Millisecond)
		defer t.Stop()
		deadline = t.C
	}
	for {
		c.mu.Lock()
		n, ok := c.nodes[req.NodeID]
		if !ok {
			c.mu.Unlock()
			return PullResponse{}, ErrUnknownNode
		}
		n.lastSeen = time.Now()
		take := min(req.Max, len(n.pending))
		hasTraffic := take > 0 || len(n.cancels) > 0 || req.RepSeq < uint64(len(c.rep))
		if hasTraffic || deadline == nil {
			resp := PullResponse{
				Cancels: drainCancelsLocked(n),
				Rep:     c.repDeltaLocked(req.RepSeq),
				RepSeq:  uint64(len(c.rep)),
				Peers:   len(c.nodes),
			}
			for _, d := range n.pending[:take] {
				c.delivered[d.id] = d
				n.dispatched++
				resp.Dispatches = append(resp.Dispatches, Dispatch{ID: d.id, Key: d.key, Request: d.req})
			}
			n.pending = append([]*dispatch(nil), n.pending[take:]...)
			c.mu.Unlock()
			return resp, nil
		}
		wake := n.wake
		c.mu.Unlock()
		select {
		case <-wake:
		case <-deadline:
			deadline = nil // next loop iteration returns whatever is there
		case <-ctx.Done():
			return PullResponse{}, ctx.Err()
		case <-c.stop:
			return PullResponse{}, ErrClosed
		}
	}
}

// PushResult completes a dispatch: the waiting Dispatch call is released
// (at most once) and a successful result enters the replication log for
// fleet-wide fan-out. Results are accepted even from expired or departed
// nodes — the work is done; losing it would only force a re-run.
func (c *Coordinator) PushResult(req ResultPush) error {
	if req.Set == nil && req.Error == nil {
		return fmt.Errorf("fleet: result push with neither set nor error")
	}
	c.mu.Lock()
	if n, ok := c.nodes[req.NodeID]; ok {
		n.lastSeen = time.Now()
		n.completed++
	}
	d, live := c.delivered[req.DispatchID]
	// A failure pushed by a node the dispatch no longer belongs to (it
	// was re-routed after the pusher expired) is stale: the re-dispatch
	// is still running, so only the current assignee may fail the job. A
	// stale *success* is still a success — identical content from a
	// deterministic engine — and is accepted from anyone.
	if live && req.Error != nil && d.node != req.NodeID {
		live = false
	}
	if live {
		delete(c.delivered, req.DispatchID)
	}
	var rec *store.Record
	if req.Set != nil {
		at := req.At
		if at == "" {
			at = time.Now().UTC().Format(time.RFC3339Nano)
		}
		rec = &store.Record{Key: req.Key, At: at, Set: *req.Set}
		c.rep = append(c.rep, *rec)
		// Wake every node: their repSeq is now behind, so parked pulls
		// return and carry the delta.
		for _, n := range c.nodes {
			wakeLocked(n)
		}
	}
	deliver := live && !d.done
	if deliver {
		d.done = true
		if req.Error != nil {
			d.res <- pushedResult{err: req.Error, instr: req.Instructions}
		} else {
			d.res <- pushedResult{set: *req.Set, instr: req.Instructions}
		}
	}
	c.mu.Unlock()

	// A result nobody is waiting for (the submitter cancelled, or the
	// dispatch was re-routed and the loser pushed second) still lands in
	// the coordinator replica — the queue's store path only runs for the
	// delivered copy.
	if rec != nil && !deliver && c.opt.Store != nil {
		if _, err := c.opt.Store.Apply(*rec); err != nil {
			c.opt.Log.Error("replica apply failed", "key", req.Key, "error", err)
		}
	}
	return nil
}

// Peers returns the number of registered workers.
func (c *Coordinator) Peers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Capacity returns the fleet's aggregate worker capacity — the
// parallelism hint behind fleet-aware Retry-After headers.
func (c *Coordinator) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.capacity
	}
	return total
}

// Status renders the fleet view, nodes sorted by ID.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{Unrouted: len(c.unrouted), RepLen: uint64(len(c.rep))}
	for _, n := range c.nodes {
		s.Capacity += n.capacity
		s.Nodes = append(s.Nodes, NodeStatus{
			NodeID:      n.id,
			Capacity:    n.capacity,
			QueueDepth:  n.queueDepth,
			Inflight:    n.inflight,
			Pending:     len(n.pending),
			Dispatched:  n.dispatched,
			Completed:   n.completed,
			InstrPerSec: n.instrPerSec,
			JoinedAt:    stamp(n.joinedAt),
			LastSeen:    stamp(n.lastSeen),
		})
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].NodeID < s.Nodes[j].NodeID })
	return s
}
