package fleet

import (
	"sync"
	"time"
)

// TenantLimiter applies a token-bucket quota per tenant. Each tenant's
// bucket holds Burst tokens and refills at Rate tokens/second; a
// submission spends one token. Tenants are named by the X-Tenant header
// (the server maps a missing header to "default"). The tenant table is
// capped: once maxTenants distinct names exist, unseen tenants share
// one overflow bucket so a tenant-name-churning client cannot grow the
// table without bound.
//
// A nil *TenantLimiter admits everything, so the server wires it
// unconditionally.
type TenantLimiter struct {
	rate       float64
	burst      float64
	maxTenants int

	mu       sync.Mutex
	buckets  map[string]*bucket
	overflow *bucket
	now      func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantLimiter builds a limiter granting each tenant rate
// submissions/second with a burst of burst. Non-positive rate or burst
// returns nil — the admit-everything limiter.
func NewTenantLimiter(rate float64, burst int) *TenantLimiter {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &TenantLimiter{
		rate:       rate,
		burst:      float64(burst),
		maxTenants: 1024,
		buckets:    make(map[string]*bucket),
		now:        time.Now,
	}
}

// Allow spends one token from tenant's bucket. When the bucket is
// empty it reports false plus how long until one token refills — the
// Retry-After the server should send.
func (l *TenantLimiter) Allow(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= l.maxTenants {
			if l.overflow == nil {
				l.overflow = &bucket{tokens: l.burst, last: l.now()}
			}
			b = l.overflow
		} else {
			b = &bucket{tokens: l.burst, last: l.now()}
			l.buckets[tenant] = b
		}
	}

	now := l.now()
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now

	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After is whole seconds; never say 0
	}
	return false, wait
}

// Tenants returns how many distinct tenant buckets exist (the overflow
// bucket excluded), for metrics exposition.
func (l *TenantLimiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
