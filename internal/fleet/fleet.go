// Package fleet turns perspectord into a coordinator/worker cluster.
//
// The split reuses everything the single-process service already has —
// the content-addressed job key, the dedup/replay queue, and the
// replay-tolerant JSONL result store — and adds only the distribution
// layer on top:
//
//   - Routing. The coordinator hashes each job's content key onto a
//     consistent-hash ring of registered workers (cache.RingPoint), so
//     the same request always lands on the same node. Each node's
//     measurement cache thereby becomes a shard of one fleet-wide
//     cache, and the coordinator queue's in-flight dedup is fleet-wide
//     by construction: duplicates fold before a dispatch exists.
//   - Pull transport. Workers register over HTTP (join), long-poll the
//     coordinator for dispatches owned by their node (pull), execute
//     them on their local queue, and stream results back (results).
//     Workers never accept coordinator connections, so they run behind
//     NAT and need no inbound ports.
//   - Replication. Every completed result is appended to the
//     coordinator's replication log and fanned out piggybacked on pull
//     and heartbeat responses; workers apply records into their local
//     JSONL stores with store.Apply's newest-per-key idempotent
//     semantics, and a joining worker receives the full newest-per-key
//     backfill. Any replica can therefore serve or replay any result.
//   - Membership. Heartbeats carry queue depth, in-flight count and the
//     node's instr/sec EWMA; a sweeper expires silent nodes and
//     re-routes their work (undelivered and delivered alike — results
//     are delivered at most once, so a re-dispatch that races the
//     original is harmless). Graceful departure is the same path minus
//     the re-dispatch: the worker drains in-flight work, pushes the
//     results, then leaves.
//
// Admission control composes with this: the server's 429 responses
// carry a Retry-After derived from queue depth and the instr/sec EWMA
// (fleet capacity included on a coordinator), and per-tenant
// token-bucket quotas (TenantLimiter) bound each submitter.
package fleet

import (
	"time"

	"perspector/internal/jobs"
	"perspector/internal/store"
)

// Wire messages for the /api/v1/fleet endpoints. Durations travel as
// integer milliseconds so the JSON stays language-neutral.

// JoinRequest registers (or re-registers) a worker with the coordinator.
type JoinRequest struct {
	NodeID string `json:"node_id"`
	// Capacity is how many dispatches the node runs concurrently.
	Capacity int `json:"capacity"`
	// RepSeq is the replication-log position the node has already
	// applied, 0 for a fresh store.
	RepSeq uint64 `json:"rep_seq"`
}

// JoinResponse acknowledges a join with the replication backfill.
type JoinResponse struct {
	// Peers is the number of registered workers, this one included.
	Peers int `json:"peers"`
	// Backfill is the coordinator replica's newest record per key;
	// applying it is idempotent.
	Backfill []store.Record `json:"backfill,omitempty"`
	// RepSeq is the replication-log position the backfill corresponds
	// to; the worker resumes delta sync from here.
	RepSeq uint64 `json:"rep_seq"`
	// HeartbeatMillis is the cadence the coordinator expects; missing
	// roughly three beats expires the node.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// HeartbeatRequest is a worker's periodic liveness + load report.
type HeartbeatRequest struct {
	NodeID string `json:"node_id"`
	// QueueDepth and Inflight describe the node's local queue.
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// InstrPerSec is the node's simulated-instruction throughput EWMA.
	InstrPerSec float64 `json:"instr_per_sec"`
	RepSeq      uint64  `json:"rep_seq"`
}

// HeartbeatResponse piggybacks replication and control traffic.
type HeartbeatResponse struct {
	Peers int `json:"peers"`
	// Rep is the replication-log delta past the request's RepSeq.
	Rep    []store.Record `json:"rep,omitempty"`
	RepSeq uint64         `json:"rep_seq"`
	// Cancels lists dispatch IDs whose jobs should be cancelled.
	Cancels []uint64 `json:"cancels,omitempty"`
}

// PullRequest asks for dispatches owned by the node, long-polling up to
// WaitMillis when the node's queue is empty.
type PullRequest struct {
	NodeID     string `json:"node_id"`
	Max        int    `json:"max"`
	WaitMillis int64  `json:"wait_millis"`
	RepSeq     uint64 `json:"rep_seq"`
}

// PullResponse delivers dispatches plus the same piggybacked traffic as
// a heartbeat.
type PullResponse struct {
	Dispatches []Dispatch     `json:"dispatches,omitempty"`
	Cancels    []uint64       `json:"cancels,omitempty"`
	Rep        []store.Record `json:"rep,omitempty"`
	RepSeq     uint64         `json:"rep_seq"`
	Peers      int            `json:"peers"`
}

// Dispatch is one routed job on the wire: the coordinator-side dispatch
// ID, the job's content key, and the full normalized request.
type Dispatch struct {
	ID  uint64 `json:"id"`
	Key string `json:"key"`
	// Request re-normalizes identically on the worker, so the worker's
	// local queue computes the same content key and its local cache and
	// store line up with the coordinator's routing.
	Request jobs.Request `json:"request"`
}

// ResultPush streams one finished dispatch back to the coordinator.
type ResultPush struct {
	NodeID     string `json:"node_id"`
	DispatchID uint64 `json:"dispatch_id"`
	Key        string `json:"key"`
	// At is the worker-side completion time (RFC 3339 UTC) — the
	// timestamp the replicated record carries on every node.
	At string `json:"at,omitempty"`
	// Set is the result document on success; Error the failure.
	Set *store.ScoreSet `json:"set,omitempty"`
	// Instructions is what the worker's simulator retired for this job
	// (0 for a local cache hit or replay).
	Instructions uint64 `json:"instructions,omitempty"`
	// Error carries the worker's stage-tagged failure; the coordinator
	// reconstructs it so coordinator job snapshots look exactly like
	// local failures.
	Error *jobs.ErrorInfo `json:"error,omitempty"`
}

// NodeStatus is one worker's row in the fleet status view.
type NodeStatus struct {
	NodeID      string  `json:"node_id"`
	Capacity    int     `json:"capacity"`
	QueueDepth  int     `json:"queue_depth"`
	Inflight    int     `json:"inflight"`
	Pending     int     `json:"pending"`
	Dispatched  uint64  `json:"dispatched"`
	Completed   uint64  `json:"completed"`
	InstrPerSec float64 `json:"instr_per_sec"`
	JoinedAt    string  `json:"joined_at"`
	LastSeen    string  `json:"last_seen"`
}

// Status is the coordinator's fleet view, served at GET /api/v1/fleet.
type Status struct {
	Nodes []NodeStatus `json:"nodes"`
	// Unrouted counts dispatches waiting for any worker to join.
	Unrouted int `json:"unrouted"`
	// RepLen is the replication-log length.
	RepLen uint64 `json:"rep_len"`
	// Capacity is the fleet's aggregate worker capacity.
	Capacity int `json:"capacity"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
