package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/store"
)

// WorkerOptions wires a worker agent to its coordinator and its local
// execution stack.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// NodeID names this node on the ring; it must be stable across
	// restarts for cache affinity to survive them.
	NodeID string
	// Capacity is how many dispatches run concurrently (default 2). The
	// local queue's MaxQueue must be at least this.
	Capacity int
	// Queue is the local execution queue (EngineRunner); dispatches are
	// submitted to it, so local dedup, replay, and telemetry all apply.
	Queue *jobs.Queue
	// Store is the local result replica; backfill and replication
	// records land here.
	Store *store.Store
	// Log receives worker lifecycle events; nil discards them.
	Log *slog.Logger
	// Client is the HTTP client; nil builds one with a sane timeout.
	Client *http.Client
	// PullWait is the long-poll window per pull (default 2s).
	PullWait time.Duration
}

// Worker is the agent side of the fleet: it joins the coordinator,
// pulls dispatches owned by its node, executes them on the local queue,
// and streams results back. Create with NewWorker, drive with Run.
type Worker struct {
	opt WorkerOptions

	repSeq atomic.Uint64
	peers  atomic.Int64

	mu       sync.Mutex
	local    map[uint64]string // dispatch ID → local job ID, for cancels
	inflight int
	release  chan struct{} // signalled when a slot frees
	hbEvery  time.Duration
}

// NewWorker validates options and builds the agent.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if opt.NodeID == "" {
		return nil, fmt.Errorf("fleet: worker needs a node ID")
	}
	if opt.Queue == nil {
		return nil, fmt.Errorf("fleet: worker needs a local queue")
	}
	if opt.Store == nil {
		return nil, fmt.Errorf("fleet: worker needs a local store")
	}
	if opt.Capacity < 1 {
		opt.Capacity = 2
	}
	if opt.PullWait <= 0 {
		opt.PullWait = 2 * time.Second
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: opt.PullWait + 30*time.Second}
	}
	return &Worker{
		opt:     opt,
		local:   make(map[uint64]string),
		release: make(chan struct{}, 1),
		hbEvery: 3 * time.Second,
	}, nil
}

// Peers returns the fleet size from the last coordinator exchange —
// what the worker's /healthz reports.
func (w *Worker) Peers() int { return int(w.peers.Load()) }

// Run joins the fleet and serves dispatches until ctx is cancelled,
// then drains gracefully: it stops pulling, lets in-flight jobs finish
// (the caller bounds that by draining the local queue), pushes their
// results, and tells the coordinator to re-home anything undelivered.
// Run returns nil on a clean drain; it retries transient coordinator
// errors internally and only returns early if ctx dies before the first
// successful join.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.joinLoop(ctx); err != nil {
		return err
	}

	hbCtx, hbCancel := context.WithCancel(context.Background())
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()

	var wg sync.WaitGroup
	for ctx.Err() == nil {
		free := w.waitSlot(ctx)
		if free == 0 {
			break // ctx died while full
		}
		resp, err := w.pull(ctx, free)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			if errors.Is(err, ErrUnknownNode) {
				// Expired (or the coordinator restarted): re-join and
				// resync from our replication position.
				if err := w.joinLoop(ctx); err != nil {
					break
				}
				continue
			}
			w.opt.Log.Warn("fleet pull failed", "error", err)
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
			}
			continue
		}
		w.absorb(resp.Rep, resp.RepSeq, resp.Cancels, resp.Peers)
		for _, d := range resp.Dispatches {
			w.acquireSlot()
			wg.Add(1)
			go func(d Dispatch) {
				defer wg.Done()
				defer w.releaseSlot()
				w.execute(d)
			}(d)
		}
	}

	// Graceful drain: finish in-flight work (results push inside
	// execute), then leave so the coordinator re-homes whatever it had
	// not yet delivered to us.
	wg.Wait()
	hbCancel()
	hbDone.Wait()
	if err := w.leave(); err != nil && !errors.Is(err, ErrUnknownNode) {
		w.opt.Log.Warn("fleet leave failed", "error", err)
	}
	return nil
}

// joinLoop retries join until it succeeds or ctx dies, then applies the
// backfill.
func (w *Worker) joinLoop(ctx context.Context) error {
	for {
		resp, err := w.join()
		if err == nil {
			for _, rec := range resp.Backfill {
				if _, err := w.opt.Store.Apply(rec); err != nil {
					w.opt.Log.Error("backfill apply failed", "key", rec.Key, "error", err)
				}
			}
			w.repSeq.Store(resp.RepSeq)
			w.peers.Store(int64(resp.Peers))
			if resp.HeartbeatMillis > 0 {
				w.mu.Lock()
				w.hbEvery = time.Duration(resp.HeartbeatMillis) * time.Millisecond
				w.mu.Unlock()
			}
			w.opt.Log.Info("joined fleet", "coordinator", w.opt.Coordinator,
				"node", w.opt.NodeID, "peers", resp.Peers, "backfill", len(resp.Backfill))
			return nil
		}
		w.opt.Log.Warn("fleet join failed, retrying", "error", err)
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// heartbeatLoop reports load until its context dies.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		every := w.hbEvery
		inflight := w.inflight
		w.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
		resp, err := w.heartbeat(inflight)
		if err != nil {
			if !errors.Is(err, ErrUnknownNode) {
				w.opt.Log.Warn("fleet heartbeat failed", "error", err)
			}
			continue // the pull loop owns re-joining
		}
		w.absorb(resp.Rep, resp.RepSeq, resp.Cancels, resp.Peers)
	}
}

// absorb applies piggybacked replication records and cancel notices.
func (w *Worker) absorb(rep []store.Record, repSeq uint64, cancels []uint64, peers int) {
	for _, rec := range rep {
		if _, err := w.opt.Store.Apply(rec); err != nil {
			w.opt.Log.Error("replication apply failed", "key", rec.Key, "error", err)
		}
	}
	if repSeq > w.repSeq.Load() {
		w.repSeq.Store(repSeq)
	}
	w.peers.Store(int64(peers))
	for _, id := range cancels {
		w.mu.Lock()
		jobID, ok := w.local[id]
		w.mu.Unlock()
		if ok {
			w.opt.Queue.Cancel(jobID)
		}
	}
}

// waitSlot blocks until at least one capacity slot is free (or ctx
// dies, returning 0) and returns the number of free slots.
func (w *Worker) waitSlot(ctx context.Context) int {
	for {
		w.mu.Lock()
		free := w.opt.Capacity - w.inflight
		w.mu.Unlock()
		if free > 0 {
			return free
		}
		select {
		case <-w.release:
		case <-ctx.Done():
			return 0
		}
	}
}

func (w *Worker) acquireSlot() {
	w.mu.Lock()
	w.inflight++
	w.mu.Unlock()
}

func (w *Worker) releaseSlot() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
	select {
	case w.release <- struct{}{}:
	default:
	}
}

// execute runs one dispatch on the local queue and pushes the outcome.
// The local submit path is the full service path: content-addressed
// dedup against anything already running here, replay from the local
// replica (a result another node computed and replicated arrives as a
// free replay), and the measurement cache under the runner.
func (w *Worker) execute(d Dispatch) {
	// The dispatch carries the submitting request's trace ID inside its
	// Request; it tags this worker's logs and rides the results push
	// back, so one grep over fleet logs reconstructs the job's path.
	rid := d.Request.RequestID
	snap, _, err := w.opt.Queue.Submit(d.Request)
	if err != nil {
		w.pushResult(rid, ResultPush{
			NodeID: w.opt.NodeID, DispatchID: d.ID, Key: d.Key,
			Error: &jobs.ErrorInfo{Message: fmt.Sprintf("worker %s admission: %v", w.opt.NodeID, err)},
		})
		return
	}
	w.opt.Log.Info("dispatch accepted", "dispatch", d.ID, "key", d.Key,
		"job", snap.ID, "request_id", rid)
	w.mu.Lock()
	w.local[d.ID] = snap.ID
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.local, d.ID)
		w.mu.Unlock()
	}()

	done, err := w.opt.Queue.Done(snap.ID)
	if err == nil {
		<-done
	}
	final, _ := w.opt.Queue.Get(snap.ID)
	push := ResultPush{
		NodeID: w.opt.NodeID, DispatchID: d.ID, Key: d.Key,
		At: final.FinishedAt, Instructions: final.Instructions,
	}
	if set, ok, _ := w.opt.Queue.Result(snap.ID); ok {
		push.Set = &set
	} else {
		info := final.Error
		if info == nil {
			info = &jobs.ErrorInfo{Message: "job finished without a result", Canceled: final.State == jobs.StateCanceled}
		}
		push.Error = info
	}
	w.pushResult(rid, push)
}

// pushResult streams one outcome back, retrying briefly — the
// coordinator may be mid-restart. An undeliverable result is logged and
// dropped; the coordinator's expiry path re-dispatches the job. The
// originating request's trace ID travels as X-Request-ID, so the
// coordinator's request log for the push carries the same ID as the
// submission that caused it.
func (w *Worker) pushResult(rid string, push ResultPush) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		if err = w.postRID(context.Background(), rid, "/api/v1/fleet/results", push, nil); err == nil {
			return
		}
	}
	w.opt.Log.Error("result push failed", "dispatch", push.DispatchID, "key", push.Key,
		"request_id", rid, "error", err)
}

func (w *Worker) join() (JoinResponse, error) {
	var resp JoinResponse
	err := w.post("/api/v1/fleet/join", JoinRequest{
		NodeID:   w.opt.NodeID,
		Capacity: w.opt.Capacity,
		RepSeq:   w.repSeq.Load(),
	}, &resp)
	return resp, err
}

func (w *Worker) heartbeat(inflight int) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := w.post("/api/v1/fleet/heartbeat", HeartbeatRequest{
		NodeID:      w.opt.NodeID,
		QueueDepth:  w.opt.Queue.Depth(),
		Inflight:    inflight,
		InstrPerSec: w.opt.Queue.SimulatedInstrPerSec(),
		RepSeq:      w.repSeq.Load(),
	}, &resp)
	return resp, err
}

func (w *Worker) pull(ctx context.Context, max int) (PullResponse, error) {
	var resp PullResponse
	err := w.postCtx(ctx, "/api/v1/fleet/pull", PullRequest{
		NodeID:     w.opt.NodeID,
		Max:        max,
		WaitMillis: w.opt.PullWait.Milliseconds(),
		RepSeq:     w.repSeq.Load(),
	}, &resp)
	return resp, err
}

func (w *Worker) leave() error {
	return w.post("/api/v1/fleet/leave", JoinRequest{NodeID: w.opt.NodeID}, nil)
}

func (w *Worker) post(path string, body, out any) error {
	return w.postCtx(context.Background(), path, body, out)
}

func (w *Worker) postCtx(ctx context.Context, path string, body, out any) error {
	return w.postRID(ctx, "", path, body, out)
}

// postRID is the one HTTP call site: JSON in, JSON out, with the
// coordinator's 404-on-unknown-node mapped to ErrUnknownNode so callers
// can re-join. A non-empty rid travels as X-Request-ID.
func (w *Worker) postRID(ctx context.Context, rid, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := w.opt.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("fleet: %s: %w", path, ErrUnknownNode)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("fleet: %s: decoding response: %w", path, err)
		}
	}
	return nil
}
