package fleet

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"perspector/internal/cache"
)

func ringKeys(n int) []uint64 {
	points := make([]uint64, n)
	for i := range points {
		// Content keys are hex SHA-256, so RingPoint over a hash-shaped
		// string is the realistic input distribution.
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		points[i] = cache.RingPoint(fmt.Sprintf("%x", sum))
	}
	return points
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64) // order must not matter
	for _, p := range ringKeys(2000) {
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("Owner(%d) differs across construction orders: %q vs %q", p, a.Owner(p), b.Owner(p))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, DefaultVNodes)
	counts := make(map[string]int)
	keys := ringKeys(30000)
	for _, p := range keys {
		counts[r.Owner(p)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		// Perfect balance is 1/3; 64 vnodes should keep every node well
		// inside [15%, 55%].
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, outside [15%%, 55%%]", n, 100*share)
		}
	}
}

func TestRingStabilityOnMembershipChange(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, DefaultVNodes)
	after := NewRing([]string{"n1", "n2"}, DefaultVNodes) // n3 left
	keys := ringKeys(10000)
	moved := 0
	for _, p := range keys {
		was, now := before.Owner(p), after.Owner(p)
		if was != "n3" && was != now {
			t.Fatalf("key %d moved from surviving node %q to %q when n3 left", p, was, now)
		}
		if was != now {
			moved++
		}
	}
	// Only n3's arcs may move: roughly a third of the keyspace.
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("%d/%d keys moved when n3 left; want roughly a third", moved, len(keys))
	}
}

func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 64).Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	if got := NewRing([]string{"a", "a", "", "a"}, 8).Len(); got != 1 {
		t.Errorf("ring with duplicate/empty IDs has Len %d, want 1", got)
	}
	one := NewRing([]string{"solo"}, 4)
	for _, p := range []uint64{0, 1 << 63, ^uint64(0)} {
		if got := one.Owner(p); got != "solo" {
			t.Errorf("single-node ring Owner(%d) = %q, want solo", p, got)
		}
	}
}
