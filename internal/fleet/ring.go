package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points
// per node keeps the largest/smallest arc ratio low (load within a few
// percent of even for realistic fleet sizes) while membership changes
// stay cheap: the ring is rebuilt from scratch on join/leave, which for
// tens of nodes is microseconds.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: node IDs expanded into
// virtual points on the uint64 circle. Build a new one on every
// membership change; lookups are a binary search.
type Ring struct {
	points []ringPoint
	nodes  int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing places every node's virtual points on the circle. Duplicate
// node IDs are collapsed. An empty node list yields a ring that owns
// nothing.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes++
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("node=%s\nvnode=%d\n", n, v)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit hash collision between virtual points is vanishingly
		// rare but must still order deterministically on every replica.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning ring position p — the first virtual
// point clockwise from p — or "" on an empty ring.
func (r *Ring) Owner(p uint64) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	if i == len(r.points) {
		i = 0 // wrap: p is past the last point, the first point owns it
	}
	return r.points[i].node
}

// Len returns the number of physical nodes on the ring.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.nodes
}
