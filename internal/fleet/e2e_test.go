package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perspector"
	"perspector/internal/cache"
	"perspector/internal/fleet"
	"perspector/internal/jobs"
	"perspector/internal/metric"
	"perspector/internal/server"
	"perspector/internal/store"
	"perspector/internal/suites"
)

// e2eConfig mirrors the single-node e2e determinism config.
func e2eConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	cfg.Seed = 2023
	return cfg
}

func discardLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// node is one perspectord stack stood up in-process.
type node struct {
	url   string
	queue *jobs.Queue
	store *store.Store
}

// submitAndWait pushes one score job through a node's HTTP API and
// long-polls the ScoreSet out.
func submitAndWait(t *testing.T, url, suite string, cfg suites.Config) store.ScoreSet {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"kind":   "score",
		"suites": []string{suite},
		"config": map[string]any{"instructions": cfg.Instructions, "samples": cfg.Samples, "seed": cfg.Seed},
	})
	resp, err := http.Post(url+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: %d %s", suite, resp.StatusCode, raw)
	}
	var sub struct {
		Job jobs.Snapshot `json:"job"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(url + "/api/v1/jobs/" + sub.Job.ID + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %d %s", suite, resp.StatusCode, raw)
	}
	var set store.ScoreSet
	if err := json.Unmarshal(raw, &set); err != nil {
		t.Fatal(err)
	}
	return set
}

// startSingle stands up a classic single-process perspectord.
func startSingle(t *testing.T) node {
	t.Helper()
	cacheStore, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.EngineRunner(cacheStore), jobs.Options{Workers: 2, Store: st, Log: discardLog()})
	ts := httptest.NewServer(server.New(server.Config{
		Queue: q, Store: st, Cache: cacheStore, Log: discardLog(),
	}).Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Drain(ctx)
		ts.Close()
	})
	return node{url: ts.URL, queue: q, store: st}
}

// startFleet stands up a coordinator with two engine workers and
// returns the coordinator node plus the worker replicas.
func startFleet(t *testing.T) (node, *fleet.Coordinator, []*store.Store) {
	t.Helper()
	coordStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := fleet.NewCoordinator(fleet.CoordinatorOptions{Store: coordStore, Log: discardLog()})
	q := jobs.New(jobs.RemoteRunner(coord), jobs.Options{Workers: 8, MaxQueue: 64, Store: coordStore, Log: discardLog()})
	ts := httptest.NewServer(server.New(server.Config{
		Queue: q, Store: coordStore, Log: discardLog(),
		Role: "coordinator", NodeID: "c0", Coordinator: coord,
	}).Handler())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 2)
	var replicas []*store.Store
	for i := 0; i < 2; i++ {
		workerCache, err := cache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, st)
		wq := jobs.New(jobs.EngineRunner(workerCache), jobs.Options{Workers: 2, MaxQueue: 64, Store: st, Log: discardLog()})
		w, err := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: ts.URL, NodeID: fmt.Sprintf("w%d", i+1),
			Capacity: 2, Queue: wq, Store: st, Log: discardLog(),
			PullWait: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { done <- w.Run(ctx) }()
		t.Cleanup(func() {
			dctx, dc := context.WithTimeout(context.Background(), 10*time.Second)
			defer dc()
			wq.Drain(dctx)
		})
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < 2; i++ {
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("worker run: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Error("worker did not drain")
			}
		}
		dctx, dc := context.WithTimeout(context.Background(), 10*time.Second)
		defer dc()
		q.Drain(dctx)
		ts.Close()
		coord.Close()
	})

	deadline := time.Now().Add(10 * time.Second)
	for coord.Peers() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return node{url: ts.URL, queue: q, store: coordStore}, coord, replicas
}

// TestFleetScoresBitIdentical is the fleet acceptance test: all six
// stock suites scored through a 3-node fleet must be bit-identical to a
// single-node perspectord and to the direct library engine.
func TestFleetScoresBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := e2eConfig()
	names := suites.StockNames()

	// Direct-engine reference, the same path the CLI takes.
	ctx := context.Background()
	opts := perspector.DefaultOptions()
	want := make(map[string]metric.Scores, len(names))
	for _, name := range names {
		s, err := perspector.SuiteByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := perspector.MeasureContext(ctx, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := perspector.ScoreContext(ctx, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = sc
	}

	single := startSingle(t)
	coordNode, coord, replicas := startFleet(t)

	for _, name := range names {
		singleSet := submitAndWait(t, single.url, name, cfg)
		fleetSet := submitAndWait(t, coordNode.url, name, cfg)

		ss, fs := singleSet.Scores(), fleetSet.Scores()
		if len(ss) != 1 || len(fs) != 1 {
			t.Fatalf("%s: score counts single=%d fleet=%d, want 1", name, len(ss), len(fs))
		}
		if fs[0] != want[name] {
			t.Errorf("%s: fleet scores diverge from direct engine:\n got %x\nwant %x", name, fs[0], want[name])
		}
		if fs[0] != ss[0] {
			t.Errorf("%s: fleet scores diverge from single-node perspectord:\n got %x\nwant %x", name, fs[0], ss[0])
		}
		if fleetSet.Source != "simulator" || fleetSet.Kind != store.KindScore {
			t.Errorf("%s: fleet ScoreSet envelope: kind=%q source=%q", name, fleetSet.Kind, fleetSet.Source)
		}
	}

	// The work actually spread across both workers, and every replica —
	// coordinator included — converged to all six documents.
	st := coord.Status()
	var dispatched uint64
	for _, n := range st.Nodes {
		if n.Dispatched == 0 {
			t.Errorf("node %s executed no dispatches; routing did not spread", n.NodeID)
		}
		dispatched += n.Dispatched
	}
	if dispatched != uint64(len(names)) {
		t.Errorf("fleet dispatched %d jobs, want %d", dispatched, len(names))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(coordNode.store.Records()) == len(names) &&
			len(replicas[0].Records()) == len(names) &&
			len(replicas[1].Records()) == len(names) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: coordinator=%d w1=%d w2=%d, want %d",
				len(coordNode.store.Records()), len(replicas[0].Records()),
				len(replicas[1].Records()), len(names))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A resubmission against the coordinator replays from its replica
	// without a new dispatch — the fleet-wide cache at work.
	set := submitAndWait(t, coordNode.url, names[0], cfg)
	if got := set.Scores(); len(got) != 1 || got[0] != want[names[0]] {
		t.Errorf("replayed fleet score diverges:\n got %x\nwant %x", got, want[names[0]])
	}
	if after := coord.Status(); after.RepLen != st.RepLen {
		t.Errorf("resubmission grew the replication log (%d -> %d); expected a coordinator replay", st.RepLen, after.RepLen)
	}
}
