package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsFreeAndSafe(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("background context carries a recorder")
	}
	ctx2, sp := Start(ctx, "anything", String("k", "v"))
	if ctx2 != ctx {
		t.Fatal("Start without recorder derived a new context")
	}
	// All handle methods must be no-ops, not panics.
	sp.SetAttr("a", "b")
	sp.SetWorker(3)
	sp.End()

	var r *Recorder
	r.Count("x", 1)
	if r.Len() != 0 || r.Dropped() != 0 || r.Counters() != nil {
		t.Fatal("nil recorder reports non-empty state")
	}
	f := r.Fold()
	if len(f.Stages) != 0 || f.Spans != 0 {
		t.Fatalf("nil recorder fold: %+v", f)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("nil recorder WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil recorder trace is not valid JSON")
	}
	if WithRecorder(ctx, nil) != ctx {
		t.Fatal("WithRecorder(nil) derived a context")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	ctx1, root := Start(ctx, "run")
	ctx2, child := Start(ctx1, "measure", String("suite", "nbench"))
	_, grand := Start(ctx2, "workload", String("workload", "nbench.fp"))
	grand.End()
	child.End()
	root.End()

	if got := r.Len(); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	spans := r.snapshot()
	byName := map[string]spanRecord{}
	for _, sp := range spans {
		byName[sp.name] = sp
	}
	if byName["run"].parent != -1 {
		t.Fatalf("root parent = %d, want -1", byName["run"].parent)
	}
	if byName["measure"].parent != byName["run"].id {
		t.Fatal("measure is not a child of run")
	}
	if byName["workload"].parent != byName["measure"].id {
		t.Fatal("workload is not a child of measure")
	}
	m := byName["measure"]
	if m.nattr != 1 || m.attrs[0] != (Attr{"suite", "nbench"}) {
		t.Fatalf("measure attrs: %+v", m.attrs[:m.nattr])
	}
	// Containment: child intervals inside parent intervals.
	for _, pair := range [][2]string{{"run", "measure"}, {"measure", "workload"}} {
		p, c := byName[pair[0]], byName[pair[1]]
		if c.start < p.start || c.end > p.end {
			t.Fatalf("%s [%d,%d] not inside %s [%d,%d]", pair[1], c.start, c.end, pair[0], p.start, p.end)
		}
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	_, sp := Start(ctx, "s",
		String("a", "1"), String("b", "2"), String("c", "3"),
		String("d", "4"), String("e", "5"), String("f", "6"))
	sp.SetAttr("g", "7")
	sp.End()
	spans := r.snapshot()
	if spans[0].nattr != maxAttrs {
		t.Fatalf("nattr = %d, want %d", spans[0].nattr, maxAttrs)
	}
}

func TestSpanBoundCountsDrops(t *testing.T) {
	r := NewRecorderBounded(2)
	ctx := WithRecorder(context.Background(), r)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	if r.Len() != 2 {
		t.Fatalf("kept %d spans, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
	m := r.Manifest()
	if m.Dropped != 3 || m.Spans != 2 {
		t.Fatalf("manifest spans=%d dropped=%d", m.Spans, m.Dropped)
	}
}

// TestConcurrentSpans exercises the arena from many goroutines under
// -race: slots are claimed under the lock, ends written by their owners.
func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder()
	root := WithRecorder(context.Background(), r)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, wsp := StartWorker(root, w)
			for i := 0; i < per; i++ {
				_, sp := Start(ctx, "task")
				r.Count("tasks", 1)
				sp.End()
			}
			wsp.End()
		}(w)
	}
	wg.Wait()
	if got := r.Len(); got != workers*(per+1) {
		t.Fatalf("span count = %d, want %d", got, workers*(per+1))
	}
	if got := r.Counters()["tasks"]; got != workers*per {
		t.Fatalf("tasks counter = %d, want %d", got, workers*per)
	}
	f := r.Fold()
	if len(f.WorkerBusy) != workers {
		t.Fatalf("worker busy entries = %d, want %d", len(f.WorkerBusy), workers)
	}
	if f.Stages["task"] == nil || f.Stages["task"].Count != workers*per {
		t.Fatalf("task stage agg: %+v", f.Stages["task"])
	}
	if f.Stages[WorkerSpan] != nil {
		t.Fatal("pool.worker spans leaked into the stage aggregates")
	}
}

func TestStageAggBuckets(t *testing.T) {
	var a StageAgg
	a.Observe(0.0001) // bucket 0 (le 0.001)
	a.Observe(0.05)   // bucket 3 (le 0.1)
	a.Observe(120)    // overflow bucket
	if a.Count != 3 {
		t.Fatalf("count = %d", a.Count)
	}
	want := [len(DurationBuckets) + 1]int64{0: 1, 3: 1, len(DurationBuckets): 1}
	if a.Buckets != want {
		t.Fatalf("buckets = %v, want %v", a.Buckets, want)
	}
}

func TestAggregatorMergeAndSnapshot(t *testing.T) {
	g := NewAggregator()
	r1 := NewRecorder()
	ctx := WithRecorder(context.Background(), r1)
	wctx, wsp := StartWorker(ctx, 0)
	_, sp := Start(wctx, "score")
	sp.End()
	wsp.End()
	time.Sleep(time.Millisecond) // non-zero wall
	g.Add(r1.Fold())
	g.ObserveQueueWait(10 * time.Millisecond)
	g.ObserveQueueWait(20 * time.Millisecond)

	s := g.Snapshot()
	if len(s.Stages) != 1 || s.Stages[0].Name != "score" || s.Stages[0].Agg.Count != 1 {
		t.Fatalf("stages: %+v", s.Stages)
	}
	if s.QueueWait.Count != 2 {
		t.Fatalf("queue wait count = %d", s.QueueWait.Count)
	}
	if len(s.Workers) != 1 || s.Workers[0].Worker != 0 {
		t.Fatalf("workers: %+v", s.Workers)
	}
	if s.WallSeconds <= 0 {
		t.Fatal("wall not accumulated")
	}
	if u := s.Workers[0].Utilization; u < 0 || u > 1 {
		t.Fatalf("utilization %g out of [0,1]", u)
	}
}

func TestManifestCacheRatioAndSorting(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	for _, name := range []string{"zeta", "alpha", "alpha"} {
		_, sp := Start(ctx, name)
		sp.End()
	}
	r.Count(CounterCacheHits, 3)
	r.Count(CounterCacheMisses, 1)
	m := r.Manifest()
	if m.Schema != ManifestSchemaVersion {
		t.Fatalf("schema = %d", m.Schema)
	}
	if len(m.Stages) != 2 || m.Stages[0].Name != "alpha" || m.Stages[1].Name != "zeta" {
		t.Fatalf("stages not sorted: %+v", m.Stages)
	}
	if m.Stages[0].Count != 2 {
		t.Fatalf("alpha count = %d", m.Stages[0].Count)
	}
	if m.Cache == nil || m.Cache.HitRatio != 0.75 {
		t.Fatalf("cache block: %+v", m.Cache)
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Cache.Hits != 3 {
		t.Fatalf("round-tripped hits = %d", back.Cache.Hits)
	}
}

// decodedEvent mirrors traceEvent for decoding.
type decodedEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestTraceRoundTrip pins the -trace-out contract: the output is valid
// trace-event JSON, every span event carries its span/parent ids, child
// spans are strictly nested inside their parents, and events sharing a
// track never partially overlap.
func TestTraceRoundTrip(t *testing.T) {
	r := NewRecorder()
	root := WithRecorder(context.Background(), r)
	rctx, run := Start(root, "run")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, wsp := StartWorker(rctx, w)
			for i := 0; i < 3; i++ {
				_, sp := Start(ctx, "workload", String("suite", "nbench"))
				time.Sleep(time.Microsecond)
				sp.End()
			}
			wsp.End()
		}(w)
	}
	wg.Wait()
	run.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents     []decodedEvent `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	byID := map[int]decodedEvent{}
	var xs []decodedEvent
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, ok := ev.Args["span"].(float64)
		if !ok {
			t.Fatalf("span event without span id: %+v", ev)
		}
		byID[int(id)] = ev
		xs = append(xs, ev)
	}
	if len(xs) != r.Len() {
		t.Fatalf("emitted %d X events for %d spans", len(xs), r.Len())
	}
	// Parent containment, strictly nested.
	for _, ev := range xs {
		pid := int(ev.Args["parent"].(float64))
		if pid < 0 {
			continue
		}
		p, ok := byID[pid]
		if !ok {
			t.Fatalf("span %v has unknown parent %d", ev.Args["span"], pid)
		}
		if ev.Ts < p.Ts || ev.Ts+ev.Dur > p.Ts+p.Dur {
			t.Fatalf("span %s [%g,%g] escapes parent %s [%g,%g]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, p.Name, p.Ts, p.Ts+p.Dur)
		}
	}
	// Track discipline: on one tid, events sorted by start must nest.
	byTid := map[int][]decodedEvent{}
	for _, ev := range xs {
		byTid[ev.Tid] = append(byTid[ev.Tid], ev)
	}
	for tid, evs := range byTid {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		var open []decodedEvent
		for _, ev := range evs {
			for len(open) > 0 && open[len(open)-1].Ts+open[len(open)-1].Dur <= ev.Ts {
				open = open[:len(open)-1]
			}
			if len(open) > 0 {
				top := open[len(open)-1]
				if ev.Ts+ev.Dur > top.Ts+top.Dur {
					t.Fatalf("tid %d: %s [%g,%g] partially overlaps %s [%g,%g]",
						tid, ev.Name, ev.Ts, ev.Ts+ev.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			open = append(open, ev)
		}
	}
	// Worker spans must have landed on named worker tracks.
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names[ev.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"worker 0", "worker 1", "worker 2", "worker 3"} {
		if !names[want] {
			t.Fatalf("missing track %q in %v", want, names)
		}
	}
}

// TestFoldClosesOpenSpans pins that folding a recorder with an
// unfinished span never produces a negative duration.
func TestFoldClosesOpenSpans(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	Start(ctx, "left-open")
	f := r.Fold()
	agg := f.Stages["left-open"]
	if agg == nil || agg.Count != 1 || agg.Sum < 0 {
		t.Fatalf("open-span fold: %+v", agg)
	}
}

// TestFoldNestedPoolsCountOnce pins the double-billing fix: when a pool
// worker's task fans out through a second pool, the inner worker spans
// sit inside the outer worker's interval and must not add busy time of
// their own — otherwise busy fractions exceed 1.
func TestFoldNestedPoolsCountOnce(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	octx, outer := StartWorker(ctx, 0)
	time.Sleep(2 * time.Millisecond)
	for w := 0; w < 2; w++ {
		ictx, inner := StartWorker(octx, w)
		_, sp := Start(ictx, "workload")
		sp.End()
		inner.End()
	}
	outer.End()
	f := r.Fold()
	if len(f.WorkerBusy) != 1 {
		t.Fatalf("WorkerBusy has %d entries, want 1 (outer only): %v", len(f.WorkerBusy), f.WorkerBusy)
	}
	if f.WorkerBusy[0] > f.Wall {
		t.Fatalf("worker 0 busy %g exceeds wall %g — nested pool double-billed", f.WorkerBusy[0], f.Wall)
	}
	if agg := f.Stages["workload"]; agg == nil || agg.Count != 2 {
		t.Fatalf("nested stage spans must still fold: %+v", agg)
	}
	m := r.Manifest()
	for _, w := range m.Workers {
		if w.BusyFraction > 1 {
			t.Fatalf("worker %d busy_fraction %g > 1", w.Worker, w.BusyFraction)
		}
	}
}
