// Package obs is Perspector's pipeline telemetry layer: a Recorder
// carried through context.Context collects nested spans (run → suite →
// stage → workload) with wall time, attributes and counters, and renders
// them three ways — a Chrome trace-event JSON file viewable in Perfetto
// (WriteTrace), a JSON run manifest summarizing per-stage durations and
// pool utilization (Manifest), and an aggregate Fold that perspectord
// merges into its /metrics exposition at job completion.
//
// The package is named obs rather than trace to avoid colliding with
// internal/trace, the counter-trace-file package.
//
// # Design rules
//
//   - Telemetry must never change scores. Spans only observe timestamps;
//     they are outside every numeric path, and the golden equivalence
//     test runs with a live recorder attached to prove it.
//   - A nil recorder costs one pointer check. Start looks up the context
//     once and returns a zero Span when no recorder is attached; every
//     Span and Recorder method is nil-safe, so instrumented code carries
//     no conditionals.
//   - Span collection is allocation-bounded. Records live in preallocated
//     fixed-size chunks that never move (so a Span handle can write its
//     end timestamp without holding the recorder lock), and a hard span
//     cap turns overflow into a dropped-span counter instead of
//     unbounded growth.
//
// Concurrency: StartSpan allocates a record slot under the recorder
// mutex; the returned Span is then owned by the starting goroutine,
// which alone writes the end timestamp and attributes. Readers
// (WriteTrace, Manifest, Fold) must run after the instrumented work has
// completed — in practice after the worker-pool WaitGroup, which
// provides the happens-before edge.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// WorkerSpan is the span name the worker pool records one span per
// worker under; Fold routes these into per-worker busy time rather than
// the stage aggregates, and WriteTrace labels their tracks "worker N".
const WorkerSpan = "pool.worker"

// Names of the counters the caching measurement source maintains; the
// manifest derives its cache hit ratio from them.
const (
	CounterCacheHits   = "cache.hits"
	CounterCacheMisses = "cache.misses"
)

// maxAttrs is the per-span attribute capacity. Spans carry a small fixed
// set (suite, workload, metric, cache verdict); overflow is dropped
// rather than allocated.
const maxAttrs = 4

// chunkSize is the span-arena chunk length. Chunks are allocated whole
// and never reallocated, so record pointers stay valid for the life of
// the recorder.
const chunkSize = 512

// DefaultMaxSpans bounds a recorder's arena. A full compare run over the
// six stock suites records a few thousand spans; the default leaves an
// order of magnitude of headroom while capping worst-case memory at a
// few MiB.
const DefaultMaxSpans = 1 << 16

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// spanRecord is one collected span. Start/end are nanoseconds since the
// recorder epoch (monotonic). worker is -1 when the span is not bound to
// a pool worker.
type spanRecord struct {
	id     int32
	parent int32
	worker int32
	nattr  int32
	name   string
	start  int64
	end    int64
	attrs  [maxAttrs]Attr
}

// Recorder collects spans and counters for one run (one CLI invocation
// or one perspectord job). Create with NewRecorder; attach to a context
// with WithRecorder.
type Recorder struct {
	epoch time.Time // wall+monotonic; all span times are offsets from it

	mu       sync.Mutex
	chunks   [][]spanRecord
	n        int
	max      int
	dropped  int64
	counters map[string]int64
}

// NewRecorder returns an empty recorder bounded at DefaultMaxSpans.
func NewRecorder() *Recorder {
	return NewRecorderBounded(DefaultMaxSpans)
}

// NewRecorderBounded returns an empty recorder that keeps at most
// maxSpans spans; further Start calls count as dropped.
func NewRecorderBounded(maxSpans int) *Recorder {
	if maxSpans < 1 {
		maxSpans = 1
	}
	return &Recorder{
		epoch:    time.Now(),
		max:      maxSpans,
		counters: make(map[string]int64),
	}
}

// since returns nanoseconds since the recorder epoch (monotonic).
func (r *Recorder) since() int64 { return int64(time.Since(r.epoch)) }

// alloc claims the next span slot. Returns nil when the recorder is at
// its span bound (the drop is counted).
func (r *Recorder) alloc(name string, parent int32) *spanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n >= r.max {
		r.dropped++
		return nil
	}
	if r.n%chunkSize == 0 {
		size := chunkSize
		if remain := r.max - r.n; remain < size {
			size = remain
		}
		r.chunks = append(r.chunks, make([]spanRecord, 0, size))
	}
	c := &r.chunks[len(r.chunks)-1]
	*c = append(*c, spanRecord{id: int32(r.n), parent: parent, worker: -1, name: name})
	rec := &(*c)[len(*c)-1]
	r.n++
	return rec
}

// Count adds delta to the named counter. Nil-safe.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counters returns a copy of the counter map. Nil-safe (returns nil).
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Len returns the number of collected spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns the number of spans rejected at the arena bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// snapshot copies the collected records, closing any still-open span at
// the current time so downstream math never sees end < start.
func (r *Recorder) snapshot() []spanRecord {
	now := r.since()
	r.mu.Lock()
	out := make([]spanRecord, 0, r.n)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	r.mu.Unlock()
	for i := range out {
		if out[i].end == 0 {
			out[i].end = now
		}
		if out[i].end < out[i].start {
			out[i].end = out[i].start
		}
	}
	return out
}

// Span is a handle on one started span. The zero Span (from a context
// without a recorder, or past the span bound) is valid and does nothing.
type Span struct {
	r   *Recorder
	rec *spanRecord
}

// End stamps the span's end time. Calling End more than once keeps the
// first stamp.
func (s Span) End() {
	if s.rec == nil || s.rec.end != 0 {
		return
	}
	s.rec.end = s.r.since()
}

// SetWorker binds the span to a pool worker id (its trace track).
func (s Span) SetWorker(w int) {
	if s.rec == nil {
		return
	}
	s.rec.worker = int32(w)
}

// SetAttr adds an attribute to the span; beyond the per-span capacity
// the attribute is dropped. Only the goroutine that started the span may
// call it.
func (s Span) SetAttr(k, v string) {
	if s.rec == nil || s.rec.nattr >= maxAttrs {
		return
	}
	s.rec.attrs[s.rec.nattr] = Attr{Key: k, Value: v}
	s.rec.nattr++
}

// ctxKey carries the recorder and the current span through a context.
type ctxKey struct{}

type spanCtx struct {
	r  *Recorder
	id int32
}

// WithRecorder returns a context carrying r as the active recorder. A
// nil r returns ctx unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{r: r, id: -1})
}

// FromContext returns the recorder attached to ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	return sc.r
}

// Start begins a span named name as a child of ctx's current span and
// returns a derived context carrying it. Without a recorder on ctx (the
// common fast path) it returns ctx unchanged and a zero Span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, Span) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.r == nil {
		return ctx, Span{}
	}
	rec := sc.r.alloc(name, sc.id)
	if rec == nil {
		return ctx, Span{}
	}
	for _, a := range attrs {
		if rec.nattr >= maxAttrs {
			break
		}
		rec.attrs[rec.nattr] = a
		rec.nattr++
	}
	rec.start = sc.r.since()
	return context.WithValue(ctx, ctxKey{}, spanCtx{r: sc.r, id: rec.id}), Span{r: sc.r, rec: rec}
}

// StartWorker begins a pool-worker span bound to worker id w — the spans
// Fold turns into per-worker busy time and WriteTrace into one track per
// worker. The derived context parents subsequent spans under it.
func StartWorker(ctx context.Context, w int) (context.Context, Span) {
	ctx, sp := Start(ctx, WorkerSpan)
	sp.SetWorker(w)
	return ctx, sp
}
