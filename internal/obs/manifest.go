package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DurationBuckets are the fixed histogram bucket upper bounds (seconds)
// for stage latencies and queue wait. Fixed buckets keep the /metrics
// exposition allocation-free and its golden test stable; the range spans
// sub-millisecond metric computations to minute-long simulations.
var DurationBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// StageAgg accumulates observations of one stage: count, total seconds,
// and per-bucket counts (non-cumulative; the exposition layer sums them
// into Prometheus' cumulative le-form).
type StageAgg struct {
	Count   int64
	Sum     float64
	Buckets [len(DurationBuckets) + 1]int64
}

// Observe folds one duration (in seconds) into the aggregate.
func (a *StageAgg) Observe(sec float64) {
	a.Count++
	a.Sum += sec
	for i, ub := range DurationBuckets {
		if sec <= ub {
			a.Buckets[i]++
			return
		}
	}
	a.Buckets[len(DurationBuckets)]++
}

// merge adds b into a.
func (a *StageAgg) merge(b *StageAgg) {
	a.Count += b.Count
	a.Sum += b.Sum
	for i := range a.Buckets {
		a.Buckets[i] += b.Buckets[i]
	}
}

// Fold is the aggregate view of one recorder's spans: per-stage duration
// sums and histograms (keyed by span name), per-worker busy seconds from
// the pool-worker spans, the counters, and the recorder wall time. It is
// what a perspectord job folds into the service-level Aggregator at
// completion, and what the manifest summarizes.
type Fold struct {
	Stages     map[string]*StageAgg
	WorkerBusy map[int]float64
	Wall       float64
	Counters   map[string]int64
	Spans      int
	Dropped    int64
}

// Fold aggregates the collected spans. Only outermost worker spans
// count toward WorkerBusy: when pools nest (a suite fan-out whose
// workers fan out again over workloads), the inner pool's worker spans
// lie inside the outer worker's interval, and counting both would
// double-bill the time and push busy fractions past 1. Nil-safe: a nil
// recorder folds to an empty Fold.
func (r *Recorder) Fold() Fold {
	f := Fold{Stages: map[string]*StageAgg{}, WorkerBusy: map[int]float64{}}
	if r == nil {
		return f
	}
	spans := r.snapshot()
	byID := make(map[int32]int, len(spans))
	for i := range spans {
		byID[spans[i].id] = i
	}
	nested := func(sp *spanRecord) bool {
		for p, ok := byID[sp.parent]; ok; p, ok = byID[spans[p].parent] {
			if spans[p].name == WorkerSpan {
				return true
			}
		}
		return false
	}
	for i := range spans {
		sp := &spans[i]
		sec := float64(sp.end-sp.start) / 1e9
		if sp.name == WorkerSpan {
			if !nested(sp) {
				f.WorkerBusy[int(sp.worker)] += sec
			}
			continue
		}
		agg := f.Stages[sp.name]
		if agg == nil {
			agg = &StageAgg{}
			f.Stages[sp.name] = agg
		}
		agg.Observe(sec)
	}
	f.Wall = float64(r.since()) / 1e9
	f.Counters = r.Counters()
	f.Spans = len(spans)
	f.Dropped = r.Dropped()
	return f
}

// Aggregator merges job Folds into service-lifetime telemetry — the
// source behind perspectord's per-stage histograms, queue-wait histogram
// and worker-utilization gauges. Folding happens once per job at its
// terminal transition (replayed jobs fold nothing), which makes the
// series replay-proof: restarting the service and re-serving stored
// results leaves them unchanged, exactly like the instr/sec gauge.
type Aggregator struct {
	mu         sync.Mutex
	stages     map[string]*StageAgg
	queueWait  StageAgg
	workerBusy map[int]float64
	wall       float64
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stages: map[string]*StageAgg{}, workerBusy: map[int]float64{}}
}

// Add merges one job's Fold.
func (g *Aggregator) Add(f Fold) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for name, agg := range f.Stages {
		dst := g.stages[name]
		if dst == nil {
			dst = &StageAgg{}
			g.stages[name] = dst
		}
		dst.merge(agg)
	}
	for w, busy := range f.WorkerBusy {
		g.workerBusy[w] += busy
	}
	g.wall += f.Wall
}

// ObserveQueueWait folds one job's time-in-queue.
func (g *Aggregator) ObserveQueueWait(d time.Duration) {
	g.mu.Lock()
	g.queueWait.Observe(d.Seconds())
	g.mu.Unlock()
}

// StageSnapshot is one stage's aggregate in a Snapshot, sorted by name.
type StageSnapshot struct {
	Name string
	Agg  StageAgg
}

// WorkerSnapshot is one worker's cumulative busy time plus its
// utilization — busy seconds over the total folded job wall seconds.
type WorkerSnapshot struct {
	Worker      int
	BusySeconds float64
	Utilization float64
}

// Snapshot is a consistent copy of the aggregator for exposition.
type Snapshot struct {
	Stages      []StageSnapshot
	QueueWait   StageAgg
	Workers     []WorkerSnapshot
	WallSeconds float64
}

// Snapshot returns a copy with stages and workers in sorted order, so
// the /metrics rendering is stable for tests and diffing.
func (g *Aggregator) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Snapshot{QueueWait: g.queueWait, WallSeconds: g.wall}
	for name, agg := range g.stages {
		s.Stages = append(s.Stages, StageSnapshot{Name: name, Agg: *agg})
	}
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	for w, busy := range g.workerBusy {
		util := 0.0
		if g.wall > 0 {
			util = busy / g.wall
		}
		s.Workers = append(s.Workers, WorkerSnapshot{Worker: w, BusySeconds: busy, Utilization: util})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// ManifestSchemaVersion identifies the manifest JSON schema.
const ManifestSchemaVersion = 1

// ManifestStage is one stage row of the manifest.
type ManifestStage struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// ManifestWorker is one pool worker's busy time over the run.
type ManifestWorker struct {
	Worker       int     `json:"worker"`
	BusySeconds  float64 `json:"busy_seconds"`
	BusyFraction float64 `json:"busy_fraction"`
}

// ManifestCache summarizes the measurement-cache counters.
type ManifestCache struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// Manifest is the machine-readable run summary written by -manifest:
// where the run's time went (per stage and per worker), how the cache
// behaved, and which result the run produced.
type Manifest struct {
	Schema      int              `json:"schema"`
	Generator   string           `json:"generator,omitempty"`
	WallSeconds float64          `json:"wall_seconds"`
	Stages      []ManifestStage  `json:"stages"`
	Workers     []ManifestWorker `json:"workers,omitempty"`
	Cache       *ManifestCache   `json:"cache,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	Spans       int              `json:"spans"`
	Dropped     int64            `json:"spans_dropped,omitempty"`
	// ResultKey is the SHA-256 content address of the run's ScoreSet
	// document, set by the caller that produced it.
	ResultKey string `json:"result_key,omitempty"`
}

// Manifest summarizes the recorder into the -manifest document.
// Generator and ResultKey are left for the caller. Nil-safe.
func (r *Recorder) Manifest() Manifest {
	f := r.Fold()
	m := Manifest{
		Schema:      ManifestSchemaVersion,
		WallSeconds: f.Wall,
		Stages:      []ManifestStage{},
		Counters:    f.Counters,
		Spans:       f.Spans,
		Dropped:     f.Dropped,
	}
	for name, agg := range f.Stages {
		m.Stages = append(m.Stages, ManifestStage{Name: name, Count: agg.Count, Seconds: agg.Sum})
	}
	sort.Slice(m.Stages, func(i, j int) bool { return m.Stages[i].Name < m.Stages[j].Name })
	workers := make([]int, 0, len(f.WorkerBusy))
	for w := range f.WorkerBusy {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		frac := 0.0
		if f.Wall > 0 {
			frac = f.WorkerBusy[w] / f.Wall
		}
		m.Workers = append(m.Workers, ManifestWorker{Worker: w, BusySeconds: f.WorkerBusy[w], BusyFraction: frac})
	}
	hits, misses := f.Counters[CounterCacheHits], f.Counters[CounterCacheMisses]
	if hits+misses > 0 {
		m.Cache = &ManifestCache{Hits: hits, Misses: misses, HitRatio: float64(hits) / float64(hits+misses)}
	}
	return m
}

// WriteManifest renders m as indented JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}
