package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event JSON object. WriteTrace emits
// complete-duration ("X") events plus "M" metadata events naming the
// tracks; timestamps are microseconds since the recorder epoch.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object envelope Perfetto and chrome://tracing
// both accept.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// lane is one output track during assignment: a stack of currently open
// span end times plus the end of the last span placed on the track.
type lane struct {
	open    []int64 // end times of open spans, outermost first
	lastEnd int64
	label   string
}

// fits reports whether a span [start, end] can be placed on the lane
// without partial overlap: either every open span has closed by start,
// or the span nests inside the innermost still-open one.
func (l *lane) fits(start, end int64) bool {
	for len(l.open) > 0 && l.open[len(l.open)-1] <= start {
		l.open = l.open[:len(l.open)-1]
	}
	if len(l.open) == 0 {
		return start >= l.lastEnd
	}
	return end <= l.open[len(l.open)-1]
}

func (l *lane) place(start, end int64) {
	l.open = append(l.open, end)
	if end > l.lastEnd {
		l.lastEnd = end
	}
}

// assignLanes places the group's spans (indices into spans) onto as few
// lanes as preserve proper nesting, returning the lane index per span.
func assignLanes(spans []spanRecord, group []int, lanes *[]*lane) []int {
	sort.SliceStable(group, func(a, b int) bool {
		sa, sb := &spans[group[a]], &spans[group[b]]
		if sa.start != sb.start {
			return sa.start < sb.start
		}
		if sa.end != sb.end {
			return sa.end > sb.end // longest first: parents before children
		}
		return sa.id < sb.id
	})
	laneOf := make([]int, len(group))
	for gi, i := range group {
		sp := &spans[i]
		placed := -1
		for t, l := range *lanes {
			if l.fits(sp.start, sp.end) {
				placed = t
				break
			}
		}
		if placed < 0 {
			*lanes = append(*lanes, &lane{})
			placed = len(*lanes) - 1
		}
		(*lanes)[placed].place(sp.start, sp.end)
		laneOf[gi] = placed
	}
	return laneOf
}

// WriteTrace renders the collected spans as Chrome trace-event JSON,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing. Tracks are
// assigned by worker lineage: every span whose nearest worker-bound
// ancestor (or itself) is pool worker N lands on a "worker N" track, so
// pool utilization reads directly as track occupancy; spans outside any
// worker land on "main". Within a group extra tracks ("worker N #2") are
// opened only when concurrent pools reuse a worker id and their spans
// would otherwise partially overlap — events on one track always nest.
// Still-open spans are closed at the current time. Nil-safe: a nil
// recorder writes an empty (but valid) trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var spans []spanRecord
	if r != nil {
		spans = r.snapshot()
	}
	// Worker lineage: self if bound, else nearest bound ancestor, else -1.
	byID := make(map[int32]int, len(spans))
	for i := range spans {
		byID[spans[i].id] = i
	}
	lineage := make([]int, len(spans)) // memo, shifted by two so 0 = unset
	var lineageOf func(i int) int
	lineageOf = func(i int) int {
		if lineage[i] != 0 {
			return lineage[i] - 2
		}
		sp := &spans[i]
		w := -1
		if sp.worker >= 0 {
			w = int(sp.worker)
		} else if p, ok := byID[sp.parent]; ok {
			w = lineageOf(p)
		}
		lineage[i] = w + 2
		return w
	}
	groups := map[int][]int{}
	for i := range spans {
		w := lineageOf(i)
		groups[w] = append(groups[w], i)
	}
	order := make([]int, 0, len(groups))
	for w := range groups {
		order = append(order, w)
	}
	sort.Ints(order) // -1 (main) first, then worker ids ascending

	tidOf := make([]int, len(spans))
	var labels []string
	for _, wid := range order {
		var lanes []*lane
		laneOf := assignLanes(spans, groups[wid], &lanes)
		base := len(labels)
		for t := range lanes {
			var label string
			switch {
			case wid < 0 && t == 0:
				label = "main"
			case wid < 0:
				label = fmt.Sprintf("track %d", t)
			case t == 0:
				label = fmt.Sprintf("worker %d", wid)
			default:
				label = fmt.Sprintf("worker %d #%d", wid, t+1)
			}
			labels = append(labels, label)
		}
		for gi, i := range groups[wid] {
			tidOf[i] = base + laneOf[gi]
		}
	}

	events := make([]traceEvent, 0, len(spans)+len(labels)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "perspector"},
	})
	for t, label := range labels {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": label},
		})
	}
	for i := range spans {
		sp := &spans[i]
		dur := float64(sp.end-sp.start) / 1e3
		args := map[string]any{"span": int(sp.id), "parent": int(sp.parent)}
		if sp.worker >= 0 {
			args["worker"] = int(sp.worker)
		}
		for _, a := range sp.attrs[:sp.nattr] {
			args[a.Key] = a.Value
		}
		events = append(events, traceEvent{
			Name: sp.name, Cat: "perspector", Ph: "X",
			Ts: float64(sp.start) / 1e3, Dur: &dur,
			Pid: 1, Tid: tidOf[i], Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
