package perfhist

import (
	"context"
	"os"
	"sync"
	"time"
)

// Service wraps a history file for serving: it reloads the JSONL
// whenever the file's size or mtime changes, so perspectord's /perf
// dashboard and trend endpoints stay live while benchjson appends new
// runs — no restart, no watcher goroutine, just a cheap stat on each
// query (the log changes a few times per day; a stat per request is
// noise next to the JSON encode).
type Service struct {
	path string

	mu      sync.Mutex
	hist    *History
	size    int64
	modTime time.Time
	loaded  bool
}

// NewService returns a service over the history file at path. The file
// need not exist yet; it is (re)read lazily on first query.
func NewService(path string) *Service {
	return &Service{path: path}
}

// Path returns the history file path the service serves.
func (s *Service) Path() string { return s.path }

// History returns the current history, reloading from disk when the
// file has changed since the last load. The returned History is shared
// and must be treated as read-only.
func (s *Service) History(ctx context.Context) (*History, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := os.Stat(s.path)
	if os.IsNotExist(err) {
		// Vanished (or never existed): serve empty, and forget the old
		// stat so a recreated file triggers a reload.
		s.hist = &History{}
		s.loaded = true
		s.size, s.modTime = 0, time.Time{}
		return s.hist, nil
	}
	if err != nil {
		return nil, err
	}
	if s.loaded && st.Size() == s.size && st.ModTime().Equal(s.modTime) {
		return s.hist, nil
	}
	h, err := Load(ctx, s.path)
	if err != nil {
		return nil, err
	}
	s.hist = h
	s.size, s.modTime = st.Size(), st.ModTime()
	s.loaded = true
	return h, nil
}
