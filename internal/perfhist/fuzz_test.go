package perfhist

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the history decoder. The
// invariants: Decode never errors on record-level garbage (only on
// reader failure, which bytes.Reader cannot produce), never panics,
// and every record it does return passes Validate — i.e. corruption is
// counted in Skipped, never half-admitted.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"generated_at":"2026-08-01T00:00:00Z","goos":"linux","goarch":"amd64","go_version":"go1.24","benchmarks":[{"name":"B","ns_per_op":100,"iterations":3}]}` + "\n"))
	f.Add([]byte(`{"generated_at":"2026-08-01T00:00:00Z","goos":"linux","goarch":"amd64","benchmarks":[{"name":"B","ns_per_op":1e308}]}` + "\n{torn"))
	f.Add([]byte(`{"benchmarks":[{"name":"","ns_per_op":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Decode errored on in-memory input: %v", err)
		}
		for i := range h.Records {
			if err := h.Records[i].Validate(); err != nil {
				t.Fatalf("admitted invalid record %d: %v", i, err)
			}
		}
		// CheckLog must also never panic on the same input.
		_ = CheckLog(bytes.NewReader(data))
	})
}
