package perfhist

import (
	"context"
	"fmt"

	"perspector/internal/obs"
	"perspector/internal/stat"
)

// CompareOptions tunes the paired A/B significance rule.
type CompareOptions struct {
	// MinEffect is the relative change too small to care about even if
	// it clears the noise band (default 0.02 — 2%).
	MinEffect float64
	// NoiseMult scales the observed noise into the significance band
	// (default 2: a delta must exceed twice the larger side's
	// within-run spread).
	NoiseMult float64
}

// DefaultCompareOptions returns the comparator defaults.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{MinEffect: 0.02, NoiseMult: 2}
}

func (o *CompareOptions) normalize() {
	if o.MinEffect <= 0 {
		o.MinEffect = 0.02
	}
	if o.NoiseMult <= 0 {
		o.NoiseMult = 2
	}
}

// Verdict is the machine-readable outcome of one paired A/B
// comparison. A is the baseline; positive RelDelta means B is slower.
type Verdict struct {
	Bench string `json:"bench"`
	// Rounds is how many interleaved (A,B) pairs were measured.
	Rounds int `json:"rounds"`
	// Best-of and median ns/op per side. Min is the point estimate:
	// scheduling noise only ever slows a run down, so the fastest
	// observation is the least contaminated one.
	ABestNs   float64 `json:"a_best_ns_per_op"`
	AMedianNs float64 `json:"a_median_ns_per_op"`
	BBestNs   float64 `json:"b_best_ns_per_op"`
	BMedianNs float64 `json:"b_median_ns_per_op"`
	// RelDelta is (BBest − ABest) / ABest.
	RelDelta float64 `json:"rel_delta"`
	// Noise is the larger side's relative spread (median − min)/min —
	// the machine's same-moment repeatability, measured from the very
	// rounds being compared.
	Noise float64 `json:"noise"`
	// Band is what |RelDelta| had to exceed: NoiseMult·Noise + MinEffect.
	Band float64 `json:"band"`
	// Significant marks |RelDelta| > Band; Regressed additionally
	// requires the slow direction (RelDelta > 0).
	Significant bool `json:"significant"`
	Regressed   bool `json:"regressed"`
	// Summary is a one-line human rendering of the verdict.
	Summary string `json:"summary"`
}

// Compare judges two interleaved best-of-N samples of ns/op. aNs[i]
// and bNs[i] must come from the same round — A then B measured
// back-to-back — so slow machine moments (thermal throttling, a noisy
// neighbor) hit both sides of a pair rather than biasing one. This is
// the "paired same-moment A/B" of the ROADMAP: naive mean-vs-mean of
// two separate runs confounds the code change with whatever else the
// machine was doing.
//
// The rule: point estimates are per-side minima, noise is the larger
// side's relative spread (median−min)/min, and the delta is
// significant only when it clears NoiseMult·noise + MinEffect. On a
// quiet machine the band collapses to MinEffect; on a noisy one it
// widens so honest jitter cannot fire the gate.
func Compare(ctx context.Context, bench string, aNs, bNs []float64, opt CompareOptions) (Verdict, error) {
	_, sp := obs.Start(ctx, "perfhist.compare", obs.String("bench", bench))
	defer sp.End()
	opt.normalize()
	if len(aNs) == 0 || len(bNs) == 0 {
		return Verdict{}, fmt.Errorf("perfhist: compare needs at least one round per side")
	}
	if len(aNs) != len(bNs) {
		return Verdict{}, fmt.Errorf("perfhist: unpaired rounds: %d A vs %d B", len(aNs), len(bNs))
	}
	for i := range aNs {
		if aNs[i] <= 0 || bNs[i] <= 0 {
			return Verdict{}, fmt.Errorf("perfhist: non-positive ns/op in round %d", i)
		}
	}
	v := Verdict{Bench: bench, Rounds: len(aNs)}
	v.ABestNs, v.AMedianNs = bestAndMedian(aNs)
	v.BBestNs, v.BMedianNs = bestAndMedian(bNs)
	v.RelDelta = (v.BBestNs - v.ABestNs) / v.ABestNs
	aNoise := (v.AMedianNs - v.ABestNs) / v.ABestNs
	bNoise := (v.BMedianNs - v.BBestNs) / v.BBestNs
	v.Noise = aNoise
	if bNoise > v.Noise {
		v.Noise = bNoise
	}
	v.Band = opt.NoiseMult*v.Noise + opt.MinEffect
	v.Significant = v.RelDelta > v.Band || v.RelDelta < -v.Band
	v.Regressed = v.Significant && v.RelDelta > 0
	switch {
	case v.Regressed:
		v.Summary = fmt.Sprintf("%s: REGRESSED %+.1f%% (band ±%.1f%%, noise %.1f%%, %d rounds)",
			bench, 100*v.RelDelta, 100*v.Band, 100*v.Noise, v.Rounds)
	case v.Significant:
		v.Summary = fmt.Sprintf("%s: improved %+.1f%% (band ±%.1f%%, noise %.1f%%, %d rounds)",
			bench, 100*v.RelDelta, 100*v.Band, 100*v.Noise, v.Rounds)
	default:
		v.Summary = fmt.Sprintf("%s: no significant change (%+.1f%% within ±%.1f%%, noise %.1f%%, %d rounds)",
			bench, 100*v.RelDelta, 100*v.Band, 100*v.Noise, v.Rounds)
	}
	sp.SetAttr("significant", fmt.Sprint(v.Significant))
	sp.SetAttr("regressed", fmt.Sprint(v.Regressed))
	return v, nil
}

// bestAndMedian returns the minimum and median of xs without mutating it.
func bestAndMedian(xs []float64) (best, median float64) {
	s := append([]float64(nil), xs...)
	best = s[0]
	for _, x := range s[1:] {
		if x < best {
			best = x
		}
	}
	return best, stat.Percentile(s, 50)
}
