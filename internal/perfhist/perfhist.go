// Package perfhist turns the repository's benchmark trajectory into a
// queryable subsystem. cmd/benchjson appends one Record per run to
// BENCH_history.jsonl — an append-only JSONL log carrying the git SHA,
// goos/goarch, go version and timestamp of every measurement — and this
// package ingests that log, indexes it by benchmark name and commit,
// and computes trend statistics over it:
//
//   - per-benchmark, per-commit aggregates (min/median/p90 ns_per_op,
//     best/median simulated instr/sec across the runs of one SHA),
//   - deltas between consecutive commits with a noise-aware regression
//     verdict (the within-commit spread of repeated runs is the noise
//     estimate the across-commit delta must clear),
//   - a distribution gate: fail a fresh run that lands below a low
//     percentile of the last K same-machine-class runs (Gate), and
//   - a paired same-moment A/B comparator for interleaved best-of-N
//     runs (Compare, in compare.go) — the primitive behind
//     `benchjson compare` and the CI regression gate.
//
// The decoder follows the same torn-tail discipline as internal/store:
// an append-only log's only crash corruption is a garbled or truncated
// line, so undecodable lines are skipped and every complete record
// around them survives. Records from older schema revisions (PR-6 rows
// without the fields added since) decode with zero values and
// participate in every query.
package perfhist

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"perspector/internal/obs"
	"perspector/internal/stat"
)

// Benchmark is one benchmark's measurement inside a Record — the same
// JSON schema cmd/benchjson has written since PR 4.
type Benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Iterations is the b.N the benchmark driver settled on.
	Iterations int `json:"iterations"`
	// SimulatedInstrPerOp is how many simulated instructions one op
	// executes (0 for benchmarks that are not instruction-granular).
	SimulatedInstrPerOp uint64 `json:"simulated_instr_per_op,omitempty"`
	// SimulatedInstrPerSec is the headline throughput figure.
	SimulatedInstrPerSec float64 `json:"simulated_instr_per_sec,omitempty"`
}

// Record is one benchjson run: build metadata plus every benchmark it
// measured. Rounds and Note were added with the perf-history service;
// older history rows lack them and decode with zero values.
type Record struct {
	GeneratedAt time.Time `json:"generated_at"`
	GitSHA      string    `json:"git_sha,omitempty"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	// Rounds is how many repetitions the suite benchmark kept the best
	// of (0 on pre-perfhist rows: a single round).
	Rounds int `json:"rounds,omitempty"`
	// Note tags the run's origin ("ci", "gate", …); free-form.
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Class is the machine class a record was measured on. Records from
// different classes are never compared by the distribution gate:
// absolute ns/op across machine generations is exactly the
// cross-machine comparison the paper warns against.
type Class struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

// Class returns the record's machine class.
func (r *Record) Class() Class { return Class{GOOS: r.GOOS, GOARCH: r.GOARCH} }

// Validate reports whether the record is structurally usable: a
// timestamp, a platform, and at least one benchmark with a positive
// ns/op. Records failing it are skipped on ingest.
func (r *Record) Validate() error {
	if r.GeneratedAt.IsZero() {
		return fmt.Errorf("perfhist: record without generated_at")
	}
	if r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("perfhist: record without goos/goarch")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("perfhist: record without benchmarks")
	}
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("perfhist: benchmark without a name")
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("perfhist: benchmark %s with ns_per_op %g", b.Name, b.NsPerOp)
		}
	}
	return nil
}

// Bench returns the named benchmark's row, if the record has one.
func (r *Record) Bench(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// History is an ingested benchmark-history log: records in file order
// (which for an append-only log is arrival order), plus the skipped
// line count so callers can surface corruption instead of hiding it.
type History struct {
	Records []Record
	// Skipped counts lines that did not decode or validate — a torn
	// tail, a hand-edit, or a foreign schema.
	Skipped int
}

// Decode ingests a history log from r. It never fails on record-level
// corruption — undecodable or invalid lines are counted in Skipped —
// and only returns an error when reading r itself fails.
func Decode(r io.Reader) (*History, error) {
	h := &History{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			h.Skipped++
			continue
		}
		if rec.Validate() != nil {
			h.Skipped++
			continue
		}
		h.Records = append(h.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfhist: %w", err)
	}
	return h, nil
}

// Load ingests the history file at path. A missing file is an empty
// history, not an error: a fresh checkout has no trajectory yet.
func Load(ctx context.Context, path string) (*History, error) {
	_, sp := obs.Start(ctx, "perfhist.ingest", obs.String("path", path))
	defer sp.End()
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &History{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perfhist: %w", err)
	}
	defer f.Close()
	h, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("perfhist: %s: %w", path, err)
	}
	sp.SetAttr("records", fmt.Sprint(len(h.Records)))
	sp.SetAttr("skipped", fmt.Sprint(h.Skipped))
	return h, nil
}

// BenchNames returns every benchmark name seen in the history, in
// first-seen order.
func (h *History) BenchNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, r := range h.Records {
		for _, b := range r.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}
	return names
}

// Runs returns the named benchmark's rows across the history, paired
// with their records, in file order. Class filters to one machine
// class when non-zero.
func (h *History) Runs(name string, class Class) []Run {
	var out []Run
	for i := range h.Records {
		rec := &h.Records[i]
		if class != (Class{}) && rec.Class() != class {
			continue
		}
		if b, ok := rec.Bench(name); ok {
			out = append(out, Run{Record: rec, Bench: b})
		}
	}
	return out
}

// Run is one benchmark measurement with its run's metadata.
type Run struct {
	Record *Record
	Bench  Benchmark
}

// shortSHA abbreviates a git SHA for display.
func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// TrendPoint aggregates one benchmark's runs at one commit. Repeated
// runs of the same SHA are the noise sample: their spread is what a
// cross-commit delta must clear to count as a real change.
type TrendPoint struct {
	GitSHA   string `json:"git_sha"`
	ShortSHA string `json:"short_sha"`
	// FirstAt/LastAt bound the runs folded into this point.
	FirstAt time.Time `json:"first_at"`
	LastAt  time.Time `json:"last_at"`
	Runs    int       `json:"runs"`
	// ns/op aggregates. Min is the headline (OS noise only ever slows a
	// run down, so the fastest observation is the least contaminated).
	MinNsPerOp    float64 `json:"min_ns_per_op"`
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	P90NsPerOp    float64 `json:"p90_ns_per_op"`
	// Simulated throughput aggregates (0 when the benchmark is not
	// instruction-granular).
	BestInstrPerSec   float64 `json:"best_instr_per_sec,omitempty"`
	MedianInstrPerSec float64 `json:"median_instr_per_sec,omitempty"`
	// Noise is the relative within-commit spread,
	// (median − min) / min of ns/op — 0 for a single run.
	Noise float64 `json:"noise"`
}

// Trend is one benchmark's trajectory across commits, oldest first.
type Trend struct {
	Name   string       `json:"name"`
	Points []TrendPoint `json:"points"`
	// Delta compares the newest point against the previous one; nil
	// with fewer than two points.
	Delta *Delta `json:"delta,omitempty"`
}

// Delta is a cross-commit comparison of two trend points through the
// same noise-aware rule as the paired comparator: the relative change
// of best-of ns/op must clear the combined within-commit noise plus
// the minimum effect size to be called significant.
type Delta struct {
	FromSHA string `json:"from_sha"`
	ToSHA   string `json:"to_sha"`
	// RelNsPerOp is (to.Min − from.Min) / from.Min: positive = slower.
	RelNsPerOp float64 `json:"rel_ns_per_op"`
	// RelInstrPerSec is (to.Best − from.Best) / from.Best: negative =
	// less throughput. 0 when either side lacks the figure.
	RelInstrPerSec float64 `json:"rel_instr_per_sec,omitempty"`
	// Noise is the band the delta must clear: the larger within-commit
	// spread of the two points plus MinEffect.
	Noise float64 `json:"noise"`
	// Significant marks |RelNsPerOp| > Noise + MinEffect; Regressed
	// additionally requires the slow direction.
	Significant bool `json:"significant"`
	Regressed   bool `json:"regressed"`
}

// Trends computes every benchmark's trajectory for one machine class
// (zero Class folds all classes together — only useful for display,
// never for gating). Points group runs by git SHA in first-seen order;
// runs without a SHA group under "unknown".
func (h *History) Trends(ctx context.Context, class Class) []Trend {
	_, sp := obs.Start(ctx, "perfhist.trends")
	defer sp.End()
	var out []Trend
	for _, name := range h.BenchNames() {
		runs := h.Runs(name, class)
		if len(runs) == 0 {
			continue
		}
		t := Trend{Name: name, Points: trendPoints(runs)}
		if n := len(t.Points); n >= 2 {
			t.Delta = compareTrendPoints(t.Points[n-2], t.Points[n-1])
		}
		out = append(out, t)
	}
	sp.SetAttr("benchmarks", fmt.Sprint(len(out)))
	return out
}

// trendPoints groups runs by SHA in first-seen order and aggregates
// each group.
func trendPoints(runs []Run) []TrendPoint {
	var order []string
	bySHA := make(map[string][]Run)
	for _, r := range runs {
		sha := r.Record.GitSHA
		if sha == "" {
			sha = "unknown"
		}
		if _, ok := bySHA[sha]; !ok {
			order = append(order, sha)
		}
		bySHA[sha] = append(bySHA[sha], r)
	}
	out := make([]TrendPoint, 0, len(order))
	for _, sha := range order {
		out = append(out, aggregatePoint(sha, bySHA[sha]))
	}
	return out
}

func aggregatePoint(sha string, runs []Run) TrendPoint {
	p := TrendPoint{GitSHA: sha, ShortSHA: shortSHA(sha), Runs: len(runs)}
	ns := make([]float64, 0, len(runs))
	var ips []float64
	for _, r := range runs {
		ns = append(ns, r.Bench.NsPerOp)
		if r.Bench.SimulatedInstrPerSec > 0 {
			ips = append(ips, r.Bench.SimulatedInstrPerSec)
		}
		at := r.Record.GeneratedAt
		if p.FirstAt.IsZero() || at.Before(p.FirstAt) {
			p.FirstAt = at
		}
		if at.After(p.LastAt) {
			p.LastAt = at
		}
	}
	sort.Float64s(ns)
	p.MinNsPerOp = ns[0]
	p.MedianNsPerOp = stat.Percentile(ns, 50)
	p.P90NsPerOp = stat.Percentile(ns, 90)
	if p.MinNsPerOp > 0 {
		p.Noise = (p.MedianNsPerOp - p.MinNsPerOp) / p.MinNsPerOp
	}
	if len(ips) > 0 {
		sort.Float64s(ips)
		p.BestInstrPerSec = ips[len(ips)-1]
		p.MedianInstrPerSec = stat.Percentile(ips, 50)
	}
	return p
}

// compareTrendPoints applies the noise-aware significance rule to two
// commits' aggregates.
func compareTrendPoints(from, to TrendPoint) *Delta {
	d := &Delta{FromSHA: from.GitSHA, ToSHA: to.GitSHA}
	if from.MinNsPerOp > 0 {
		d.RelNsPerOp = (to.MinNsPerOp - from.MinNsPerOp) / from.MinNsPerOp
	}
	if from.BestInstrPerSec > 0 && to.BestInstrPerSec > 0 {
		d.RelInstrPerSec = (to.BestInstrPerSec - from.BestInstrPerSec) / from.BestInstrPerSec
	}
	d.Noise = from.Noise
	if to.Noise > d.Noise {
		d.Noise = to.Noise
	}
	opt := DefaultCompareOptions()
	band := opt.NoiseMult*d.Noise + opt.MinEffect
	d.Significant = d.RelNsPerOp > band || d.RelNsPerOp < -band
	d.Regressed = d.Significant && d.RelNsPerOp > 0
	return d
}

// GateOptions tunes the history-distribution gate.
type GateOptions struct {
	// LastK bounds how many recent same-class runs form the reference
	// distribution (default 10).
	LastK int
	// Percentile is the low percentile of the reference distribution a
	// fresh run must not fall below (default 10 — the p10 floor).
	Percentile float64
	// Slack relaxes the floor by a relative margin, absorbing honest
	// single-digit machine drift (default 0.05; negative means no
	// slack).
	Slack float64
	// MinRuns is how many reference runs the gate needs before it will
	// judge at all (default 3): with fewer the verdict is Inconclusive,
	// never a failure.
	MinRuns int
}

// DefaultGateOptions returns the gate defaults.
func DefaultGateOptions() GateOptions {
	return GateOptions{LastK: 10, Percentile: 10, Slack: 0.05, MinRuns: 3}
}

func (o *GateOptions) normalize() {
	if o.LastK <= 0 {
		o.LastK = 10
	}
	if o.Percentile <= 0 || o.Percentile >= 100 {
		o.Percentile = 10
	}
	if o.Slack == 0 {
		o.Slack = 0.05
	} else if o.Slack < 0 {
		o.Slack = 0
	}
	if o.MinRuns < 1 {
		o.MinRuns = 3
	}
}

// GateResult is the machine-readable verdict of one distribution gate.
type GateResult struct {
	Bench string `json:"bench"`
	Class Class  `json:"class"`
	// Current is the fresh run's simulated instr/sec.
	Current float64 `json:"current_instr_per_sec"`
	// Floor is the value Current must not fall below: the reference
	// distribution's percentile relaxed by Slack. 0 when inconclusive.
	Floor float64 `json:"floor_instr_per_sec"`
	// Reference describes the distribution: how many runs, their
	// percentile value and best.
	ReferenceRuns int     `json:"reference_runs"`
	Percentile    float64 `json:"percentile"`
	Best          float64 `json:"best_instr_per_sec"`
	// Pass is false only on a confident regression verdict.
	Pass bool `json:"pass"`
	// Inconclusive marks a gate with too little same-class history to
	// judge; Pass is true in that case and Reason says why.
	Inconclusive bool   `json:"inconclusive,omitempty"`
	Reason       string `json:"reason,omitempty"`
}

// Gate judges a fresh instr/sec figure for one benchmark against the
// distribution of the last K same-machine-class history runs: the run
// fails when it falls below the reference percentile (relaxed by
// Slack). Unlike a fixed-tolerance snapshot check, the floor tracks
// what this machine class has actually sustained recently — a slow
// trend tightens it and noisy history widens nothing (the percentile
// is robust to upward outliers by construction).
func (h *History) Gate(ctx context.Context, bench string, class Class, current float64, opt GateOptions) GateResult {
	_, sp := obs.Start(ctx, "perfhist.gate", obs.String("bench", bench))
	defer sp.End()
	opt.normalize()
	res := GateResult{Bench: bench, Class: class, Current: current, Percentile: opt.Percentile, Pass: true}
	if current <= 0 {
		res.Inconclusive = true
		res.Reason = "run has no simulated instr/sec figure"
		return res
	}
	runs := h.Runs(bench, class)
	var sample []float64
	for _, r := range runs {
		if r.Bench.SimulatedInstrPerSec > 0 {
			sample = append(sample, r.Bench.SimulatedInstrPerSec)
		}
	}
	if len(sample) > opt.LastK {
		sample = sample[len(sample)-opt.LastK:]
	}
	res.ReferenceRuns = len(sample)
	if len(sample) < opt.MinRuns {
		res.Inconclusive = true
		res.Reason = fmt.Sprintf("only %d same-class reference runs (need %d)", len(sample), opt.MinRuns)
		return res
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	res.Best = sorted[len(sorted)-1]
	res.Floor = stat.Percentile(sorted, opt.Percentile) * (1 - opt.Slack)
	if current < res.Floor {
		res.Pass = false
		res.Reason = fmt.Sprintf("%.3g instr/sec below the p%g floor %.3g of the last %d %s/%s runs",
			current, opt.Percentile, res.Floor, len(sample), class.GOOS, class.GOARCH)
	}
	sp.SetAttr("pass", fmt.Sprint(res.Pass))
	return res
}

// CheckLog validates a history log the way obscheck consumes it: every
// line must decode and validate (no skips tolerated — the committed
// log is supposed to be clean), and within each SHA the timestamps
// must be monotone non-decreasing in file order (an append-only log
// accrues time forward; a violation means hand-editing or clock
// trouble). Returns one message per violation.
func CheckLog(r io.Reader) []string {
	var errs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lastAt := make(map[string]time.Time)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			errs = append(errs, fmt.Sprintf("line %d: undecodable: %v", lineNo, err))
			continue
		}
		if err := rec.Validate(); err != nil {
			errs = append(errs, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		sha := rec.GitSHA
		if sha == "" {
			sha = "unknown"
		}
		if prev, ok := lastAt[sha]; ok && rec.GeneratedAt.Before(prev) {
			errs = append(errs, fmt.Sprintf("line %d: %s timestamp %s precedes earlier run %s of the same SHA",
				lineNo, shortSHA(sha), rec.GeneratedAt.Format(time.RFC3339), prev.Format(time.RFC3339)))
		}
		lastAt[sha] = rec.GeneratedAt
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err.Error())
	}
	if lineNo == 0 {
		errs = append(errs, "history is empty")
	}
	return errs
}
