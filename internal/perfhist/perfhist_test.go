package perfhist

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mkRecord(sha string, at time.Time, benches map[string][2]float64) Record {
	r := Record{
		GeneratedAt: at,
		GitSHA:      sha,
		GoVersion:   "go1.24",
		GOOS:        "linux",
		GOARCH:      "amd64",
	}
	for name, v := range benches {
		b := Benchmark{Name: name, NsPerOp: v[0], Iterations: 10}
		if v[1] > 0 {
			b.SimulatedInstrPerSec = v[1]
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r
}

func writeHistory(t *testing.T, recs ...Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	var sb strings.Builder
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDecodeTornTail(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	r1 := mkRecord("aaa", base, map[string][2]float64{"SimulateSuite": {100, 1e6}})
	r2 := mkRecord("bbb", base.Add(time.Hour), map[string][2]float64{"SimulateSuite": {110, 0.9e6}})
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	// A torn tail: the last line is a truncated JSON object with no
	// newline — exactly what a crash mid-append leaves behind.
	raw := string(b1) + "\n" + string(b2) + "\n" + string(b2[:len(b2)/2])
	h, err := Decode(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(h.Records))
	}
	if h.Skipped != 1 {
		t.Fatalf("got %d skipped, want 1", h.Skipped)
	}
	if h.Records[0].GitSHA != "aaa" || h.Records[1].GitSHA != "bbb" {
		t.Fatalf("records out of order: %+v", h.Records)
	}
}

func TestDecodeMixedSchema(t *testing.T) {
	// An old PR-6 row: no rounds, no note, no instr_per_sec — fields
	// added since must decode as zero values, and the row must still
	// participate in queries.
	old := `{"generated_at":"2026-07-01T10:00:00Z","git_sha":"oldsha","go_version":"go1.24","goos":"linux","goarch":"amd64","benchmarks":[{"name":"SimulateSuite","ns_per_op":151000000,"iterations":7}]}`
	nw := mkRecord("newsha", time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
		map[string][2]float64{"SimulateSuite": {149e6, 27e6}})
	nw.Rounds = 5
	nw.Note = "ci"
	b, _ := json.Marshal(nw)
	h, err := Decode(strings.NewReader(old + "\n" + string(b) + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Skipped != 0 || len(h.Records) != 2 {
		t.Fatalf("skipped=%d records=%d, want 0/2", h.Skipped, len(h.Records))
	}
	if h.Records[0].Rounds != 0 || h.Records[0].Note != "" {
		t.Fatalf("old row grew fields: %+v", h.Records[0])
	}
	runs := h.Runs("SimulateSuite", Class{GOOS: "linux", GOARCH: "amd64"})
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2 (old row must participate)", len(runs))
	}
}

func TestDecodeSkipsInvalidRecords(t *testing.T) {
	lines := []string{
		`not json at all`,
		`{"generated_at":"2026-08-01T00:00:00Z","goos":"linux","goarch":"amd64","go_version":"go1.24","benchmarks":[]}`,                                      // no benchmarks
		`{"generated_at":"2026-08-01T00:00:00Z","goos":"linux","goarch":"amd64","go_version":"go1.24","benchmarks":[{"name":"X","ns_per_op":-5}]}`,           // bad ns
		`{"goos":"linux","goarch":"amd64","go_version":"go1.24","benchmarks":[{"name":"X","ns_per_op":5}]}`,                                                  // no timestamp
		`{"generated_at":"2026-08-01T00:00:00Z","go_version":"go1.24","benchmarks":[{"name":"X","ns_per_op":5}]}`,                                            // no platform
		`{"generated_at":"2026-08-01T00:00:00Z","goos":"linux","goarch":"amd64","go_version":"go1.24","benchmarks":[{"name":"OK","ns_per_op":5,"iterations":1}]}`, // valid
	}
	h, err := Decode(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 1 || h.Skipped != 5 {
		t.Fatalf("records=%d skipped=%d, want 1/5", len(h.Records), h.Skipped)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	h, err := Load(context.Background(), filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 0 || h.Skipped != 0 {
		t.Fatalf("missing file not empty: %+v", h)
	}
}

func TestTrendsAggregatesAndDelta(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	// Three runs of SHA a (noisy: 100, 104, 120), then three of SHA b
	// that are clearly slower (150, 151, 155) — far outside the band.
	var recs []Record
	for i, ns := range []float64{100, 104, 120} {
		recs = append(recs, mkRecord("aaaaaaaaaaaaaaaa", base.Add(time.Duration(i)*time.Minute),
			map[string][2]float64{"Bench": {ns, 1e9 / ns}}))
	}
	for i, ns := range []float64{150, 151, 155} {
		recs = append(recs, mkRecord("bbbbbbbbbbbbbbbb", base.Add(time.Hour+time.Duration(i)*time.Minute),
			map[string][2]float64{"Bench": {ns, 1e9 / ns}}))
	}
	path := writeHistory(t, recs...)
	h, err := Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	trends := h.Trends(context.Background(), Class{GOOS: "linux", GOARCH: "amd64"})
	if len(trends) != 1 {
		t.Fatalf("got %d trends, want 1", len(trends))
	}
	tr := trends[0]
	if tr.Name != "Bench" || len(tr.Points) != 2 {
		t.Fatalf("trend shape wrong: %+v", tr)
	}
	p0 := tr.Points[0]
	if p0.MinNsPerOp != 100 || p0.MedianNsPerOp != 104 || p0.Runs != 3 {
		t.Fatalf("point 0 aggregates wrong: %+v", p0)
	}
	if p0.ShortSHA != "aaaaaaaaaaaa" {
		t.Fatalf("short sha wrong: %q", p0.ShortSHA)
	}
	if p0.Noise <= 0.039 || p0.Noise >= 0.041 { // (104-100)/100
		t.Fatalf("noise wrong: %v", p0.Noise)
	}
	if tr.Delta == nil {
		t.Fatal("no delta with two points")
	}
	if !tr.Delta.Significant || !tr.Delta.Regressed {
		t.Fatalf("50%% slowdown not flagged: %+v", tr.Delta)
	}
	if tr.Delta.RelNsPerOp < 0.49 || tr.Delta.RelNsPerOp > 0.51 {
		t.Fatalf("delta wrong: %+v", tr.Delta)
	}
	if tr.Delta.RelInstrPerSec >= 0 {
		t.Fatalf("throughput delta should be negative: %+v", tr.Delta)
	}
}

func TestTrendsClassFilter(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	lin := mkRecord("aaa", base, map[string][2]float64{"B": {100, 0}})
	arm := mkRecord("aaa", base.Add(time.Minute), map[string][2]float64{"B": {500, 0}})
	arm.GOARCH = "arm64"
	path := writeHistory(t, lin, arm)
	h, err := Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	trends := h.Trends(context.Background(), Class{GOOS: "linux", GOARCH: "amd64"})
	if len(trends) != 1 || trends[0].Points[0].Runs != 1 || trends[0].Points[0].MinNsPerOp != 100 {
		t.Fatalf("class filter leaked foreign runs: %+v", trends)
	}
	all := h.Trends(context.Background(), Class{})
	if all[0].Points[0].Runs != 2 {
		t.Fatalf("zero class should fold all: %+v", all)
	}
}

func TestCompareNoChangePasses(t *testing.T) {
	// Same code both sides, honest jitter: must NOT be significant.
	a := []float64{100, 101, 103, 100.5, 102}
	b := []float64{100.8, 100.2, 102.5, 101, 100.9}
	v, err := Compare(context.Background(), "Bench", a, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Significant || v.Regressed {
		t.Fatalf("no-change A/B flagged significant: %+v", v)
	}
	if v.Rounds != 5 || v.ABestNs != 100 || v.BBestNs != 100.2 {
		t.Fatalf("verdict fields wrong: %+v", v)
	}
}

func TestCompareSyntheticSlowdownRegresses(t *testing.T) {
	// B is A scaled by 1.4 — a 40% synthetic slowdown with the same
	// relative jitter. Must be significant and in the regressed
	// direction.
	a := []float64{100, 101, 103, 100.5, 102}
	b := make([]float64, len(a))
	for i, x := range a {
		b[i] = x * 1.4
	}
	v, err := Compare(context.Background(), "Bench", a, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Significant || !v.Regressed {
		t.Fatalf("40%% slowdown not flagged: %+v", v)
	}
	if v.RelDelta < 0.39 || v.RelDelta > 0.41 {
		t.Fatalf("delta wrong: %+v", v)
	}
	if !strings.Contains(v.Summary, "REGRESSED") {
		t.Fatalf("summary missing REGRESSED: %q", v.Summary)
	}
}

func TestCompareSpeedupIsSignificantNotRegressed(t *testing.T) {
	a := []float64{140, 141, 143}
	b := []float64{100, 101, 102}
	v, err := Compare(context.Background(), "Bench", a, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Significant || v.Regressed {
		t.Fatalf("speedup misclassified: %+v", v)
	}
}

func TestCompareNoisyMachineWidensBand(t *testing.T) {
	// A 5% delta that would fire on a quiet machine must be absorbed
	// when the rounds themselves show 10% spread.
	a := []float64{100, 110, 112}
	b := []float64{105, 116, 117}
	v, err := Compare(context.Background(), "Bench", a, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Significant {
		t.Fatalf("noisy 5%% delta should be inconclusive: %+v", v)
	}
	if v.Noise < 0.09 {
		t.Fatalf("noise estimate too small: %+v", v)
	}
}

func TestCompareErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Compare(ctx, "B", nil, nil, CompareOptions{}); err == nil {
		t.Fatal("empty rounds accepted")
	}
	if _, err := Compare(ctx, "B", []float64{1, 2}, []float64{1}, CompareOptions{}); err == nil {
		t.Fatal("unpaired rounds accepted")
	}
	if _, err := Compare(ctx, "B", []float64{1, -2}, []float64{1, 2}, CompareOptions{}); err == nil {
		t.Fatal("negative ns accepted")
	}
}

func TestGateFailsBelowFloor(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	var recs []Record
	// Ten same-class runs around 27M instr/sec.
	for i := 0; i < 10; i++ {
		ips := 27e6 + float64(i)*0.1e6
		recs = append(recs, mkRecord(fmt.Sprintf("sha%d", i), base.Add(time.Duration(i)*time.Hour),
			map[string][2]float64{"SimulateSuite": {150e6, ips}}))
	}
	path := writeHistory(t, recs...)
	h, err := Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	class := Class{GOOS: "linux", GOARCH: "amd64"}
	ctx := context.Background()
	// A run at half the historical floor must fail.
	res := h.Gate(ctx, "SimulateSuite", class, 13e6, GateOptions{})
	if res.Pass || res.Inconclusive {
		t.Fatalf("halved throughput passed the gate: %+v", res)
	}
	if res.ReferenceRuns != 10 || res.Floor <= 0 {
		t.Fatalf("gate reference wrong: %+v", res)
	}
	// A run at the historical level must pass.
	res = h.Gate(ctx, "SimulateSuite", class, 27.2e6, GateOptions{})
	if !res.Pass {
		t.Fatalf("in-distribution run failed the gate: %+v", res)
	}
	// A run slightly below p10 but inside the slack must pass too.
	res = h.Gate(ctx, "SimulateSuite", class, 26.5e6, GateOptions{})
	if !res.Pass {
		t.Fatalf("slack not applied: %+v", res)
	}
}

func TestGateInconclusiveCases(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	// Only two same-class runs: below MinRuns, must pass inconclusive.
	path := writeHistory(t,
		mkRecord("a", base, map[string][2]float64{"B": {100, 1e6}}),
		mkRecord("b", base.Add(time.Hour), map[string][2]float64{"B": {100, 1e6}}),
	)
	h, err := Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	class := Class{GOOS: "linux", GOARCH: "amd64"}
	res := h.Gate(ctx, "B", class, 1, GateOptions{})
	if !res.Pass || !res.Inconclusive {
		t.Fatalf("thin history should pass inconclusive: %+v", res)
	}
	// A foreign machine class sees no reference runs at all.
	res = h.Gate(ctx, "B", Class{GOOS: "darwin", GOARCH: "arm64"}, 1, GateOptions{})
	if !res.Pass || !res.Inconclusive || res.ReferenceRuns != 0 {
		t.Fatalf("foreign class should be inconclusive: %+v", res)
	}
	// A run without the instr/sec figure cannot be judged.
	res = h.Gate(ctx, "B", class, 0, GateOptions{})
	if !res.Pass || !res.Inconclusive {
		t.Fatalf("missing figure should pass inconclusive: %+v", res)
	}
}

func TestGateLastKWindow(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	var recs []Record
	// Five ancient slow runs followed by five recent fast runs. A
	// current run back at the ancient level is a regression against
	// the recent regime — LastK=5 confines the reference to the fast
	// runs and catches it, while the full window lets the old slow
	// runs drag p10 down and mask it.
	for i := 0; i < 5; i++ {
		recs = append(recs, mkRecord("old", base.Add(time.Duration(i)*time.Hour),
			map[string][2]float64{"B": {200, 25e6}}))
	}
	for i := 0; i < 5; i++ {
		recs = append(recs, mkRecord("new", base.Add(time.Duration(5+i)*time.Hour),
			map[string][2]float64{"B": {100, 50e6}}))
	}
	path := writeHistory(t, recs...)
	h, err := Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	class := Class{GOOS: "linux", GOARCH: "amd64"}
	res := h.Gate(context.Background(), "B", class, 26e6, GateOptions{LastK: 5})
	if res.Pass {
		t.Fatalf("LastK window not applied (regression vs recent regime missed): %+v", res)
	}
	res = h.Gate(context.Background(), "B", class, 26e6, GateOptions{LastK: 10})
	if !res.Pass {
		t.Fatalf("old slow runs should mask the regression in the full window: %+v", res)
	}
}

func TestCheckLog(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	good := func() string {
		r1, _ := json.Marshal(mkRecord("aaa", base, map[string][2]float64{"B": {100, 0}}))
		r2, _ := json.Marshal(mkRecord("aaa", base.Add(time.Hour), map[string][2]float64{"B": {100, 0}}))
		return string(r1) + "\n" + string(r2) + "\n"
	}()
	if errs := CheckLog(strings.NewReader(good)); len(errs) != 0 {
		t.Fatalf("clean log flagged: %v", errs)
	}
	// Timestamps going backwards within a SHA must be flagged.
	bad := func() string {
		r1, _ := json.Marshal(mkRecord("aaa", base.Add(time.Hour), map[string][2]float64{"B": {100, 0}}))
		r2, _ := json.Marshal(mkRecord("aaa", base, map[string][2]float64{"B": {100, 0}}))
		return string(r1) + "\n" + string(r2) + "\n"
	}()
	errs := CheckLog(strings.NewReader(bad))
	if len(errs) != 1 || !strings.Contains(errs[0], "precedes") {
		t.Fatalf("backwards timestamps not flagged: %v", errs)
	}
	// Different SHAs may interleave in time freely (merges re-run old
	// commits).
	interleaved := func() string {
		r1, _ := json.Marshal(mkRecord("bbb", base.Add(time.Hour), map[string][2]float64{"B": {100, 0}}))
		r2, _ := json.Marshal(mkRecord("ccc", base, map[string][2]float64{"B": {100, 0}}))
		return string(r1) + "\n" + string(r2) + "\n"
	}()
	if errs := CheckLog(strings.NewReader(interleaved)); len(errs) != 0 {
		t.Fatalf("cross-SHA interleaving flagged: %v", errs)
	}
	// Undecodable lines and empty logs are violations for the checker
	// (unlike Decode, which tolerates them).
	if errs := CheckLog(strings.NewReader("junk\n")); len(errs) != 1 {
		t.Fatalf("junk line not flagged: %v", errs)
	}
	if errs := CheckLog(strings.NewReader("")); len(errs) != 1 {
		t.Fatalf("empty log not flagged: %v", errs)
	}
}

func TestCommittedHistoryIsClean(t *testing.T) {
	// The repo's own BENCH_history.jsonl must satisfy the checker —
	// this is the same validation obscheck -bench-history runs in CI.
	f, err := os.Open("../../BENCH_history.jsonl")
	if os.IsNotExist(err) {
		t.Skip("no committed history")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if errs := CheckLog(f); len(errs) != 0 {
		t.Fatalf("committed history invalid: %v", errs)
	}
}

func TestServiceLiveReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.jsonl")
	svc := NewService(path)
	ctx := context.Background()

	// Missing file serves empty.
	h, err := svc.History(ctx)
	if err != nil || len(h.Records) != 0 {
		t.Fatalf("missing file: %v %+v", err, h)
	}

	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	r1, _ := json.Marshal(mkRecord("aaa", base, map[string][2]float64{"B": {100, 0}}))
	if err := os.WriteFile(path, append(r1, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err = svc.History(ctx)
	if err != nil || len(h.Records) != 1 {
		t.Fatalf("first load: %v %+v", err, h)
	}

	// Append a second record; the service must pick it up (size
	// changed, even if mtime granularity is coarse).
	r2, _ := json.Marshal(mkRecord("bbb", base.Add(time.Hour), map[string][2]float64{"B": {110, 0}}))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(r2, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()
	h, err = svc.History(ctx)
	if err != nil || len(h.Records) != 2 {
		t.Fatalf("reload after append: %v, %d records", err, len(h.Records))
	}

	// Unchanged file returns the same *History (no reload).
	h2, err := svc.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatal("unchanged file was reloaded")
	}

	// Deleting the file drops back to empty rather than erroring.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	h, err = svc.History(ctx)
	if err != nil || len(h.Records) != 0 {
		t.Fatalf("after delete: %v %+v", err, h)
	}
}

func TestBenchNamesFirstSeenOrder(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	r1 := Record{GeneratedAt: base, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24",
		Benchmarks: []Benchmark{{Name: "Z", NsPerOp: 1}, {Name: "A", NsPerOp: 1}}}
	r2 := Record{GeneratedAt: base.Add(time.Minute), GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24",
		Benchmarks: []Benchmark{{Name: "A", NsPerOp: 1}, {Name: "M", NsPerOp: 1}}}
	h := &History{Records: []Record{r1, r2}}
	got := h.BenchNames()
	want := []string{"Z", "A", "M"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
