package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"perspector/internal/suites"
	"perspector/internal/workload"
)

func smallConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	return cfg
}

func TestKeyIsStableAndSensitive(t *testing.T) {
	cfg := smallConfig()
	s := suites.Nbench(cfg)
	base := Key(s, cfg)
	if base != Key(suites.Nbench(cfg), cfg) {
		t.Fatal("key not deterministic for identical inputs")
	}

	seeded := cfg
	seeded.Seed++
	if Key(suites.Nbench(seeded), seeded) == base {
		t.Fatal("seed change did not change the key")
	}
	sampled := cfg
	sampled.Samples++
	if Key(suites.Nbench(sampled), sampled) == base {
		t.Fatal("sample-count change did not change the key")
	}
	machined := cfg
	machined.Machine.NextLinePrefetch = !machined.Machine.NextLinePrefetch
	if Key(suites.Nbench(machined), machined) == base {
		t.Fatal("machine-config change did not change the key")
	}
	if Key(suites.LMbench(cfg), cfg) == base {
		t.Fatal("different suite did not change the key")
	}
	totals := cfg
	totals.TotalsOnly = true
	if Key(suites.Nbench(totals), totals) == base {
		t.Fatal("totals-only change did not change the key")
	}
}

// TestKeyDistinguishesPatternKinds pins the fix for the %+v rendering:
// two pattern kinds with identical field shapes (Random and
// PointerChase both carry only WorkingSet) must hash differently, and a
// user-built suite must hash identically to a spec-decoded one with the
// same content.
func TestKeyDistinguishesPatternKinds(t *testing.T) {
	cfg := smallConfig()
	mk := func(pat workload.PatternSpec) suites.Suite {
		return suites.Suite{Name: "probe", Specs: []workload.Spec{{
			Name: "probe.w", Instructions: cfg.Instructions, Seed: 1,
			Phases: []workload.Phase{{Weight: 1, LoadFrac: 0.3, LoadPattern: pat}},
		}}}
	}
	kRandom := Key(mk(workload.Random{WorkingSet: 1 << 20}), cfg)
	kChase := Key(mk(workload.PointerChase{WorkingSet: 1 << 20}), cfg)
	if kRandom == kChase {
		t.Fatal("Random and PointerChase patterns hash to the same key")
	}
	if kRandom != Key(mk(workload.Random{WorkingSet: 1 << 20}), cfg) {
		t.Fatal("identical content did not reproduce the key")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	cfg := smallConfig()
	s := suites.Nbench(cfg)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := st.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 0 || st.Misses() != 1 {
		t.Fatalf("cold run: hits=%d misses=%d", st.Hits(), st.Misses())
	}
	warm, err := st.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 1 {
		t.Fatalf("warm run did not hit: hits=%d misses=%d", st.Hits(), st.Misses())
	}
	if warm.Suite != cold.Suite || len(warm.Workloads) != len(cold.Workloads) {
		t.Fatal("warm measurement shape differs")
	}
	for i := range cold.Workloads {
		cw, ww := &cold.Workloads[i], &warm.Workloads[i]
		if cw.Workload != ww.Workload || cw.Totals != ww.Totals {
			t.Fatalf("workload %d totals differ after round trip", i)
		}
		for c := range cw.Series.Samples {
			if !reflect.DeepEqual(cw.Series.Samples[c], ww.Series.Samples[c]) {
				t.Fatalf("workload %d counter %d series not bit-identical", i, c)
			}
		}
	}
}

func TestCorruptEntryHealsAsMiss(t *testing.T) {
	cfg := smallConfig()
	s := suites.Nbench(cfg)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(s, cfg)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("corrupt entry served as hit")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	// The slot heals: a Measure fills it and the next Get hits.
	if _, err := st.Measure(s, cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("healed entry did not hit")
	}
}

// TestPutIsAtomicUnderConcurrentReaders pins down the temp-file +
// os.Rename contract of Put: while writers rewrite an entry, a reader
// must only ever observe a complete, valid entry — never a miss (the
// file always exists once written, and rename swaps inodes atomically)
// and never torn bytes (which Get would report by healing the entry
// away). Rename must also leave no temp files behind.
func TestPutIsAtomicUnderConcurrentReaders(t *testing.T) {
	cfg := smallConfig()
	s := suites.Nbench(cfg)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := suites.Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(s, cfg)
	if err := st.Put(key, m); err != nil {
		t.Fatal(err)
	}
	want, ok := st.Get(key)
	if !ok {
		t.Fatal("freshly written entry missed")
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, ok := st.Get(key)
				if !ok {
					// Would mean a reader caught the entry mid-write:
					// ReadJSON failed and Get healed the file away.
					select {
					case errs <- fmt.Errorf("reader observed a torn or missing entry"):
					default:
					}
					return
				}
				if !reflect.DeepEqual(got, want) {
					select {
					case errs <- fmt.Errorf("reader observed a partial entry"):
					default:
					}
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 25; i++ {
				if err := st.Put(key, m); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	tmps, err := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("Put left temp files behind: %v", tmps)
	}
}

func TestNilStorePassThrough(t *testing.T) {
	var st *Store
	cfg := smallConfig()
	m, err := st.Measure(suites.Nbench(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || len(m.Workloads) == 0 {
		t.Fatal("nil store did not measure")
	}
	if _, ok := st.Get("abc"); ok {
		t.Fatal("nil store hit")
	}
	if err := st.Put("abc", m); err != nil {
		t.Fatal(err)
	}
	if st.Stats() != "cache disabled" {
		t.Fatalf("nil stats = %q", st.Stats())
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
