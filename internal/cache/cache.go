// Package cache is a content-addressed on-disk cache for suite
// measurements. Simulating a suite is the dominant cost of every CLI
// invocation (score, compare, subset, figures); because the simulator is
// fully deterministic, a measurement is a pure function of the suite
// definition and the simulation config — so it can be keyed by a hash of
// those inputs and reused across processes.
//
// # Key scheme
//
// Key hashes (SHA-256) the canonical rendering of everything the
// measurement depends on:
//
//   - a schema version (bump SchemaVersion whenever the simulator,
//     workload models, or trace format change semantically — that is the
//     only invalidation rule besides deleting the directory),
//   - the suite name and every workload spec — rendered through the
//     workload codec's canonical JSON, which tags every access pattern
//     with its generator kind. (The former %+v rendering dropped Go type
//     names, so two pattern kinds with the same field shape — Random and
//     PointerChase — hashed identically; with user-loaded spec files that
//     collision became reachable.)
//   - the config: instruction budget, sample count, master seed, and the
//     totals-only switch (a totals-only measurement carries no series, so
//     it must never be served to a full-series run),
//   - the full machine configuration (cache geometry, TLB, predictor,
//     prefetcher, latencies — a microarchitectural change must miss).
//
// Entries are stored as <dir>/<hex key>.json in the trace JSON format,
// which round-trips float64 series bit-exactly (encoding/json emits the
// shortest representation that parses back to the same bits), so scores
// computed from a warm cache are bit-identical to a cold run — enforced
// by TestScoreDeterminismColdVsWarmCache.
//
// A nil *Store is a valid pass-through: Get always misses and Put is a
// no-op, which lets callers thread one variable through -no-cache paths.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"perspector/internal/perf"
	"perspector/internal/suites"
	"perspector/internal/trace"
	"perspector/internal/workload"
)

// SchemaVersion invalidates every existing entry when bumped. It must
// change whenever the simulator, the workload models, or the trace
// format change the bytes a measurement serializes to — or, as with the
// move to canonical spec JSON in the key, when the key scheme itself
// changes.
const SchemaVersion = 2

// Store is an on-disk measurement cache rooted at one directory.
type Store struct {
	dir          string
	hits, misses atomic.Int64
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Key returns the content hash identifying the measurement of suite s
// under cfg. Everything that can change a single counter value is folded
// into the hash; see the package comment for the scheme.
func Key(s suites.Suite, cfg suites.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\nsuite=%s\ninstr=%d\nsamples=%d\nseed=%d\ntotals-only=%t\n",
		SchemaVersion, s.Name, cfg.Instructions, cfg.Samples, cfg.Seed, cfg.TotalsOnly)
	// %+v renders the machine config deterministically: plain fields, no
	// maps, pointers, or interfaces.
	fmt.Fprintf(h, "machine=%+v\n", cfg.Machine)
	for i := range s.Specs {
		// The canonical codec JSON tags every access pattern with its
		// generator kind, so patterns with identical field shapes cannot
		// collide, and user-loaded specs hash exactly like embedded ones.
		data, err := workload.MarshalSpec(s.Specs[i])
		if err != nil {
			// Unserializable pattern (a custom PatternSpec implementation
			// from the Go API): fall back to the typed reflective rendering
			// so the key still reacts to every field, including type names.
			fmt.Fprintf(h, "spec[%d]!%T=%#v\n", i, s.Specs[i], s.Specs[i])
			continue
		}
		fmt.Fprintf(h, "spec[%d]=%s\n", i, data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RingPoint maps a content key to its position on a consistent-hash
// ring — the fleet's key-ownership helper. The keys produced by Key
// (and by the request hashing built on it) are hex SHA-256, already
// uniformly distributed, so the first 64 bits are the point; any other
// key shape is re-hashed first. Ownership therefore follows the content
// address itself: the same measurement or job key lands on the same
// node from any process, which is what turns each node's measurement
// cache into a shard of one fleet-wide cache.
func RingPoint(key string) uint64 {
	if len(key) >= 16 {
		if raw, err := hex.DecodeString(key[:16]); err == nil {
			return binary.BigEndian.Uint64(raw)
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// path returns the entry file for a key.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key+".json")
}

// Get returns the cached measurement for key, or (nil, false) on a miss.
// Unreadable or corrupt entries count as misses and are removed.
func (st *Store) Get(key string) (*perf.SuiteMeasurement, bool) {
	if st == nil {
		return nil, false
	}
	f, err := os.Open(st.path(key))
	if err != nil {
		st.misses.Add(1)
		return nil, false
	}
	defer f.Close()
	m, err := trace.ReadJSON(f)
	if err != nil {
		// A torn or stale-schema entry: drop it so the slot heals.
		os.Remove(st.path(key))
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	return m, true
}

// Put stores a measurement under key. The entry is written to a temp
// file and renamed, so concurrent readers never observe a torn entry.
func (st *Store) Put(key string, m *perf.SuiteMeasurement) error {
	if st == nil {
		return nil
	}
	tmp, err := os.CreateTemp(st.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := trace.WriteJSON(tmp, m); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Measure returns the measurement of suite s under cfg, from cache when
// warm, else by simulating via suites.Run and filling the cache. On a
// nil Store it degenerates to suites.Run.
func (st *Store) Measure(s suites.Suite, cfg suites.Config) (*perf.SuiteMeasurement, error) {
	if st == nil {
		return suites.Run(s, cfg)
	}
	key := Key(s, cfg)
	if m, ok := st.Get(key); ok {
		return m, nil
	}
	m, err := suites.Run(s, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.Put(key, m); err != nil {
		// A full disk must not fail the measurement itself.
		return m, nil
	}
	return m, nil
}

// Hits returns the number of cache hits since Open.
func (st *Store) Hits() int64 {
	if st == nil {
		return 0
	}
	return st.hits.Load()
}

// Misses returns the number of cache misses since Open.
func (st *Store) Misses() int64 {
	if st == nil {
		return 0
	}
	return st.misses.Load()
}

// Stats formats the hit/miss counters for verbose CLI output.
func (st *Store) Stats() string {
	if st == nil {
		return "cache disabled"
	}
	return fmt.Sprintf("cache: %d hits, %d misses (%s)", st.Hits(), st.Misses(), st.dir)
}
