package jobs

import (
	"context"
	"testing"
	"time"

	"perspector/internal/store"
)

// instrRunner simulates a fixed instruction count and sleeps for a
// seed-selected duration, so successive jobs produce instruction
// throughputs with a known ordering even on a noisy machine.
func instrRunner(instr uint64, sleepBySeed map[uint64]time.Duration) Runner {
	return func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		h.AddInstructions(instr)
		time.Sleep(sleepBySeed[h.Request().Config.Seed])
		return fakeResult(), nil
	}
}

func TestSimulatedInstrPerSecEWMA(t *testing.T) {
	q := New(instrRunner(1_000_000, map[uint64]time.Duration{
		1: 5 * time.Millisecond,
		2: 250 * time.Millisecond, // ~50x slower => rate must drop
	}), Options{Workers: 1})
	if got := q.SimulatedInstrPerSec(); got != 0 {
		t.Fatalf("throughput EWMA before any job = %g, want 0", got)
	}

	s1, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, s1.ID, StateDone)
	first := q.SimulatedInstrPerSec()
	if first <= 0 {
		t.Fatalf("throughput EWMA after first job = %g, want > 0", first)
	}
	// 1e6 instructions over >= 5ms bounds the rate from above.
	if first > 200e6 {
		t.Fatalf("throughput EWMA %g implausibly above the 1e6/5ms ceiling", first)
	}

	// The second job is far slower, so its observation sits below the
	// current average and the EWMA must move down — but with alpha 0.25 it
	// blends rather than snapping to the new rate, so it stays positive.
	s2, _, err := q.Submit(scoreReq(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, s2.ID, StateDone)
	second := q.SimulatedInstrPerSec()
	if second <= 0 || second >= first {
		t.Fatalf("throughput EWMA after slower job = %g, want in (0, %g)", second, first)
	}

	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestInstrRateSkipsReplays pins that jobs replayed from the result
// store (which simulate nothing) leave the EWMA untouched.
func TestInstrRateSkipsReplays(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q := New(instrRunner(500_000, map[uint64]time.Duration{
		1: 2 * time.Millisecond,
	}), Options{Workers: 1, Store: st})

	s1, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, s1.ID, StateDone)
	after := q.SimulatedInstrPerSec()
	if after <= 0 {
		t.Fatalf("EWMA after simulating job = %g, want > 0", after)
	}

	// Same request again: served from the store, simulating nothing.
	s2, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, q, s2.ID, StateDone)
	if !snap.Replayed {
		t.Fatalf("second identical submission not replayed: %+v", snap)
	}
	if got := q.SimulatedInstrPerSec(); got != after {
		t.Fatalf("replay moved the EWMA: %g -> %g", after, got)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
