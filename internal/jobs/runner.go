package jobs

import (
	"context"

	"perspector/internal/cache"
	"perspector/internal/metric"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/source"
	"perspector/internal/stage"
	"perspector/internal/store"
	"perspector/internal/suites"
)

// EngineRunner returns the production Runner: it measures through the
// content-addressed cache (nil disables caching) and scores with the
// staged engine — exactly the path ScoreContext/CompareContext take, so
// scores served by the daemon are bit-identical to CLI scores.
func EngineRunner(cacheStore *cache.Store) Runner {
	return func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		req := h.Request()
		opts := metric.DefaultOptions()
		group, err := perf.GroupByName(req.Group)
		if err != nil {
			return store.ScoreSet{}, err
		}
		opts.Counters = group.Counters

		if req.Trace != nil {
			return runTrace(ctx, h, req, opts)
		}
		return runSimulated(ctx, h, req, opts, cacheStore)
	}
}

// runTrace scores an uploaded measurement. A totals-only CSV comes back
// without a TrendScore via the engine's capability check, matching the
// CLI's score-file behaviour.
func runTrace(ctx context.Context, h *Handle, req Request, opts metric.Options) (store.ScoreSet, error) {
	h.SetStage("measure", 1)
	m, err := ParseTrace(req.Trace)
	if err != nil {
		return store.ScoreSet{}, stage.Wrap(stage.Measure, req.Trace.Name, "", err)
	}
	h.Advance(1)
	h.SetStage("score", 1)
	scores, err := metric.ScoreSuite(ctx, m, opts, nil)
	if err != nil {
		return store.ScoreSet{}, err
	}
	h.Advance(1)
	return store.New(req.Kind, req.Group, "trace", nil, []metric.Scores{scores}), nil
}

// runSimulated measures the request's suites — registered names plus an
// inline suite spec, if any — in parallel through the cache, and scores
// them: one suite on its own normalization for kind "score", all suites
// under joint normalization for "compare".
func runSimulated(ctx context.Context, h *Handle, req Request, opts metric.Options, cacheStore *cache.Store) (store.ScoreSet, error) {
	cfg := req.SimConfig()
	ss, err := req.ResolvedSuites(cfg)
	if err != nil {
		return store.ScoreSet{}, stage.Wrap(stage.Measure, "", "", err)
	}
	// The counting layer sits inside the cache decorator, so instructions
	// are accounted only when the simulator actually runs — a cache hit
	// retires nothing.
	src := source.Caching{
		Inner: countingSource{inner: source.Simulator{Cfg: cfg}, h: h, perWorkload: cfg.Instructions},
		Store: cacheStore,
	}
	h.SetStage("measure", len(ss))
	ms := make([]*perf.SuiteMeasurement, len(ss))
	err = par.DoErrCtx(ctx, len(ss), func(ctx context.Context, _, i int) error {
		m, err := src.Measure(ctx, ss[i])
		if err != nil {
			return err
		}
		ms[i] = m
		h.Advance(1)
		return nil
	})
	if err != nil {
		return store.ScoreSet{}, stage.Wrap(stage.Measure, "", "", err)
	}
	h.SetStage("score", 1)
	scores, err := metric.ScoreSuites(ctx, ms, opts, nil)
	if err != nil {
		return store.ScoreSet{}, err
	}
	h.Advance(1)
	rc := req.Config
	return store.New(req.Kind, req.Group, "simulator", &rc, scores), nil
}

// countingSource accounts simulated instructions as they retire. It
// forwards Key, so the cache decorator around it still content-addresses
// entries identically to a bare Simulator.
type countingSource struct {
	inner       source.Source
	h           *Handle
	perWorkload uint64
}

func (c countingSource) Measure(ctx context.Context, s suites.Suite) (*perf.SuiteMeasurement, error) {
	m, err := c.inner.Measure(ctx, s)
	if err == nil {
		c.h.AddInstructions(c.perWorkload * uint64(len(m.Workloads)))
	}
	return m, err
}

func (c countingSource) Key(s suites.Suite) string { return c.inner.Key(s) }
