package jobs

import (
	"context"

	"perspector/internal/store"
)

// Dispatcher hands a job to whichever fleet node owns its content key
// and blocks until the result streams back (or ctx is cancelled). The
// returned instruction count is what the executing node retired on the
// job's behalf, so the coordinator's throughput accounting stays honest
// about remote work. internal/fleet's Coordinator is the production
// implementation.
type Dispatcher interface {
	Dispatch(ctx context.Context, key string, req Request) (store.ScoreSet, uint64, error)
}

// RemoteRunner returns the coordinator-side Runner: instead of measuring
// and scoring locally, the job is routed through d to the fleet node
// that owns its key. Everything the local queue already provides —
// content-addressed dedup, replay from the durable store, cancellation,
// drain — wraps around this Runner unchanged, which is exactly what
// makes those behaviours fleet-wide: a duplicate submission folds at the
// coordinator before a dispatch ever exists, and a stored result replays
// without touching the network.
func RemoteRunner(d Dispatcher) Runner {
	return func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		h.SetStage("dispatch", 1)
		set, instr, err := d.Dispatch(ctx, h.Key(), h.Request())
		if err != nil {
			return store.ScoreSet{}, err
		}
		if instr > 0 {
			h.AddInstructions(instr)
		}
		h.Advance(1)
		return set, nil
	}
}
