package jobs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"perspector/internal/metric"
	"perspector/internal/store"
)

// scoreReq builds a valid single-suite request; distinct seeds give
// distinct content keys.
func scoreReq(seed uint64) Request {
	return Request{
		Kind:   store.KindScore,
		Suites: []string{"nbench"},
		Config: store.RunConfig{Instructions: 1000, Samples: 10, Seed: seed},
	}
}

func fakeResult() store.ScoreSet {
	return store.New(store.KindScore, "all", "simulator",
		&store.RunConfig{Instructions: 1000, Samples: 10, Seed: 1},
		[]metric.Scores{{Suite: "nbench", Cluster: 1}})
}

// blockingRunner reports each start on started and then holds the job
// until release is closed (or the job's context ends).
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		started <- h.Request().Suites[0]
		select {
		case <-release:
			return fakeResult(), nil
		case <-ctx.Done():
			return store.ScoreSet{}, ctx.Err()
		}
	}
}

func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := q.Get(id); ok && s.State == want {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := q.Get(id)
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, s.State)
	return Snapshot{}
}

func TestSubmitValidation(t *testing.T) {
	q := New(func(context.Context, *Handle) (store.ScoreSet, error) {
		return fakeResult(), nil
	}, Options{})
	defer q.Drain(context.Background())
	bad := []Request{
		{}, // no kind
		{Kind: "mystery", Suites: []string{"nbench"}},                   // unknown kind
		{Kind: store.KindScore},                                         // no suites, no trace
		{Kind: store.KindScore, Suites: []string{"nosuch"}},             // unknown suite
		{Kind: store.KindScore, Suites: []string{"nbench", "parsec"}},   // score takes one suite
		{Kind: store.KindCompare, Suites: []string{"nbench", "nbench"}}, // duplicate suite
		{Kind: store.KindScore, Suites: []string{"nbench"}, Group: "l2"},
		{Kind: store.KindScore, Trace: &TraceUpload{Format: "xml", Data: []byte("x")}},
		{Kind: store.KindScore, Trace: &TraceUpload{Format: "csv"}}, // empty upload
		{Kind: store.KindCompare, Trace: &TraceUpload{Format: "csv", Data: []byte("x")}},
		{Kind: store.KindScore, Suites: []string{"nbench"}, Trace: &TraceUpload{Format: "csv", Data: []byte("x")}},
	}
	for i, req := range bad {
		if _, _, err := q.Submit(req); err == nil {
			t.Errorf("bad request %d admitted: %+v", i, req)
		}
	}
}

// TestDedupInFlight pins the dedup contract: an identical request
// submitted while the first is queued or running folds into the same
// job; a different request gets its own.
func TestDedupInFlight(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(blockingRunner(started, release), Options{Workers: 1})

	first, dup, err := q.Submit(scoreReq(1))
	if err != nil || dup {
		t.Fatalf("first submit: dup=%v err=%v", dup, err)
	}
	<-started // now running

	second, dup, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dup || second.ID != first.ID {
		t.Fatalf("identical in-flight request not deduplicated: first=%s second=%s dup=%v",
			first.ID, second.ID, dup)
	}
	if second.Deduped != 1 {
		t.Fatalf("dedup counter = %d, want 1", second.Deduped)
	}

	other, dup, err := q.Submit(scoreReq(2)) // different seed → different key
	if err != nil || dup {
		t.Fatalf("distinct request treated as duplicate: dup=%v err=%v", dup, err)
	}
	if other.ID == first.ID || other.Key == first.Key {
		t.Fatalf("distinct request shares job/key: %+v vs %+v", other, first)
	}

	// While the first is still running and the other queued, a dup of the
	// *queued* job must also fold.
	otherDup, dup, err := q.Submit(scoreReq(2))
	if err != nil || !dup || otherDup.ID != other.ID {
		t.Fatalf("queued-job dedup failed: dup=%v err=%v", dup, err)
	}

	close(release)
	waitState(t, q, first.ID, StateDone)
	waitState(t, q, other.ID, StateDone)

	// Terminal jobs no longer dedup: a fresh submit runs anew (no store
	// configured, so no replay either).
	again, dup, err := q.Submit(scoreReq(1))
	if err != nil || dup {
		t.Fatalf("post-completion submit deduplicated: dup=%v err=%v", dup, err)
	}
	if again.ID == first.ID {
		t.Fatal("post-completion submit reused the finished job")
	}
	waitState(t, q, again.ID, StateDone)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestReplayFromStore: with a result store attached, resubmitting a
// completed request is served from the stored document without running.
func TestReplayFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	runs := 0
	q := New(func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		runs++
		return fakeResult(), nil
	}, Options{Workers: 1, Store: st})

	first, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, first.ID, StateDone)

	second, dup, err := q.Submit(scoreReq(1))
	if err != nil || dup {
		t.Fatalf("dup=%v err=%v", dup, err)
	}
	snap := waitState(t, q, second.ID, StateDone)
	if !snap.Replayed {
		t.Fatalf("second run not replayed: %+v", snap)
	}
	if runs != 1 {
		t.Fatalf("runner ran %d times, want 1", runs)
	}
	set, ok, err := q.Result(second.ID)
	if err != nil || !ok {
		t.Fatalf("replayed result missing: ok=%v err=%v", ok, err)
	}
	if set.Suites[0].Suite != "nbench" {
		t.Fatalf("replayed result wrong: %+v", set)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedVsRunning exercises both cancellation paths: a queued
// job dies immediately and never starts; a running job is cancelled via
// its context and lands in canceled once the runner unwinds.
func TestCancelQueuedVsRunning(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(blockingRunner(started, release), Options{Workers: 1})
	defer close(release)

	running, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := q.Submit(scoreReq(2))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: terminal at once, runner never sees it.
	snap, err := q.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s, want canceled immediately", snap.State)
	}
	if snap.Error == nil || !snap.Error.Canceled {
		t.Fatalf("canceled queued job lacks cancellation error info: %+v", snap.Error)
	}

	// Cancel the running job: the context fires, the runner returns
	// ctx.Err(), and the state flips to canceled asynchronously.
	if _, err := q.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	snap = waitState(t, q, running.ID, StateCanceled)
	if snap.Error == nil || !snap.Error.Canceled {
		t.Fatalf("canceled running job lacks cancellation error info: %+v", snap.Error)
	}

	// The runner must never have started the queued job.
	select {
	case name := <-started:
		t.Fatalf("canceled queued job started anyway (%s)", name)
	default:
	}

	// Cancelling a terminal job is a no-op, not an error.
	if snap, err = q.Cancel(running.ID); err != nil || snap.State != StateCanceled {
		t.Fatalf("cancel of terminal job: state=%s err=%v", snap.State, err)
	}
	if _, err := q.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainLetsRunningFinish: drain cancels queued work but a running
// job that completes within the deadline finishes as done.
func TestDrainLetsRunningFinish(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(blockingRunner(started, release), Options{Workers: 1})

	running, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := q.Submit(scoreReq(2))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()

	// The queued job must be cancelled promptly even while the running
	// one is still going.
	waitState(t, q, queued.ID, StateCanceled)
	// Admission is closed from the moment drain starts.
	if _, _, err := q.Submit(scoreReq(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}

	close(release) // let the running job finish in time
	if err := <-drained; err != nil {
		t.Fatalf("drain with a finishing job returned %v", err)
	}
	if s, _ := q.Get(running.ID); s.State != StateDone {
		t.Fatalf("running job after graceful drain: %s, want done", s.State)
	}
}

// TestDrainDeadlineCancelsSlowJob: a job that out-lives the drain
// deadline is cancelled and the drain still returns with no goroutines
// left behind.
func TestDrainDeadlineCancelsSlowJob(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{}) // never closed: the job is stuck
	q := New(blockingRunner(started, release), Options{Workers: 1})

	slow, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline returned %v, want DeadlineExceeded", err)
	}
	if s, _ := q.Get(slow.ID); s.State != StateCanceled {
		t.Fatalf("slow job after forced drain: %s, want canceled", s.State)
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(blockingRunner(started, release), Options{Workers: 1, MaxQueue: 1})
	defer func() {
		close(release)
		q.Drain(context.Background())
	}()

	if _, _, err := q.Submit(scoreReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := q.Submit(scoreReq(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(scoreReq(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-admission returned %v, want ErrQueueFull", err)
	}
	// Cancelling the queued job frees its admission slot.
	jobs := q.List()
	if _, err := q.Cancel(jobs[1].ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(scoreReq(3)); err != nil {
		t.Fatalf("submit after freeing the queue slot: %v", err)
	}
}

// TestDoneChannelAndCounts covers the long-poll surface and the metric
// counters.
func TestDoneChannelAndCounts(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(blockingRunner(started, release), Options{Workers: 1})

	snap, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := q.Submit(scoreReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if d := q.Depth(); d != 1 {
		t.Fatalf("Depth = %d, want 1", d)
	}
	counts := q.Counts()
	if counts[StateRunning] != 1 || counts[StateQueued] != 1 {
		t.Fatalf("Counts = %+v", counts)
	}

	done, err := q.Done(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("done channel closed while running")
	default:
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("done channel never closed")
	}
	waitState(t, q, queued.ID, StateDone)
	counts = q.Counts()
	if counts[StateDone] != 2 || counts[StateRunning] != 0 || counts[StateQueued] != 0 {
		t.Fatalf("terminal Counts = %+v", counts)
	}
	if _, err := q.Done("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Done on unknown job: %v", err)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueNoGoroutineLeak mirrors internal/suites/cancel_test.go:
// repeated submit/cancel/drain cycles must not strand goroutines.
func TestQueueNoGoroutineLeak(t *testing.T) {
	cycle := func() {
		started := make(chan string, 16)
		release := make(chan struct{})
		q := New(blockingRunner(started, release), Options{Workers: 2})
		a, _, _ := q.Submit(scoreReq(1))
		b, _, _ := q.Submit(scoreReq(2))
		<-started
		<-started
		c, _, _ := q.Submit(scoreReq(3)) // stays queued
		q.Cancel(a.ID)                   // cancel-while-running
		q.Cancel(c.ID)                   // cancel-while-queued
		close(release)                   // b finishes
		waitState(t, q, b.ID, StateDone)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := q.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	cycle() // warm-up: lazily started runtime goroutines join the baseline
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		cycle()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
