package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"

	"perspector/internal/perf"
	"perspector/internal/source"
	"perspector/internal/store"
	"perspector/internal/suites"
	"perspector/internal/trace"
)

// MaxTraceBytes bounds one uploaded trace. The six stock suites at the
// default config serialize to single-digit megabytes; 64 MiB leaves
// room for much longer real-hardware traces while keeping one request
// from exhausting the process.
const MaxTraceBytes = 64 << 20

// TraceUpload is an inline measurement upload: the bytes of a trace
// file in the internal/trace JSON or CSV schema.
type TraceUpload struct {
	// Format is "json" (totals + series) or "csv" (totals only; the
	// engine's capability check then skips the TrendScore).
	Format string `json:"format"`
	// Name names the uploaded suite (CSV carries no name of its own).
	Name string `json:"name,omitempty"`
	// Data is the raw file content.
	Data []byte `json:"data"`
}

// Request describes one scoring job. The zero values of Group and
// Config normalize to the paper defaults.
type Request struct {
	// Kind is store.KindScore (one suite, own normalization) or
	// store.KindCompare (several suites, joint normalization).
	Kind string `json:"kind"`
	// Suites names registered suites to simulate; empty for trace
	// uploads and spec-only score requests.
	Suites []string `json:"suites,omitempty"`
	// Group selects the focused event group: "all", "llc", "tlb".
	Group string `json:"group,omitempty"`
	// Config is the simulation configuration; zero fields take the
	// defaults (400k instructions, 100 samples, seed 2023).
	Config store.RunConfig `json:"config"`
	// Trace, when set, scores uploaded measurements instead of
	// simulating. Mutually exclusive with Suites and SuiteSpec.
	Trace *TraceUpload `json:"trace,omitempty"`
	// RequestID is the trace ID of the HTTP request that submitted the
	// job (the server's X-Request-ID). It rides the fleet wire inside
	// Dispatch, so one ID stitches a job's lifecycle across coordinator
	// and worker logs. It is deliberately EXCLUDED from the content key
	// (hashRequest): two submissions differing only in trace ID are the
	// same job and must still deduplicate — a dedup fold keeps the
	// first job's ID.
	RequestID string `json:"request_id,omitempty"`
	// SuiteSpec, when set, is an inline declarative suite-spec document
	// (the -suite-file format). The suite builds and scores exactly like
	// a registered one — for kind "score" on its own, for kind "compare"
	// jointly after the named Suites — and its measurement content
	// address (which hashes the canonical spec JSON) folds into the
	// job/cache key, so two spec texts that build the same suite dedup
	// and two that differ anywhere do not. Mutually exclusive with Trace.
	SuiteSpec json.RawMessage `json:"suite_spec,omitempty"`

	// suiteSpec is the decoded SuiteSpec, set by Normalize.
	suiteSpec *suites.SuiteSpec
}

// Normalize fills defaults and validates the request in place. It must
// succeed before Key, SimConfig or a Runner may be used.
func (r *Request) Normalize() error {
	switch r.Kind {
	case store.KindScore, store.KindCompare:
	case "":
		return fmt.Errorf("jobs: request needs a kind (%q or %q)", store.KindScore, store.KindCompare)
	default:
		return fmt.Errorf("jobs: unknown kind %q", r.Kind)
	}
	if r.Group == "" {
		r.Group = "all"
	}
	if _, err := perf.GroupByName(r.Group); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	def := suites.DefaultConfig()
	if r.Config.Instructions == 0 {
		r.Config.Instructions = def.Instructions
	}
	if r.Config.Samples == 0 {
		r.Config.Samples = def.Samples
	}
	if r.Config.Seed == 0 {
		r.Config.Seed = def.Seed
	}
	if r.Config.Samples < 2 {
		return fmt.Errorf("jobs: samples %d < 2", r.Config.Samples)
	}
	if r.Trace != nil {
		if len(r.Suites) > 0 {
			return fmt.Errorf("jobs: request has both suites and a trace upload")
		}
		if len(r.SuiteSpec) > 0 {
			return fmt.Errorf("jobs: request has both a suite spec and a trace upload")
		}
		if r.Kind != store.KindScore {
			return fmt.Errorf("jobs: trace uploads are single-suite: kind must be %q", store.KindScore)
		}
		if r.Trace.Format == "" {
			r.Trace.Format = "json"
		}
		if r.Trace.Format != "json" && r.Trace.Format != "csv" {
			return fmt.Errorf("jobs: unknown trace format %q", r.Trace.Format)
		}
		if r.Trace.Name == "" {
			r.Trace.Name = "uploaded"
		}
		if len(r.Trace.Data) == 0 {
			return fmt.Errorf("jobs: trace upload is empty")
		}
		if len(r.Trace.Data) > MaxTraceBytes {
			return fmt.Errorf("jobs: trace upload exceeds %d bytes", MaxTraceBytes)
		}
		return nil
	}
	cfg := r.SimConfig()
	r.suiteSpec = nil
	if len(r.SuiteSpec) > 0 {
		if len(r.SuiteSpec) > suites.MaxSuiteSpecBytes {
			return fmt.Errorf("jobs: suite spec exceeds %d bytes", suites.MaxSuiteSpecBytes)
		}
		sp, err := suites.UnmarshalSuiteSpec(r.SuiteSpec)
		if err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		// The spec must build under this request's config: Build is what
		// the runner will call, so admit implies run.
		if _, err := sp.Build(cfg); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		r.suiteSpec = sp
	}
	nSuites := len(r.Suites)
	if r.suiteSpec != nil {
		nSuites++
	}
	if nSuites == 0 {
		return fmt.Errorf("jobs: request needs suites, a suite spec, or a trace upload")
	}
	if r.Kind == store.KindScore && nSuites != 1 {
		return fmt.Errorf("jobs: kind %q scores exactly one suite, got %d", store.KindScore, nSuites)
	}
	seen := make(map[string]bool, nSuites)
	for _, name := range r.Suites {
		if seen[name] {
			return fmt.Errorf("jobs: suite %q listed twice", name)
		}
		seen[name] = true
		if _, err := suites.ByName(name, cfg); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	if r.suiteSpec != nil && seen[r.suiteSpec.Name] {
		return fmt.Errorf("jobs: inline suite %q also listed in suites", r.suiteSpec.Name)
	}
	return nil
}

// ResolvedSuites returns every suite the request scores under cfg:
// registered names in request order, then the inline spec suite. It is
// only valid after Normalize.
func (r *Request) ResolvedSuites(cfg suites.Config) ([]suites.Suite, error) {
	out := make([]suites.Suite, 0, len(r.Suites)+1)
	for _, name := range r.Suites {
		s, err := suites.ByName(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if r.suiteSpec != nil {
		s, err := r.suiteSpec.Build(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// SimConfig renders the request's simulation config: the paper's
// Table-II machine under the requested budget/samples/seed.
func (r *Request) SimConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = r.Config.Instructions
	cfg.Samples = r.Config.Samples
	cfg.Seed = r.Config.Seed
	return cfg
}

// Key returns the request's content address (see hashRequest).
func (r *Request) Key() string { return hashRequest(r) }

// sourceKey is the measurement content address of one suite under cfg —
// by construction the same key internal/cache files the measurement
// under, which is what makes job dedup and the result store line up
// with the measurement cache.
func sourceKey(s suites.Suite, cfg suites.Config) string {
	return source.Simulator{Cfg: cfg}.Key(s)
}

// ParseTrace decodes an upload into a measurement. Both the submit path
// (early 400s) and the runner use it, so a trace that admits also runs.
func ParseTrace(t *TraceUpload) (*perf.SuiteMeasurement, error) {
	switch t.Format {
	case "json":
		return trace.ReadJSON(bytes.NewReader(t.Data))
	case "csv":
		return trace.ReadCSV(bytes.NewReader(t.Data), t.Name)
	default:
		return nil, fmt.Errorf("jobs: unknown trace format %q", t.Format)
	}
}
