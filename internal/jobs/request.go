package jobs

import (
	"bytes"
	"fmt"

	"perspector/internal/perf"
	"perspector/internal/source"
	"perspector/internal/store"
	"perspector/internal/suites"
	"perspector/internal/trace"
)

// MaxTraceBytes bounds one uploaded trace. The six stock suites at the
// default config serialize to single-digit megabytes; 64 MiB leaves
// room for much longer real-hardware traces while keeping one request
// from exhausting the process.
const MaxTraceBytes = 64 << 20

// TraceUpload is an inline measurement upload: the bytes of a trace
// file in the internal/trace JSON or CSV schema.
type TraceUpload struct {
	// Format is "json" (totals + series) or "csv" (totals only; the
	// engine's capability check then skips the TrendScore).
	Format string `json:"format"`
	// Name names the uploaded suite (CSV carries no name of its own).
	Name string `json:"name,omitempty"`
	// Data is the raw file content.
	Data []byte `json:"data"`
}

// Request describes one scoring job. The zero values of Group and
// Config normalize to the paper defaults.
type Request struct {
	// Kind is store.KindScore (one suite, own normalization) or
	// store.KindCompare (several suites, joint normalization).
	Kind string `json:"kind"`
	// Suites names stock suites to simulate; empty for trace uploads.
	Suites []string `json:"suites,omitempty"`
	// Group selects the focused event group: "all", "llc", "tlb".
	Group string `json:"group,omitempty"`
	// Config is the simulation configuration; zero fields take the
	// defaults (400k instructions, 100 samples, seed 2023).
	Config store.RunConfig `json:"config"`
	// Trace, when set, scores uploaded measurements instead of
	// simulating. Mutually exclusive with Suites.
	Trace *TraceUpload `json:"trace,omitempty"`
}

// Normalize fills defaults and validates the request in place. It must
// succeed before Key, SimConfig or a Runner may be used.
func (r *Request) Normalize() error {
	switch r.Kind {
	case store.KindScore, store.KindCompare:
	case "":
		return fmt.Errorf("jobs: request needs a kind (%q or %q)", store.KindScore, store.KindCompare)
	default:
		return fmt.Errorf("jobs: unknown kind %q", r.Kind)
	}
	if r.Group == "" {
		r.Group = "all"
	}
	if _, err := perf.GroupByName(r.Group); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	def := suites.DefaultConfig()
	if r.Config.Instructions == 0 {
		r.Config.Instructions = def.Instructions
	}
	if r.Config.Samples == 0 {
		r.Config.Samples = def.Samples
	}
	if r.Config.Seed == 0 {
		r.Config.Seed = def.Seed
	}
	if r.Config.Samples < 2 {
		return fmt.Errorf("jobs: samples %d < 2", r.Config.Samples)
	}
	if r.Trace != nil {
		if len(r.Suites) > 0 {
			return fmt.Errorf("jobs: request has both suites and a trace upload")
		}
		if r.Kind != store.KindScore {
			return fmt.Errorf("jobs: trace uploads are single-suite: kind must be %q", store.KindScore)
		}
		if r.Trace.Format == "" {
			r.Trace.Format = "json"
		}
		if r.Trace.Format != "json" && r.Trace.Format != "csv" {
			return fmt.Errorf("jobs: unknown trace format %q", r.Trace.Format)
		}
		if r.Trace.Name == "" {
			r.Trace.Name = "uploaded"
		}
		if len(r.Trace.Data) == 0 {
			return fmt.Errorf("jobs: trace upload is empty")
		}
		if len(r.Trace.Data) > MaxTraceBytes {
			return fmt.Errorf("jobs: trace upload exceeds %d bytes", MaxTraceBytes)
		}
		return nil
	}
	if len(r.Suites) == 0 {
		return fmt.Errorf("jobs: request needs suites or a trace upload")
	}
	if r.Kind == store.KindScore && len(r.Suites) != 1 {
		return fmt.Errorf("jobs: kind %q scores exactly one suite, got %d", store.KindScore, len(r.Suites))
	}
	cfg := r.SimConfig()
	seen := make(map[string]bool, len(r.Suites))
	for _, name := range r.Suites {
		if seen[name] {
			return fmt.Errorf("jobs: suite %q listed twice", name)
		}
		seen[name] = true
		if _, err := suites.ByName(name, cfg); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	return nil
}

// SimConfig renders the request's simulation config: the paper's
// Table-II machine under the requested budget/samples/seed.
func (r *Request) SimConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = r.Config.Instructions
	cfg.Samples = r.Config.Samples
	cfg.Seed = r.Config.Seed
	return cfg
}

// Key returns the request's content address (see hashRequest).
func (r *Request) Key() string { return hashRequest(r) }

// sourceKey is the measurement content address of one suite under cfg —
// by construction the same key internal/cache files the measurement
// under, which is what makes job dedup and the result store line up
// with the measurement cache.
func sourceKey(s suites.Suite, cfg suites.Config) string {
	return source.Simulator{Cfg: cfg}.Key(s)
}

// ParseTrace decodes an upload into a measurement. Both the submit path
// (early 400s) and the runner use it, so a trace that admits also runs.
func ParseTrace(t *TraceUpload) (*perf.SuiteMeasurement, error) {
	switch t.Format {
	case "json":
		return trace.ReadJSON(bytes.NewReader(t.Data))
	case "csv":
		return trace.ReadCSV(bytes.NewReader(t.Data), t.Name)
	default:
		return nil, fmt.Errorf("jobs: unknown trace format %q", t.Format)
	}
}
