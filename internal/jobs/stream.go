package jobs

// Streaming scoring: a stream is a long-lived scoring job whose input
// arrives in chunks. A client opens a stream naming the suites it will
// feed, POSTs counter/series chunks as workloads execute, and long-polls
// evolving ScoreSets; each chunk batch re-scores through
// metric.IncrementalRun, which updates the cached artifacts (bounds,
// distance matrix, pairwise DTW, joint normalization) instead of
// rebuilding them — so a chunk's rescore costs the delta, not the full
// O(n²·DTW) pipeline, while staying bit-identical to a one-shot batch
// score of the accumulated data.
//
// Streams carry the queue's service-grade behaviours: content-addressed
// stream keys (a SHA-256 chain over the open request and every accepted
// chunk, so the same open + chunk sequence addresses the same result),
// cancellation (DELETE cancels the rescore context mid-flight), and
// drain (open streams are closed gracefully, finishing queued chunks
// within the deadline; stragglers are cancelled). No stream goroutine
// outlives Drain.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"perspector/internal/metric"
	"perspector/internal/obs"
	"perspector/internal/perf"
	"perspector/internal/store"
)

// streamKeySchema versions the stream content-address chain; bump it
// whenever the chunk schema or fold order changes meaning.
const streamKeySchema = 1

// Stream admission and shape bounds.
const (
	// MaxStreamSuites bounds the suites one stream may feed.
	MaxStreamSuites = 16
	// MaxChunkWorkloads bounds the workload entries in one chunk.
	MaxChunkWorkloads = 1024
	// DefaultMaxStreams is the default concurrent-stream admission bound.
	DefaultMaxStreams = 64
	// DefaultMaxPending is the default per-stream backlog of accepted but
	// not yet applied chunks.
	DefaultMaxPending = 256
)

// Stream errors a transport maps to client-visible statuses.
var (
	// ErrStreamNotFound marks an unknown stream ID (HTTP 404).
	ErrStreamNotFound = errors.New("jobs: no such stream")
	// ErrStreamClosed rejects chunks for a stream that is no longer open
	// (HTTP 409).
	ErrStreamClosed = errors.New("jobs: stream is not open")
	// ErrStreamLimit rejects opens past the admission bound (HTTP 429).
	ErrStreamLimit = errors.New("jobs: too many active streams")
	// ErrStreamBacklog rejects chunks when a stream's unapplied backlog
	// is full (HTTP 429): the producer outruns the rescore loop.
	ErrStreamBacklog = errors.New("jobs: stream backlog is full")
)

// StreamState is a stream's position in its lifecycle:
//
//	open → closing → done | failed
//	open/closing → canceled
type StreamState string

const (
	StreamOpen     StreamState = "open"
	StreamClosing  StreamState = "closing"
	StreamDone     StreamState = "done"
	StreamFailed   StreamState = "failed"
	StreamCanceled StreamState = "canceled"
)

// StreamStates lists every state, for metrics exposition in fixed order.
func StreamStates() []StreamState {
	return []StreamState{StreamOpen, StreamClosing, StreamDone, StreamFailed, StreamCanceled}
}

// Terminal reports whether a stream in state s has finished for good.
func (s StreamState) Terminal() bool {
	return s == StreamDone || s == StreamFailed || s == StreamCanceled
}

// StreamOpenRequest opens a stream. Group and Counters have the same
// defaults as a scoring job: event group "all", chunk columns covering
// every Table-IV counter.
type StreamOpenRequest struct {
	// Suites names the measured systems this stream feeds, in order. One
	// suite scores on its own normalization (kind "score"); several score
	// under joint normalization (kind "compare"), and a chunk for one
	// suite re-normalizes the others only when it moves a joint bound.
	Suites []string `json:"suites"`
	// Group selects the focused event group to score: "all", "llc", "tlb".
	Group string `json:"group,omitempty"`
	// Counters names the chunk columns (perf-style event names). Chunk
	// totals/series rows are parallel to this list. Defaults to all
	// Table-IV counters.
	Counters []string `json:"counters,omitempty"`
	// SampleInterval is the instruction distance between series samples,
	// recorded on the accumulated measurement.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
}

// StreamChunk is one increment of measurement data.
type StreamChunk struct {
	// Suite names the suite the chunk belongs to; optional when the
	// stream feeds exactly one.
	Suite string `json:"suite,omitempty"`
	// Workloads carries per-workload increments. A name not seen before
	// appends a new workload; a known name accumulates into it.
	Workloads []ChunkWorkload `json:"workloads"`
}

// ChunkWorkload is the increment for one workload.
type ChunkWorkload struct {
	// Name identifies the workload within its suite.
	Name string `json:"name"`
	// Totals are per-counter event-count deltas, parallel to the
	// stream's counters; omitted means no counter growth in this chunk.
	Totals []uint64 `json:"totals,omitempty"`
	// Series are sampled per-counter delta series to append, parallel to
	// the stream's counters (Series[k][t] is counter k's delta in
	// appended sample t).
	Series [][]float64 `json:"series,omitempty"`
}

// StreamSnapshot is the client-visible view of a stream.
type StreamSnapshot struct {
	ID    string      `json:"id"`
	State StreamState `json:"state"`
	// Kind is store.KindScore or store.KindCompare, from the suite count.
	Kind   string   `json:"kind"`
	Suites []string `json:"suites"`
	Group  string   `json:"group"`
	// Key is the content address of the accepted chunk sequence so far:
	// a SHA-256 chain over the normalized open request and every chunk,
	// in order. Two streams fed identical data share every prefix key.
	Key string `json:"key"`
	// Chunks counts accepted chunks; Seq counts published score
	// versions (0 = none yet).
	Chunks int   `json:"chunks"`
	Seq    int64 `json:"seq"`
	// Workloads counts accumulated workloads per suite.
	Workloads []int `json:"workloads"`
	// Error is the most recent rescore failure (a stream stays open
	// across a failed rescore — later chunks may repair it), or the
	// terminal failure.
	Error      *ErrorInfo `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// StreamScores is the long-poll response: the snapshot plus the latest
// published ScoreSet (absent until the first successful rescore).
type StreamScores struct {
	StreamSnapshot
	Scores *store.ScoreSet `json:"scores,omitempty"`
}

// StreamOptions configures a StreamManager.
type StreamOptions struct {
	// Store receives each finished stream's final ScoreSet under its
	// content-addressed stream key. Nil disables persistence.
	Store *store.Store
	// MaxStreams bounds concurrently live (non-terminal) streams;
	// 0 means DefaultMaxStreams.
	MaxStreams int
	// MaxPending bounds each stream's backlog of accepted but unapplied
	// chunks; 0 means DefaultMaxPending.
	MaxPending int
	// Log receives lifecycle events. Nil discards them.
	Log *slog.Logger
}

// StreamManager owns every stream's lifecycle and the rescore loops.
type StreamManager struct {
	opt StreamOptions

	mu       sync.Mutex
	cond     *sync.Cond
	streams  map[string]*Stream
	order    []string
	nextID   int
	draining bool
	wg       sync.WaitGroup

	// Telemetry, guarded by mu: rescore-latency histogram, accepted
	// chunk count, and admission rejections.
	rescores    obs.StageAgg
	chunksTotal int64
	rejected    int64
}

// Stream is the manager's record of one stream. All mutable fields are
// guarded by the manager mutex; the rescore goroutine owns run/meas and
// touches them outside the lock (handlers never do).
type Stream struct {
	m   *StreamManager
	id  string
	key string

	kind     string
	suites   []string
	group    string
	counters []perf.Counter
	interval uint64

	run *metric.IncrementalRun

	state   StreamState
	pending []StreamChunk
	chunks  int
	seq     int64
	scores  *store.ScoreSet
	lastErr *ErrorInfo

	createdAt  time.Time
	finishedAt time.Time

	ctx    context.Context
	cancel context.CancelFunc
	// notify is closed (and replaced) at every publish; long-pollers
	// grab the current channel and wait. done closes exactly once, when
	// the rescore goroutine exits.
	notify chan struct{}
	done   chan struct{}
}

// NewStreamManager builds a manager; streams are admitted via Open.
func NewStreamManager(opt StreamOptions) *StreamManager {
	if opt.MaxStreams <= 0 {
		opt.MaxStreams = DefaultMaxStreams
	}
	if opt.MaxPending <= 0 {
		opt.MaxPending = DefaultMaxPending
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := &StreamManager{opt: opt, streams: make(map[string]*Stream)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Open admits a new stream and starts its rescore goroutine.
func (m *StreamManager) Open(req StreamOpenRequest) (StreamSnapshot, error) {
	if len(req.Suites) == 0 {
		return StreamSnapshot{}, fmt.Errorf("jobs: stream needs at least one suite")
	}
	if len(req.Suites) > MaxStreamSuites {
		return StreamSnapshot{}, fmt.Errorf("jobs: stream names %d suites, max %d", len(req.Suites), MaxStreamSuites)
	}
	seen := make(map[string]bool, len(req.Suites))
	for _, s := range req.Suites {
		if s == "" {
			return StreamSnapshot{}, fmt.Errorf("jobs: stream suite name is empty")
		}
		if seen[s] {
			return StreamSnapshot{}, fmt.Errorf("jobs: stream suite %q listed twice", s)
		}
		seen[s] = true
	}
	if req.Group == "" {
		req.Group = "all"
	}
	group, err := perf.GroupByName(req.Group)
	if err != nil {
		return StreamSnapshot{}, fmt.Errorf("jobs: %w", err)
	}
	counters := perf.AllCounters()
	if len(req.Counters) > 0 {
		counters = make([]perf.Counter, len(req.Counters))
		cseen := make(map[perf.Counter]bool, len(req.Counters))
		for i, name := range req.Counters {
			c, err := perf.ParseCounter(name)
			if err != nil {
				return StreamSnapshot{}, fmt.Errorf("jobs: %w", err)
			}
			if cseen[c] {
				return StreamSnapshot{}, fmt.Errorf("jobs: stream counter %q listed twice", name)
			}
			cseen[c] = true
			counters[i] = c
		}
	}

	kind := store.KindScore
	if len(req.Suites) > 1 {
		kind = store.KindCompare
	}
	opts := metric.DefaultOptions()
	opts.Counters = group.Counters
	sms := make([]*perf.SuiteMeasurement, len(req.Suites))
	for i, name := range req.Suites {
		sms[i] = &perf.SuiteMeasurement{Suite: name}
	}
	run, err := metric.NewIncrementalRun(sms, opts, nil)
	if err != nil {
		return StreamSnapshot{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return StreamSnapshot{}, ErrDraining
	}
	live := 0
	for _, s := range m.streams {
		if !s.state.Terminal() {
			live++
		}
	}
	if live >= m.opt.MaxStreams {
		m.rejected++
		return StreamSnapshot{}, ErrStreamLimit
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	s := &Stream{
		m:         m,
		id:        fmt.Sprintf("s-%06d", m.nextID),
		key:       openKey(&req),
		kind:      kind,
		suites:    append([]string(nil), req.Suites...),
		group:     req.Group,
		counters:  counters,
		interval:  req.SampleInterval,
		run:       run,
		state:     StreamOpen,
		createdAt: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		notify:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.streams[s.id] = s
	m.order = append(m.order, s.id)
	m.wg.Add(1)
	go s.loop()
	m.opt.Log.Info("stream opened", "stream", s.id, "kind", kind, "suites", s.suites, "group", s.group)
	return s.snapshotLocked(), nil
}

// Append accepts one chunk into the stream's backlog; the rescore
// goroutine folds backlogged chunks into the measurement in acceptance
// order (coalescing bursts into one rescore) and publishes a new score
// version. The stream's content key advances over the accepted chunk
// before the rescore runs, so the key identifies the *input* sequence.
func (m *StreamManager) Append(id string, chunk StreamChunk) (StreamSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[id]
	if s == nil {
		return StreamSnapshot{}, ErrStreamNotFound
	}
	if s.state != StreamOpen {
		return s.snapshotLocked(), ErrStreamClosed
	}
	if err := s.validateChunk(&chunk); err != nil {
		return s.snapshotLocked(), err
	}
	if len(s.pending) >= m.opt.MaxPending {
		m.rejected++
		return s.snapshotLocked(), ErrStreamBacklog
	}
	s.key = chainKey(s.key, &chunk)
	s.chunks++
	m.chunksTotal++
	s.pending = append(s.pending, chunk)
	m.cond.Broadcast()
	return s.snapshotLocked(), nil
}

// Close seals the stream: backlogged chunks still apply, a final score
// version is published (and persisted to the result store under the
// stream key), and the stream reaches "done" — or "failed" if the final
// rescore failed.
func (m *StreamManager) Close(id string) (StreamSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[id]
	if s == nil {
		return StreamSnapshot{}, ErrStreamNotFound
	}
	if s.state == StreamOpen {
		s.state = StreamClosing
		m.cond.Broadcast()
	}
	return s.snapshotLocked(), nil
}

// Cancel aborts the stream: the backlog is dropped, a rescore in flight
// has its context cancelled, and the stream reaches "canceled". Already
// terminal streams are left as they are.
func (m *StreamManager) Cancel(id string) (StreamSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[id]
	if s == nil {
		return StreamSnapshot{}, ErrStreamNotFound
	}
	if !s.state.Terminal() {
		s.state = StreamCanceled
		s.pending = nil
		s.cancel()
		m.cond.Broadcast()
	}
	return s.snapshotLocked(), nil
}

// Get returns a stream's snapshot.
func (m *StreamManager) Get(id string) (StreamSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[id]
	if s == nil {
		return StreamSnapshot{}, ErrStreamNotFound
	}
	return s.snapshotLocked(), nil
}

// List returns every stream's snapshot in open order.
func (m *StreamManager) List() []StreamSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StreamSnapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.streams[id].snapshotLocked())
	}
	return out
}

// Scores long-polls the stream: it returns as soon as the published
// score version exceeds since, or the stream is terminal, or ctx fires.
// since=0 returns the first published version; polling with the last
// seen Seq tails the evolving scores.
func (m *StreamManager) Scores(ctx context.Context, id string, since int64) (StreamScores, error) {
	m.mu.Lock()
	for {
		s := m.streams[id]
		if s == nil {
			m.mu.Unlock()
			return StreamScores{}, ErrStreamNotFound
		}
		if s.seq > since || s.state.Terminal() {
			out := StreamScores{StreamSnapshot: s.snapshotLocked(), Scores: s.scores}
			m.mu.Unlock()
			return out, nil
		}
		ch := s.notify
		m.mu.Unlock()
		select {
		case <-ctx.Done():
			return StreamScores{}, ctx.Err()
		case <-ch:
		}
		m.mu.Lock()
	}
}

// Drain stops admission and winds every stream down: open streams are
// sealed (their backlog still applies and a final version publishes,
// exactly as Close), and the manager waits for every rescore goroutine
// — up to ctx's deadline, after which the stragglers are cancelled and
// waited out. No stream goroutine survives Drain.
func (m *StreamManager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	for _, s := range m.streams {
		if s.state == StreamOpen {
			s.state = StreamClosing
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		for _, s := range m.streams {
			if !s.state.Terminal() {
				s.state = StreamCanceled
				s.pending = nil
				s.cancel()
			}
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		<-finished
	}
	return err
}

// StreamTelemetry is the manager's metrics snapshot.
type StreamTelemetry struct {
	// States counts streams per lifecycle state.
	States map[StreamState]int
	// Active counts non-terminal streams.
	Active int
	// ChunksTotal counts accepted chunks; Rejected counts admissions
	// refused for backlog or stream-limit reasons.
	ChunksTotal int64
	Rejected    int64
	// Rescores aggregates rescore latency (shape of obs.DurationBuckets).
	Rescores obs.StageAgg
}

// Telemetry returns a consistent metrics snapshot.
func (m *StreamManager) Telemetry() StreamTelemetry {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := StreamTelemetry{
		States:      make(map[StreamState]int, len(m.streams)),
		ChunksTotal: m.chunksTotal,
		Rejected:    m.rejected,
		Rescores:    m.rescores,
	}
	for _, s := range m.streams {
		t.States[s.state]++
		if !s.state.Terminal() {
			t.Active++
		}
	}
	return t
}

// validateChunk checks shape against the stream's counter list; called
// under the manager mutex at admission so a rejected chunk never
// advances the key or the backlog.
func (s *Stream) validateChunk(c *StreamChunk) error {
	if c.Suite == "" {
		if len(s.suites) > 1 {
			return fmt.Errorf("jobs: stream feeds %d suites; chunk must name one of them", len(s.suites))
		}
		c.Suite = s.suites[0]
	}
	if s.suiteIndex(c.Suite) < 0 {
		return fmt.Errorf("jobs: stream has no suite %q", c.Suite)
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("jobs: chunk has no workloads")
	}
	if len(c.Workloads) > MaxChunkWorkloads {
		return fmt.Errorf("jobs: chunk has %d workloads, max %d", len(c.Workloads), MaxChunkWorkloads)
	}
	for i := range c.Workloads {
		w := &c.Workloads[i]
		if w.Name == "" {
			return fmt.Errorf("jobs: chunk workload %d has no name", i)
		}
		if w.Totals != nil && len(w.Totals) != len(s.counters) {
			return fmt.Errorf("jobs: workload %q totals has %d entries, stream has %d counters",
				w.Name, len(w.Totals), len(s.counters))
		}
		if w.Series != nil {
			if len(w.Series) != len(s.counters) {
				return fmt.Errorf("jobs: workload %q series has %d rows, stream has %d counters",
					w.Name, len(w.Series), len(s.counters))
			}
			for k := 1; k < len(w.Series); k++ {
				if len(w.Series[k]) != len(w.Series[0]) {
					return fmt.Errorf("jobs: workload %q series rows have unequal lengths (%d vs %d)",
						w.Name, len(w.Series[k]), len(w.Series[0]))
				}
			}
		}
	}
	return nil
}

func (s *Stream) suiteIndex(name string) int {
	for i, n := range s.suites {
		if n == name {
			return i
		}
	}
	return -1
}

// loop is the stream's rescore goroutine: it folds backlogged chunks
// into the incremental run, publishes a score version per batch, and
// finalizes on close/cancel.
func (s *Stream) loop() {
	defer s.m.wg.Done()
	m := s.m
	for {
		m.mu.Lock()
		for s.state == StreamOpen && len(s.pending) == 0 {
			m.cond.Wait()
		}
		state := s.state
		batch := s.pending
		s.pending = nil
		m.mu.Unlock()

		if state == StreamCanceled {
			s.finish(StreamCanceled)
			return
		}
		if len(batch) > 0 {
			if err := s.apply(batch); err != nil {
				// Chunk admission validates shape, so an apply error means
				// the stream's data model broke (not a transient rescore
				// failure): the stream fails for good.
				m.mu.Lock()
				s.lastErr = errorInfo(err)
				m.mu.Unlock()
				s.finish(StreamFailed)
				return
			}
			s.rescore()
		}
		if state != StreamClosing {
			continue
		}
		// Closing: chunks can no longer be admitted, so the batch above
		// was the last — unless a cancel slipped in while rescoring.
		m.mu.Lock()
		canceled := s.state == StreamCanceled
		needFinal := s.seq == 0
		m.mu.Unlock()
		if canceled {
			s.finish(StreamCanceled)
			return
		}
		if needFinal {
			// Close before any chunk: publish one version of the empty
			// stream so pollers see the (failed) outcome.
			s.rescore()
		}
		m.mu.Lock()
		failed := s.lastErr != nil
		canceled = s.state == StreamCanceled
		m.mu.Unlock()
		switch {
		case canceled:
			s.finish(StreamCanceled)
		case failed:
			s.finish(StreamFailed)
		default:
			s.persistFinal()
			s.finish(StreamDone)
		}
		return
	}
}

// apply folds a chunk batch into the incremental run. Runs outside the
// manager lock: the loop goroutine is the run's only user.
func (s *Stream) apply(batch []StreamChunk) error {
	for ci := range batch {
		c := &batch[ci]
		si := s.suiteIndex(c.Suite)
		for wi := range c.Workloads {
			w := &c.Workloads[wi]
			var totals perf.Values
			for k, v := range w.Totals {
				totals[s.counters[k]] += v
			}
			var series *perf.TimeSeries
			if len(w.Series) > 0 && len(w.Series[0]) > 0 {
				series = &perf.TimeSeries{Interval: s.interval}
				for k, row := range w.Series {
					series.Samples[s.counters[k]] = append([]float64(nil), row...)
				}
			}
			if s.run.WorkloadIndex(si, w.Name) < 0 {
				meas := perf.Measurement{Workload: w.Name, Totals: totals}
				if series != nil {
					meas.Series = *series
				}
				if err := s.run.AppendWorkload(si, meas); err != nil {
					return err
				}
				continue
			}
			if err := s.run.AppendSamples(si, w.Name, totals, series); err != nil {
				return err
			}
		}
	}
	return nil
}

// rescore computes and publishes the next score version. A failed
// rescore publishes the error instead (the stream stays open: more data
// may repair it — e.g. the joint normalization needs every suite
// non-empty). Latency feeds the manager's histogram either way.
func (s *Stream) rescore() {
	start := time.Now()
	scores, err := s.run.Scores(s.ctx)
	elapsed := time.Since(start).Seconds()

	m := s.m
	m.mu.Lock()
	m.rescores.Observe(elapsed)
	s.seq++
	if err != nil {
		s.lastErr = errorInfo(err)
	} else {
		s.lastErr = nil
		set := store.New(s.kind, s.group, "stream", nil, scores)
		s.scores = &set
	}
	close(s.notify)
	s.notify = make(chan struct{})
	m.mu.Unlock()
}

// persistFinal writes the final ScoreSet to the result store under the
// stream's content-addressed key.
func (s *Stream) persistFinal() {
	m := s.m
	m.mu.Lock()
	key, scores := s.key, s.scores
	m.mu.Unlock()
	if m.opt.Store == nil || scores == nil {
		return
	}
	if err := m.opt.Store.Put(key, *scores); err != nil {
		m.opt.Log.Warn("stream result not persisted", "stream", s.id, "error", err)
	}
}

// finish moves the stream to a terminal state and wakes every waiter.
func (s *Stream) finish(state StreamState) {
	m := s.m
	m.mu.Lock()
	s.state = state
	s.finishedAt = time.Now()
	s.cancel()
	close(s.notify)
	s.notify = make(chan struct{})
	close(s.done)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.opt.Log.Info("stream finished", "stream", s.id, "state", state, "chunks", s.chunks, "versions", s.seq)
}

// Done returns a channel closed when the stream's goroutine has exited;
// tests and drains use it to join on completion.
func (m *StreamManager) Done(id string) (<-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[id]
	if s == nil {
		return nil, ErrStreamNotFound
	}
	return s.done, nil
}

// snapshotLocked renders the client view; the manager mutex must be held.
func (s *Stream) snapshotLocked() StreamSnapshot {
	snap := StreamSnapshot{
		ID:        s.id,
		State:     s.state,
		Kind:      s.kind,
		Suites:    append([]string(nil), s.suites...),
		Group:     s.group,
		Key:       s.key,
		Chunks:    s.chunks,
		Seq:       s.seq,
		Workloads: make([]int, s.run.Suites()),
		Error:     s.lastErr,
		CreatedAt: s.createdAt,
	}
	for i := range snap.Workloads {
		snap.Workloads[i] = len(s.run.Measurement(i).Workloads)
	}
	if !s.finishedAt.IsZero() {
		t := s.finishedAt
		snap.FinishedAt = &t
	}
	return snap
}

// openKey starts the stream's content-address chain: a SHA-256 over the
// schema tag and the normalized open request.
func openKey(req *StreamOpenRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "perspector-stream-schema=%d\n", streamKeySchema)
	enc, _ := json.Marshal(req)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// chainKey advances the chain over one accepted chunk: the new key
// hashes the previous key and the chunk's canonical JSON, so the key
// after chunk i addresses the exact (open, chunk₁..chunkᵢ) sequence.
func chainKey(prev string, chunk *StreamChunk) string {
	h := sha256.New()
	h.Write([]byte(prev))
	h.Write([]byte("\n"))
	enc, _ := json.Marshal(chunk)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}
