package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"perspector/internal/store"
	"perspector/internal/suites"
)

// specDoc renders a minimal valid suite-spec document. workingSet
// perturbs the spec content without changing its shape, so two calls
// with different values are semantically different suites.
func specDoc(name string, workingSet int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{
  "version": 1,
  "name": %q,
  "workloads": [
    {
      "name": "%s.scan",
      "phases": [
        {
          "name": "scan",
          "weight": 1,
          "load_frac": 0.4,
          "load_pattern": {"kind": "sequential", "working_set": %d, "stride": 64}
        }
      ]
    }
  ]
}`, name, name, workingSet))
}

func specReq(kind string, spec json.RawMessage, named ...string) Request {
	return Request{
		Kind:      kind,
		Suites:    named,
		SuiteSpec: spec,
		Config:    store.RunConfig{Instructions: 1000, Samples: 10, Seed: 7},
	}
}

// TestNormalizeInlineSpec pins the admission contract for inline suite
// specs: a valid spec scores alone or compares alongside named suites;
// everything ambiguous or malformed is rejected before a job exists.
func TestNormalizeInlineSpec(t *testing.T) {
	good := []Request{
		specReq(store.KindScore, specDoc("custom", 1<<20)),
		specReq(store.KindCompare, specDoc("custom", 1<<20), "nbench"),
		specReq(store.KindCompare, specDoc("custom", 1<<20), "nbench", "parsec"),
	}
	for i, req := range good {
		if err := req.Normalize(); err != nil {
			t.Errorf("valid spec request %d rejected: %v", i, err)
		}
	}

	huge := specReq(store.KindScore, json.RawMessage(`{"version":1,"name":"`+strings.Repeat("x", suites.MaxSuiteSpecBytes)+`"}`))
	bad := []Request{
		specReq(store.KindScore, specDoc("custom", 1<<20), "nbench"),                         // score takes one suite
		specReq(store.KindCompare, specDoc("nbench", 1<<20), "nbench"),                       // name collides with listed suite
		specReq(store.KindScore, json.RawMessage(`{"version":1,"name":"x","workloads":[]}`)), // no workloads
		specReq(store.KindScore, json.RawMessage(`{"version":9,"name":"x"}`)),                // wrong version
		specReq(store.KindScore, json.RawMessage(`{not json`)),
		huge,
		{
			Kind:      store.KindScore,
			SuiteSpec: specDoc("custom", 1<<20),
			Trace:     &TraceUpload{Format: "csv", Data: []byte("x")},
			Config:    store.RunConfig{Instructions: 1000, Samples: 10, Seed: 7},
		},
	}
	for i, req := range bad {
		if err := req.Normalize(); err == nil {
			t.Errorf("bad spec request %d admitted", i)
		}
	}
}

// TestInlineSpecKey pins content addressing for inline specs: the job
// key follows the spec's semantic content — identical documents and
// reformatted-but-equal documents share a key; any semantic change
// (working-set, suite name, request kind) produces a new one.
func TestInlineSpecKey(t *testing.T) {
	key := func(req Request) string {
		t.Helper()
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		return req.Key()
	}

	base := key(specReq(store.KindScore, specDoc("custom", 1<<20)))
	if again := key(specReq(store.KindScore, specDoc("custom", 1<<20))); again != base {
		t.Errorf("identical spec requests got different keys: %s vs %s", base, again)
	}

	// Whitespace-only reformatting must not change the key: the content
	// address hashes the canonical re-marshalled spec, not the raw text.
	var compact bytes.Buffer
	if err := json.Compact(&compact, specDoc("custom", 1<<20)); err != nil {
		t.Fatal(err)
	}
	if k := key(specReq(store.KindScore, compact.Bytes())); k != base {
		t.Errorf("reformatted spec changed the key: %s vs %s", base, k)
	}

	if k := key(specReq(store.KindScore, specDoc("custom", 2<<20))); k == base {
		t.Error("working-set change did not change the key")
	}
	if k := key(specReq(store.KindScore, specDoc("other", 1<<20))); k == base {
		t.Error("suite-name change did not change the key")
	}
	if k := key(specReq(store.KindCompare, specDoc("custom", 1<<20), "nbench")); k == base {
		t.Error("adding a named suite did not change the key")
	}
}

// TestInlineSpecRuns submits an inline-spec job through the real queue
// with a runner that resolves the request's suites, pinning that the
// decoded spec survives from Normalize to the worker.
func TestInlineSpecRuns(t *testing.T) {
	q := New(func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		req := h.Request()
		ss, err := req.ResolvedSuites(req.SimConfig())
		if err != nil {
			return store.ScoreSet{}, err
		}
		if len(ss) != 1 || ss[0].Name != "custom" || len(ss[0].Specs) != 1 {
			return store.ScoreSet{}, fmt.Errorf("resolved %+v", ss)
		}
		return fakeResult(), nil
	}, Options{Workers: 1})
	defer q.Drain(context.Background())

	snap, dup, err := q.Submit(specReq(store.KindScore, specDoc("custom", 1<<20)))
	if err != nil || dup {
		t.Fatalf("submit: dup=%v err=%v", dup, err)
	}
	waitState(t, q, snap.ID, StateDone)
}
