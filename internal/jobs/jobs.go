// Package jobs is perspectord's job queue: scoring requests are
// submitted, executed on a bounded number of workers, and their results
// appended to the durable store. The queue owns the whole job lifecycle:
//
//	queued → running → done | failed | canceled
//
// Three service-grade behaviours live here rather than in the HTTP
// layer, so they hold for any transport:
//
//   - Deduplication. Requests are content-addressed (the same hash
//     family as internal/cache, extended with the scoring parameters).
//     Submitting a request identical to one already queued or running
//     returns the existing job instead of queueing twice; submitting one
//     whose result is already in the store completes instantly from the
//     stored document ("replayed").
//   - Cancellation. A queued job is removed from the pending list and
//     never starts; a running job has its context cancelled, which flows
//     through the engine's par.DoErr fan-outs into the simulator loops,
//     so it stops within one sample batch.
//   - Drain. Drain stops admission, cancels everything still queued,
//     and waits for running jobs to finish — up to the caller's
//     deadline, after which the running contexts are cancelled too and
//     the workers are waited out. No goroutine outlives Drain.
//
// Failures are reported structurally: the engine's *stage.Error tags
// (stage, suite, workload) are lifted into the job snapshot, so a client
// can see *where* a job died without parsing message strings.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perspector/internal/obs"
	"perspector/internal/stage"
	"perspector/internal/store"
)

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// States lists every state, for metrics exposition in a fixed order.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
}

// Terminal reports whether a job in state s has finished for good.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Submission errors a transport maps to client-visible statuses.
var (
	// ErrDraining rejects submissions during shutdown (HTTP 503).
	ErrDraining = errors.New("jobs: queue is draining")
	// ErrQueueFull rejects submissions past the admission bound (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrNotFound marks an unknown job ID (HTTP 404).
	ErrNotFound = errors.New("jobs: no such job")
)

// ErrorInfo is a job failure lifted into the snapshot: the engine's
// stage tag plus the rendered cause.
type ErrorInfo struct {
	Stage    string `json:"stage,omitempty"`
	Suite    string `json:"suite,omitempty"`
	Workload string `json:"workload,omitempty"`
	Message  string `json:"message"`
	Canceled bool   `json:"canceled,omitempty"`
}

// errorInfo lifts err into the snapshot form.
func errorInfo(err error) *ErrorInfo {
	info := &ErrorInfo{Message: err.Error(), Canceled: stage.Canceled(err)}
	var se *stage.Error
	if errors.As(err, &se) {
		info.Stage = string(se.Stage)
		info.Suite = se.Suite
		info.Workload = se.Workload
	}
	return info
}

// Job is the queue's internal record of one request. All mutable fields
// are guarded by the queue mutex; clients only ever see Snapshots.
type Job struct {
	id  string
	key string
	req Request

	state      State
	stage      string
	stageDone  int
	stageTotal int
	err        *ErrorInfo
	result     *store.ScoreSet
	replayed   bool
	deduped    int

	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time

	// instr counts simulated instructions retired by this job. Atomic:
	// the runner's measurement fan-out adds from worker goroutines while
	// snapshots read under the queue mutex.
	instr atomic.Uint64

	cancel context.CancelFunc
	done   chan struct{}
}

// Snapshot is the client-visible view of a job, safe to serialize.
type Snapshot struct {
	ID     string   `json:"id"`
	Key    string   `json:"key"`
	Kind   string   `json:"kind"`
	Group  string   `json:"group"`
	Suites []string `json:"suites,omitempty"`
	Trace  string   `json:"trace,omitempty"`
	// RequestID is the trace ID of the submitting HTTP request; the same
	// ID appears in every log line the job emits, on any node.
	RequestID string `json:"request_id,omitempty"`

	State State `json:"state"`
	// Stage is the engine stage the job is in (or died in): "measure",
	// "score", "store" — or "dispatch" on a fleet coordinator.
	Stage string `json:"stage,omitempty"`
	// StageDone/StageTotal are the progress within Stage (e.g. suites
	// measured out of suites requested).
	StageDone  int `json:"stage_done,omitempty"`
	StageTotal int `json:"stage_total,omitempty"`
	// Replayed marks a job served straight from the result store.
	Replayed bool `json:"replayed,omitempty"`
	// Deduped counts how many later submissions were folded into this job.
	Deduped int `json:"deduped,omitempty"`

	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`

	// Instructions is the simulated-instruction count retired on behalf
	// of this job so far (0 for replays and pure cache hits). A fleet
	// worker reports it back to the coordinator with the result, so the
	// coordinator's throughput EWMA reflects remote work.
	Instructions uint64 `json:"instructions,omitempty"`

	Error     *ErrorInfo `json:"error,omitempty"`
	HasResult bool       `json:"has_result"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Handle is the runner's view of its job: the request, progress
// reporting, and the simulated-instruction account.
type Handle struct {
	q   *Queue
	job *Job
}

// Request returns the normalized request being executed.
func (h *Handle) Request() Request { return h.job.req }

// Key returns the job's content address — what a fleet coordinator
// hashes onto the ring to pick the owning node.
func (h *Handle) Key() string { return h.job.key }

// SetStage enters a named stage with the given work-item total.
func (h *Handle) SetStage(name string, total int) {
	h.q.mu.Lock()
	h.job.stage = name
	h.job.stageDone = 0
	h.job.stageTotal = total
	h.q.mu.Unlock()
}

// Advance records n completed work items in the current stage.
func (h *Handle) Advance(n int) {
	h.q.mu.Lock()
	h.job.stageDone += n
	h.q.mu.Unlock()
}

// AddInstructions accounts n simulated instructions retired on behalf of
// this job (cache hits don't simulate, so they don't count).
func (h *Handle) AddInstructions(n uint64) {
	h.job.instr.Add(n)
	h.q.retired.Add(n)
}

// Runner executes one job: it measures and scores per the request and
// returns the result document. Implementations honour ctx and return
// stage-tagged errors; EngineRunner is the production implementation.
type Runner func(ctx context.Context, h *Handle) (store.ScoreSet, error)

// Options bounds the queue.
type Options struct {
	// Workers is the number of jobs that run concurrently (default 1).
	// Each running job still parallelizes internally via internal/par, so
	// this bounds memory and fairness, not CPU use.
	Workers int
	// MaxQueue is the number of jobs that may wait (default 64).
	MaxQueue int
	// Store receives every completed result; nil disables persistence
	// (and with it replay).
	Store *store.Store
	// Log receives job lifecycle events; nil discards them.
	Log *slog.Logger
}

// Queue runs jobs on a bounded worker set. Create with New, stop with
// Drain.
type Queue struct {
	run Runner
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	order   []string
	pending []*Job
	// inflight maps a request's content key to its queued or running job,
	// the dedup index. Entries leave at terminal transitions.
	inflight map[string]*Job
	counts   map[State]int
	seq      int
	draining bool

	wg      sync.WaitGroup
	retired atomic.Uint64
	// telem accumulates each executed job's span fold: per-stage duration
	// histograms, queue wait, and per-worker busy time. Folding happens
	// once, at the job's terminal transition, and replayed jobs fold
	// nothing — the same replay-proof discipline as the instr/sec EWMA.
	telem *obs.Aggregator
	// instrPerSec is an exponentially weighted moving average of per-job
	// simulated-instruction throughput, folded at each terminal transition
	// of a job that simulated anything (guarded by mu). It answers "how
	// fast is the simulator under this service's real mix" — the serving
	// analogue of BENCH_simulator.json's instr/sec trajectory.
	instrPerSec float64
	haveInstrPS bool
	// execJobs/execSeconds count jobs that actually executed (not
	// replays) and their total run seconds — the fallback basis for the
	// Retry-After estimate when no instruction rate is known yet.
	execJobs    int
	execSeconds float64
}

// New starts a queue with opt.Workers workers executing run.
func New(run Runner, opt Options) *Queue {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	if opt.MaxQueue < 1 {
		opt.MaxQueue = 64
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	q := &Queue{
		run:      run,
		opt:      opt,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		counts:   make(map[State]int),
		telem:    obs.NewAggregator(),
	}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go q.worker()
	}
	return q
}

// Submit validates, normalizes and admits a request. The returned bool
// is true when the request was folded into an existing in-flight job
// (deduplicated) rather than queued anew.
func (q *Queue) Submit(req Request) (Snapshot, bool, error) {
	if err := req.Normalize(); err != nil {
		return Snapshot{}, false, err
	}
	key := req.Key()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return Snapshot{}, false, ErrDraining
	}
	if j, ok := q.inflight[key]; ok {
		j.deduped++
		q.opt.Log.Info("job deduplicated", "job", j.id, "key", key, "request_id", j.req.RequestID)
		return q.snapshotLocked(j), true, nil
	}
	if q.counts[StateQueued] >= q.opt.MaxQueue {
		return Snapshot{}, false, ErrQueueFull
	}
	q.seq++
	j := &Job{
		id:        fmt.Sprintf("j-%06d", q.seq),
		key:       key,
		req:       req,
		state:     StateQueued,
		createdAt: time.Now(),
		done:      make(chan struct{}),
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j.id)
	q.inflight[key] = j
	q.pending = append(q.pending, j)
	q.counts[StateQueued]++
	q.opt.Log.Info("job queued", "job", j.id, "key", key, "kind", req.Kind, "suites", req.Suites, "request_id", req.RequestID)
	q.cond.Signal()
	return q.snapshotLocked(j), false, nil
}

// worker pops pending jobs until Drain closes admission and the pending
// list is empty.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.draining {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		j := q.pending[0]
		q.pending = q.pending[1:]

		// Replay: the durable store already has this exact request's
		// result; serve it without burning a simulation.
		if set, ok := q.opt.Store.Get(j.key); ok {
			j.startedAt = time.Now()
			j.replayed = true
			j.result = &set
			q.finishLocked(j, StateDone, nil)
			q.mu.Unlock()
			continue
		}

		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		q.setStateLocked(j, StateRunning)
		j.startedAt = time.Now()
		q.mu.Unlock()
		q.opt.Log.Info("job started", "job", j.id, "key", j.key, "request_id", j.req.RequestID)

		// Each executed job gets its own recorder; its fold lands in the
		// queue aggregator at the terminal transition below. The replay
		// branch above never reaches here, so replays leave telemetry
		// untouched.
		rec := obs.NewRecorder()
		rctx := obs.WithRecorder(ctx, rec)
		rctx, jobSpan := obs.Start(rctx, "job",
			obs.String("kind", j.req.Kind), obs.String("group", j.req.Group),
			obs.String("request_id", j.req.RequestID))

		h := &Handle{q: q, job: j}
		set, err := q.run(rctx, h)
		cancel()

		if err == nil {
			h.SetStage("store", 1)
			_, stSpan := obs.Start(rctx, "store")
			if perr := q.opt.Store.Put(j.key, set); perr != nil {
				// The result is still good; losing durability is logged, not
				// fatal — the client gets its scores either way.
				q.opt.Log.Error("result store append failed", "job", j.id, "error", perr)
			}
			stSpan.End()
			h.Advance(1)
		}
		// Fold before the terminal transition: anyone woken by the done
		// channel (long-pollers, tests) observes the telemetry already
		// merged.
		jobSpan.End()
		q.foldTelemetry(j, rec)

		q.mu.Lock()
		switch {
		case err != nil && stage.Canceled(err):
			q.finishLocked(j, StateCanceled, err)
		case err != nil:
			q.finishLocked(j, StateFailed, err)
		default:
			j.result = &set
			q.finishLocked(j, StateDone, nil)
		}
		q.mu.Unlock()
	}
}

// foldTelemetry merges an executed job's recorder into the queue
// aggregator and emits the stage-completion log lines. Called without the
// queue mutex, after the job's terminal transition; j's timestamps are
// immutable by then.
func (q *Queue) foldTelemetry(j *Job, rec *obs.Recorder) {
	f := rec.Fold()
	q.telem.Add(f)
	if wait := j.startedAt.Sub(j.createdAt); wait >= 0 {
		q.telem.ObserveQueueWait(wait)
	}
	names := make([]string, 0, len(f.Stages))
	for name := range f.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg := f.Stages[name]
		q.opt.Log.Info("job stage completed",
			"job", j.id, "stage", name, "count", agg.Count, "seconds", agg.Sum)
	}
}

// Telemetry returns the queue's span-fold aggregator — the source behind
// the /metrics stage histograms, queue-wait histogram and
// worker-utilization gauges.
func (q *Queue) Telemetry() *obs.Aggregator { return q.telem }

// setStateLocked moves j between non-terminal states.
func (q *Queue) setStateLocked(j *Job, s State) {
	q.counts[j.state]--
	j.state = s
	q.counts[s]++
}

// finishLocked moves j to a terminal state, records the cause, closes
// the done channel and drops the dedup entry.
func (q *Queue) finishLocked(j *Job, s State, err error) {
	q.setStateLocked(j, s)
	j.finishedAt = time.Now()
	if err != nil {
		j.err = errorInfo(err)
	}
	if q.inflight[j.key] == j {
		delete(q.inflight, j.key)
	}
	// Fold this job's simulated-instruction rate into the throughput
	// EWMA. Replays and pure cache hits retire nothing and leave the
	// average untouched; the first real observation initializes it.
	if n := j.instr.Load(); n > 0 && !j.startedAt.IsZero() {
		if d := j.finishedAt.Sub(j.startedAt).Seconds(); d > 0 {
			const alpha = 0.25
			rate := float64(n) / d
			if !q.haveInstrPS {
				q.instrPerSec, q.haveInstrPS = rate, true
			} else {
				q.instrPerSec += alpha * (rate - q.instrPerSec)
			}
		}
	}
	if !j.replayed && !j.startedAt.IsZero() {
		q.execJobs++
		if d := j.finishedAt.Sub(j.startedAt).Seconds(); d > 0 {
			q.execSeconds += d
		}
	}
	close(j.done)
	elapsed := j.finishedAt.Sub(j.createdAt)
	switch {
	case err != nil:
		q.opt.Log.Info("job finished", "job", j.id, "state", string(s), "elapsed", elapsed, "request_id", j.req.RequestID, "error", err)
	default:
		q.opt.Log.Info("job finished", "job", j.id, "state", string(s), "elapsed", elapsed, "request_id", j.req.RequestID, "replayed", j.replayed)
	}
}

// snapshotLocked renders the client view of j.
func (q *Queue) snapshotLocked(j *Job) Snapshot {
	s := Snapshot{
		ID:           j.id,
		Key:          j.key,
		Kind:         j.req.Kind,
		Group:        j.req.Group,
		Suites:       append([]string(nil), j.req.Suites...),
		RequestID:    j.req.RequestID,
		State:        j.state,
		Stage:        j.stage,
		StageDone:    j.stageDone,
		StageTotal:   j.stageTotal,
		Replayed:     j.replayed,
		Deduped:      j.deduped,
		CreatedAt:    stamp(j.createdAt),
		StartedAt:    stamp(j.startedAt),
		FinishedAt:   stamp(j.finishedAt),
		Instructions: j.instr.Load(),
		Error:        j.err,
		HasResult:    j.result != nil,
	}
	if j.req.Trace != nil {
		s.Trace = j.req.Trace.Name
	}
	return s
}

// Get returns the snapshot of job id.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return q.snapshotLocked(j), true
}

// Result returns the completed document of job id. The bool is false
// while the job is still in flight (or failed without a result).
func (q *Queue) Result(id string) (store.ScoreSet, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return store.ScoreSet{}, false, ErrNotFound
	}
	if j.result == nil {
		return store.ScoreSet{}, false, nil
	}
	return *j.result, true, nil
}

// Done exposes the job's completion channel for long-poll waiters; it is
// closed at the terminal transition.
func (q *Queue) Done(id string) (<-chan struct{}, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// List returns every job, oldest first.
func (q *Queue) List() []Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Snapshot, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.snapshotLocked(q.jobs[id]))
	}
	return out
}

// Cancel stops job id: a queued job never starts, a running job has its
// context cancelled (the state flips to canceled when the runner
// unwinds), a terminal job is left as-is. The returned snapshot is the
// state after the call.
func (q *Queue) Cancel(id string) (Snapshot, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		for i, p := range q.pending {
			if p == j {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		q.finishLocked(j, StateCanceled, context.Canceled)
	case StateRunning:
		j.cancel()
	}
	return q.snapshotLocked(j), nil
}

// Drain shuts the queue down: admission stops immediately, queued jobs
// are cancelled, and running jobs get until ctx's deadline to finish —
// then their contexts are cancelled and Drain waits for the workers to
// unwind. After Drain returns no queue goroutine is left. The returned
// error is ctx.Err() when the deadline forced cancellations, nil when
// everything finished in time.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	for _, j := range q.pending {
		q.finishLocked(j, StateCanceled, fmt.Errorf("%w: server draining", context.Canceled))
	}
	q.pending = nil
	q.cond.Broadcast()
	q.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		for _, j := range q.jobs {
			if j.state == StateRunning {
				j.cancel()
			}
		}
		q.mu.Unlock()
		<-workersDone
		return ctx.Err()
	}
}

// Depth returns the number of queued (not yet running) jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counts[StateQueued]
}

// Counts returns the number of jobs per state.
func (q *Queue) Counts() map[State]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[State]int, len(q.counts))
	for s, n := range q.counts {
		out[s] = n
	}
	return out
}

// InstructionsRetired returns the total simulated instructions retired
// on behalf of jobs (cache hits and replays excluded — they simulate
// nothing).
func (q *Queue) InstructionsRetired() uint64 { return q.retired.Load() }

// SimulatedInstrPerSec returns the EWMA of per-job simulated-instruction
// throughput, 0 until the first job that actually simulated completes.
func (q *Queue) SimulatedInstrPerSec() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.instrPerSec
}

// RetryAfter estimates how long a rejected submitter should wait before
// the queue has likely absorbed its backlog — the value behind the 429
// Retry-After header. The estimate is queue depth times the expected
// per-job seconds, divided by the service parallelism: parallel > 0
// overrides the queue's own worker count (a fleet coordinator passes the
// fleet's aggregate worker capacity, which is what makes the hint
// fleet-aware). Per-job seconds come from the instr/sec EWMA gauge and
// the average instructions a completed job retired; with no history yet
// the floor answer is returned. The result is clamped to [1s, 5m] so the
// header is always sane.
func (q *Queue) RetryAfter(parallel int) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if parallel <= 0 {
		parallel = q.opt.Workers
	}
	perJob := 1.0
	switch {
	case q.haveInstrPS && q.instrPerSec > 0 && q.execJobs > 0:
		avgInstr := float64(q.retired.Load()) / float64(q.execJobs)
		perJob = avgInstr / q.instrPerSec
	case q.execJobs > 0:
		perJob = q.execSeconds / float64(q.execJobs)
	}
	wait := perJob * (float64(q.counts[StateQueued])/float64(parallel) + 1)
	const minWait, maxWait = 1.0, 300.0
	if wait < minWait {
		wait = minWait
	}
	if wait > maxWait {
		wait = maxWait
	}
	return time.Duration(wait * float64(time.Second))
}

// requestKeySchema folds into every request key, so a change to the key
// composition invalidates dedup/replay matches instead of aliasing.
// Schema 2: suites contribute through ResolvedSuites (named suites in
// request order, then the inline suite spec), and the underlying
// measurement keys hash canonical spec JSON instead of %+v renderings.
const requestKeySchema = 2

// hashRequest builds the content address of a normalized request. Suite
// measurements contribute their internal/cache content address, so a
// request key changes exactly when a cache key would — same machine
// model, same invalidation discipline. An inline suite spec participates
// through the same path: its canonical spec JSON is what the measurement
// key hashes, so the spec hash is folded into the job key and two
// requests whose spec texts build the same suite deduplicate.
func hashRequest(r *Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "request-schema=%d\nkind=%s\ngroup=%s\n", requestKeySchema, r.Kind, r.Group)
	if r.Trace != nil {
		sum := sha256.Sum256(r.Trace.Data)
		fmt.Fprintf(h, "trace-format=%s\ntrace-name=%s\ntrace-sha=%s\n",
			r.Trace.Format, r.Trace.Name, hex.EncodeToString(sum[:]))
	} else {
		cfg := r.SimConfig()
		ss, err := r.ResolvedSuites(cfg)
		if err != nil {
			// Normalize already resolved every suite; an error here can
			// only mean the request was mutated after normalization.
			fmt.Fprintf(h, "unresolvable=%v\n", err)
		}
		for i, s := range ss {
			fmt.Fprintf(h, "suite[%d]=%s\n", i, sourceKey(s, cfg))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
