package jobs

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/store"
)

const streamTestInterval = 1000

// chunkGen fabricates deterministic chunk workloads: totals and short
// delta series for every counter, seeded per (suite, workload, part).
func chunkWorkload(seed int64, name string, samples int) ChunkWorkload {
	rnd := rand.New(rand.NewSource(seed))
	nc := len(perf.AllCounters())
	w := ChunkWorkload{Name: name, Totals: make([]uint64, nc)}
	if samples > 0 {
		w.Series = make([][]float64, nc)
	}
	for k := 0; k < nc; k++ {
		w.Totals[k] = uint64(rnd.Intn(5000))
		for t := 0; t < samples; t++ {
			w.Series[k] = append(w.Series[k], float64(rnd.Intn(200)))
		}
	}
	return w
}

// applyExpected folds a chunk workload into the reference measurement
// exactly as the stream should, so tests can batch-score the assembled
// data as the oracle.
func applyExpected(sm *perf.SuiteMeasurement, w ChunkWorkload) {
	idx := -1
	for i := range sm.Workloads {
		if sm.Workloads[i].Workload == w.Name {
			idx = i
			break
		}
	}
	if idx < 0 {
		sm.Workloads = append(sm.Workloads, perf.Measurement{Workload: w.Name})
		idx = len(sm.Workloads) - 1
	}
	m := &sm.Workloads[idx]
	for k, c := range perf.AllCounters() {
		if w.Totals != nil {
			m.Totals[c] += w.Totals[k]
		}
		if w.Series != nil && len(w.Series[k]) > 0 {
			if m.Series.Interval == 0 {
				m.Series.Interval = streamTestInterval
			}
			m.Series.Samples[c] = append(m.Series.Samples[c], w.Series[k]...)
		}
	}
}

func waitStreamDone(t *testing.T, m *StreamManager, id string) StreamSnapshot {
	t.Helper()
	done, err := m.Done(id)
	if err != nil {
		t.Fatalf("Done(%s): %v", id, err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("stream %s did not finish", id)
	}
	snap, err := m.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return snap
}

func openStream(t *testing.T, m *StreamManager, suites ...string) StreamSnapshot {
	t.Helper()
	snap, err := m.Open(StreamOpenRequest{Suites: suites, SampleInterval: streamTestInterval})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return snap
}

// TestStreamLifecycleMatchesBatch drives the full streaming path — open,
// chunked appends (new workloads and sample growth), long-polled score
// versions, close — and requires the final ScoreSet to be bit-identical
// to a one-shot batch run over the assembled measurement, and persisted
// to the result store under the stream's content-addressed key.
func TestStreamLifecycleMatchesBatch(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := NewStreamManager(StreamOptions{Store: st})
	snap := openStream(t, m, "streamed")
	if snap.State != StreamOpen || snap.Kind != store.KindScore {
		t.Fatalf("open snapshot = %+v", snap)
	}

	expected := &perf.SuiteMeasurement{Suite: "streamed"}
	chunks := []StreamChunk{
		{Workloads: []ChunkWorkload{chunkWorkload(1, "w0", 4), chunkWorkload(2, "w1", 4)}},
		{Workloads: []ChunkWorkload{chunkWorkload(3, "w2", 5)}},
		{Workloads: []ChunkWorkload{chunkWorkload(4, "w1", 3), chunkWorkload(5, "w3", 4)}},
	}
	ctx := context.Background()
	var seq int64
	prevKey := snap.Key
	for i, c := range chunks {
		as, err := m.Append(snap.ID, c)
		if err != nil {
			t.Fatalf("Append chunk %d: %v", i, err)
		}
		if as.Key == prevKey {
			t.Fatalf("chunk %d did not advance the stream key", i)
		}
		prevKey = as.Key
		for _, w := range c.Workloads {
			applyExpected(expected, w)
		}
		// Tail the evolving scores: each accepted chunk publishes at
		// least one new version.
		sc, err := m.Scores(ctx, snap.ID, seq)
		if err != nil {
			t.Fatalf("Scores after chunk %d: %v", i, err)
		}
		if sc.Seq <= seq {
			t.Fatalf("chunk %d: seq did not advance (%d -> %d)", i, seq, sc.Seq)
		}
		if sc.Error != nil {
			t.Fatalf("chunk %d: rescore failed: %+v", i, sc.Error)
		}
		if sc.Scores == nil || len(sc.Scores.Suites) != 1 {
			t.Fatalf("chunk %d: no scores published", i)
		}
		seq = sc.Seq
	}

	if _, err := m.Close(snap.ID); err != nil {
		t.Fatalf("Close: %v", err)
	}
	final := waitStreamDone(t, m, snap.ID)
	if final.State != StreamDone {
		t.Fatalf("final state = %s (error %+v)", final.State, final.Error)
	}
	if final.Chunks != len(chunks) {
		t.Fatalf("chunks = %d, want %d", final.Chunks, len(chunks))
	}
	if final.Workloads[0] != len(expected.Workloads) {
		t.Fatalf("workloads = %d, want %d", final.Workloads[0], len(expected.Workloads))
	}

	sc, err := m.Scores(ctx, snap.ID, 0)
	if err != nil {
		t.Fatalf("final Scores: %v", err)
	}
	opts := metric.DefaultOptions()
	want, err := metric.ScoreSuites(ctx, []*perf.SuiteMeasurement{expected}, opts, nil)
	if err != nil {
		t.Fatalf("batch oracle: %v", err)
	}
	got := sc.Scores.Scores()
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("streamed scores diverge from batch:\n got %+v\nwant %+v", got, want)
	}

	// Final result persisted under the content-addressed stream key.
	set, ok := st.Get(final.Key)
	if !ok {
		t.Fatalf("final ScoreSet not in store under key %s", final.Key)
	}
	if set.Source != "stream" || set.Suites[0] != sc.Scores.Suites[0] {
		t.Fatalf("persisted set = %+v, want %+v", set, *sc.Scores)
	}

	// Appending after close is rejected with the stream intact.
	if _, err := m.Append(snap.ID, chunks[0]); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Append after close: err = %v, want ErrStreamClosed", err)
	}
}

// TestStreamCompareJointRepair checks the multi-suite path: while one
// suite of a compare stream is still empty the rescore fails (joint
// normalization needs every suite non-empty) but the stream stays open,
// and feeding the empty suite repairs it. The final result must match a
// batch compare of the assembled suites bit for bit.
func TestStreamCompareJointRepair(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	snap := openStream(t, m, "left", "right")
	if snap.Kind != store.KindCompare {
		t.Fatalf("kind = %s, want compare", snap.Kind)
	}

	left := &perf.SuiteMeasurement{Suite: "left"}
	right := &perf.SuiteMeasurement{Suite: "right"}
	ctx := context.Background()

	c1 := StreamChunk{Suite: "left", Workloads: []ChunkWorkload{
		chunkWorkload(10, "a", 4), chunkWorkload(11, "b", 4), chunkWorkload(12, "c", 4),
	}}
	if _, err := m.Append(snap.ID, c1); err != nil {
		t.Fatalf("Append left: %v", err)
	}
	for _, w := range c1.Workloads {
		applyExpected(left, w)
	}
	sc, err := m.Scores(ctx, snap.ID, 0)
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	if sc.Error == nil {
		t.Fatalf("rescore with an empty suite should fail, got scores %+v", sc.Scores)
	}
	if sc.State != StreamOpen {
		t.Fatalf("stream should stay open across a failed rescore, state = %s", sc.State)
	}

	c2 := StreamChunk{Suite: "right", Workloads: []ChunkWorkload{
		chunkWorkload(20, "x", 4), chunkWorkload(21, "y", 4),
	}}
	if _, err := m.Append(snap.ID, c2); err != nil {
		t.Fatalf("Append right: %v", err)
	}
	for _, w := range c2.Workloads {
		applyExpected(right, w)
	}
	sc2, err := m.Scores(ctx, snap.ID, sc.Seq)
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	if sc2.Error != nil {
		t.Fatalf("rescore after repair failed: %+v", sc2.Error)
	}
	if len(sc2.Scores.Suites) != 2 {
		t.Fatalf("compare scores cover %d suites, want 2", len(sc2.Scores.Suites))
	}

	if _, err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitStreamDone(t, m, snap.ID)
	if final.State != StreamDone {
		t.Fatalf("final state = %s (error %+v)", final.State, final.Error)
	}
	fsc, err := m.Scores(ctx, snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := metric.ScoreSuites(ctx, []*perf.SuiteMeasurement{left, right}, metric.DefaultOptions(), nil)
	if err != nil {
		t.Fatalf("batch oracle: %v", err)
	}
	got := fsc.Scores.Scores()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suite %d diverges from batch compare:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestStreamCancel aborts a stream and requires its goroutine to exit
// with state canceled and later appends rejected.
func TestStreamCancel(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	snap := openStream(t, m, "doomed")
	c := StreamChunk{Workloads: []ChunkWorkload{chunkWorkload(30, "w0", 4)}}
	if _, err := m.Append(snap.ID, c); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitStreamDone(t, m, snap.ID)
	if final.State != StreamCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if _, err := m.Append(snap.ID, c); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Append after cancel: err = %v, want ErrStreamClosed", err)
	}
	// Scores on a terminal stream returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sc, err := m.Scores(ctx, snap.ID, 1<<40)
	if err != nil {
		t.Fatalf("Scores on canceled stream: %v", err)
	}
	if sc.State != StreamCanceled {
		t.Fatalf("state = %s, want canceled", sc.State)
	}
	// Cancel is idempotent on a terminal stream.
	if s2, err := m.Cancel(snap.ID); err != nil || s2.State != StreamCanceled {
		t.Fatalf("second Cancel = %+v, %v", s2, err)
	}
}

// TestStreamDrain seals every open stream, applies their backlogs, and
// refuses new opens; no stream goroutine survives.
func TestStreamDrain(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	a := openStream(t, m, "a")
	b := openStream(t, m, "b")
	for i, id := range []string{a.ID, b.ID} {
		c := StreamChunk{Workloads: []ChunkWorkload{
			chunkWorkload(int64(40+i), "w0", 4), chunkWorkload(int64(50+i), "w1", 4),
		}}
		if _, err := m.Append(id, c); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StreamDone {
			t.Fatalf("stream %s drained to %s, want done (error %+v)", id, snap.State, snap.Error)
		}
		if snap.Seq == 0 || snap.Chunks != 1 {
			t.Fatalf("stream %s drained without applying its backlog: %+v", id, snap)
		}
	}
	if _, err := m.Open(StreamOpenRequest{Suites: []string{"late"}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open after drain: err = %v, want ErrDraining", err)
	}
	tel := m.Telemetry()
	if tel.Active != 0 || tel.States[StreamDone] != 2 {
		t.Fatalf("telemetry after drain = %+v", tel)
	}
}

// TestStreamGoroutineLeak opens, feeds, and finishes a batch of streams
// and requires the goroutine count to return to its baseline.
func TestStreamGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	m := NewStreamManager(StreamOptions{})
	var ids []string
	for i := 0; i < 6; i++ {
		snap := openStream(t, m, "s")
		c := StreamChunk{Workloads: []ChunkWorkload{
			chunkWorkload(int64(100+i), "w0", 3), chunkWorkload(int64(200+i), "w1", 3),
		}}
		if _, err := m.Append(snap.ID, c); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := m.Close(snap.ID); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := m.Cancel(snap.ID); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		waitStreamDone(t, m, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d at start, %d after drain", base, runtime.NumGoroutine())
}

// TestStreamBacklogReject fills a stream's backlog while its rescore
// loop is parked and requires the next chunk to bounce with
// ErrStreamBacklog — without advancing the content key.
func TestStreamBacklogReject(t *testing.T) {
	m := NewStreamManager(StreamOptions{MaxPending: 2})
	snap := openStream(t, m, "s")
	// Park the backlog at its cap without waking the loop: sync.Cond.Wait
	// only returns on Broadcast/Signal, so the loop stays parked and the
	// pending slice cannot drain underneath the assertion.
	m.mu.Lock()
	s := m.streams[snap.ID]
	for i := 0; i < 2; i++ {
		s.pending = append(s.pending, StreamChunk{
			Suite:     "s",
			Workloads: []ChunkWorkload{chunkWorkload(int64(300+i), "w0", 3)},
		})
	}
	m.mu.Unlock()
	as, err := m.Append(snap.ID, StreamChunk{Workloads: []ChunkWorkload{chunkWorkload(310, "w1", 3)}})
	if !errors.Is(err, ErrStreamBacklog) {
		t.Fatalf("Append over full backlog: err = %v, want ErrStreamBacklog", err)
	}
	if as.Key != snap.Key {
		t.Fatalf("rejected chunk advanced the stream key")
	}
	if m.Telemetry().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	// Wake the loop, let it drain, and finish cleanly.
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
	if _, err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitStreamDone(t, m, snap.ID)
	if final.State != StreamDone {
		t.Fatalf("state = %s (error %+v)", final.State, final.Error)
	}
}

// TestStreamLimit bounds concurrent live streams; terminal streams free
// their slot.
func TestStreamLimit(t *testing.T) {
	m := NewStreamManager(StreamOptions{MaxStreams: 1})
	snap := openStream(t, m, "only")
	if _, err := m.Open(StreamOpenRequest{Suites: []string{"second"}}); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("second Open: err = %v, want ErrStreamLimit", err)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitStreamDone(t, m, snap.ID)
	if _, err := m.Open(StreamOpenRequest{Suites: []string{"second"}}); err != nil {
		t.Fatalf("Open after slot freed: %v", err)
	}
}

// TestStreamKeyDeterminism: identical open + chunk sequences address the
// same key chain on independent managers; a diverging chunk diverges the
// chain.
func TestStreamKeyDeterminism(t *testing.T) {
	open := StreamOpenRequest{Suites: []string{"s"}, SampleInterval: streamTestInterval}
	c1 := StreamChunk{Workloads: []ChunkWorkload{chunkWorkload(1, "w0", 3)}}
	c2 := StreamChunk{Workloads: []ChunkWorkload{chunkWorkload(2, "w1", 3)}}

	run := func(chunks ...StreamChunk) []string {
		m := NewStreamManager(StreamOptions{})
		snap, err := m.Open(open)
		if err != nil {
			t.Fatal(err)
		}
		keys := []string{snap.Key}
		for _, c := range chunks {
			as, err := m.Append(snap.ID, c)
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, as.Key)
		}
		if _, err := m.Cancel(snap.ID); err != nil {
			t.Fatal(err)
		}
		waitStreamDone(t, m, snap.ID)
		return keys
	}

	ka := run(c1, c2)
	kb := run(c1, c2)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key %d diverges across identical runs: %s vs %s", i, ka[i], kb[i])
		}
	}
	kc := run(c2, c1)
	if kc[1] == ka[1] || kc[2] == ka[2] {
		t.Fatalf("different chunk order did not diverge the key chain")
	}
}

// TestStreamCloseEmptyFails: sealing a stream that never got data
// publishes the scoring failure and lands in failed.
func TestStreamCloseEmptyFails(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	snap := openStream(t, m, "empty")
	if _, err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitStreamDone(t, m, snap.ID)
	if final.State != StreamFailed || final.Error == nil {
		t.Fatalf("empty stream finished as %s (error %+v), want failed", final.State, final.Error)
	}
}

// TestStreamValidation rejects malformed opens and chunks without
// touching stream state.
func TestStreamValidation(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	bads := []StreamOpenRequest{
		{},
		{Suites: []string{"a", "a"}},
		{Suites: []string{""}},
		{Suites: []string{"a"}, Group: "bogus"},
		{Suites: []string{"a"}, Counters: []string{"no-such-counter"}},
	}
	for i, req := range bads {
		if _, err := m.Open(req); err == nil {
			t.Fatalf("bad open %d accepted", i)
		}
	}
	snap := openStream(t, m, "a", "b")
	badChunks := []StreamChunk{
		{},                             // no suite on a 2-suite stream
		{Suite: "c", Workloads: []ChunkWorkload{{Name: "w"}}}, // unknown suite
		{Suite: "a"},                   // no workloads
		{Suite: "a", Workloads: []ChunkWorkload{{Name: ""}}},  // unnamed
		{Suite: "a", Workloads: []ChunkWorkload{{Name: "w", Totals: []uint64{1}}}},            // wrong totals arity
		{Suite: "a", Workloads: []ChunkWorkload{{Name: "w", Series: [][]float64{{1, 2}}}}},    // wrong series arity
	}
	for i, c := range badChunks {
		as, err := m.Append(snap.ID, c)
		if err == nil {
			t.Fatalf("bad chunk %d accepted", i)
		}
		if as.Key != snap.Key || as.Chunks != 0 {
			t.Fatalf("bad chunk %d mutated the stream: %+v", i, as)
		}
	}
	ragged := StreamChunk{Suite: "a", Workloads: []ChunkWorkload{chunkWorkload(1, "w", 3)}}
	ragged.Workloads[0].Series[1] = ragged.Workloads[0].Series[1][:1]
	if _, err := m.Append(snap.ID, ragged); err == nil {
		t.Fatal("ragged series accepted")
	}
	if _, err := m.Append("s-999999", StreamChunk{}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("unknown stream: err = %v, want ErrStreamNotFound", err)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitStreamDone(t, m, snap.ID)
}

// TestStreamSingleSuiteDefault: a one-suite stream accepts chunks that
// omit the suite name.
func TestStreamSingleSuiteDefault(t *testing.T) {
	m := NewStreamManager(StreamOptions{})
	snap := openStream(t, m, "solo")
	c := StreamChunk{Workloads: []ChunkWorkload{chunkWorkload(7, "w0", 3), chunkWorkload(8, "w1", 3), chunkWorkload(9, "w2", 3)}}
	if _, err := m.Append(snap.ID, c); err != nil {
		t.Fatal(err)
	}
	sc, err := m.Scores(context.Background(), snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Error != nil || sc.Scores == nil {
		t.Fatalf("rescore = %+v", sc)
	}
	if _, err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitStreamDone(t, m, snap.ID); got.State != StreamDone {
		t.Fatalf("state = %s", got.State)
	}
	list := m.List()
	if len(list) != 1 || list[0].ID != snap.ID {
		t.Fatalf("List = %+v", list)
	}
}
