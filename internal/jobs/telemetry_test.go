package jobs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"perspector/internal/obs"
	"perspector/internal/store"
)

// spanRunner records a fixed set of spans on the job's recorder, standing
// in for the instrumented engine.
func spanRunner() Runner {
	return func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		ctx, wsp := obs.StartWorker(ctx, 0)
		_, sp := obs.Start(ctx, "measure", obs.String("suite", "nbench"))
		time.Sleep(time.Millisecond)
		sp.End()
		wsp.End()
		obs.FromContext(ctx).Count(obs.CounterCacheMisses, 1)
		return fakeResult(), nil
	}
}

func stageCount(s obs.Snapshot, name string) int64 {
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Agg.Count
		}
	}
	return 0
}

// TestTelemetryFoldsAtCompletion pins the fold-at-completion rule: a job
// that executes folds its spans (incl. the queue's own "job" root span and
// queue wait) into the aggregator exactly once, and a replayed job — same
// request served from the store — folds nothing, so service restarts that
// re-serve stored results leave the series unchanged.
func TestTelemetryFoldsAtCompletion(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q := New(spanRunner(), Options{Workers: 1, Store: st})

	before := q.Telemetry().Snapshot()
	if len(before.Stages) != 0 || before.QueueWait.Count != 0 {
		t.Fatalf("aggregator not empty before any job: %+v", before)
	}

	s1, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, s1.ID, StateDone)
	after := q.Telemetry().Snapshot()
	for _, stage := range []string{"job", "measure", "store"} {
		if got := stageCount(after, stage); got != 1 {
			t.Fatalf("stage %q count = %d after one job, want 1", stage, got)
		}
	}
	if after.QueueWait.Count != 1 {
		t.Fatalf("queue wait count = %d, want 1", after.QueueWait.Count)
	}
	if len(after.Workers) != 1 || after.Workers[0].Worker != 0 {
		t.Fatalf("worker busy entries: %+v", after.Workers)
	}
	if after.WallSeconds <= 0 {
		t.Fatal("wall seconds not accumulated")
	}

	// Identical request: replayed from the store, telemetry untouched.
	s2, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, q, s2.ID, StateDone)
	if !snap.Replayed {
		t.Fatalf("second identical submission not replayed: %+v", snap)
	}
	replayed := q.Telemetry().Snapshot()
	if got := stageCount(replayed, "job"); got != 1 {
		t.Fatalf("replay folded telemetry: job count %d, want 1", got)
	}
	if replayed.QueueWait.Count != 1 {
		t.Fatalf("replay observed queue wait: count %d, want 1", replayed.QueueWait.Count)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryFoldsFailedJobs pins that failed jobs still fold: their
// spans are exactly the ones that explain where the failure spent time.
func TestTelemetryFoldsFailedJobs(t *testing.T) {
	q := New(func(ctx context.Context, h *Handle) (store.ScoreSet, error) {
		_, sp := obs.Start(ctx, "measure")
		sp.End()
		return store.ScoreSet{}, errors.New("boom")
	}, Options{Workers: 1})
	s1, _, err := q.Submit(scoreReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, s1.ID, StateFailed)
	snap := q.Telemetry().Snapshot()
	if got := stageCount(snap, "measure"); got != 1 {
		t.Fatalf("failed job did not fold: measure count %d, want 1", got)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryFoldLeaksNoGoroutines drives jobs through the recorder
// fold path and checks the goroutine count settles back — the fold itself
// is synchronous and must not strand anything.
func TestTelemetryFoldLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	q := New(spanRunner(), Options{Workers: 2})
	for i := 0; i < 6; i++ {
		if _, _, err := q.Submit(scoreReq(uint64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range q.List() {
		waitState(t, q, s.ID, StateDone)
	}
	if q.Telemetry().Snapshot().QueueWait.Count != 6 {
		t.Fatal("not every job folded")
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
