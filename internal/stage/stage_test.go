package stage

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	cause := errors.New("boom")
	cases := []struct {
		err  *Error
		want string
	}{
		{&Error{Stage: Measure, Suite: "parsec", Workload: "parsec.x264", Err: cause},
			"measure parsec/parsec.x264: boom"},
		{&Error{Stage: Score, Suite: "parsec", Err: cause}, "score parsec: boom"},
		{&Error{Stage: Compare, Err: cause}, "compare: boom"},
		{&Error{Stage: Measure, Workload: "w", Err: cause}, "measure w: boom"},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
}

func TestWrapAndUnwrap(t *testing.T) {
	if Wrap(Measure, "s", "w", nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	err := Wrap(Measure, "parsec", "parsec.x264", context.Canceled)
	var se *Error
	if !errors.As(err, &se) {
		t.Fatal("errors.As failed to find *stage.Error")
	}
	if se.Stage != Measure || se.Suite != "parsec" || se.Workload != "parsec.x264" {
		t.Fatalf("wrong tags: %+v", se)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("cancellation not matchable through the wrapper")
	}
}

func TestWrapKeepsInnermost(t *testing.T) {
	inner := Wrap(Measure, "parsec", "parsec.x264", context.Canceled)
	outer := Wrap(Compare, "", "", inner)
	if outer != inner {
		t.Fatalf("re-wrap replaced the innermost tag: %v", outer)
	}
	// Even through an intermediate fmt wrap, the measure tag wins.
	mid := fmt.Errorf("suite fan-out: %w", inner)
	outer = Wrap(Compare, "", "", mid)
	var se *Error
	if !errors.As(outer, &se) || se.Stage != Measure {
		t.Fatalf("lost the inner measure tag: %v", outer)
	}
}

func TestCanceled(t *testing.T) {
	if !Canceled(Wrap(Score, "s", "", context.DeadlineExceeded)) {
		t.Fatal("deadline not detected")
	}
	if Canceled(Wrap(Score, "s", "", errors.New("plain"))) {
		t.Fatal("plain error misdetected as cancellation")
	}
	if Canceled(nil) {
		t.Fatal("nil misdetected")
	}
}
