// Package stage defines the structured errors of the staged scoring
// engine. Every failure or cancellation that crosses an engine boundary
// (measurement, artifact building, metric computation, comparison) is
// wrapped in an *Error carrying the pipeline stage plus the suite and
// workload it happened in, so callers can route on errors.As/Is instead
// of parsing message strings — and so a cancelled run can say *where* it
// was cut short.
package stage

import (
	"context"
	"errors"
	"fmt"
)

// Stage identifies one phase of the engine pipeline.
type Stage string

const (
	// Measure is workload execution on the simulator (or trace import).
	Measure Stage = "measure"
	// Score is per-suite metric computation over the shared artifacts.
	Score Stage = "score"
	// Compare is cross-suite work: joint normalization and the per-suite
	// scoring fan-out.
	Compare Stage = "compare"
)

// Error tags an underlying error with the engine stage and, when known,
// the suite and workload being processed. It supports errors.Is/As via
// Unwrap, so context.Canceled and context.DeadlineExceeded remain
// matchable through the wrapper.
type Error struct {
	// Stage is the pipeline phase that failed.
	Stage Stage
	// Suite is the suite being processed, if known.
	Suite string
	// Workload is the workload being processed, if known.
	Workload string
	// Err is the underlying cause.
	Err error
}

// Error renders "stage suite/workload: cause" with the empty parts
// omitted.
func (e *Error) Error() string {
	where := string(e.Stage)
	switch {
	case e.Suite != "" && e.Workload != "":
		where += " " + e.Suite + "/" + e.Workload
	case e.Suite != "":
		where += " " + e.Suite
	case e.Workload != "":
		where += " " + e.Workload
	}
	return fmt.Sprintf("%s: %v", where, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Wrap returns err tagged with the stage and location, or nil if err is
// nil. If err is already a *stage.Error it is returned unchanged: the
// innermost wrap wins, because it knows the failure point most precisely
// (e.g. a measure-stage error surfacing through a compare fan-out).
func Wrap(st Stage, suite, workload string, err error) error {
	if err == nil {
		return nil
	}
	var se *Error
	if errors.As(err, &se) {
		return err
	}
	return &Error{Stage: st, Suite: suite, Workload: workload, Err: err}
}

// Canceled reports whether err is (or wraps) a context cancellation or
// deadline expiry — the condition under which a CLI should exit with the
// dedicated "interrupted" status rather than a generic failure.
func Canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
