// Package rng provides deterministic pseudo-random number generation for
// reproducible workload simulation.
//
// The generator is xoshiro256** seeded via SplitMix64, following the
// reference implementations by Blackman and Vigna. Two properties matter
// for Perspector:
//
//   - Determinism: a simulation seeded with the same value produces the
//     same counter matrices on every run and platform.
//   - Stream splitting: per-workload generators are derived from a suite
//     seed with Split, so adding or reordering workloads never perturbs
//     the random streams of existing ones.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed xoshiro256** and to derive child seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator.
// The zero value is not valid; use New.
type Source struct {
	// The four state words are scalar fields rather than a [4]uint64:
	// single-node field selectors keep Uint64 within the inlining budget.
	s0, s1, s2, s3 uint64
	// gauss caches the second deviate of the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var sm = seed
	var s Source
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	// xoshiro must not start in the all-zero state; SplitMix64 of any
	// seed cannot produce four zero outputs, but guard regardless.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return &s
}

// Uint64 returns the next 64 uniformly distributed bits.
//
// This is the reference xoshiro256** step with the state-update
// dependency chain substituted out, so each new word is one expression
// over the old state. The flattening keeps the function under the
// compiler's inlining budget — it sits on the hottest simulator path,
// called once or twice per simulated instruction.
func (s *Source) Uint64() uint64 {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	r := bits.RotateLeft64(s1*5, 7) * 9
	s.s0 = s0 ^ s3 ^ s1
	s.s1 = s1 ^ s2 ^ s0
	s.s2 = s2 ^ s0 ^ s1<<17
	s.s3 = bits.RotateLeft64(s3^s1, 45)
	return r
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent's current state, and advancing the
// parent by one Uint64 afterwards keeps sibling children independent.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Float64 returns a uniform deviate in [0,1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling. The 128-bit product
	// comes from the bits.Mul64 intrinsic (one host multiply). Hot batch
	// loops that draw many values with one fixed bound hand-inline this
	// scheme with a precomputed threshold (see workload/pattern.go); the
	// streams are draw-for-draw identical because the rejection condition
	// lo < bound && lo < threshold reduces to lo < threshold (the
	// threshold 2^64 mod bound is always below bound).
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
// Kept (test-covered) as the portable reference for bits.Mul64.
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	m := t & mask
	c = t >> 32
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Range returns a uniform deviate in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normal deviate with the given mean and standard deviation,
// using the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	if s.hasGauss {
		s.hasGauss = false
		return mean + stddev*s.gauss
	}
	var u, v, r float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r = u*u + v*v
		if r > 0 && r < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r) / r)
	s.gauss = v * f
	s.hasGauss = true
	return mean + stddev*u*f
}

// Exp returns an exponential deviate with the given rate parameter.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^alpha. It is used to model skewed (graph-like) memory reuse.
// The zero value is not valid; use NewZipf.
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha >= 0.
// alpha = 0 degenerates to the uniform distribution.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // avoid round-off at the tail
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ChildSeed deterministically derives the i-th child seed from a parent
// seed. It is a pure function: it does not consume parent stream state, so
// workload k always receives the same seed regardless of suite composition.
func ChildSeed(parent uint64, i int) uint64 {
	state := parent ^ (0xa0761d6478bd642f * uint64(i+1))
	return splitMix64(&state)
}
