package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	x := s.Uint64()
	y := s.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d: count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling children produced %d identical outputs of 100", same)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(29), 100, 1.1)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(31), 1000, 1.2)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	if counts[0] < draws/20 {
		t.Fatalf("Zipf rank0 count %d too small for alpha=1.2", counts[0])
	}
}

func TestZipfAlphaZeroUniform(t *testing.T) {
	z := NewZipf(New(37), 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("alpha=0 bucket %d count %d not uniform", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestChildSeedStability(t *testing.T) {
	// The i-th child seed must not depend on how many other children exist.
	s1 := ChildSeed(99, 5)
	s2 := ChildSeed(99, 5)
	if s1 != s2 {
		t.Fatal("ChildSeed not deterministic")
	}
	if ChildSeed(99, 5) == ChildSeed(99, 6) {
		t.Fatal("adjacent child seeds collide")
	}
	if ChildSeed(99, 5) == ChildSeed(100, 5) {
		t.Fatal("child seeds of different parents collide")
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestRange(t *testing.T) {
	s := New(43)
	for i := 0; i < 10000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range(-5,5) = %v out of range", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<16, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
