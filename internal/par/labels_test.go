package par

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"runtime/pprof"
	"testing"
	"time"
)

// TestDoErrCtxAppliesPprofLabels pins the profiling contract: labels set
// on the caller's context (suite) plus the per-worker label DoErrCtx adds
// and the per-task labels instrumented code adds via pprof.Do all appear
// on CPU samples taken inside pool tasks. The profile is gzip+protobuf;
// rather than depend on a profile parser, the test decompresses it and
// looks for the label strings in the string table.
func TestDoErrCtxAppliesPprofLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("needs real CPU time to collect profile samples")
	}
	prev := SetWorkers(2)
	defer SetWorkers(prev)

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	ctx := pprof.WithLabels(context.Background(), pprof.Labels("suite", "labeltestsuite"))
	err := DoErrCtx(ctx, 4, func(ctx context.Context, worker, i int) error {
		pprof.Do(ctx, pprof.Labels("stage", "labelteststage"), func(context.Context) {
			deadline := time.Now().Add(150 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				for j := 0; j < 1000; j++ {
					x += j * j
				}
			}
			_ = x
		})
		return nil
	})
	pprof.StopCPUProfile()
	if err != nil {
		t.Fatal(err)
	}

	gz, gerr := gzip.NewReader(&buf)
	if gerr != nil {
		t.Fatalf("profile is not gzip: %v", gerr)
	}
	raw, rerr := io.ReadAll(gz)
	if rerr != nil {
		t.Fatalf("decompressing profile: %v", rerr)
	}
	for _, want := range []string{"suite", "labeltestsuite", "stage", "labelteststage", "worker"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile is missing label string %q", want)
		}
	}
}
