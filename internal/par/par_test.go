package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestWorkersNeverBelowOne(t *testing.T) {
	withWorkers(t, 0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		withWorkers(t, w)
		const n = 1000
		var counts [n]atomic.Int64
		Do(n, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoSingleWorkerOrdered(t *testing.T) {
	withWorkers(t, 1)
	var got []int
	Do(5, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("worker id %d with one worker", worker)
		}
		got = append(got, i)
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestDoWorkerIDsInRange(t *testing.T) {
	withWorkers(t, 4)
	var bad atomic.Bool
	Do(100, func(worker, _ int) {
		if worker < 0 || worker >= 4 {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatal("worker id out of [0,4)")
	}
}

func TestDoZeroTasks(t *testing.T) {
	Do(0, func(_, _ int) { t.Fatal("fn called for n=0") })
}

func TestDoErrReturnsLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w)
		err := DoErr(context.Background(), 100, func(_, i int) error {
			if i == 7 || i == 50 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		// Index 7 fails before 50 is claimed only under serial dispatch,
		// but the reported error must always be the lowest failing index
		// among those that ran — and 7 always runs before dispatch stops.
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want task 7", w, err)
		}
	}
}

func TestDoErrNilOnSuccess(t *testing.T) {
	withWorkers(t, 4)
	if err := DoErr(context.Background(), 50, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoErrStopsClaimingAfterFailure(t *testing.T) {
	withWorkers(t, 1)
	ran := 0
	err := DoErr(context.Background(), 100, func(_, i int) error {
		ran++
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if ran != 4 {
		t.Fatalf("ran %d tasks after failure at index 3", ran)
	}
}

func TestDoErrContextCancellation(t *testing.T) {
	withWorkers(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := DoErr(ctx, 10_000, func(_, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", n)
	}
}
