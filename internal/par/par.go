// Package par is Perspector's shared parallel-execution layer: a bounded
// worker pool sized from runtime.NumCPU with deterministic, ordered task
// dispatch and context cancellation.
//
// Every hot path in the scoring engine (pairwise DTW, k-means restarts,
// the silhouette k-sweep, per-suite fan-out, suite simulation) funnels
// through Do/DoErr. Two properties make the layer safe for numerics:
//
//   - Tasks are indexed. Each task writes only its own result slot, and
//     callers reduce the gathered slice serially in index order, so no
//     floating-point operation is ever reassociated relative to the
//     serial code. Scores are bit-identical at any worker count
//     (enforced by TestScoreDeterminismAcrossWorkerCounts).
//   - Workers receive a stable worker id in [0, Workers()), which callers
//     use to index per-worker scratch buffers (e.g. dtw.Distancer) without
//     locks.
package par

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"perspector/internal/obs"
)

// workers is the configured pool width; 0 means "derive from NumCPU".
var workers atomic.Int64

func init() {
	// PERSPECTOR_WORKERS overrides the default pool width, the env-var
	// escape hatch for CI runners and container cgroup limits.
	if s := os.Getenv("PERSPECTOR_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			workers.Store(int64(n))
		}
	}
}

// Workers returns the worker-pool width used by Do and DoErr: the value
// set by SetWorkers (or PERSPECTOR_WORKERS), else runtime.NumCPU, never
// below 1.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers sets the pool width and returns the previous setting
// (0 = automatic). n <= 0 restores the automatic NumCPU sizing.
func SetWorkers(n int) int {
	prev := int(workers.Load())
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
	return prev
}

// Do runs fn(worker, i) for every i in [0, n) on min(Workers(), n)
// workers. Tasks are claimed from an atomic counter, so with one worker
// they run in index order; with several, in arbitrary order — tasks must
// be independent. Do returns when every task has finished.
func Do(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for id := 0; id < w; id++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(id)
	}
	wg.Wait()
}

// DoErr runs fn(worker, i) for every i in [0, n) like Do, but stops
// claiming new tasks as soon as any task fails or ctx is cancelled.
// Already-running tasks finish. The returned error is the one from the
// lowest failing index (deterministic regardless of scheduling), or
// ctx.Err() when the context ended first and no task failed.
func DoErr(ctx context.Context, n int, fn func(worker, i int) error) error {
	return doErr(ctx, n, func(_ context.Context, worker, i int) error {
		return fn(worker, i)
	}, false)
}

// DoErrCtx is DoErr for instrumented fan-outs: each worker derives its own
// context carrying an obs pool-worker span (so spans started by fn nest
// under their worker's track in the trace, and the fold attributes busy
// time per worker) plus a pprof "worker" goroutine label, and passes it to
// fn. The hot numeric fan-outs keep using DoErr and pay none of this; the
// suite and engine fan-outs — a handful of calls per run — use DoErrCtx.
func DoErrCtx(ctx context.Context, n int, fn func(ctx context.Context, worker, i int) error) error {
	return doErr(ctx, n, fn, true)
}

func doErr(ctx context.Context, n int, fn func(ctx context.Context, worker, i int) error, instrument bool) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers()
	if w > n {
		w = n
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstE  error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	body := func(ctx context.Context, worker int) {
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(ctx, worker, i); err != nil {
				record(i, err)
				return
			}
		}
	}
	run := body
	if instrument {
		run = func(ctx context.Context, worker int) {
			wctx, span := obs.StartWorker(ctx, worker)
			pprof.Do(wctx, pprof.Labels("worker", strconv.Itoa(worker)), func(ctx context.Context) {
				body(ctx, worker)
			})
			span.End()
		}
	}
	if w == 1 {
		run(ctx, 0)
	} else {
		var wg sync.WaitGroup
		wg.Add(w)
		for id := 0; id < w; id++ {
			go func(worker int) {
				defer wg.Done()
				run(ctx, worker)
			}(id)
		}
		wg.Wait()
	}
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}
