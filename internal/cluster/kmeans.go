// Package cluster implements the clustering machinery behind Perspector's
// ClusterScore: k-means with k-means++ seeding and multiple restarts, the
// Rousseeuw silhouette score (Eq. 1–6 of the paper), and agglomerative
// hierarchical clustering — the prior-work baseline (Table I) that
// Perspector's §II critiques.
package cluster

import (
	"fmt"
	"math"

	"perspector/internal/mat"
	"perspector/internal/par"
	"perspector/internal/rng"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	// Labels[i] is the cluster index of point i, in [0,k).
	Labels []int
	// Centroids[c] is the centre of cluster c.
	Centroids [][]float64
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the best restart.
	Iterations int
}

// KMeansOptions configures KMeans. The zero value is not valid; use
// DefaultKMeansOptions.
type KMeansOptions struct {
	// MaxIter bounds Lloyd iterations per restart.
	MaxIter int
	// Restarts is the number of independent k-means++ initializations;
	// the restart with the lowest inertia wins.
	Restarts int
	// Tol stops iteration when no centroid moves more than Tol.
	Tol float64
	// Seed makes the run deterministic.
	Seed uint64
}

// DefaultKMeansOptions returns the options used throughout Perspector.
func DefaultKMeansOptions(seed uint64) KMeansOptions {
	return KMeansOptions{MaxIter: 100, Restarts: 8, Tol: 1e-9, Seed: seed}
}

// KMeans clusters the rows of x into k clusters. It returns an error when
// k is out of range (k < 1 or k > number of rows).
func KMeans(x *mat.Matrix, k int, opts KMeansOptions) (*KMeansResult, error) {
	n := x.Rows()
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: KMeans k=%d out of range for %d points", k, n)
	}
	if opts.MaxIter <= 0 || opts.Restarts <= 0 {
		return nil, fmt.Errorf("cluster: KMeans needs positive MaxIter and Restarts")
	}
	// Pre-split one child source per restart, exactly as the serial loop
	// would have (Split is a pure function of parent state), then run the
	// restarts in parallel and reduce in restart order: the winner is the
	// earliest restart with the minimal inertia, bit-identical to the
	// serial "replace only on strictly lower" scan at any worker count.
	src := rng.New(opts.Seed)
	srcs := make([]*rng.Source, opts.Restarts)
	for r := range srcs {
		srcs[r] = src.Split()
	}
	results := make([]*KMeansResult, opts.Restarts)
	par.Do(opts.Restarts, func(_, r int) {
		results[r] = kmeansOnce(x, k, opts, srcs[r])
	})
	best := results[0]
	for _, res := range results[1:] {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(x *mat.Matrix, k int, opts KMeansOptions, src *rng.Source) *KMeansResult {
	n, d := x.Rows(), x.Cols()
	centroids := seedPlusPlus(x, k, src)
	labels := make([]int, n)
	counts := make([]int, k)
	newCentroids := make([][]float64, k)
	for c := range newCentroids {
		newCentroids[c] = make([]float64, d)
	}

	iterations := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		iterations = iter + 1
		// Assignment step. The bounded distance bails out as soon as the
		// partial sum reaches the incumbent best: squares are non-negative
		// and float addition of non-negatives is monotone, so a bailed
		// candidate could never have won the strict `<` — the labels are
		// bit-identical to the exhaustive scan.
		for i := 0; i < n; i++ {
			row := x.RowView(i)
			bestC, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd, ok := sqDistBounded(row, centroids[c], bestD); ok {
					bestD = dd
					bestC = c
				}
			}
			labels[i] = bestC
		}
		// Update step.
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := 0; j < d; j++ {
				newCentroids[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := x.RowView(i)
			for j := 0; j < d; j++ {
				newCentroids[c][j] += row[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, the standard fix that keeps k clusters alive.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if dd := sqDist(x.RowView(i), centroids[labels[i]]); dd > farD {
						farD = dd
						far = i
					}
				}
				copy(newCentroids[c], x.RowView(far))
				counts[c] = 1
				labels[far] = c
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				newCentroids[c][j] *= inv
			}
		}
		// Convergence check.
		maxMove := 0.0
		for c := 0; c < k; c++ {
			if mv := math.Sqrt(sqDist(centroids[c], newCentroids[c])); mv > maxMove {
				maxMove = mv
			}
			copy(centroids[c], newCentroids[c])
		}
		if maxMove <= opts.Tol {
			break
		}
	}

	// The loop's final assignment pass may have drained a cluster that the
	// update-step repair had refilled. Guarantee every cluster is
	// non-empty: silhouette (and any sane consumer) requires it.
	for c := 0; c < k; c++ {
		counts[c] = 0
	}
	for _, l := range labels {
		counts[l]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if counts[labels[i]] <= 1 {
				continue
			}
			if dd := sqDist(x.RowView(i), centroids[labels[i]]); dd > farD {
				farD = dd
				far = i
			}
		}
		if far < 0 {
			break // fewer distinct points than clusters; nothing to move
		}
		counts[labels[far]]--
		labels[far] = c
		counts[c] = 1
		copy(centroids[c], x.RowView(far))
	}

	inertia := 0.0
	for i := 0; i < n; i++ {
		inertia += sqDist(x.RowView(i), centroids[labels[i]])
	}
	out := &KMeansResult{
		Labels:     append([]int(nil), labels...),
		Centroids:  make([][]float64, k),
		Inertia:    inertia,
		Iterations: iterations,
	}
	for c := range centroids {
		out.Centroids[c] = append([]float64(nil), centroids[c]...)
	}
	return out
}

// seedPlusPlus implements k-means++ initialization.
func seedPlusPlus(x *mat.Matrix, k int, src *rng.Source) [][]float64 {
	n, d := x.Rows(), x.Cols()
	centroids := make([][]float64, 0, k)
	first := src.Intn(n)
	centroids = append(centroids, append([]float64(nil), x.RowView(first)...))

	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(x.RowView(i), centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, dd := range minDist {
			total += dd
		}
		var chosen int
		if total == 0 {
			// All remaining points coincide with existing centroids.
			chosen = src.Intn(n)
		} else {
			target := src.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, dd := range minDist {
				acc += dd
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		c := append([]float64(nil), x.RowView(chosen)...)
		centroids = append(centroids, c)
		for i := 0; i < n; i++ {
			if dd, ok := sqDistBounded(x.RowView(i), c, minDist[i]); ok {
				minDist[i] = dd
			}
		}
	}
	_ = d
	return centroids
}

func sqDist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
	}
	return sum
}

// sqDistBounded is sqDist with partial-distance pruning: it accumulates
// in the same order as sqDist and stops as soon as the partial sum
// reaches bound. Every term is a square (non-negative) and rounding a
// non-negative addend never moves the sum below its previous value, so
// partial sums are monotone: a pruned pair is guaranteed to satisfy
// sqDist(a, b) >= bound. ok reports that the full distance was computed
// and is strictly below bound — when true, d is bit-identical to
// sqDist(a, b).
func sqDistBounded(a, b []float64, bound float64) (d float64, ok bool) {
	sum := 0.0
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
		if sum >= bound {
			return sum, false
		}
	}
	return sum, true
}
