package cluster

import (
	"fmt"

	"perspector/internal/mat"
	"perspector/internal/par"
)

// DistanceMatrix returns the full n×n Euclidean distance matrix of the
// rows of x, computed once so that consumers sweeping over many
// clusterings of the same points (the ClusterScore's k in [2, n−1]) stop
// redoing the O(n²) distance work per call. Rows are filled in parallel;
// every entry is written exactly once, so the result is deterministic.
func DistanceMatrix(x *mat.Matrix) [][]float64 {
	n := x.Rows()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	// Row i computes its upper-triangle tail; the mirror write to
	// dist[j][i] targets a distinct cell, so rows are independent.
	par.Do(n, func(_, i int) {
		for j := i + 1; j < n; j++ {
			d := mat.Dist(x.RowView(i), x.RowView(j))
			dist[i][j] = d
			dist[j][i] = d
		}
	})
	return dist
}

// Silhouette computes the paper's Eq. 1–5 exactly:
//
//	η(p)   — mean distance from p to the other members of its own cluster,
//	λ(p)   — the minimum over other clusters of the mean distance to them,
//	S(p)   — (λ−η)/max(λ,η), zero when only one cluster exists,
//	S(C)   — mean of S(p) over the cluster's points,
//	S(W)_k — mean of S(C) over the k clusters.
//
// Note the paper averages per-cluster then across clusters (Eq. 4–5), which
// differs from the common "average over all points" convention when cluster
// sizes are unbalanced; we follow the paper.
//
// labels must assign every point to a cluster in [0,k); every cluster index
// must be non-empty.
//
// Silhouette recomputes the pairwise distances on every call; sweeps over
// k should build the matrix once with DistanceMatrix and call
// SilhouetteDist.
func Silhouette(x *mat.Matrix, labels []int, k int) (float64, error) {
	return SilhouetteDist(DistanceMatrix(x), labels, k)
}

// SilhouetteDist is Silhouette on a precomputed pairwise distance matrix
// (e.g. from DistanceMatrix): dist[i][j] is the distance between points i
// and j. This is the form the over-k sweep uses so the O(n²) distance
// work happens once per sweep instead of once per k.
func SilhouetteDist(dist [][]float64, labels []int, k int) (float64, error) {
	n := len(dist)
	if len(labels) != n {
		return 0, fmt.Errorf("cluster: Silhouette got %d labels for %d points", len(labels), n)
	}
	if k < 1 {
		return 0, fmt.Errorf("cluster: Silhouette with k=%d", k)
	}
	if k == 1 {
		// Eq. 3: S(p) = 0 when k = 1.
		return 0, nil
	}
	members := make([][]int, k)
	for i, c := range labels {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("cluster: label %d out of range [0,%d)", c, k)
		}
		members[c] = append(members[c], i)
	}
	for c, m := range members {
		if len(m) == 0 {
			return 0, fmt.Errorf("cluster: cluster %d is empty", c)
		}
	}

	pointScore := func(p int) float64 {
		own := labels[p]
		// η(p): singleton clusters get η = 0 by the standard convention
		// (Eq. 1 is undefined for |C|=1; Rousseeuw sets S(p)=0 there).
		if len(members[own]) == 1 {
			return 0
		}
		eta := 0.0
		for _, q := range members[own] {
			if q != p {
				eta += dist[p][q]
			}
		}
		eta /= float64(len(members[own]) - 1)

		// λ(p): Eq. 2, minimized over the other clusters.
		lambda := 0.0
		first := true
		for c := 0; c < k; c++ {
			if c == own {
				continue
			}
			cost := 0.0
			for _, q := range members[c] {
				cost += dist[p][q]
			}
			cost /= float64(len(members[c]))
			if first || cost < lambda {
				lambda = cost
				first = false
			}
		}

		den := eta
		if lambda > den {
			den = lambda
		}
		if den == 0 {
			return 0
		}
		return (lambda - eta) / den
	}

	// Eq. 4–5: per-cluster means, then the mean across clusters.
	total := 0.0
	for c := 0; c < k; c++ {
		clusterSum := 0.0
		for _, p := range members[c] {
			clusterSum += pointScore(p)
		}
		total += clusterSum / float64(len(members[c]))
	}
	return total / float64(k), nil
}
