package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"perspector/internal/mat"
	"perspector/internal/rng"
)

// twoBlobs builds two well-separated Gaussian blobs of size each.
func twoBlobs(seed uint64, each int) (*mat.Matrix, []int) {
	src := rng.New(seed)
	rows := make([][]float64, 0, 2*each)
	truth := make([]int, 0, 2*each)
	for i := 0; i < each; i++ {
		rows = append(rows, []float64{src.Norm(0, 0.1), src.Norm(0, 0.1)})
		truth = append(truth, 0)
	}
	for i := 0; i < each; i++ {
		rows = append(rows, []float64{src.Norm(5, 0.1), src.Norm(5, 0.1)})
		truth = append(truth, 1)
	}
	return mat.FromRows(rows), truth
}

func TestKMeansTwoBlobs(t *testing.T) {
	x, truth := twoBlobs(1, 20)
	res, err := KMeans(x, 2, DefaultKMeansOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	// All points in the same truth group must share a label.
	for i := 1; i < 20; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("blob 0 split: labels %v", res.Labels[:20])
		}
	}
	for i := 21; i < 40; i++ {
		if res.Labels[i] != res.Labels[20] {
			t.Fatalf("blob 1 split")
		}
	}
	if res.Labels[0] == res.Labels[20] {
		t.Fatal("blobs merged")
	}
	_ = truth
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := twoBlobs(2, 15)
	a, _ := KMeans(x, 3, DefaultKMeansOptions(42))
	b, _ := KMeans(x, 3, DefaultKMeansOptions(42))
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	res, err := KMeans(x, 3, DefaultKMeansOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia = %v, want 0", res.Inertia)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n produced %d distinct labels", len(seen))
	}
}

func TestKMeansK1(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 0}, {2, 0}})
	res, err := KMeans(x, 1, DefaultKMeansOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Fatalf("k=1 centroid = %v", res.Centroids[0])
	}
}

func TestKMeansErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}})
	if _, err := KMeans(x, 0, DefaultKMeansOptions(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(x, 3, DefaultKMeansOptions(1)); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KMeans(x, 1, KMeansOptions{Seed: 1}); err == nil {
		t.Fatal("zero MaxIter accepted")
	}
}

func TestKMeansInertiaMonotoneInK(t *testing.T) {
	// Best inertia should not increase as k grows (with enough restarts).
	src := rng.New(9)
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{src.Float64() * 10, src.Float64() * 10}
	}
	x := mat.FromRows(rows)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := KMeans(x, k, DefaultKMeansOptions(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.02 { // small slack: restarts are heuristic
			t.Fatalf("inertia rose at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	// Degenerate data: more clusters than distinct points must not hang.
	x := mat.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}})
	res, err := KMeans(x, 3, DefaultKMeansOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	x, truth := twoBlobs(3, 10)
	s, err := Silhouette(x, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("well-separated silhouette = %v, want > 0.9", s)
	}
}

func TestSilhouetteK1IsZero(t *testing.T) {
	x, _ := twoBlobs(4, 5)
	labels := make([]int, 10)
	s, err := Silhouette(x, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("k=1 silhouette = %v, want 0 (Eq. 3)", s)
	}
}

func TestSilhouetteBadSplit(t *testing.T) {
	// Splitting a single tight blob in half gives a poor (near-zero or
	// negative) silhouette.
	src := rng.New(5)
	rows := make([][]float64, 20)
	labels := make([]int, 20)
	for i := range rows {
		rows[i] = []float64{src.Norm(0, 1), src.Norm(0, 1)}
		labels[i] = i % 2
	}
	s, err := Silhouette(mat.FromRows(rows), labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.3 {
		t.Fatalf("random split silhouette = %v, want small", s)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		src := rng.New(seed)
		n := 12
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{src.Float64(), src.Float64(), src.Float64()}
		}
		k := int(kRaw%4) + 2 // 2..5
		x := mat.FromRows(rows)
		res, err := KMeans(x, k, DefaultKMeansOptions(seed))
		if err != nil {
			return false
		}
		// Renumber labels to a dense range (KMeans already does), compute k
		// as the observed number of clusters.
		maxL := 0
		for _, l := range res.Labels {
			if l > maxL {
				maxL = l
			}
		}
		s, err := Silhouette(x, res.Labels, maxL+1)
		if err != nil {
			return false
		}
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}})
	if _, err := Silhouette(x, []int{0}, 2); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := Silhouette(x, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := Silhouette(x, []int{0, 0}, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := Silhouette(x, []int{0, 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSilhouetteSingletonClusters(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 0}, {10, 10}})
	s, err := Silhouette(x, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both clusters are singletons: S(p) = 0 by convention.
	if s != 0 {
		t.Fatalf("singleton silhouette = %v", s)
	}
}

func TestSilhouetteLabelRenumberingInvariant(t *testing.T) {
	// Swapping cluster ids must not change the score.
	x, truth := twoBlobs(11, 8)
	swapped := make([]int, len(truth))
	for i, l := range truth {
		swapped[i] = 1 - l
	}
	a, err := Silhouette(x, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Silhouette(x, swapped, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("silhouette changed under relabeling: %v vs %v", a, b)
	}
}

func TestKMeansLabelsDense(t *testing.T) {
	// Every label in [0,k) must be used (no gaps) for k <= distinct points.
	src := rng.New(13)
	rows := make([][]float64, 24)
	for i := range rows {
		rows[i] = []float64{src.Float64() * 10, src.Float64() * 10}
	}
	x := mat.FromRows(rows)
	for k := 2; k <= 6; k++ {
		res, err := KMeans(x, k, DefaultKMeansOptions(5))
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, k)
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				t.Fatalf("k=%d: label %d out of range", k, l)
			}
			seen[l] = true
		}
		for c, s := range seen {
			if !s {
				t.Fatalf("k=%d: cluster %d empty", k, c)
			}
		}
	}
}

func TestHierarchicalTwoBlobs(t *testing.T) {
	x, truth := twoBlobs(6, 8)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		dg, err := Hierarchical(x, link)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		// Check agreement with truth up to label swap.
		agree, swap := 0, 0
		for i := range labels {
			if labels[i] == truth[i] {
				agree++
			} else {
				swap++
			}
		}
		if agree != len(labels) && swap != len(labels) {
			t.Fatalf("%v linkage mislabelled blobs: %v", link, labels)
		}
	}
}

func TestHierarchicalMergeCount(t *testing.T) {
	x, _ := twoBlobs(7, 5)
	dg, err := Hierarchical(x, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Merges) != x.Rows()-1 {
		t.Fatalf("merges = %d, want %d", len(dg.Merges), x.Rows()-1)
	}
	if dg.NumPoints() != x.Rows() {
		t.Fatalf("NumPoints = %d", dg.NumPoints())
	}
}

func TestHierarchicalCutEdges(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}, {2}, {3}})
	dg, err := Hierarchical(x, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatalf("k=1 cut = %v", labels)
		}
	}
	labels, err = dg.Cut(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("k=n cut = %v", labels)
	}
	if _, err := dg.Cut(0); err == nil {
		t.Fatal("Cut(0) accepted")
	}
	if _, err := dg.Cut(5); err == nil {
		t.Fatal("Cut(n+1) accepted")
	}
}

func TestHierarchicalSingleLinkageChain(t *testing.T) {
	// Single linkage on a chain 0-1-2-10: first merges are the unit gaps.
	x := mat.FromRows([][]float64{{0}, {1}, {2}, {10}})
	dg, err := Hierarchical(x, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Merges[0].Distance != 1 || dg.Merges[1].Distance != 1 {
		t.Fatalf("first merges = %+v", dg.Merges[:2])
	}
	if dg.Merges[2].Distance != 8 {
		t.Fatalf("last merge distance = %v, want 8", dg.Merges[2].Distance)
	}
}

func TestHierarchicalCompleteVsSingle(t *testing.T) {
	// Complete linkage's final merge distance >= single linkage's on the
	// same data (max vs min aggregation).
	x, _ := twoBlobs(8, 6)
	dgS, _ := Hierarchical(x, SingleLinkage)
	dgC, _ := Hierarchical(x, CompleteLinkage)
	last := len(dgS.Merges) - 1
	if dgC.Merges[last].Distance < dgS.Merges[last].Distance {
		t.Fatal("complete linkage final distance < single linkage")
	}
}

func TestHierarchicalEmpty(t *testing.T) {
	if _, err := Hierarchical(mat.New(0, 2), SingleLinkage); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" ||
		AverageLinkage.String() != "average" {
		t.Fatal("linkage names wrong")
	}
	if Linkage(99).String() == "" {
		t.Fatal("unknown linkage should still format")
	}
}

func BenchmarkKMeans43Workloads(b *testing.B) {
	// The SPEC'17-sized clustering problem: 43 points, 14 dims.
	src := rng.New(1)
	rows := make([][]float64, 43)
	for i := range rows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		rows[i] = row
	}
	x := mat.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(x, 5, DefaultKMeansOptions(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette43(b *testing.B) {
	src := rng.New(1)
	rows := make([][]float64, 43)
	labels := make([]int, 43)
	for i := range rows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		rows[i] = row
		labels[i] = i % 5
	}
	x := mat.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(x, labels, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchical43(b *testing.B) {
	src := rng.New(1)
	rows := make([][]float64, 43)
	for i := range rows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		rows[i] = row
	}
	x := mat.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hierarchical(x, AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSqDistBoundedMatchesExact: the pruned distance must make exactly
// the decisions the exhaustive scan makes — ok iff the full distance is
// strictly below the bound, and a completed sum bit-identical to sqDist
// (same accumulation order). KMeans correctness rests on this.
func TestSqDistBoundedMatchesExact(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 2000; trial++ {
		d := 1 + src.Intn(20)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i] = src.Norm(0, 1)
			b[i] = src.Norm(0, 1)
		}
		exact := sqDist(a, b)
		var bound float64
		switch trial % 4 {
		case 0:
			bound = math.Inf(1)
		case 1:
			bound = exact // boundary: dd < bound is false, prune must agree
		case 2:
			bound = exact * (0.25 + src.Float64())
		default:
			bound = src.Float64() * float64(d)
		}
		got, ok := sqDistBounded(a, b, bound)
		if want := exact < bound; ok != want {
			t.Fatalf("trial %d: ok=%v, want %v (exact=%g bound=%g)", trial, ok, want, exact, bound)
		}
		if ok && got != exact {
			t.Fatalf("trial %d: completed sum %x diverges from sqDist %x", trial, got, exact)
		}
	}
}

// TestKMeansPrunedMatchesReference pins the full KMeans pipeline against
// a reference assignment pass without pruning: for a sweep of k the
// labels and inertia must be identical.
func TestKMeansPrunedMatchesReference(t *testing.T) {
	src := rng.New(9)
	rows := make([][]float64, 48)
	for i := range rows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		rows[i] = row
	}
	x := mat.FromRows(rows)
	for k := 2; k < 12; k++ {
		res, err := KMeans(x, k, DefaultKMeansOptions(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		// Reference assignment: every point must sit on its nearest
		// centroid by the exhaustive strict-< scan.
		for i := 0; i < x.Rows(); i++ {
			bestC, bestD := 0, math.Inf(1)
			for c := range res.Centroids {
				if dd := sqDist(x.RowView(i), res.Centroids[c]); dd < bestD {
					bestD = dd
					bestC = c
				}
			}
			// Empty-cluster repair may move a point off its nearest
			// centroid legitimately; accept only exact matches or repairs.
			if res.Labels[i] != bestC {
				if dd := sqDist(x.RowView(i), res.Centroids[res.Labels[i]]); dd < bestD {
					t.Fatalf("k=%d point %d: label %d closer than reference %d?", k, i, res.Labels[i], bestC)
				}
			}
		}
		inertia := 0.0
		for i := 0; i < x.Rows(); i++ {
			inertia += sqDist(x.RowView(i), res.Centroids[res.Labels[i]])
		}
		if inertia != res.Inertia {
			t.Fatalf("k=%d: inertia %x, recomputed %x", k, res.Inertia, inertia)
		}
	}
}
