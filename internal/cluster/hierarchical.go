package cluster

import (
	"fmt"
	"math"

	"perspector/internal/mat"
)

// Linkage selects how inter-cluster distance is computed during
// agglomerative clustering.
type Linkage int

const (
	// SingleLinkage merges on the minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges on the mean pairwise distance (UPGMA).
	AverageLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step of the dendrogram. Cluster ids
// 0..n−1 are the original points; id n+i is the cluster created by the
// i-th merge.
type Merge struct {
	A, B     int
	Distance float64
}

// Dendrogram is the full merge history of a hierarchical clustering run.
type Dendrogram struct {
	n      int
	Merges []Merge
}

// Hierarchical performs agglomerative clustering over the rows of x with
// the given linkage, using the Lance–Williams update. This reproduces the
// pipeline of the prior work in Table I (normalize → PCA → hierarchical
// clustering) that Perspector argues lacks a cluster-quality metric.
func Hierarchical(x *mat.Matrix, linkage Linkage) (*Dendrogram, error) {
	n := x.Rows()
	if n == 0 {
		return nil, fmt.Errorf("cluster: Hierarchical with no points")
	}
	// active cluster id -> current distance row index; we keep a dense
	// distance matrix over "slots" and retire slots as clusters merge.
	type slot struct {
		id   int // cluster id (points: 0..n-1; merged: n, n+1, ...)
		size int
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i] = slot{id: i, size: 1}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dd := mat.Dist(x.RowView(i), x.RowView(j))
			d[i][j] = dd
			d[j][i] = dd
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	dg := &Dendrogram{n: n}
	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest live pair.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if d[i][j] < bd {
					bd = d[i][j]
					bi, bj = i, j
				}
			}
		}
		dg.Merges = append(dg.Merges, Merge{A: slots[bi].id, B: slots[bj].id, Distance: bd})

		// Lance–Williams update into slot bi; retire slot bj.
		si, sj := float64(slots[bi].size), float64(slots[bj].size)
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(d[bi][k], d[bj][k])
			case CompleteLinkage:
				nd = math.Max(d[bi][k], d[bj][k])
			case AverageLinkage:
				nd = (si*d[bi][k] + sj*d[bj][k]) / (si + sj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
			}
			d[bi][k] = nd
			d[k][bi] = nd
		}
		slots[bi] = slot{id: nextID, size: slots[bi].size + slots[bj].size}
		nextID++
		alive[bj] = false
	}
	return dg, nil
}

// Cut returns flat cluster labels obtained by stopping the agglomeration
// once k clusters remain. Labels are renumbered to the range [0,k) in order
// of first appearance. It returns an error if k is out of range.
func (dg *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dg.n {
		return nil, fmt.Errorf("cluster: Cut k=%d out of range for %d points", k, dg.n)
	}
	// Union-find over the first n−k merges.
	parent := make([]int, dg.n+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for i := 0; i < dg.n-k; i++ {
		m := dg.Merges[i]
		newID := dg.n + i
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, dg.n)
	next := 0
	seen := map[int]int{}
	for i := 0; i < dg.n; i++ {
		root := find(i)
		id, ok := seen[root]
		if !ok {
			id = next
			seen[root] = id
			next++
		}
		labels[i] = id
	}
	return labels, nil
}

// NumPoints returns the number of original points in the dendrogram.
func (dg *Dendrogram) NumPoints() int { return dg.n }
