package perf

import (
	"strings"
	"testing"
)

func TestCounterNamesRoundTrip(t *testing.T) {
	for _, c := range AllCounters() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "Counter(") {
			t.Fatalf("counter %d has no name", int(c))
		}
		back, err := ParseCounter(name)
		if err != nil {
			t.Fatalf("ParseCounter(%q): %v", name, err)
		}
		if back != c {
			t.Fatalf("round trip %q: %v != %v", name, back, c)
		}
	}
}

func TestParseCounterUnknown(t *testing.T) {
	if _, err := ParseCounter("nope"); err == nil {
		t.Fatal("unknown counter accepted")
	}
}

func TestCounterStringOutOfRange(t *testing.T) {
	if Counter(-1).String() != "Counter(-1)" {
		t.Fatal("out-of-range String wrong")
	}
}

func TestAllCountersCount(t *testing.T) {
	if len(AllCounters()) != 14 {
		t.Fatalf("Table IV defines 14 events, got %d", len(AllCounters()))
	}
}

func TestGroups(t *testing.T) {
	all := GroupAll()
	if len(all.Counters) != int(NumCounters) {
		t.Fatalf("GroupAll has %d counters", len(all.Counters))
	}
	llc := GroupLLC()
	if len(llc.Counters) != 4 {
		t.Fatalf("GroupLLC has %d counters", len(llc.Counters))
	}
	for _, c := range llc.Counters {
		if !strings.HasPrefix(c.String(), "LLC") {
			t.Fatalf("GroupLLC contains %v", c)
		}
	}
	tlb := GroupTLB()
	if len(tlb.Counters) != 5 {
		t.Fatalf("GroupTLB has %d counters", len(tlb.Counters))
	}
	for _, c := range tlb.Counters {
		if !strings.Contains(strings.ToLower(c.String()), "tlb") {
			t.Fatalf("GroupTLB contains %v", c)
		}
	}
}

func TestGroupByName(t *testing.T) {
	for _, name := range []string{"all", "llc", "tlb"} {
		g, err := GroupByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name != name {
			t.Fatalf("group name %q", g.Name)
		}
	}
	if _, err := GroupByName("bogus"); err == nil {
		t.Fatal("bogus group accepted")
	}
}

func TestValues(t *testing.T) {
	var v Values
	v.Add(CPUCycles, 100)
	v.Add(CPUCycles, 50)
	if v.Get(CPUCycles) != 150 {
		t.Fatalf("Get = %d", v.Get(CPUCycles))
	}
	var w Values
	w.Add(CPUCycles, 40)
	diff := v.Sub(w)
	if diff.Get(CPUCycles) != 110 {
		t.Fatalf("Sub = %d", diff.Get(CPUCycles))
	}
}

func TestValuesVector(t *testing.T) {
	var v Values
	v.Add(LLCLoads, 7)
	v.Add(LLCStores, 9)
	vec := v.Vector([]Counter{LLCStores, LLCLoads})
	if vec[0] != 9 || vec[1] != 7 {
		t.Fatalf("Vector = %v", vec)
	}
}

func TestSuiteMeasurementMatrix(t *testing.T) {
	var m1, m2 Values
	m1.Add(CPUCycles, 10)
	m2.Add(CPUCycles, 20)
	sm := &SuiteMeasurement{
		Suite: "test",
		Workloads: []Measurement{
			{Workload: "a", Totals: m1},
			{Workload: "b", Totals: m2},
		},
	}
	x := sm.Matrix([]Counter{CPUCycles})
	if len(x) != 2 || x[0][0] != 10 || x[1][0] != 20 {
		t.Fatalf("Matrix = %v", x)
	}
	names := sm.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Interval = 1000
	ts.Samples[CPUCycles] = []float64{1, 2, 3}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if s := ts.Series(CPUCycles); len(s) != 3 || s[2] != 3 {
		t.Fatalf("Series = %v", s)
	}
}

func TestSeriesFor(t *testing.T) {
	var m1, m2 Measurement
	m1.Series.Samples[LLCLoadMisses] = []float64{5}
	m2.Series.Samples[LLCLoadMisses] = []float64{6}
	sm := &SuiteMeasurement{Workloads: []Measurement{m1, m2}}
	tz := sm.SeriesFor(LLCLoadMisses)
	if len(tz) != 2 || tz[0][0] != 5 || tz[1][0] != 6 {
		t.Fatalf("SeriesFor = %v", tz)
	}
}
