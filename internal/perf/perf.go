// Package perf defines the performance-monitoring-unit event set of the
// paper's Table IV, the event groups used for focused scoring (§IV-B),
// and the counter-matrix / time-series containers that carry measurements
// from the simulator to the Perspector metrics.
package perf

import "fmt"

// Counter identifies one PMU event from Table IV of the paper.
type Counter int

const (
	// CPUCycles is the total CPU cycle count.
	CPUCycles Counter = iota
	// BranchInstructions counts dynamic branch instructions.
	BranchInstructions
	// BranchMisses counts branch mispredictions.
	BranchMisses
	// DTLBWalkPending counts CPU cycles spent walking the page table for
	// dTLB load and store misses.
	DTLBWalkPending
	// StallsMemAny counts cycles stalled on any memory access.
	StallsMemAny
	// PageFaults counts page faults.
	PageFaults
	// DTLBLoads counts dTLB load accesses.
	DTLBLoads
	// DTLBStores counts dTLB store accesses.
	DTLBStores
	// DTLBLoadMisses counts dTLB load misses.
	DTLBLoadMisses
	// DTLBStoreMisses counts dTLB store misses.
	DTLBStoreMisses
	// LLCLoads counts last-level-cache load accesses.
	LLCLoads
	// LLCStores counts last-level-cache store accesses.
	LLCStores
	// LLCLoadMisses counts last-level-cache load misses.
	LLCLoadMisses
	// LLCStoreMisses counts last-level-cache store misses.
	LLCStoreMisses

	// NumCounters is the total number of PMU events (the m of the paper).
	NumCounters
)

var counterNames = [NumCounters]string{
	"cpu-cycles",
	"branch-instructions",
	"branch-misses",
	"dtlb_walk_pending",
	"cycle_activity.stalls_mem_any",
	"page-faults",
	"dTLB-loads",
	"dTLB-stores",
	"dTLB-load-misses",
	"dTLB-store-misses",
	"LLC-loads",
	"LLC-stores",
	"LLC-load-misses",
	"LLC-store-misses",
}

// String returns the perf-style event name.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("Counter(%d)", int(c))
	}
	return counterNames[c]
}

// ParseCounter returns the Counter with the given perf-style name.
func ParseCounter(name string) (Counter, error) {
	for i, n := range counterNames {
		if n == name {
			return Counter(i), nil
		}
	}
	return 0, fmt.Errorf("perf: unknown counter %q", name)
}

// AllCounters returns every counter in Table-IV order.
func AllCounters() []Counter {
	out := make([]Counter, NumCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Group is a named subset of counters used for focused scoring.
type Group struct {
	Name     string
	Counters []Counter
}

// GroupAll covers every Table-IV event (the Fig. 3a setting).
func GroupAll() Group { return Group{Name: "all", Counters: AllCounters()} }

// GroupLLC covers only LLC-related events (the Fig. 3b setting).
func GroupLLC() Group {
	return Group{Name: "llc", Counters: []Counter{LLCLoads, LLCStores, LLCLoadMisses, LLCStoreMisses}}
}

// GroupTLB covers only TLB-related events (the Fig. 3c setting).
func GroupTLB() Group {
	return Group{Name: "tlb", Counters: []Counter{
		DTLBWalkPending, DTLBLoads, DTLBStores, DTLBLoadMisses, DTLBStoreMisses}}
}

// GroupByName resolves "all", "llc" or "tlb".
func GroupByName(name string) (Group, error) {
	switch name {
	case "all":
		return GroupAll(), nil
	case "llc":
		return GroupLLC(), nil
	case "tlb":
		return GroupTLB(), nil
	default:
		return Group{}, fmt.Errorf("perf: unknown event group %q", name)
	}
}

// Values is a full set of counter totals for one workload execution.
type Values [NumCounters]uint64

// Get returns the value of counter c.
func (v *Values) Get(c Counter) uint64 { return v[c] }

// Add accumulates delta into counter c.
func (v *Values) Add(c Counter, delta uint64) { v[c] += delta }

// Sub returns v − w element-wise (callers guarantee monotonicity).
func (v Values) Sub(w Values) Values {
	var out Values
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Vector returns the values of the given counters as float64s, in order.
func (v *Values) Vector(counters []Counter) []float64 {
	out := make([]float64, len(counters))
	for i, c := range counters {
		out[i] = float64(v[c])
	}
	return out
}

// TimeSeries holds the sampled evolution of every counter over one
// execution. Samples[c][t] is the delta of counter c during sample
// interval t (not the running total), which is the signal phase analysis
// needs: a phase change appears as a level shift in the delta series.
type TimeSeries struct {
	// Interval is the instruction distance between samples.
	Interval uint64
	Samples  [NumCounters][]float64
}

// Series returns the delta series of counter c.
func (ts *TimeSeries) Series(c Counter) []float64 { return ts.Samples[c] }

// Len returns the number of samples.
func (ts *TimeSeries) Len() int {
	if len(ts.Samples) == 0 {
		return 0
	}
	return len(ts.Samples[0])
}

// Measurement is the full result of executing one workload: totals and
// sampled time series.
type Measurement struct {
	Workload string
	Totals   Values
	Series   TimeSeries
}

// SuiteMeasurement aggregates the measurements of every workload in a
// suite, in suite order. This is the matrix X of the paper (§III,
// Notations) plus the per-counter time-series set T_z of §III-B.
type SuiteMeasurement struct {
	Suite     string
	Workloads []Measurement
}

// Matrix returns the n×m matrix of counter totals restricted to the given
// counters: row i is workload i, column j is counters[j]. (The paper
// writes X as m×n; orientation here follows the "row vectors per
// benchmark" convention of §III Notations.)
func (sm *SuiteMeasurement) Matrix(counters []Counter) [][]float64 {
	out := make([][]float64, len(sm.Workloads))
	for i := range sm.Workloads {
		out[i] = sm.Workloads[i].Totals.Vector(counters)
	}
	return out
}

// SeriesFor returns T_z: the per-workload time series of counter c.
func (sm *SuiteMeasurement) SeriesFor(c Counter) [][]float64 {
	out := make([][]float64, len(sm.Workloads))
	for i := range sm.Workloads {
		out[i] = sm.Workloads[i].Series.Series(c)
	}
	return out
}

// Names returns the workload names in order.
func (sm *SuiteMeasurement) Names() []string {
	out := make([]string, len(sm.Workloads))
	for i := range sm.Workloads {
		out[i] = sm.Workloads[i].Workload
	}
	return out
}
