package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"perspector/internal/cache"
	"perspector/internal/jobs"
	"perspector/internal/obs"
	"perspector/internal/store"
)

// Metrics accumulates request-level counters and renders the /metrics
// exposition. Job/queue/cache/store gauges are not accumulated here —
// they are read live from their owners at exposition time, so the
// numbers can never drift from the source of truth.
type Metrics struct {
	mu sync.Mutex
	// requests counts served requests by route and status code.
	requests map[string]map[int]int64
	// latency accumulates per-route duration (sum of seconds + count),
	// the two series a rate() / quantile-free latency panel needs.
	latencySum   map[string]float64
	latencyCount map[string]int64
	// quotaRejections counts 429s from per-tenant quotas, by tenant
	// (capped; unseen tenants past the cap fold into "_other").
	quotaRejections map[string]int64
	// backpressureRejections counts queue-full 429s.
	backpressureRejections int64
	started                time.Time
}

// maxTenantSeries bounds the tenant label cardinality of the quota
// counter, mirroring fleet.TenantLimiter's bucket-table cap.
const maxTenantSeries = 1024

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:        make(map[string]map[int]int64),
		latencySum:      make(map[string]float64),
		latencyCount:    make(map[string]int64),
		quotaRejections: make(map[string]int64),
		started:         time.Now(),
	}
}

// ObserveQuotaRejection records one tenant-quota 429.
func (m *Metrics) ObserveQuotaRejection(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, seen := m.quotaRejections[tenant]; !seen && len(m.quotaRejections) >= maxTenantSeries {
		tenant = "_other"
	}
	m.quotaRejections[tenant]++
}

// ObserveBackpressureRejection records one queue-full 429.
func (m *Metrics) ObserveBackpressureRejection() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.backpressureRejections++
}

// ObserveRequest records one served request.
func (m *Metrics) ObserveRequest(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[route] = byCode
	}
	byCode[code]++
	m.latencySum[route] += elapsed.Seconds()
	m.latencyCount[route]++
}

// requestSnapshot is the copied request-counter state rendered outside
// the lock.
type requestSnapshot struct {
	routes       []string
	requests     map[string]map[int]int64
	latencySum   map[string]float64
	latencyCount map[string]int64
	tenants      []string
	quota        map[string]int64
	backpressure int64
	uptime       float64
}

// snapshot copies the mutable counter state under the lock. Rendering
// happens outside it, so a slow /metrics client can never block
// ObserveRequest (and with it every request handler).
func (m *Metrics) snapshot() requestSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := requestSnapshot{
		requests:     make(map[string]map[int]int64, len(m.requests)),
		latencySum:   make(map[string]float64, len(m.latencySum)),
		latencyCount: make(map[string]int64, len(m.latencyCount)),
		uptime:       time.Since(m.started).Seconds(),
	}
	for route, byCode := range m.requests {
		s.routes = append(s.routes, route)
		codes := make(map[int]int64, len(byCode))
		for c, n := range byCode {
			codes[c] = n
		}
		s.requests[route] = codes
		s.latencySum[route] = m.latencySum[route]
		s.latencyCount[route] = m.latencyCount[route]
	}
	sort.Strings(s.routes)
	s.quota = make(map[string]int64, len(m.quotaRejections))
	for tenant, n := range m.quotaRejections {
		s.tenants = append(s.tenants, tenant)
		s.quota[tenant] = n
	}
	sort.Strings(s.tenants)
	s.backpressure = m.backpressureRejections
	return s
}

// promLabel renders a label value as a Prometheus-text-format quoted
// string. The exposition format defines exactly three escapes in label
// values — backslash, double quote and newline; everything else
// (including tabs and non-ASCII) passes through raw. Go's %q is close
// but over-escapes those into sequences the format does not define,
// which a strict scraper rejects, so every label value below goes
// through this instead.
func promLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// writeHistogram renders one obs.StageAgg as a Prometheus histogram with
// cumulative le buckets. labels is the rendered label set without the
// braces ("" for none); the le label is appended to it.
func writeHistogram(w io.Writer, name, labels string, agg obs.StageAgg) {
	cum := int64(0)
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, ub := range obs.DurationBuckets {
		cum += agg.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	cum += agg.Buckets[len(obs.DurationBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, agg.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, agg.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, agg.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, agg.Count)
	}
}

// Write renders the Prometheus text exposition: the accumulated request
// counters plus live gauges from the queue, result store and
// measurement cache. Series are emitted in sorted label order, so the
// output is stable for tests and diffing. The internal lock is held only
// while copying counters, never while writing to w.
func (m *Metrics) Write(w io.Writer, q *jobs.Queue, st *store.Store, cs *cache.Store) {
	s := m.snapshot()

	fmt.Fprintln(w, "# HELP perspectord_requests_total HTTP requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE perspectord_requests_total counter")
	for _, route := range s.routes {
		codes := make([]int, 0, len(s.requests[route]))
		for c := range s.requests[route] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "perspectord_requests_total{route=%s,code=\"%d\"} %d\n", promLabel(route), c, s.requests[route][c])
		}
	}
	fmt.Fprintln(w, "# HELP perspectord_request_duration_seconds Total request latency, by route.")
	fmt.Fprintln(w, "# TYPE perspectord_request_duration_seconds summary")
	for _, route := range s.routes {
		fmt.Fprintf(w, "perspectord_request_duration_seconds_sum{route=%s} %g\n", promLabel(route), s.latencySum[route])
		fmt.Fprintf(w, "perspectord_request_duration_seconds_count{route=%s} %d\n", promLabel(route), s.latencyCount[route])
	}
	fmt.Fprintln(w, "# HELP perspectord_quota_rejections_total Submissions rejected by per-tenant quota, by tenant.")
	fmt.Fprintln(w, "# TYPE perspectord_quota_rejections_total counter")
	for _, tenant := range s.tenants {
		fmt.Fprintf(w, "perspectord_quota_rejections_total{tenant=%s} %d\n", promLabel(tenant), s.quota[tenant])
	}
	fmt.Fprintln(w, "# HELP perspectord_backpressure_rejections_total Submissions rejected because the queue was full.")
	fmt.Fprintln(w, "# TYPE perspectord_backpressure_rejections_total counter")
	fmt.Fprintf(w, "perspectord_backpressure_rejections_total %d\n", s.backpressure)

	if q != nil {
		counts := q.Counts()
		fmt.Fprintln(w, "# HELP perspectord_jobs Jobs by lifecycle state.")
		fmt.Fprintln(w, "# TYPE perspectord_jobs gauge")
		for _, state := range jobs.States() {
			fmt.Fprintf(w, "perspectord_jobs{state=%s} %d\n", promLabel(string(state)), counts[state])
		}
		fmt.Fprintln(w, "# HELP perspectord_queue_depth Jobs waiting to run.")
		fmt.Fprintln(w, "# TYPE perspectord_queue_depth gauge")
		fmt.Fprintf(w, "perspectord_queue_depth %d\n", q.Depth())
		fmt.Fprintln(w, "# HELP perspectord_instructions_retired_total Simulated instructions retired by jobs (cache hits retire nothing).")
		fmt.Fprintln(w, "# TYPE perspectord_instructions_retired_total counter")
		fmt.Fprintf(w, "perspectord_instructions_retired_total %d\n", q.InstructionsRetired())
		fmt.Fprintln(w, "# HELP perspector_simulated_instructions_per_second EWMA (alpha 0.25) of per-job simulated instruction throughput, folded at job completion; 0 until a simulating job finishes.")
		fmt.Fprintln(w, "# TYPE perspector_simulated_instructions_per_second gauge")
		fmt.Fprintf(w, "perspector_simulated_instructions_per_second %g\n", q.SimulatedInstrPerSec())

		// Span-fold telemetry: per-stage histograms, queue wait and worker
		// utilization, merged once per executed job at its terminal
		// transition (replays fold nothing, so these survive store replay
		// unchanged).
		ts := q.Telemetry().Snapshot()
		fmt.Fprintln(w, "# HELP perspectord_stage_duration_seconds Pipeline stage latency from job span folds, by stage.")
		fmt.Fprintln(w, "# TYPE perspectord_stage_duration_seconds histogram")
		for _, stg := range ts.Stages {
			writeHistogram(w, "perspectord_stage_duration_seconds", "stage="+promLabel(stg.Name), stg.Agg)
		}
		fmt.Fprintln(w, "# HELP perspectord_queue_wait_seconds Time executed jobs spent queued before starting.")
		fmt.Fprintln(w, "# TYPE perspectord_queue_wait_seconds histogram")
		writeHistogram(w, "perspectord_queue_wait_seconds", "", ts.QueueWait)
		fmt.Fprintln(w, "# HELP perspectord_worker_busy_seconds_total Pool-worker busy time from job span folds, by worker.")
		fmt.Fprintln(w, "# TYPE perspectord_worker_busy_seconds_total counter")
		for _, ws := range ts.Workers {
			fmt.Fprintf(w, "perspectord_worker_busy_seconds_total{worker=\"%d\"} %g\n", ws.Worker, ws.BusySeconds)
		}
		fmt.Fprintln(w, "# HELP perspectord_worker_utilization Worker busy fraction of total executed-job wall time.")
		fmt.Fprintln(w, "# TYPE perspectord_worker_utilization gauge")
		for _, ws := range ts.Workers {
			fmt.Fprintf(w, "perspectord_worker_utilization{worker=\"%d\"} %g\n", ws.Worker, ws.Utilization)
		}
	}
	if st != nil {
		fmt.Fprintln(w, "# HELP perspectord_results_stored Distinct result documents in the store.")
		fmt.Fprintln(w, "# TYPE perspectord_results_stored gauge")
		fmt.Fprintf(w, "perspectord_results_stored %d\n", st.Len())
	}
	if cs != nil {
		hits, misses := cs.Hits(), cs.Misses()
		fmt.Fprintln(w, "# HELP perspectord_cache_hits_total Measurement cache hits.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_hits_total counter")
		fmt.Fprintf(w, "perspectord_cache_hits_total %d\n", hits)
		fmt.Fprintln(w, "# HELP perspectord_cache_misses_total Measurement cache misses.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_misses_total counter")
		fmt.Fprintf(w, "perspectord_cache_misses_total %d\n", misses)
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintln(w, "# HELP perspectord_cache_hit_ratio Hit fraction of measurement cache lookups since start.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_hit_ratio gauge")
		fmt.Fprintf(w, "perspectord_cache_hit_ratio %g\n", ratio)
	}
	fmt.Fprintln(w, "# HELP perspectord_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE perspectord_uptime_seconds gauge")
	fmt.Fprintf(w, "perspectord_uptime_seconds %g\n", s.uptime)
}
