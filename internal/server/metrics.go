package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"perspector/internal/cache"
	"perspector/internal/jobs"
	"perspector/internal/store"
)

// Metrics accumulates request-level counters and renders the /metrics
// exposition. Job/queue/cache/store gauges are not accumulated here —
// they are read live from their owners at exposition time, so the
// numbers can never drift from the source of truth.
type Metrics struct {
	mu sync.Mutex
	// requests counts served requests by route and status code.
	requests map[string]map[int]int64
	// latency accumulates per-route duration (sum of seconds + count),
	// the two series a rate() / quantile-free latency panel needs.
	latencySum   map[string]float64
	latencyCount map[string]int64
	started      time.Time
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:     make(map[string]map[int]int64),
		latencySum:   make(map[string]float64),
		latencyCount: make(map[string]int64),
		started:      time.Now(),
	}
}

// ObserveRequest records one served request.
func (m *Metrics) ObserveRequest(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[route] = byCode
	}
	byCode[code]++
	m.latencySum[route] += elapsed.Seconds()
	m.latencyCount[route]++
}

// Write renders the Prometheus text exposition: the accumulated request
// counters plus live gauges from the queue, result store and
// measurement cache. Series are emitted in sorted label order, so the
// output is stable for tests and diffing.
func (m *Metrics) Write(w io.Writer, q *jobs.Queue, st *store.Store, cs *cache.Store) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintln(w, "# HELP perspectord_requests_total HTTP requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE perspectord_requests_total counter")
	for _, route := range routes {
		codes := make([]int, 0, len(m.requests[route]))
		for c := range m.requests[route] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "perspectord_requests_total{route=%q,code=\"%d\"} %d\n", route, c, m.requests[route][c])
		}
	}
	fmt.Fprintln(w, "# HELP perspectord_request_duration_seconds Total request latency, by route.")
	fmt.Fprintln(w, "# TYPE perspectord_request_duration_seconds summary")
	for _, route := range routes {
		fmt.Fprintf(w, "perspectord_request_duration_seconds_sum{route=%q} %g\n", route, m.latencySum[route])
		fmt.Fprintf(w, "perspectord_request_duration_seconds_count{route=%q} %d\n", route, m.latencyCount[route])
	}
	uptime := time.Since(m.started).Seconds()
	m.mu.Unlock()

	if q != nil {
		counts := q.Counts()
		fmt.Fprintln(w, "# HELP perspectord_jobs Jobs by lifecycle state.")
		fmt.Fprintln(w, "# TYPE perspectord_jobs gauge")
		for _, state := range jobs.States() {
			fmt.Fprintf(w, "perspectord_jobs{state=%q} %d\n", string(state), counts[state])
		}
		fmt.Fprintln(w, "# HELP perspectord_queue_depth Jobs waiting to run.")
		fmt.Fprintln(w, "# TYPE perspectord_queue_depth gauge")
		fmt.Fprintf(w, "perspectord_queue_depth %d\n", q.Depth())
		fmt.Fprintln(w, "# HELP perspectord_instructions_retired_total Simulated instructions retired by jobs (cache hits retire nothing).")
		fmt.Fprintln(w, "# TYPE perspectord_instructions_retired_total counter")
		fmt.Fprintf(w, "perspectord_instructions_retired_total %d\n", q.InstructionsRetired())
		fmt.Fprintln(w, "# HELP perspector_simulated_instructions_per_second EWMA (alpha 0.25) of per-job simulated instruction throughput, folded at job completion; 0 until a simulating job finishes.")
		fmt.Fprintln(w, "# TYPE perspector_simulated_instructions_per_second gauge")
		fmt.Fprintf(w, "perspector_simulated_instructions_per_second %g\n", q.SimulatedInstrPerSec())
	}
	if st != nil {
		fmt.Fprintln(w, "# HELP perspectord_results_stored Distinct result documents in the store.")
		fmt.Fprintln(w, "# TYPE perspectord_results_stored gauge")
		fmt.Fprintf(w, "perspectord_results_stored %d\n", st.Len())
	}
	if cs != nil {
		hits, misses := cs.Hits(), cs.Misses()
		fmt.Fprintln(w, "# HELP perspectord_cache_hits_total Measurement cache hits.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_hits_total counter")
		fmt.Fprintf(w, "perspectord_cache_hits_total %d\n", hits)
		fmt.Fprintln(w, "# HELP perspectord_cache_misses_total Measurement cache misses.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_misses_total counter")
		fmt.Fprintf(w, "perspectord_cache_misses_total %d\n", misses)
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintln(w, "# HELP perspectord_cache_hit_ratio Hit fraction of measurement cache lookups since start.")
		fmt.Fprintln(w, "# TYPE perspectord_cache_hit_ratio gauge")
		fmt.Fprintf(w, "perspectord_cache_hit_ratio %g\n", ratio)
	}
	fmt.Fprintln(w, "# HELP perspectord_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE perspectord_uptime_seconds gauge")
	fmt.Fprintf(w, "perspectord_uptime_seconds %g\n", uptime)
}
