package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/metric"
	"perspector/internal/obs"
	"perspector/internal/server"
	"perspector/internal/store"
)

// blockingWriter blocks its first Write until released, standing in for
// a stalled /metrics client on an unbuffered connection.
type blockingWriter struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.entered)
		<-w.release
	})
	return len(p), nil
}

// TestMetricsWriteDoesNotBlockObserve pins the lock-scope fix: Metrics
// rendering to a stalled writer must not hold the mutex, so request
// observation (and with it every request handler) proceeds while the
// slow client drains.
func TestMetricsWriteDoesNotBlockObserve(t *testing.T) {
	m := server.NewMetrics()
	m.ObserveRequest("GET /a", http.StatusOK, time.Millisecond)

	bw := &blockingWriter{entered: make(chan struct{}), release: make(chan struct{})}
	writeDone := make(chan struct{})
	go func() {
		m.Write(bw, nil, nil, nil)
		close(writeDone)
	}()
	<-bw.entered // the render is now mid-write, stalled

	observed := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			m.ObserveRequest("GET /b", http.StatusOK, time.Millisecond)
		}
		close(observed)
	}()
	select {
	case <-observed:
	case <-time.After(2 * time.Second):
		t.Fatal("ObserveRequest blocked behind a stalled /metrics client")
	}
	close(bw.release)
	<-writeDone
}

// telemetryRunner records a fixed span shape — two pool workers each
// measuring once — so the exposition's series set is machine-independent.
func telemetryRunner(ctx context.Context, h *jobs.Handle) (store.ScoreSet, error) {
	for w := 0; w < 2; w++ {
		wctx, wsp := obs.StartWorker(ctx, w)
		_, sp := obs.Start(wctx, "measure", obs.String("suite", "nbench"))
		sp.End()
		wsp.End()
	}
	return store.New(store.KindScore, "all", "simulator",
		&store.RunConfig{Instructions: 1000, Samples: 10, Seed: 1},
		[]metric.Scores{{Suite: h.Request().Suites[0], Cluster: 0.5}}), nil
}

// TestMetricsExpositionGolden pins the full sorted series set of the
// exposition after one executed job — values masked, names and labels
// exact — including the span-fold histograms and worker gauges.
func TestMetricsExpositionGolden(t *testing.T) {
	env := newEnv(t, telemetryRunner, jobs.Options{Workers: 1}, nil)
	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}

	_, body := env.do(t, "GET", "/metrics", nil)
	var got []string
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Mask the value: a series line is "<name{labels}> <value>".
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable series line %q", line)
		}
		got = append(got, line[:i])
	}
	sort.Strings(got)

	var want []string
	series := func(format string, args ...any) {
		want = append(want, fmt.Sprintf(format, args...))
	}
	histogram := func(name, labels string) {
		sep := ""
		if labels != "" {
			sep = ","
		}
		for _, ub := range obs.DurationBuckets {
			series("%s_bucket{%s%sle=\"%g\"}", name, labels, sep, ub)
		}
		series("%s_bucket{%s%sle=\"+Inf\"}", name, labels, sep)
		if labels == "" {
			series("%s_sum", name)
			series("%s_count", name)
		} else {
			series("%s_sum{%s}", name, labels)
			series("%s_count{%s}", name, labels)
		}
	}
	for _, route := range []string{"GET /api/v1/jobs/{id}/result", "POST /api/v1/jobs"} {
		code := 200
		if strings.HasPrefix(route, "POST") {
			code = 202
		}
		series("perspectord_requests_total{route=%q,code=\"%d\"}", route, code)
		series("perspectord_request_duration_seconds_sum{route=%q}", route)
		series("perspectord_request_duration_seconds_count{route=%q}", route)
	}
	// Quota rejections emit no series until a tenant is throttled; the
	// backpressure counter is always exposed.
	series("perspectord_backpressure_rejections_total")
	for _, state := range jobs.States() {
		series("perspectord_jobs{state=%q}", string(state))
	}
	series("perspectord_queue_depth")
	series("perspectord_instructions_retired_total")
	series("perspector_simulated_instructions_per_second")
	// The queue records "job" and "store" spans itself; the runner adds
	// "measure" under two workers.
	for _, stage := range []string{"job", "measure", "store"} {
		histogram("perspectord_stage_duration_seconds", fmt.Sprintf("stage=%q", stage))
	}
	histogram("perspectord_queue_wait_seconds", "")
	for w := 0; w < 2; w++ {
		series("perspectord_worker_busy_seconds_total{worker=\"%d\"}", w)
	}
	for w := 0; w < 2; w++ {
		series("perspectord_worker_utilization{worker=\"%d\"}", w)
	}
	series("perspectord_results_stored")
	series("perspectord_uptime_seconds")
	sort.Strings(want)

	if len(got) != len(want) {
		t.Fatalf("series count = %d, want %d\ngot:\n%s\nwant:\n%s",
			len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMetricsSurviveReplay pins the acceptance criterion: resubmitting a
// stored request replays from the store and leaves every span-fold series
// byte-identical (values included, uptime excluded).
func TestMetricsSurviveReplay(t *testing.T) {
	env := newEnv(t, telemetryRunner, jobs.Options{Workers: 1}, nil)
	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	foldSeries := func() []string {
		_, body := env.do(t, "GET", "/metrics", nil)
		var out []string
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "perspectord_stage_duration_seconds") ||
				strings.HasPrefix(line, "perspectord_queue_wait_seconds") ||
				strings.HasPrefix(line, "perspectord_worker_") {
				out = append(out, line)
			}
		}
		return out
	}
	before := foldSeries()

	code, data = env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil); code != http.StatusOK {
		t.Fatalf("replay result: %d", code)
	}
	snap, _ := env.q.Get(sub.Job.ID)
	if !snap.Replayed {
		t.Fatalf("resubmission was not a replay: %+v", snap)
	}
	after := foldSeries()
	if strings.Join(before, "\n") != strings.Join(after, "\n") {
		t.Fatalf("replay changed fold series:\nbefore:\n%s\nafter:\n%s",
			strings.Join(before, "\n"), strings.Join(after, "\n"))
	}
}

// TestHealthzBuildInfo pins the /healthz version block.
func TestHealthzBuildInfo(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	code, body := env.do(t, "GET", "/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Status string `json:"status"`
		Build  struct {
			Version   string `json:"version"`
			GoVersion string `json:"go_version"`
			OS        string `json:"os"`
			Arch      string `json:"arch"`
		} `json:"build"`
		Goroutines int `json:"goroutines"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Build.Version == "" || h.Build.GoVersion == "" || h.Build.OS == "" || h.Build.Arch == "" {
		t.Fatalf("incomplete build info: %+v", h.Build)
	}
	if h.Goroutines < 1 {
		t.Fatalf("goroutines = %d", h.Goroutines)
	}
}
