// Package server is perspectord's HTTP/JSON API over the job queue and
// the result store. The layering is strict:
//
//	server (transport, observability)
//	  → jobs (queue, dedup, cancellation, drain)
//	    → engine (internal/source + internal/metric, untouched)
//	      → store (durable ScoreSets)
//
// The server owns nothing but translation and observability: request
// decoding and status mapping, structured request/job logging via
// log/slog, the /metrics exposition, and optional net/http/pprof. All
// scoring semantics live below it, which is what keeps scores served
// over HTTP bit-identical to CLI scores.
//
// # API
//
//	POST   /api/v1/jobs          submit a score/compare job (202; 200 when deduplicated)
//	GET    /api/v1/jobs          list jobs, oldest first
//	GET    /api/v1/jobs/{id}     poll one job: state, stage, progress
//	GET    /api/v1/jobs/{id}/result[?wait=1]
//	                             fetch the ScoreSet; wait=1 long-polls
//	                             until the job is terminal
//	DELETE /api/v1/jobs/{id}     cancel (queued: immediate; running: ctx)
//	GET    /api/v1/results       list stored results (content key, kind, suites)
//	GET    /api/v1/results/{key} fetch one stored ScoreSet
//	GET    /api/v1/suites        list every registered suite
//	POST   /api/v1/streams       open an incremental-scoring stream
//	                             (chunks, scores, close, cancel routes
//	                             under /api/v1/streams/{id} — see
//	                             streams.go)
//	GET    /api/v1/perf/history  raw benchmark-history records (with
//	                             Config.PerfHist; see perfhist.go)
//	GET    /api/v1/perf/trends   per-benchmark trend statistics
//	GET    /perf                 embedded HTML performance dashboard
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus-style text exposition
//	GET    /debug/pprof/         only with Config.EnablePprof
//
// Errors are JSON: {"error": "..."} plus a matching status code; job
// submission maps jobs.ErrQueueFull to 429 and jobs.ErrDraining to 503.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"perspector/internal/buildinfo"
	"perspector/internal/cache"
	"perspector/internal/fleet"
	"perspector/internal/jobs"
	"perspector/internal/perfhist"
	"perspector/internal/store"
	"perspector/internal/suites"
)

// Config wires the server's collaborators.
type Config struct {
	// Queue executes and tracks jobs. Required.
	Queue *jobs.Queue
	// Store serves the /api/v1/results endpoints; nil disables them
	// (404 with an explanatory error).
	Store *store.Store
	// Streams serves the /api/v1/streams endpoints (incremental scoring
	// over chunked measurement uploads); nil disables them.
	Streams *jobs.StreamManager
	// Cache, when set, feeds the cache hit/miss gauges of /metrics.
	Cache *cache.Store
	// PerfHist serves the benchmark-history endpoints (/api/v1/perf/*)
	// and the /perf dashboard from a benchjson JSONL log; nil disables
	// them.
	PerfHist *perfhist.Service
	// Log receives request logs; nil means slog.Default.
	Log *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// Role is the node's fleet role — "single" (default), "coordinator"
	// or "worker" — reported on /healthz.
	Role string
	// NodeID names this node in the fleet; empty in single mode.
	NodeID string
	// Coordinator, when set, mounts the /api/v1/fleet endpoints, adds
	// fleet gauges to /metrics, and makes queue-full Retry-After
	// estimates fleet-capacity-aware.
	Coordinator *fleet.Coordinator
	// Quota applies per-tenant token-bucket admission control to job
	// submission, keyed by the X-Tenant header; nil admits everything.
	Quota *fleet.TenantLimiter
	// Peers reports the fleet size for /healthz on nodes that are not
	// the coordinator (a worker's view of the cluster); when nil, the
	// Coordinator's membership table is consulted instead.
	Peers func() int
}

// Server is the assembled handler; build with New.
type Server struct {
	cfg     Config
	metrics *Metrics
	mux     *http.ServeMux
}

// New builds the route table.
func New(cfg Config) *Server {
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	s := &Server{cfg: cfg, metrics: NewMetrics(), mux: http.NewServeMux()}
	s.handle("POST /api/v1/jobs", s.handleSubmit)
	s.handle("GET /api/v1/jobs", s.handleListJobs)
	s.handle("GET /api/v1/jobs/{id}", s.handleGetJob)
	s.handle("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	s.handle("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	s.handle("GET /api/v1/results", s.handleListResults)
	s.handle("GET /api/v1/results/{key}", s.handleGetResult)
	s.handle("GET /api/v1/suites", s.handleSuites)
	if cfg.Streams != nil {
		s.handle("POST /api/v1/streams", s.handleOpenStream)
		s.handle("GET /api/v1/streams", s.handleListStreams)
		s.handle("GET /api/v1/streams/{id}", s.handleGetStream)
		s.handle("POST /api/v1/streams/{id}/chunks", s.handleStreamChunk)
		s.handle("GET /api/v1/streams/{id}/scores", s.handleStreamScores)
		s.handle("POST /api/v1/streams/{id}/close", s.handleCloseStream)
		s.handle("DELETE /api/v1/streams/{id}", s.handleCancelStream)
	}
	if cfg.PerfHist != nil {
		s.handle("GET /api/v1/perf/history", s.handlePerfHistory)
		s.handle("GET /api/v1/perf/trends", s.handlePerfTrends)
		s.handle("GET /perf", s.handlePerfDashboard)
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	if cfg.Coordinator != nil {
		s.handle("POST /api/v1/fleet/join", s.handleFleetJoin)
		s.handle("POST /api/v1/fleet/heartbeat", s.handleFleetHeartbeat)
		s.handle("POST /api/v1/fleet/pull", s.handleFleetPull)
		s.handle("POST /api/v1/fleet/results", s.handleFleetResults)
		s.handle("POST /api/v1/fleet/leave", s.handleFleetLeave)
		s.handle("GET /api/v1/fleet", s.handleFleetStatus)
	}
	if cfg.EnablePprof {
		s.handle("GET /debug/pprof/", pprof.Index)
		s.handle("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.handle("GET /debug/pprof/profile", pprof.Profile)
		s.handle("GET /debug/pprof/symbol", pprof.Symbol)
		s.handle("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler (all middleware applied).
func (s *Server) Handler() http.Handler { return s.mux }

// handle mounts one route with the logging/metrics middleware. The
// pattern doubles as the route label in metrics and logs, so
// cardinality stays bounded no matter what paths clients send.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.instrument(pattern, h))
}

// statusWriter captures the response code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// requestIDKey carries the request's trace ID through its context.
type requestIDKey struct{}

// maxRequestIDLen bounds an inbound X-Request-ID so a hostile client
// cannot inflate logs.
const maxRequestIDLen = 64

// newRequestID mints a 16-hex-digit trace ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-based ID keeps requests distinguishable regardless.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied trace ID only when it is
// boring: bounded length, [A-Za-z0-9._-] alphabet. Anything else is
// discarded (a fresh ID is minted), which keeps log lines and response
// headers injection-free.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// requestIDFrom returns the trace ID instrument attached to ctx.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Honor the caller's X-Request-ID (that is what lets one ID
		// follow a job across fleet hops) or mint one, echo it on the
		// response, and stamp every log line with it.
		rid := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next(sw, r)
		elapsed := time.Since(start)
		s.metrics.ObserveRequest(route, sw.code, elapsed)
		s.cfg.Log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.code,
			"elapsed", elapsed,
			"remote", r.RemoteAddr,
			"request_id", rid,
		)
	})
}

// writeJSON renders v with a status code; encoding errors after the
// header is out can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.cfg.Log.Error("response encoding failed", "error", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
	// Job carries the snapshot when the error concerns a job that does
	// exist (e.g. fetching the result of a failed job).
	Job *jobs.Snapshot `json:"job,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitResponse wraps the snapshot with the dedup verdict, so a client
// can tell "my job" from "an identical job that was already in flight".
type submitResponse struct {
	Job jobs.Snapshot `json:"job"`
	// Deduped is true when the request folded into an existing job.
	Deduped bool `json:"deduped"`
}

// maxBodyBytes bounds a submission body: the trace payload bound plus
// base64 and JSON envelope overhead.
const maxBodyBytes = jobs.MaxTraceBytes*4/3 + 1<<20

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, rounding up so clients never come back early.
func retryAfterSeconds(d time.Duration) string {
	return fmt.Sprintf("%d", int64(math.Ceil(d.Seconds())))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Per-tenant quota runs before the body is even read: a throttled
	// tenant costs one header lookup, not a decode of a multi-megabyte
	// trace upload.
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if ok, retry := s.cfg.Quota.Allow(tenant); !ok {
		s.metrics.ObserveQuotaRejection(tenant)
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		s.writeError(w, http.StatusTooManyRequests, "tenant %q is over its submission quota", tenant)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req jobs.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	// The job inherits this request's trace ID (body-supplied IDs win,
	// for clients resubmitting a serialized request verbatim). The ID is
	// excluded from the job's content key, so dedup is unaffected.
	if req.RequestID == "" {
		req.RequestID = requestIDFrom(r.Context())
	}
	// Reject undecodable uploads at submission time with a 400 — not
	// minutes later as a failed job. The runner parses the same bytes
	// with the same parser, so admit implies run.
	if t := req.Trace; t != nil && len(t.Data) > 0 && len(t.Data) <= jobs.MaxTraceBytes {
		probe := *t
		if probe.Format == "" {
			probe.Format = "json"
		}
		if probe.Name == "" {
			probe.Name = "uploaded"
		}
		if probe.Format == "json" || probe.Format == "csv" {
			if _, err := jobs.ParseTrace(&probe); err != nil {
				s.writeError(w, http.StatusBadRequest, "trace upload does not parse: %v", err)
				return
			}
		}
	}
	snap, deduped, err := s.cfg.Queue.Submit(req)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Retry-After estimates when a slot frees from queue depth and
		// the instr/sec EWMA; on a coordinator the fleet's aggregate
		// capacity is the parallelism, so adding workers shortens it.
		parallel := 0
		if s.cfg.Coordinator != nil {
			parallel = s.cfg.Coordinator.Capacity()
		}
		s.metrics.ObserveBackpressureRejection()
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Queue.RetryAfter(parallel)))
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+snap.ID)
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	s.writeJSON(w, code, submitResponse{Job: snap, Deduped: deduped})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.cfg.Queue.List()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.cfg.Queue.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.cfg.Queue.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		done, err := s.cfg.Queue.Done(id)
		if err != nil {
			s.writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		select {
		case <-done:
		case <-r.Context().Done():
			// The client went away mid-wait; nothing useful to send.
			s.writeError(w, http.StatusServiceUnavailable, "client disconnected while waiting")
			return
		}
		snap, _ = s.cfg.Queue.Get(id)
	}
	if !snap.State.Terminal() {
		// Not ready: hand back the snapshot so pollers see progress.
		s.writeJSON(w, http.StatusAccepted, snap)
		return
	}
	set, ok, err := s.cfg.Queue.Result(id)
	if err != nil || !ok {
		msg := "job finished without a result"
		if snap.Error != nil {
			msg = snap.Error.Message
		}
		s.writeJSON(w, http.StatusConflict, errorBody{Error: msg, Job: &snap})
		return
	}
	s.writeJSON(w, http.StatusOK, set)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	snap, err := s.cfg.Queue.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleListResults(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.writeError(w, http.StatusNotFound, "no result store configured (start perspectord with -store-dir)")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"results": s.cfg.Store.List()})
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.writeError(w, http.StatusNotFound, "no result store configured (start perspectord with -store-dir)")
		return
	}
	key := r.PathValue("key")
	set, ok := s.cfg.Store.Get(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no result stored under %q", key)
		return
	}
	s.writeJSON(w, http.StatusOK, set)
}

// suiteInfo is one registered suite in the /api/v1/suites listing.
type suiteInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Workloads   []string `json:"workloads"`
}

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	all := suites.Registered(suites.DefaultConfig())
	out := make([]suiteInfo, len(all))
	for i, st := range all {
		names := make([]string, len(st.Specs))
		for j := range st.Specs {
			names[j] = st.Specs[j].Name
		}
		out[i] = suiteInfo{Name: st.Name, Description: st.Description, Workloads: names}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"suites": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	role := s.cfg.Role
	if role == "" {
		role = "single"
	}
	peers := 0
	switch {
	case s.cfg.Peers != nil:
		peers = s.cfg.Peers()
	case s.cfg.Coordinator != nil:
		peers = s.cfg.Coordinator.Peers()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"build":      buildinfo.Read(),
		"goroutines": runtime.NumGoroutine(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"node": map[string]any{
			"role":  role,
			"id":    s.cfg.NodeID,
			"peers": peers,
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Write(w, s.cfg.Queue, s.cfg.Store, s.cfg.Cache)
	if s.cfg.Streams != nil {
		writeStreamMetrics(w, s.cfg.Streams.Telemetry())
	}
	if s.cfg.Coordinator != nil {
		writeFleetMetrics(w, s.cfg.Coordinator.Status())
	}
}
