package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/server"
	"perspector/internal/store"
)

// streamChunkBody fabricates a deterministic chunk for every counter.
func streamChunkBody(seed int64, names ...string) jobs.StreamChunk {
	rnd := rand.New(rand.NewSource(seed))
	nc := len(perf.AllCounters())
	c := jobs.StreamChunk{}
	for _, name := range names {
		w := jobs.ChunkWorkload{Name: name, Totals: make([]uint64, nc), Series: make([][]float64, nc)}
		for k := 0; k < nc; k++ {
			w.Totals[k] = uint64(rnd.Intn(4000))
			for t := 0; t < 4; t++ {
				w.Series[k] = append(w.Series[k], float64(rnd.Intn(150)))
			}
		}
		c.Workloads = append(c.Workloads, w)
	}
	return c
}

// foldChunk applies a chunk to the reference measurement the way the
// stream does, for the batch oracle.
func foldChunk(sm *perf.SuiteMeasurement, c jobs.StreamChunk, interval uint64) {
	for _, w := range c.Workloads {
		idx := -1
		for i := range sm.Workloads {
			if sm.Workloads[i].Workload == w.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			sm.Workloads = append(sm.Workloads, perf.Measurement{Workload: w.Name})
			idx = len(sm.Workloads) - 1
		}
		m := &sm.Workloads[idx]
		for k, counter := range perf.AllCounters() {
			m.Totals[counter] += w.Totals[k]
			if len(w.Series[k]) > 0 {
				m.Series.Interval = interval
				m.Series.Samples[counter] = append(m.Series.Samples[counter], w.Series[k]...)
			}
		}
	}
}

// TestStreamAPIEndToEnd exercises the full streaming-score HTTP path:
// open, chunked appends, long-polled evolving scores, close — and
// requires the final ScoreSet to be bit-identical to the batch engine
// over the assembled measurement, persisted under the stream's
// content-addressed key, with /metrics accounting for the stream.
func TestStreamAPIEndToEnd(t *testing.T) {
	var sm *jobs.StreamManager
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(cfg *server.Config) {
		sm = jobs.NewStreamManager(jobs.StreamOptions{Store: cfg.Store, Log: discardLog()})
		cfg.Streams = sm
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sm.Drain(ctx)
	})

	const interval = 500
	code, data := env.do(t, "POST", "/api/v1/streams",
		jobs.StreamOpenRequest{Suites: []string{"live"}, SampleInterval: interval})
	if code != http.StatusCreated {
		t.Fatalf("open: %d %s", code, data)
	}
	var snap jobs.StreamSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StreamOpen || snap.Key == "" {
		t.Fatalf("open snapshot: %+v", snap)
	}

	expected := &perf.SuiteMeasurement{Suite: "live"}
	chunks := []jobs.StreamChunk{
		streamChunkBody(1, "w0", "w1", "w2"),
		streamChunkBody(2, "w1", "w3"),
	}
	var seq int64
	for i, c := range chunks {
		code, data = env.do(t, "POST", "/api/v1/streams/"+snap.ID+"/chunks", c)
		if code != http.StatusAccepted {
			t.Fatalf("chunk %d: %d %s", i, code, data)
		}
		foldChunk(expected, c, interval)
		// Long-poll until this chunk's rescore publishes.
		code, data = env.do(t, "GET",
			fmt.Sprintf("/api/v1/streams/%s/scores?since=%d&wait=1", snap.ID, seq), nil)
		if code != http.StatusOK {
			t.Fatalf("scores after chunk %d: %d %s", i, code, data)
		}
		var sc jobs.StreamScores
		if err := json.Unmarshal(data, &sc); err != nil {
			t.Fatal(err)
		}
		if sc.Seq <= seq || sc.Error != nil || sc.Scores == nil {
			t.Fatalf("scores after chunk %d: %+v", i, sc)
		}
		seq = sc.Seq
	}

	code, data = env.do(t, "POST", "/api/v1/streams/"+snap.ID+"/close", nil)
	if code != http.StatusOK {
		t.Fatalf("close: %d %s", code, data)
	}
	// Poll (non-blocking is fine: close already applied everything, but
	// the terminal transition is asynchronous).
	var final jobs.StreamScores
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, data = env.do(t, "GET", "/api/v1/streams/"+snap.ID+"/scores", nil)
		if code != http.StatusOK {
			t.Fatalf("final scores: %d %s", code, data)
		}
		if err := json.Unmarshal(data, &final); err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never terminal: %+v", final.StreamSnapshot)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != jobs.StreamDone || final.Scores == nil {
		t.Fatalf("final: %+v", final.StreamSnapshot)
	}

	// Bit-identity: the streamed result equals a one-shot batch score of
	// the assembled measurement.
	want, err := metric.ScoreSuites(context.Background(),
		[]*perf.SuiteMeasurement{expected}, metric.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := final.Scores.Scores()
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("streamed scores diverge from batch:\n got %+v\nwant %+v", got, want)
	}

	// The final result is fetchable from the result store by stream key.
	code, data = env.do(t, "GET", "/api/v1/results/"+final.Key, nil)
	if code != http.StatusOK {
		t.Fatalf("stored result: %d %s", code, data)
	}
	var stored store.ScoreSet
	if err := json.Unmarshal(data, &stored); err != nil {
		t.Fatal(err)
	}
	if stored.Source != "stream" || stored.Suites[0] != final.Scores.Suites[0] {
		t.Fatalf("stored = %+v, want %+v", stored, *final.Scores)
	}

	// /metrics accounts for the stream.
	code, data = env.do(t, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(data)
	if v := metricValue(t, text, `perspectord_streams{state="done"}`); v != 1 {
		t.Fatalf("streams done = %g, want 1", v)
	}
	if v := metricValue(t, text, "perspectord_stream_chunks_total"); v != float64(len(chunks)) {
		t.Fatalf("chunks total = %g, want %d", v, len(chunks))
	}
	if v := metricValue(t, text, "perspectord_stream_rescore_seconds_count"); v < float64(len(chunks)) {
		t.Fatalf("rescore count = %g, want >= %d", v, len(chunks))
	}
	if !strings.Contains(text, "perspectord_stream_rescore_seconds_bucket{le=\"+Inf\"}") {
		t.Fatal("rescore histogram buckets missing")
	}

	// Appends to the sealed stream are 409; unknown streams are 404.
	if code, _ = env.do(t, "POST", "/api/v1/streams/"+snap.ID+"/chunks", chunks[0]); code != http.StatusConflict {
		t.Fatalf("append after close: %d, want 409", code)
	}
	if code, _ = env.do(t, "GET", "/api/v1/streams/s-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown stream: %d, want 404", code)
	}
	if code, _ = env.do(t, "POST", "/api/v1/streams", jobs.StreamOpenRequest{}); code != http.StatusBadRequest {
		t.Fatalf("bad open: %d, want 400", code)
	}

	// Listing shows the stream.
	code, data = env.do(t, "GET", "/api/v1/streams", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Streams []jobs.StreamSnapshot `json:"streams"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Streams) != 1 || list.Streams[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestStreamAPICancel covers DELETE: the stream lands in canceled and
// its slot frees for admission.
func TestStreamAPICancel(t *testing.T) {
	var sm *jobs.StreamManager
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(cfg *server.Config) {
		sm = jobs.NewStreamManager(jobs.StreamOptions{MaxStreams: 1, Log: discardLog()})
		cfg.Streams = sm
	})
	code, data := env.do(t, "POST", "/api/v1/streams", jobs.StreamOpenRequest{Suites: []string{"a"}})
	if code != http.StatusCreated {
		t.Fatalf("open: %d %s", code, data)
	}
	var snap jobs.StreamSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	// Admission bound: a second open while the first is live is 429.
	if code, _ = env.do(t, "POST", "/api/v1/streams", jobs.StreamOpenRequest{Suites: []string{"b"}}); code != http.StatusTooManyRequests {
		t.Fatalf("over-limit open: %d, want 429", code)
	}
	code, data = env.do(t, "DELETE", "/api/v1/streams/"+snap.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, data)
	}
	done, err := sm.Done(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled stream never finished")
	}
	if code, _ = env.do(t, "POST", "/api/v1/streams", jobs.StreamOpenRequest{Suites: []string{"b"}}); code != http.StatusCreated {
		t.Fatalf("open after cancel: %d, want 201", code)
	}
}
