package server

import "testing"

// TestPromLabelEscaping pins the exposition-format escaping contract:
// exactly backslash, double quote and newline are escaped; tabs and
// non-ASCII pass through raw (Go's %q, which this replaced, mangles
// both into escapes the format does not define).
func TestPromLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`a"b`, `"a\"b"`},
		{`a\b`, `"a\\b"`},
		{"a\nb", `"a\nb"`},
		{"a\tb", "\"a\tb\""},        // raw tab, NOT \t
		{"naïve-π", `"naïve-π"`},    // UTF-8 raw, NOT \u escapes
		{`\"`, `"\\\""`},            // compound: each char escaped once
		{"", `""`},
	}
	for _, tc := range cases {
		if got := promLabel(tc.in); got != tc.want {
			t.Errorf("promLabel(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}
