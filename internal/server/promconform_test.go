package server_test

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"perspector/internal/fleet"
	"perspector/internal/jobs"
	"perspector/internal/server"
)

// The exposition-format grammar, per the Prometheus text format spec.
var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseProm is a strict text-format parser: it decomposes every line of
// an exposition and fails the test on any deviation — unknown escape
// sequences, missing HELP/TYPE, series before their TYPE, bad metric or
// label names, unparseable values. It returns series name → label-set →
// value and name → declared type.
func parseProm(t *testing.T, body string) (map[string]map[string]float64, map[string]string) {
	t.Helper()
	series := make(map[string]map[string]float64)
	types := make(map[string]string)
	helped := make(map[string]bool)
	for ln, line := range strings.Split(body, "\n") {
		ln++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promMetricName.MatchString(name) {
				t.Fatalf("line %d: bad HELP %q", ln, line)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !promMetricName.MatchString(fields[0]) {
				t.Fatalf("line %d: bad TYPE %q", ln, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln, fields[1])
			}
			if !helped[fields[0]] {
				t.Fatalf("line %d: TYPE for %s without preceding HELP", ln, fields[0])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln, line)
		}
		name, labels, value := parsePromSeries(t, ln, line)
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			ft := types[base]
			if base != name && (ft == "histogram" || ft == "summary") {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: series %s has no preceding TYPE", ln, name)
		}
		if series[name] == nil {
			series[name] = make(map[string]float64)
		}
		if _, dup := series[name][labels]; dup {
			t.Fatalf("line %d: duplicate series %s{%s}", ln, name, labels)
		}
		series[name][labels] = value
	}
	return series, types
}

// parsePromSeries decomposes one sample line, validating label syntax
// and escape sequences character by character.
func parsePromSeries(t *testing.T, ln int, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
	}
	if nameEnd < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	}
	name = rest[:nameEnd]
	if !promMetricName.MatchString(name) {
		t.Fatalf("line %d: bad metric name %q", ln, name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end := parsePromLabels(t, ln, rest)
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// A value is a float, possibly +Inf/-Inf/NaN; no timestamp is used
	// in this exposition.
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	return name, labels, v
}

// parsePromLabels validates a {label="value",...} block starting at
// s[0] == '{' and returns the index just past the closing brace. Only
// \\, \" and \n escapes are legal inside a value.
func parsePromLabels(t *testing.T, ln int, s string) int {
	t.Helper()
	i := 1
	for {
		if i >= len(s) {
			t.Fatalf("line %d: unterminated label block", ln)
		}
		if s[i] == '}' {
			return i + 1
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			t.Fatalf("line %d: label without '=' in %q", ln, s[i:])
		}
		lname := s[i : i+eq]
		if !promLabelName.MatchString(lname) {
			t.Fatalf("line %d: bad label name %q", ln, lname)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("line %d: label %s value not quoted", ln, lname)
		}
		i++
		for {
			if i >= len(s) {
				t.Fatalf("line %d: unterminated label value for %s", ln, lname)
			}
			if s[i] == '"' {
				i++
				break
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					t.Fatalf("line %d: dangling backslash in label %s", ln, lname)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					t.Fatalf("line %d: illegal escape \\%c in label %s", ln, s[i+1], lname)
				}
				i += 2
				continue
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// TestMetricsPrometheusConformance scrapes the full live exposition —
// request counters, queue telemetry histograms, stream gauges and the
// coordinator's fleet view with a joined node — through the strict
// parser, then checks the histogram contract: cumulative le buckets
// ending in +Inf, with the +Inf bucket equal to _count.
func TestMetricsPrometheusConformance(t *testing.T) {
	var sm *jobs.StreamManager
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(cfg *server.Config) {
		sm = jobs.NewStreamManager(jobs.StreamOptions{Store: cfg.Store, Log: discardLog()})
		cfg.Streams = sm
		cfg.Coordinator = fleet.NewCoordinator(fleet.CoordinatorOptions{Log: discardLog()})
	})
	t.Cleanup(func() { sm.Drain(t.Context()) })

	// Execute one job so the span-fold histograms have samples, and join
	// one fleet node so the node-labeled gauges emit series.
	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	code, data = env.do(t, "POST", "/api/v1/fleet/join",
		fleet.JoinRequest{NodeID: "node-a", Capacity: 2})
	if code != http.StatusOK {
		t.Fatalf("join: %d %s", code, data)
	}

	_, body := env.do(t, "GET", "/metrics", nil)
	series, types := parseProm(t, string(body))

	// Every histogram family must expose cumulative buckets with +Inf,
	// and agree with its _count.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		buckets := series[fam+"_bucket"]
		counts := series[fam+"_count"]
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no _bucket series", fam)
			continue
		}
		// Group buckets by their non-le labels.
		type acc struct {
			inf   float64
			seen  bool
			count []float64
		}
		byGroup := make(map[string]*acc)
		for labels, v := range buckets {
			var le string
			var rest []string
			for _, part := range splitPromLabels(labels) {
				if strings.HasPrefix(part, "le=") {
					le = strings.Trim(strings.TrimPrefix(part, "le="), `"`)
				} else {
					rest = append(rest, part)
				}
			}
			key := strings.Join(rest, ",")
			a := byGroup[key]
			if a == nil {
				a = &acc{}
				byGroup[key] = a
			}
			if le == "+Inf" {
				a.inf, a.seen = v, true
			}
			a.count = append(a.count, v)
		}
		for key, a := range byGroup {
			if !a.seen {
				t.Errorf("histogram %s{%s} missing le=\"+Inf\"", fam, key)
				continue
			}
			for _, v := range a.count {
				if v > a.inf {
					t.Errorf("histogram %s{%s}: bucket %g exceeds +Inf %g (not cumulative)", fam, key, v, a.inf)
				}
			}
			if c, ok := counts[key]; !ok || c != a.inf {
				t.Errorf("histogram %s{%s}: +Inf %g != _count %v", fam, key, a.inf, counts[key])
			}
		}
	}

	// The fleet view must have emitted the node-labeled series.
	for _, name := range []string{"perspectord_fleet_node_pending", "perspectord_fleet_node_instr_per_sec"} {
		if len(series[name]) != 1 {
			t.Errorf("%s: want 1 node series, got %v", name, series[name])
		}
	}
	// Spot-check families that must always be present.
	for _, name := range []string{
		"perspectord_requests_total", "perspectord_jobs", "perspectord_streams",
		"perspectord_queue_wait_seconds", "perspectord_uptime_seconds",
	} {
		fam := strings.TrimSuffix(name, "_bucket")
		if _, ok := types[fam]; !ok {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
}

// splitPromLabels splits a rendered label block on commas that sit
// outside quoted values.
func splitPromLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i > 0 && labels[i-1] == '\\' {
				continue
			}
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}

// TestMetricsHostileLabelValues drives a label value containing every
// character class the escaper must handle through the real quota-
// rejection path and requires the exposition to stay parseable with the
// hostile tenant name intact.
func TestMetricsHostileLabelValues(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(cfg *server.Config) {
		cfg.Quota = fleet.NewTenantLimiter(0.001, 1)
	})
	hostile := `ten"ant\x` + "\twith\ttabs"
	submit := func() int {
		body, err := json.Marshal(scoreBody(3))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", env.ts.URL+"/api/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", hostile)
		resp, err := env.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Burn the quota, then force a 429 so the hostile tenant label lands
	// in the rejection counter.
	got429 := false
	for i := 0; i < 5; i++ {
		if submit() == http.StatusTooManyRequests {
			got429 = true
			break
		}
	}
	if !got429 {
		t.Fatal("quota never rejected; hostile label not exercised")
	}

	_, body := env.do(t, "GET", "/metrics", nil)
	series, _ := parseProm(t, string(body))
	found := false
	for labels := range series["perspectord_quota_rejections_total"] {
		if strings.Contains(labels, `ten\"ant\\x`) && strings.Contains(labels, "\twith\ttabs") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hostile tenant label not round-tripped: %v", series["perspectord_quota_rejections_total"])
	}
}
