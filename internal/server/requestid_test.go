package server_test

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"perspector/internal/jobs"
)

var ridShape = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// TestRequestIDEchoAndMint pins the X-Request-ID contract: a
// well-formed client ID is echoed back verbatim; a missing or malformed
// one is replaced by a freshly minted ID.
func TestRequestIDEchoAndMint(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)

	cases := []struct {
		name string
		sent string
		echo bool // server must echo sent verbatim
	}{
		{"client id echoed", "ci-run-42.abc", true},
		{"missing id minted", "", false},
		{"spaces rejected", "evil id", false},
		{"punctuation rejected", "bad!id{}", false},
		{"overlong rejected", strings.Repeat("x", 65), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("GET", env.ts.URL+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.sent != "" {
				req.Header["X-Request-Id"] = []string{tc.sent}
			}
			resp, err := env.ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			got := resp.Header.Get("X-Request-ID")
			if !ridShape.MatchString(got) {
				t.Fatalf("response X-Request-ID %q not a valid ID", got)
			}
			if tc.echo && got != tc.sent {
				t.Fatalf("sent %q, echoed %q", tc.sent, got)
			}
			if !tc.echo && got == tc.sent {
				t.Fatalf("malformed ID %q echoed back instead of replaced", tc.sent)
			}
		})
	}
}

// TestRequestIDAttachesToJob submits a job under a client request ID and
// requires the ID to surface in the job snapshot, where it joins the
// queue's log lines for cross-node stitching.
func TestRequestIDAttachesToJob(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)

	body, err := json.Marshal(scoreBody(7))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", env.ts.URL+"/api/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "stitch-me-123")
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var submitted struct {
		Job jobs.Snapshot `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	snap := submitted.Job
	if snap.RequestID != "stitch-me-123" {
		t.Fatalf("snapshot request_id = %q, want stitch-me-123", snap.RequestID)
	}

	// The ID persists on later snapshot reads, not just the submit echo.
	code, data := env.do(t, "GET", "/api/v1/jobs/"+snap.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get job: %d %s", code, data)
	}
	var again jobs.Snapshot
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if again.RequestID != "stitch-me-123" {
		t.Fatalf("stored snapshot request_id = %q", again.RequestID)
	}
}
