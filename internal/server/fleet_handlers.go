package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"perspector/internal/fleet"
)

// Fleet endpoints, mounted only when Config.Coordinator is set:
//
//	POST /api/v1/fleet/join       register a worker, returns peers + backfill
//	POST /api/v1/fleet/heartbeat  liveness + load report, returns rep delta
//	POST /api/v1/fleet/pull       long-poll for dispatches owned by the node
//	POST /api/v1/fleet/results    stream one finished dispatch back
//	POST /api/v1/fleet/leave      graceful departure
//	GET  /api/v1/fleet            fleet status (nodes, queue, replication)
//
// An unknown node gets 404 on heartbeat/pull/leave; the worker reacts
// by re-joining, which also resyncs its replica.

// maxFleetBodyBytes bounds fleet request bodies. Result pushes carry a
// full ScoreSet; everything else is small control traffic.
const maxFleetBodyBytes = 64 << 20

// decodeFleet decodes one fleet request body into v.
func (s *Server) decodeFleet(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxFleetBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding fleet request: %v", err)
		return false
	}
	return true
}

// writeFleetError maps coordinator errors to statuses: unknown node is
// the worker's cue to re-join.
func (s *Server) writeFleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fleet.ErrUnknownNode):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, fleet.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	var req fleet.JoinRequest
	if !s.decodeFleet(w, r, &req) {
		return
	}
	resp, err := s.cfg.Coordinator.Join(req)
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req fleet.HeartbeatRequest
	if !s.decodeFleet(w, r, &req) {
		return
	}
	resp, err := s.cfg.Coordinator.Heartbeat(req)
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetPull(w http.ResponseWriter, r *http.Request) {
	var req fleet.PullRequest
	if !s.decodeFleet(w, r, &req) {
		return
	}
	resp, err := s.cfg.Coordinator.Pull(r.Context(), req)
	if err != nil {
		s.writeFleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	var req fleet.ResultPush
	if !s.decodeFleet(w, r, &req) {
		return
	}
	if err := s.cfg.Coordinator.PushResult(req); err != nil {
		s.writeFleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	var req fleet.JoinRequest
	if !s.decodeFleet(w, r, &req) {
		return
	}
	if err := s.cfg.Coordinator.Leave(req.NodeID); err != nil {
		s.writeFleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.cfg.Coordinator.Status())
}

// writeFleetMetrics renders the coordinator's fleet view as Prometheus
// gauges, appended to the /metrics exposition on coordinator nodes.
func writeFleetMetrics(w io.Writer, st fleet.Status) {
	fmt.Fprintln(w, "# HELP perspectord_fleet_nodes Registered worker nodes.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_nodes gauge")
	fmt.Fprintf(w, "perspectord_fleet_nodes %d\n", len(st.Nodes))
	fmt.Fprintln(w, "# HELP perspectord_fleet_capacity Aggregate concurrent-dispatch capacity across workers.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_capacity gauge")
	fmt.Fprintf(w, "perspectord_fleet_capacity %d\n", st.Capacity)
	fmt.Fprintln(w, "# HELP perspectord_fleet_unrouted_dispatches Dispatches waiting for any worker to join.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_unrouted_dispatches gauge")
	fmt.Fprintf(w, "perspectord_fleet_unrouted_dispatches %d\n", st.Unrouted)
	fmt.Fprintln(w, "# HELP perspectord_fleet_replication_log_length Results appended to the replication log since start.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_replication_log_length counter")
	fmt.Fprintf(w, "perspectord_fleet_replication_log_length %d\n", st.RepLen)

	fmt.Fprintln(w, "# HELP perspectord_fleet_node_pending Dispatches queued for a node, by node.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_node_pending gauge")
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "perspectord_fleet_node_pending{node=%s} %d\n", promLabel(n.NodeID), n.Pending)
	}
	fmt.Fprintln(w, "# HELP perspectord_fleet_node_dispatched_total Dispatches delivered to a node, by node.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_node_dispatched_total counter")
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "perspectord_fleet_node_dispatched_total{node=%s} %d\n", promLabel(n.NodeID), n.Dispatched)
	}
	fmt.Fprintln(w, "# HELP perspectord_fleet_node_completed_total Results pushed back by a node, by node.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_node_completed_total counter")
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "perspectord_fleet_node_completed_total{node=%s} %d\n", promLabel(n.NodeID), n.Completed)
	}
	fmt.Fprintln(w, "# HELP perspectord_fleet_node_instr_per_sec A node's reported simulated-instruction throughput EWMA, by node.")
	fmt.Fprintln(w, "# TYPE perspectord_fleet_node_instr_per_sec gauge")
	for _, n := range st.Nodes {
		fmt.Fprintf(w, "perspectord_fleet_node_instr_per_sec{node=%s} %g\n", promLabel(n.NodeID), n.InstrPerSec)
	}
}
