package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/perfhist"
	"perspector/internal/server"
)

// histLine renders one history record as a JSONL line.
func histLine(t *testing.T, sha string, at time.Time, bench string, nsPerOp, instrPerSec float64) string {
	t.Helper()
	rec := perfhist.Record{
		GeneratedAt: at,
		GitSHA:      sha,
		GoVersion:   "go1.24",
		GOOS:        "linux",
		GOARCH:      "amd64",
		Benchmarks: []perfhist.Benchmark{{
			Name: bench, NsPerOp: nsPerOp, Iterations: 5,
			SimulatedInstrPerSec: instrPerSec,
		}},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func perfEnv(t *testing.T, histPath string) *testEnv {
	t.Helper()
	return newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(cfg *server.Config) {
		cfg.PerfHist = perfhist.NewService(histPath)
	})
}

func TestPerfEndpointsServeLiveTrends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.jsonl")
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	seed := histLine(t, "aaaa1111aaaa1111", base, "SimulateSuite", 150e6, 27e6) +
		histLine(t, "aaaa1111aaaa1111", base.Add(time.Minute), "SimulateSuite", 152e6, 26.6e6)
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	env := perfEnv(t, path)

	code, data := env.do(t, "GET", "/api/v1/perf/history", nil)
	if code != http.StatusOK {
		t.Fatalf("history: %d %s", code, data)
	}
	var hist struct {
		Path    string            `json:"path"`
		Skipped int               `json:"skipped"`
		Records []perfhist.Record `json:"records"`
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Records) != 2 || hist.Skipped != 0 || hist.Path != path {
		t.Fatalf("history body: %+v", hist)
	}

	code, data = env.do(t, "GET", "/api/v1/perf/trends", nil)
	if code != http.StatusOK {
		t.Fatalf("trends: %d %s", code, data)
	}
	var trends struct {
		Records    int              `json:"records"`
		Latest     *json.RawMessage `json:"latest"`
		Benchmarks []perfhist.Trend `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &trends); err != nil {
		t.Fatal(err)
	}
	if trends.Records != 2 || len(trends.Benchmarks) != 1 || trends.Latest == nil {
		t.Fatalf("trends body: %s", data)
	}
	tr := trends.Benchmarks[0]
	if tr.Name != "SimulateSuite" || len(tr.Points) != 1 || tr.Points[0].Runs != 2 {
		t.Fatalf("trend shape: %+v", tr)
	}

	// Append a slower run at a new SHA — the service must serve it live
	// (no restart) and the new point's delta must flag the regression.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		line := histLine(t, "bbbb2222bbbb2222", base.Add(time.Hour+time.Duration(i)*time.Minute),
			"SimulateSuite", 260e6, 15.5e6)
		if _, err := f.WriteString(line); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	code, data = env.do(t, "GET", "/api/v1/perf/trends?goos=linux&goarch=amd64", nil)
	if code != http.StatusOK {
		t.Fatalf("trends after append: %d %s", code, data)
	}
	if err := json.Unmarshal(data, &trends); err != nil {
		t.Fatal(err)
	}
	if trends.Records != 4 || len(trends.Benchmarks) != 1 {
		t.Fatalf("reload missed the append: %s", data)
	}
	tr = trends.Benchmarks[0]
	if len(tr.Points) != 2 {
		t.Fatalf("want 2 trend points, got %+v", tr)
	}
	if tr.Delta == nil || !tr.Delta.Regressed {
		t.Fatalf("70%% slowdown across SHAs not flagged: %+v", tr.Delta)
	}

	// A foreign machine class filters to nothing.
	code, data = env.do(t, "GET", "/api/v1/perf/trends?goos=plan9&goarch=mips", nil)
	if code != http.StatusOK {
		t.Fatalf("foreign class: %d %s", code, data)
	}
	if err := json.Unmarshal(data, &trends); err != nil {
		t.Fatal(err)
	}
	if len(trends.Benchmarks) != 0 {
		t.Fatalf("foreign class leaked trends: %s", data)
	}
}

func TestPerfTrendsSurfacesCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.jsonl")
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	// One good record, then a torn tail.
	raw := histLine(t, "aaa", base, "B", 100, 0) + `{"generated_at":"2026-08-0`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	env := perfEnv(t, path)
	code, data := env.do(t, "GET", "/api/v1/perf/trends", nil)
	if code != http.StatusOK {
		t.Fatalf("trends: %d %s", code, data)
	}
	var trends struct {
		Records int `json:"records"`
		Skipped int `json:"skipped"`
	}
	if err := json.Unmarshal(data, &trends); err != nil {
		t.Fatal(err)
	}
	if trends.Records != 1 || trends.Skipped != 1 {
		t.Fatalf("corruption not surfaced: %s", data)
	}
}

func TestPerfDashboardServesHTML(t *testing.T) {
	env := perfEnv(t, filepath.Join(t.TempDir(), "missing.jsonl"))
	code, data := env.do(t, "GET", "/perf", nil)
	if code != http.StatusOK {
		t.Fatalf("dashboard: %d", code)
	}
	body := string(data)
	if !strings.Contains(body, "<!DOCTYPE html>") ||
		!strings.Contains(body, "/api/v1/perf/trends") {
		t.Fatalf("dashboard body unexpected: %.200s", body)
	}
	// The trends API over a missing history serves an empty, valid body
	// (the dashboard's "no history yet" state), not an error.
	code, data = env.do(t, "GET", "/api/v1/perf/trends", nil)
	if code != http.StatusOK {
		t.Fatalf("trends without history: %d %s", code, data)
	}
	var trends struct {
		Benchmarks []perfhist.Trend `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &trends); err != nil {
		t.Fatal(err)
	}
	if trends.Benchmarks == nil || len(trends.Benchmarks) != 0 {
		t.Fatalf("want empty benchmarks array, got %s", data)
	}
}

func TestPerfRoutesAbsentWithoutService(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	for _, path := range []string{"/perf", "/api/v1/perf/history", "/api/v1/perf/trends"} {
		code, _ := env.do(t, "GET", path, nil)
		if code != http.StatusNotFound {
			t.Fatalf("%s without PerfHist: %d, want 404", path, code)
		}
	}
}

// TestPerfEndpointsNoGoroutineLeak hammers the perf endpoints across
// repeated server lifecycles and requires the goroutine count to settle
// back to baseline — the new handlers must not spawn watchers or leave
// request goroutines behind.
func TestPerfEndpointsNoGoroutineLeak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.jsonl")
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		sb.WriteString(histLine(t, "aaa", base.Add(time.Duration(i)*time.Minute), "B", 100+float64(i), 1e6))
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		q := jobs.New(stubRunner{}.run, jobs.Options{Workers: 1, Log: discardLog()})
		ts := httptest.NewServer(server.New(server.Config{
			Queue:    q,
			Log:      discardLog(),
			PerfHist: perfhist.NewService(path),
		}).Handler())
		for _, p := range []string{"/perf", "/api/v1/perf/history", "/api/v1/perf/trends"} {
			resp, err := ts.Client().Get(ts.URL + p)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: %d", p, resp.StatusCode)
			}
			resp.Body.Close()
		}
		ts.Close()
		q.Drain(t.Context())
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
