package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"perspector"
	"perspector/internal/cache"
	"perspector/internal/jobs"
	"perspector/internal/metric"
	"perspector/internal/server"
	"perspector/internal/store"
	"perspector/internal/suites"
)

// e2eConfig is a scaled-down determinism config: small enough to run in
// test time, large enough that every scoring path is exercised.
func e2eConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	cfg.Seed = 2023
	return cfg
}

func discardLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// waitResult long-polls the result endpoint until the job is terminal
// and decodes the ScoreSet.
func waitResult(t *testing.T, env *testEnv, id string) store.ScoreSet {
	t.Helper()
	code, data := env.do(t, "GET", "/api/v1/jobs/"+id+"/result?wait=1", nil)
	if code != http.StatusOK {
		t.Fatalf("result for %s: %d %s", id, code, data)
	}
	var set store.ScoreSet
	if err := json.Unmarshal(data, &set); err != nil {
		t.Fatal(err)
	}
	return set
}

func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metrics exposition lacks %s:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEndToEndScoresMatchDirectEngine is the acceptance test for the
// daemon: jobs submitted over HTTP — a stock-suite score, uploaded
// JSON/CSV traces, a two-suite compare, and a replayed resubmission —
// must return bit-identical scores to calling ScoreContext /
// CompareContext directly, and /metrics must account for all of it.
func TestEndToEndScoresMatchDirectEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := e2eConfig()

	cacheStore, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	resultStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.EngineRunner(cacheStore), jobs.Options{Workers: 1, Store: resultStore, Log: discardLog()})
	ts := httptest.NewServer(server.New(server.Config{
		Queue: q,
		Store: resultStore,
		Cache: cacheStore,
		Log:   discardLog(),
	}).Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Drain(ctx)
		resultStore.Close()
	}()
	env := &testEnv{ts: ts, q: q, st: resultStore}

	// Reference scores straight through the public library API — the
	// path the CLI takes, with no daemon, queue or cache involved.
	ctx := context.Background()
	opts := perspector.DefaultOptions()
	nbSuite, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	lmSuite, err := perspector.SuiteByName("lmbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	nbM, err := perspector.MeasureContext(ctx, nbSuite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lmM, err := perspector.MeasureContext(ctx, lmSuite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantScore, err := perspector.ScoreContext(ctx, nbM, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantCompare, err := perspector.CompareContext(ctx, []*perspector.Measurement{nbM, lmM}, opts)
	if err != nil {
		t.Fatal(err)
	}

	reqCfg := map[string]any{"instructions": cfg.Instructions, "samples": cfg.Samples, "seed": cfg.Seed}
	submit := func(body map[string]any) jobs.Snapshot {
		t.Helper()
		code, data := env.do(t, "POST", "/api/v1/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, data)
		}
		var sub submitResp
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		return sub.Job
	}

	// (a) Stock-suite score job.
	scoreJob := submit(map[string]any{"kind": "score", "suites": []string{"nbench"}, "config": reqCfg})
	scoreSet := waitResult(t, env, scoreJob.ID)
	if scoreSet.Kind != store.KindScore || scoreSet.Source != "simulator" || scoreSet.Group != "all" {
		t.Fatalf("score ScoreSet envelope: %+v", scoreSet)
	}
	if got := scoreSet.Scores(); len(got) != 1 || got[0] != wantScore {
		t.Fatalf("HTTP score diverges from ScoreContext:\n got %x\nwant %x", got, wantScore)
	}

	// (b) Uploaded JSON trace (totals + series) of the same measurement.
	var jsonTrace bytes.Buffer
	if err := perspector.ExportJSON(&jsonTrace, nbM); err != nil {
		t.Fatal(err)
	}
	traceJob := submit(map[string]any{
		"kind":  "score",
		"trace": map[string]any{"format": "json", "name": "nbench", "data": jsonTrace.Bytes()},
	})
	traceSet := waitResult(t, env, traceJob.ID)
	if traceSet.Source != "trace" {
		t.Fatalf("trace ScoreSet envelope: %+v", traceSet)
	}
	if got := traceSet.Scores(); len(got) != 1 || got[0] != wantScore {
		t.Fatalf("uploaded-trace score diverges from ScoreContext:\n got %x\nwant %x", got, wantScore)
	}

	// (b') Uploaded CSV trace: totals only, so the trend metric is
	// skipped — compare against scoring the re-imported matrix directly.
	allCounters, err := perspector.EventGroup("all")
	if err != nil {
		t.Fatal(err)
	}
	var csvTrace bytes.Buffer
	if err := perspector.ExportCSV(&csvTrace, nbM, allCounters); err != nil {
		t.Fatal(err)
	}
	imported, err := perspector.ImportCSV(bytes.NewReader(csvTrace.Bytes()), "nbench")
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := metric.ScoreSuite(ctx, imported, metric.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if wantCSV.Trend != 0 {
		t.Fatalf("totals-only reference unexpectedly has a trend score: %+v", wantCSV)
	}
	csvJob := submit(map[string]any{
		"kind":  "score",
		"trace": map[string]any{"format": "csv", "name": "nbench", "data": csvTrace.Bytes()},
	})
	csvSet := waitResult(t, env, csvJob.ID)
	if got := csvSet.Scores(); len(got) != 1 || got[0] != wantCSV {
		t.Fatalf("uploaded-CSV score diverges from direct engine:\n got %x\nwant %x", got, wantCSV)
	}

	// (c) Compare job over two suites. nbench was measured by job (a),
	// so this job must hit the cache for it and still match exactly.
	compareJob := submit(map[string]any{"kind": "compare", "suites": []string{"nbench", "lmbench"}, "config": reqCfg})
	compareSet := waitResult(t, env, compareJob.ID)
	if compareSet.Kind != store.KindCompare {
		t.Fatalf("compare ScoreSet envelope: %+v", compareSet)
	}
	if got := compareSet.Scores(); len(got) != 2 || got[0] != wantCompare[0] || got[1] != wantCompare[1] {
		t.Fatalf("HTTP compare diverges from CompareContext:\n got %x\nwant %x", got, wantCompare)
	}

	// (d) Resubmitting the finished score job replays from the durable
	// store: same scores, no new simulation.
	replayJob := submit(map[string]any{"kind": "score", "suites": []string{"nbench"}, "config": reqCfg})
	replaySet := waitResult(t, env, replayJob.ID)
	if got := replaySet.Scores(); len(got) != 1 || got[0] != wantScore {
		t.Fatalf("replayed score diverges:\n got %x\nwant %x", got, wantScore)
	}
	code, data := env.do(t, "GET", "/api/v1/jobs/"+replayJob.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("replay snapshot: %d", code)
	}
	var replaySnap jobs.Snapshot
	if err := json.Unmarshal(data, &replaySnap); err != nil {
		t.Fatal(err)
	}
	if !replaySnap.Replayed {
		t.Fatalf("resubmission of a stored result was not replayed: %+v", replaySnap)
	}

	// The exposition accounts for all five jobs: instructions retired
	// only by the three real simulations (trace uploads and the replay
	// retire nothing, the compare job's nbench measurement was a cache
	// hit), four distinct stored documents, one cache hit in three
	// lookups.
	_, body := env.do(t, "GET", "/metrics", nil)
	text := string(body)
	if got := metricValue(t, text, `perspectord_jobs{state="done"}`); got != 5 {
		t.Errorf("done jobs metric = %v, want 5", got)
	}
	wantRetired := float64(cfg.Instructions) * float64(len(nbM.Workloads)+len(lmM.Workloads))
	if got := metricValue(t, text, "perspectord_instructions_retired_total"); got != wantRetired {
		t.Errorf("instructions retired = %v, want %v", got, wantRetired)
	}
	if got := metricValue(t, text, "perspectord_results_stored"); got != 4 {
		t.Errorf("results stored = %v, want 4", got)
	}
	if got := metricValue(t, text, "perspectord_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}
	if got := metricValue(t, text, "perspectord_cache_misses_total"); got != 2 {
		t.Errorf("cache misses = %v, want 2", got)
	}
}

// TestServerShutdownDrainsWithoutGoroutineLeak repeatedly stands up the
// full stack, submits a job far too slow to finish, and tears the stack
// down with a short drain deadline — mirroring the SIGTERM path of cmd/
// perspectord. The goroutine count must settle back to the baseline.
func TestServerShutdownDrainsWithoutGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// Warm up the engine's long-lived worker pool so it is part of the
	// baseline (same pattern as internal/suites/cancel_test.go).
	cfg := e2eConfig()
	s, err := suites.ByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := suites.RunContext(context.Background(), s, cfg); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		q := jobs.New(jobs.EngineRunner(nil), jobs.Options{Workers: 2, Log: discardLog()})
		ts := httptest.NewServer(server.New(server.Config{Queue: q, Log: discardLog()}).Handler())
		body := fmt.Sprintf(`{"kind":"score","suites":["parsec"],"config":{"instructions":200000000,"samples":100,"seed":%d}}`, i+1)
		resp, err := ts.Client().Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
		dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		q.Drain(dctx) // deadline exceeded is expected: the job is forced out
		cancel()
		ts.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestEndToEndInlineSuiteSpec submits a user-authored suite spec inline
// in the request body and pins that the daemon scores it bit-identically
// to building the same spec and scoring it through the library API, that
// its job key differs from a registered-suite request, and that a
// malformed spec is rejected with a 400 before a job exists.
func TestEndToEndInlineSuiteSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := e2eConfig()
	specText := []byte(`{
  "version": 1,
  "name": "custom",
  "description": "user-authored e2e suite",
  "workloads": [
    {
      "name": "custom.scan",
      "phases": [
        {
          "name": "scan",
          "weight": 1,
          "load_frac": 0.4,
          "load_pattern": {"kind": "sequential", "working_set": 1048576, "stride": 64}
        }
      ]
    },
    {
      "name": "custom.chase",
      "phases": [
        {
          "name": "chase",
          "weight": 1,
          "load_frac": 0.5,
          "load_pattern": {"kind": "pointer_chase", "working_set": 262144}
        }
      ]
    }
  ]
}`)

	// Reference: decode, build and score the same spec directly.
	sp, err := suites.UnmarshalSuiteSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := sp.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := perspector.MeasureContext(ctx, suite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := perspector.ScoreContext(ctx, m, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	env := newEnv(t, jobs.EngineRunner(nil), jobs.Options{Workers: 1, Log: discardLog()}, nil)
	reqCfg := map[string]any{"instructions": cfg.Instructions, "samples": cfg.Samples, "seed": cfg.Seed}

	code, data := env.do(t, "POST", "/api/v1/jobs", map[string]any{
		"kind":       "score",
		"suite_spec": json.RawMessage(specText),
		"config":     reqCfg,
	})
	if code != http.StatusAccepted {
		t.Fatalf("inline-spec submit: %d %s", code, data)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	set := waitResult(t, env, sub.Job.ID)
	if set.Source != "simulator" {
		t.Fatalf("inline-spec ScoreSet envelope: %+v", set)
	}
	got := set.Scores()
	if len(got) != 1 || got[0].Suite != "custom" {
		t.Fatalf("inline-spec scores: %+v", got)
	}
	if got[0] != want {
		t.Fatalf("inline-spec score diverges from direct engine:\n got %x\nwant %x", got[0], want)
	}

	// The inline-spec job must not collide with a registered-suite job
	// under the same config.
	code, data = env.do(t, "POST", "/api/v1/jobs", map[string]any{
		"kind": "score", "suites": []string{"nbench"}, "config": reqCfg,
	})
	if code != http.StatusAccepted {
		t.Fatalf("nbench submit: %d %s", code, data)
	}
	var other submitResp
	if err := json.Unmarshal(data, &other); err != nil {
		t.Fatal(err)
	}
	if other.Deduped || other.Job.ID == sub.Job.ID {
		t.Fatalf("registered-suite request collided with inline-spec job: %+v", other.Job)
	}
	waitResult(t, env, other.Job.ID)

	// A malformed spec never becomes a job.
	code, data = env.do(t, "POST", "/api/v1/jobs", map[string]any{
		"kind":       "score",
		"suite_spec": json.RawMessage(`{"version":1,"name":"x","workloads":[]}`),
		"config":     reqCfg,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed spec submit = %d %s, want 400", code, data)
	}
}
