package server

import (
	_ "embed"
	"net/http"

	"perspector/internal/perfhist"
)

// perfDashboardHTML is the zero-dependency /perf page: inline CSS and
// JS, SVG sparklines drawn client-side from /api/v1/perf/trends. No
// external scripts, fonts or build step — the dashboard works on an
// air-gapped runner.
//
//go:embed perfhist.html
var perfDashboardHTML []byte

// perfLatest is the build metadata of the newest history record,
// surfaced so the dashboard can say what commit the trailing point is.
type perfLatest struct {
	GeneratedAt string `json:"generated_at"`
	GitSHA      string `json:"git_sha,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
}

// perfTrendsResponse is the /api/v1/perf/trends body.
type perfTrendsResponse struct {
	Path    string `json:"path"`
	Records int    `json:"records"`
	// Skipped counts history lines that did not decode (torn tail,
	// hand edits) — surfaced, not hidden.
	Skipped int `json:"skipped"`
	// Class is the machine-class filter applied; zero means all
	// classes folded together (display only — cross-class ns/op is not
	// comparable, which is why the gates never do this).
	Class      perfhist.Class   `json:"class"`
	Latest     *perfLatest      `json:"latest,omitempty"`
	Benchmarks []perfhist.Trend `json:"benchmarks"`
}

// handlePerfHistory serves the raw ingested records.
func (s *Server) handlePerfHistory(w http.ResponseWriter, r *http.Request) {
	h, err := s.cfg.PerfHist.History(r.Context())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "loading perf history: %v", err)
		return
	}
	records := h.Records
	if records == nil {
		records = []perfhist.Record{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"path":    s.cfg.PerfHist.Path(),
		"skipped": h.Skipped,
		"records": records,
	})
}

// handlePerfTrends serves per-benchmark trend statistics. ?goos= and
// ?goarch= filter to one machine class; without them every class folds
// into one display trajectory.
func (s *Server) handlePerfTrends(w http.ResponseWriter, r *http.Request) {
	h, err := s.cfg.PerfHist.History(r.Context())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "loading perf history: %v", err)
		return
	}
	class := perfhist.Class{
		GOOS:   r.URL.Query().Get("goos"),
		GOARCH: r.URL.Query().Get("goarch"),
	}
	resp := perfTrendsResponse{
		Path:       s.cfg.PerfHist.Path(),
		Records:    len(h.Records),
		Skipped:    h.Skipped,
		Class:      class,
		Benchmarks: h.Trends(r.Context(), class),
	}
	if resp.Benchmarks == nil {
		resp.Benchmarks = []perfhist.Trend{}
	}
	if n := len(h.Records); n > 0 {
		last := h.Records[n-1]
		resp.Latest = &perfLatest{
			GeneratedAt: last.GeneratedAt.UTC().Format("2006-01-02T15:04:05Z"),
			GitSHA:      last.GitSHA,
			GoVersion:   last.GoVersion,
			GOOS:        last.GOOS,
			GOARCH:      last.GOARCH,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePerfDashboard serves the embedded HTML dashboard.
func (s *Server) handlePerfDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(perfDashboardHTML)
}
