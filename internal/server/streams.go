package server

// Streaming-score endpoints: transport over jobs.StreamManager. A client
// opens a stream naming the suites it will feed, POSTs measurement
// chunks as workloads execute, and long-polls the evolving ScoreSet;
// closing seals the stream and persists the final result under its
// content-addressed key. Status mapping follows the job endpoints:
// admission limits are 429, draining is 503, appends to a sealed stream
// are 409.
//
//	POST   /api/v1/streams                    open a stream (201)
//	GET    /api/v1/streams                    list streams, oldest first
//	GET    /api/v1/streams/{id}               poll one stream
//	POST   /api/v1/streams/{id}/chunks        append one measurement chunk
//	GET    /api/v1/streams/{id}/scores        latest scores; ?since=N&wait=1
//	                                          long-polls past version N
//	POST   /api/v1/streams/{id}/close         seal; final scores persist
//	DELETE /api/v1/streams/{id}               cancel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"perspector/internal/jobs"
)

// maxChunkBodyBytes bounds one chunk upload; far above any sane
// increment but small enough that a runaway client cannot balloon the
// heap before validation rejects the chunk.
const maxChunkBodyBytes = 8 << 20

// streamError maps stream-layer errors onto HTTP statuses.
func (s *Server) streamError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrStreamNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrStreamClosed):
		code = http.StatusConflict
	case errors.Is(err, jobs.ErrStreamLimit), errors.Is(err, jobs.ErrStreamBacklog):
		code = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining):
		code = http.StatusServiceUnavailable
	}
	s.writeError(w, code, "%v", err)
}

// streamQuota applies the per-tenant token bucket shared with job
// submission; streams and chunk appends draw from the same budget.
func (s *Server) streamQuota(w http.ResponseWriter, r *http.Request) bool {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if ok, retry := s.cfg.Quota.Allow(tenant); !ok {
		s.metrics.ObserveQuotaRejection(tenant)
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		s.writeError(w, http.StatusTooManyRequests, "tenant %q is over its submission quota", tenant)
		return false
	}
	return true
}

func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleOpenStream(w http.ResponseWriter, r *http.Request) {
	if !s.streamQuota(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxChunkBodyBytes)
	var req jobs.StreamOpenRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	snap, err := s.cfg.Streams.Open(req)
	if err != nil {
		s.streamError(w, err)
		return
	}
	w.Header().Set("Location", "/api/v1/streams/"+snap.ID)
	s.writeJSON(w, http.StatusCreated, snap)
}

func (s *Server) handleListStreams(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"streams": s.cfg.Streams.List()})
}

func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request) {
	snap, err := s.cfg.Streams.Get(r.PathValue("id"))
	if err != nil {
		s.streamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	if !s.streamQuota(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxChunkBodyBytes)
	var chunk jobs.StreamChunk
	if err := decodeStrict(r.Body, &chunk); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding chunk: %v", err)
		return
	}
	snap, err := s.cfg.Streams.Append(r.PathValue("id"), chunk)
	if err != nil {
		s.streamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleStreamScores(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	// Non-blocking by default: since=-1 returns the current state even
	// before the first published version. With wait=1 the call parks
	// until the published version exceeds since (or the stream ends, or
	// the client gives up) — the tail-follow loop is
	// "?since=<last Seq>&wait=1" repeated.
	since := int64(-1)
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad since %q: %v", v, err)
			return
		}
		since = n
	}
	if wait := q.Get("wait"); !(wait == "1" || wait == "true") {
		since = -1
	} else if since < 0 {
		since = 0
	}
	sc, err := s.cfg.Streams.Scores(r.Context(), id, since)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			s.writeError(w, http.StatusServiceUnavailable, "client disconnected while waiting")
			return
		}
		s.streamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, sc)
}

func (s *Server) handleCloseStream(w http.ResponseWriter, r *http.Request) {
	snap, err := s.cfg.Streams.Close(r.PathValue("id"))
	if err != nil {
		s.streamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCancelStream(w http.ResponseWriter, r *http.Request) {
	snap, err := s.cfg.Streams.Cancel(r.PathValue("id"))
	if err != nil {
		s.streamError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// writeStreamMetrics renders the streaming gauges and the rescore
// latency histogram, read live from the manager at exposition time.
func writeStreamMetrics(w io.Writer, tel jobs.StreamTelemetry) {
	fmt.Fprintln(w, "# HELP perspectord_streams Streams by lifecycle state.")
	fmt.Fprintln(w, "# TYPE perspectord_streams gauge")
	for _, state := range jobs.StreamStates() {
		fmt.Fprintf(w, "perspectord_streams{state=%s} %d\n", promLabel(string(state)), tel.States[state])
	}
	fmt.Fprintln(w, "# HELP perspectord_streams_active Streams not yet terminal.")
	fmt.Fprintln(w, "# TYPE perspectord_streams_active gauge")
	fmt.Fprintf(w, "perspectord_streams_active %d\n", tel.Active)
	fmt.Fprintln(w, "# HELP perspectord_stream_chunks_total Measurement chunks accepted into streams.")
	fmt.Fprintln(w, "# TYPE perspectord_stream_chunks_total counter")
	fmt.Fprintf(w, "perspectord_stream_chunks_total %d\n", tel.ChunksTotal)
	fmt.Fprintln(w, "# HELP perspectord_stream_rejections_total Stream opens and chunks refused for admission limits.")
	fmt.Fprintln(w, "# TYPE perspectord_stream_rejections_total counter")
	fmt.Fprintf(w, "perspectord_stream_rejections_total %d\n", tel.Rejected)
	fmt.Fprintln(w, "# HELP perspectord_stream_rescore_seconds Incremental rescore latency per applied chunk batch.")
	fmt.Fprintln(w, "# TYPE perspectord_stream_rescore_seconds histogram")
	writeHistogram(w, "perspectord_stream_rescore_seconds", "", tel.Rescores)
}
