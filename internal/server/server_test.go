package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perspector/internal/jobs"
	"perspector/internal/metric"
	"perspector/internal/server"
	"perspector/internal/store"
)

// stubRunner completes instantly unless told to block or fail.
type stubRunner struct {
	block chan struct{} // nil: don't block
	fail  error
}

func (s stubRunner) run(ctx context.Context, h *jobs.Handle) (store.ScoreSet, error) {
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return store.ScoreSet{}, ctx.Err()
		}
	}
	if s.fail != nil {
		return store.ScoreSet{}, s.fail
	}
	return store.New(store.KindScore, "all", "simulator",
		&store.RunConfig{Instructions: 1000, Samples: 10, Seed: 1},
		[]metric.Scores{{Suite: h.Request().Suites[0], Cluster: 0.5}}), nil
}

type testEnv struct {
	ts *httptest.Server
	q  *jobs.Queue
	st *store.Store
}

func newEnv(t *testing.T, run jobs.Runner, opt jobs.Options, mutate func(*server.Config)) *testEnv {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt.Store = st
	q := jobs.New(run, opt)
	cfg := server.Config{Queue: q, Store: st}
	if mutate != nil {
		mutate(&cfg)
	}
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
		st.Close()
	})
	return &testEnv{ts: ts, q: q, st: st}
}

func (e *testEnv) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

type submitResp struct {
	Job     jobs.Snapshot `json:"job"`
	Deduped bool          `json:"deduped"`
}

func scoreBody(seed uint64) map[string]any {
	return map[string]any{
		"kind":   "score",
		"suites": []string{"nbench"},
		"config": map[string]any{"instructions": 1000, "samples": 10, "seed": seed},
	}
}

func TestSubmitPollCancelLifecycle(t *testing.T) {
	block := make(chan struct{})
	env := newEnv(t, stubRunner{block: block}.run, jobs.Options{Workers: 1}, nil)

	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Deduped || sub.Job.ID == "" || sub.Job.Key == "" {
		t.Fatalf("submit response: %+v", sub)
	}

	// Identical submission while in flight: deduplicated, HTTP 200.
	code, data = env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusOK {
		t.Fatalf("dup submit: %d %s", code, data)
	}
	var dup submitResp
	if err := json.Unmarshal(data, &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.Job.ID != sub.Job.ID {
		t.Fatalf("dup response: %+v", dup)
	}

	// Poll: running, no result yet (202 from the result endpoint).
	code, data = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("poll: %d %s", code, data)
	}
	code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result", nil)
	if code != http.StatusAccepted {
		t.Fatalf("early result fetch: %d, want 202", code)
	}

	// A second, queued job can be cancelled via the API.
	code, data = env.do(t, "POST", "/api/v1/jobs", scoreBody(2))
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, data)
	}
	var queued submitResp
	if err := json.Unmarshal(data, &queued); err != nil {
		t.Fatal(err)
	}
	code, data = env.do(t, "DELETE", "/api/v1/jobs/"+queued.Job.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, data)
	}
	var canceled jobs.Snapshot
	if err := json.Unmarshal(data, &canceled); err != nil {
		t.Fatal(err)
	}
	if canceled.State != jobs.StateCanceled {
		t.Fatalf("cancel left state %s", canceled.State)
	}

	// Release the first job and long-poll its result.
	close(block)
	code, data = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil)
	if code != http.StatusOK {
		t.Fatalf("result wait: %d %s", code, data)
	}
	var set store.ScoreSet
	if err := json.Unmarshal(data, &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Suites) != 1 || set.Suites[0].Suite != "nbench" {
		t.Fatalf("result: %+v", set)
	}

	// The completed result is also in the durable store endpoints.
	code, data = env.do(t, "GET", "/api/v1/results", nil)
	if code != http.StatusOK {
		t.Fatalf("results list: %d %s", code, data)
	}
	var list struct {
		Results []store.Summary `json:"results"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Results) != 1 || list.Results[0].Key != sub.Job.Key {
		t.Fatalf("results list: %+v", list.Results)
	}
	code, _ = env.do(t, "GET", "/api/v1/results/"+sub.Job.Key, nil)
	if code != http.StatusOK {
		t.Fatalf("result by key: %d", code)
	}

	// Job listing shows all three jobs.
	code, data = env.do(t, "GET", "/api/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("jobs list: %d", code)
	}
	var jl struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := json.Unmarshal(data, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 2 {
		t.Fatalf("job list has %d entries, want 2: %+v", len(jl.Jobs), jl.Jobs)
	}
}

func TestStatusMapping(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	env := newEnv(t, stubRunner{block: block}.run, jobs.Options{Workers: 1, MaxQueue: 1}, nil)

	// Unknown job: 404 everywhere.
	for _, path := range []string{"/api/v1/jobs/j-404", "/api/v1/jobs/j-404/result"} {
		if code, _ := env.do(t, "GET", path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := env.do(t, "DELETE", "/api/v1/jobs/j-404", nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", code)
	}
	if code, _ := env.do(t, "GET", "/api/v1/results/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown result = %d, want 404", code)
	}

	// Malformed and invalid bodies: 400.
	req, _ := http.NewRequest("POST", env.ts.URL+"/api/v1/jobs", strings.NewReader("{not json"))
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", map[string]any{"kind": "score", "suites": []string{"nosuch"}}); code != http.StatusBadRequest {
		t.Errorf("unknown suite = %d, want 400", code)
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", map[string]any{"kind": "score", "surprise": 1}); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", map[string]any{
		"kind": "score", "trace": map[string]any{"format": "csv", "data": []byte("not,a,header\n")},
	}); code != http.StatusBadRequest {
		t.Errorf("unparseable trace = %d, want 400", code)
	}

	// Queue overflow: one running, one queued (MaxQueue=1), next is 429.
	if code, _ := env.do(t, "POST", "/api/v1/jobs", scoreBody(1)); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", scoreBody(2)); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", scoreBody(3)); code != http.StatusTooManyRequests {
		t.Errorf("overflow submit = %d, want 429", code)
	}
}

func TestFailedJobResultCarriesStageTag(t *testing.T) {
	failure := fmt.Errorf("boom")
	env := newEnv(t, stubRunner{fail: failure}.run, jobs.Options{Workers: 1}, nil)
	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	code, data = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil)
	if code != http.StatusConflict {
		t.Fatalf("failed job result = %d %s, want 409", code, data)
	}
	var body struct {
		Error string         `json:"error"`
		Job   *jobs.Snapshot `json:"job"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "boom") || body.Job == nil || body.Job.State != jobs.StateFailed {
		t.Fatalf("failure body: %s", data)
	}
}

func TestDrainingSubmitReturns503(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := env.q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := env.do(t, "POST", "/api/v1/jobs", scoreBody(1)); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}
}

func TestSuitesAndHealthz(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	code, data := env.do(t, "GET", "/api/v1/suites", nil)
	if code != http.StatusOK {
		t.Fatalf("suites: %d", code)
	}
	var body struct {
		Suites []struct {
			Name      string   `json:"name"`
			Workloads []string `json:"workloads"`
		} `json:"suites"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Suites) != 8 {
		t.Fatalf("listed %d registered suites, want 8 (stock six + bigdatabench + cpu2026)", len(body.Suites))
	}
	names := make(map[string]bool, len(body.Suites))
	for _, s := range body.Suites {
		names[s.Name] = true
		if len(s.Workloads) == 0 {
			t.Fatalf("suite %s has no workloads", s.Name)
		}
	}
	for _, want := range []string{"nbench", "spec17", "bigdatabench", "cpu2026"} {
		if !names[want] {
			t.Errorf("suite listing lacks %q", want)
		}
	}
	if code, _ := env.do(t, "GET", "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}

func TestPprofGating(t *testing.T) {
	off := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	if code, _ := off.do(t, "GET", "/debug/pprof/", nil); code != http.StatusNotFound {
		t.Errorf("pprof without flag = %d, want 404", code)
	}
	on := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, func(c *server.Config) { c.EnablePprof = true })
	if code, _ := on.do(t, "GET", "/debug/pprof/", nil); code != http.StatusOK {
		t.Errorf("pprof with flag = %d, want 200", code)
	}
}

func TestMetricsExposition(t *testing.T) {
	env := newEnv(t, stubRunner{}.run, jobs.Options{Workers: 1}, nil)
	code, data := env.do(t, "POST", "/api/v1/jobs", scoreBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if code, _ = env.do(t, "GET", "/api/v1/jobs/"+sub.Job.ID+"/result?wait=1", nil); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	_, body := env.do(t, "GET", "/metrics", nil)
	text := string(body)
	for _, want := range []string{
		`perspectord_requests_total{route="POST /api/v1/jobs",code="202"} 1`,
		`perspectord_jobs{state="done"} 1`,
		`perspectord_jobs{state="queued"} 0`,
		"perspectord_queue_depth 0",
		"perspectord_results_stored 1",
		`perspectord_request_duration_seconds_count{route="POST /api/v1/jobs"} 1`,
		"perspector_simulated_instructions_per_second",
		"perspectord_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
