package lhs

import (
	"testing"
	"testing/quick"

	"perspector/internal/mat"
	"perspector/internal/rng"
)

func TestSampleStratification(t *testing.T) {
	// Each dimension must contain exactly one point per 1/n stratum.
	s, err := Sample(10, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		seen := make([]bool, 10)
		for i := 0; i < 10; i++ {
			v := s.At(i, d)
			if v < 0 || v >= 1 {
				t.Fatalf("sample out of [0,1): %v", v)
			}
			stratum := int(v * 10)
			if seen[stratum] {
				t.Fatalf("dim %d stratum %d sampled twice", d, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestSampleStratificationProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%20) + 2
		dims := int(dRaw%6) + 1
		s, err := Sample(n, dims, seed)
		if err != nil {
			return false
		}
		for d := 0; d < dims; d++ {
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				v := s.At(i, d)
				if v < 0 || v >= 1 {
					return false
				}
				stratum := int(v * float64(n))
				if stratum >= n {
					stratum = n - 1
				}
				if seen[stratum] {
					return false
				}
				seen[stratum] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, _ := Sample(8, 4, 7)
	b, _ := Sample(8, 4, 7)
	if !a.Equal(b, 0) {
		t.Fatal("same seed produced different designs")
	}
}

func TestSampleErrors(t *testing.T) {
	if _, err := Sample(0, 2, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Sample(2, 0, 1); err == nil {
		t.Fatal("dims=0 accepted")
	}
}

func TestSampleMaximinImproves(t *testing.T) {
	// The maximin design over 32 tries should have min-distance at least as
	// good as the first single try.
	single, err := Sample(8, 2, rng.ChildSeed(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	best, err := SampleMaximin(8, 2, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if minPairDist(best) < minPairDist(single)-1e-12 {
		t.Fatalf("maximin %v worse than single draw %v", minPairDist(best), minPairDist(single))
	}
}

func TestSampleMaximinErrors(t *testing.T) {
	if _, err := SampleMaximin(4, 2, 1, 0); err == nil {
		t.Fatal("tries=0 accepted")
	}
}

func TestNearestRowsExactMatch(t *testing.T) {
	cands := mat.FromRows([][]float64{{0, 0}, {0.5, 0.5}, {1, 1}})
	samples := mat.FromRows([][]float64{{0.49, 0.51}, {0.01, 0.01}})
	idx, err := NearestRows(samples, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("NearestRows = %v, want [0 1]", idx)
	}
}

func TestNearestRowsWithoutReplacement(t *testing.T) {
	// Two samples both nearest to candidate 0: only one may take it.
	cands := mat.FromRows([][]float64{{0, 0}, {10, 10}, {20, 20}})
	samples := mat.FromRows([][]float64{{0.1, 0}, {0, 0.1}})
	idx, err := NearestRows(samples, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] == idx[1] {
		t.Fatalf("NearestRows reused a candidate: %v", idx)
	}
}

func TestNearestRowsDistinctProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nc, ns, d := 12, 5, 3
		cRows := make([][]float64, nc)
		for i := range cRows {
			row := make([]float64, d)
			for j := range row {
				row[j] = src.Float64()
			}
			cRows[i] = row
		}
		sRows := make([][]float64, ns)
		for i := range sRows {
			row := make([]float64, d)
			for j := range row {
				row[j] = src.Float64()
			}
			sRows[i] = row
		}
		idx, err := NearestRows(mat.FromRows(sRows), mat.FromRows(cRows))
		if err != nil || len(idx) != ns {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= nc || seen[i] {
				return false
			}
			seen[i] = true
		}
		// Ascending order.
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNearestRowsErrors(t *testing.T) {
	if _, err := NearestRows(mat.New(3, 2), mat.New(2, 2)); err == nil {
		t.Fatal("too few candidates accepted")
	}
	if _, err := NearestRows(mat.New(1, 2), mat.New(2, 3)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestLHSBetterSpaceFillingThanUniform(t *testing.T) {
	// Statistically, LHS per-dimension discrepancy beats iid uniform draws.
	// Compare the max per-dimension gap between sorted samples.
	n := 16
	worstGap := func(x *mat.Matrix, d int) float64 {
		vals := x.Col(d)
		// insertion sort (n is tiny)
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		gap := vals[0]
		for i := 1; i < len(vals); i++ {
			if g := vals[i] - vals[i-1]; g > gap {
				gap = g
			}
		}
		if g := 1 - vals[len(vals)-1]; g > gap {
			gap = g
		}
		return gap
	}
	lhsDesign, err := Sample(n, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	iid := mat.New(n, 1)
	for i := 0; i < n; i++ {
		iid.Set(i, 0, src.Float64())
	}
	// An LHS gap can never exceed 2/n; iid commonly does at n=16.
	if g := worstGap(lhsDesign, 0); g > 2.0/float64(n)+1e-9 {
		t.Fatalf("LHS max gap %v exceeds 2/n", g)
	}
	_ = iid // iid gap not asserted (stochastic); LHS bound is the guarantee
}

func TestLHSGapBoundProperty(t *testing.T) {
	// Per-dimension, the largest gap between adjacent LHS samples is < 2/n
	// (one empty-interior stratum boundary each side).
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		s, err := Sample(n, 2, seed)
		if err != nil {
			return false
		}
		for d := 0; d < 2; d++ {
			vals := s.Col(d)
			for i := 1; i < len(vals); i++ {
				for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
					vals[j], vals[j-1] = vals[j-1], vals[j]
				}
			}
			for i := 1; i < len(vals); i++ {
				if vals[i]-vals[i-1] >= 2.0/float64(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleMaximin8x14(b *testing.B) {
	// The paper's subset draw: 8 samples in 14 counter dimensions.
	for i := 0; i < b.N; i++ {
		if _, err := SampleMaximin(8, 14, uint64(i), 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestRows43(b *testing.B) {
	src := rng.New(1)
	cRows := make([][]float64, 43)
	for i := range cRows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		cRows[i] = row
	}
	cands := mat.FromRows(cRows)
	samples, _ := Sample(8, 14, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NearestRows(samples, cands); err != nil {
			b.Fatal(err)
		}
	}
}
