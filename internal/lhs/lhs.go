// Package lhs implements Latin Hypercube Sampling and the
// nearest-workload matching that Perspector's subset generator (§IV-C)
// builds on. LHS divides each of the M dimensions into N equal-probability
// regions and draws exactly one sample per region per dimension, giving
// far better space-filling than N independent uniform draws.
package lhs

import (
	"fmt"
	"math"

	"perspector/internal/mat"
	"perspector/internal/rng"
)

// Sample returns n points in [0,1)^dims arranged as an n×dims matrix, where
// each dimension's n values occupy distinct 1/n-width strata. The sampling
// is deterministic for a given seed.
func Sample(n, dims int, seed uint64) (*mat.Matrix, error) {
	if n < 1 || dims < 1 {
		return nil, fmt.Errorf("lhs: Sample(n=%d, dims=%d) needs positive arguments", n, dims)
	}
	src := rng.New(seed)
	out := mat.New(n, dims)
	for d := 0; d < dims; d++ {
		perm := src.Perm(n)
		for i := 0; i < n; i++ {
			// Stratum perm[i], jittered uniformly within the stratum.
			out.Set(i, d, (float64(perm[i])+src.Float64())/float64(n))
		}
	}
	return out, nil
}

// SampleMaximin draws `tries` independent LHS designs and keeps the one
// whose minimum pairwise point distance is largest (a maximin design).
// This reduces the chance of two sample points landing close together,
// which would select near-duplicate workloads during subsetting.
func SampleMaximin(n, dims int, seed uint64, tries int) (*mat.Matrix, error) {
	if tries < 1 {
		return nil, fmt.Errorf("lhs: SampleMaximin needs tries >= 1, got %d", tries)
	}
	var best *mat.Matrix
	bestScore := -1.0
	for t := 0; t < tries; t++ {
		s, err := Sample(n, dims, rng.ChildSeed(seed, t))
		if err != nil {
			return nil, err
		}
		score := minPairDist(s)
		if score > bestScore {
			bestScore = score
			best = s
		}
	}
	return best, nil
}

func minPairDist(x *mat.Matrix) float64 {
	n := x.Rows()
	if n < 2 {
		return math.Inf(1)
	}
	min := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := mat.Dist(x.RowView(i), x.RowView(j)); d < min {
				min = d
			}
		}
	}
	return min
}

// NearestRows matches each sample point (rows of samples) to the nearest
// row of candidates (Euclidean), without replacement: once a candidate is
// taken it cannot be selected again, so n sample points yield n distinct
// candidate indices. Sample points are processed greedily in order of
// their best-match distance, ties broken by lower index, which makes the
// matching deterministic and close to optimal for well-spread designs.
//
// It returns the selected candidate indices in ascending order. It errors
// if there are fewer candidates than samples or if widths disagree.
func NearestRows(samples, candidates *mat.Matrix) ([]int, error) {
	ns, nc := samples.Rows(), candidates.Rows()
	if nc < ns {
		return nil, fmt.Errorf("lhs: %d candidates for %d samples", nc, ns)
	}
	if samples.Cols() != candidates.Cols() {
		return nil, fmt.Errorf("lhs: dimension mismatch %d vs %d", samples.Cols(), candidates.Cols())
	}
	taken := make([]bool, nc)
	assigned := make([]bool, ns)
	var selected []int
	for round := 0; round < ns; round++ {
		// Among unassigned samples, pick the (sample, free candidate) pair
		// with the globally smallest distance.
		bestS, bestC, bestD := -1, -1, math.Inf(1)
		for s := 0; s < ns; s++ {
			if assigned[s] {
				continue
			}
			for c := 0; c < nc; c++ {
				if taken[c] {
					continue
				}
				if d := mat.Dist(samples.RowView(s), candidates.RowView(c)); d < bestD {
					bestD = d
					bestS, bestC = s, c
				}
			}
		}
		assigned[bestS] = true
		taken[bestC] = true
		selected = append(selected, bestC)
	}
	// Ascending order for stable reporting.
	for i := 1; i < len(selected); i++ {
		for j := i; j > 0 && selected[j] < selected[j-1]; j-- {
			selected[j], selected[j-1] = selected[j-1], selected[j]
		}
	}
	return selected, nil
}
