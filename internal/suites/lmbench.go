package suites

import "perspector/internal/workload"

// LMbench models the lmbench microbenchmark suite (McVoy & Staelin,
// ATC'96). Each workload isolates one subsystem — syscall latency, signal
// handling, process creation, memory read latency at each hierarchy level,
// memory bandwidth, page-fault cost — and drives it to an extreme. The
// counter vectors therefore sit at the corners of the parameter space,
// which is why the paper measures the highest CoverageScore for LMbench
// with all events (§IV-A) and a collapse of that coverage when only LLC
// (−66 %) or TLB (−88 %) events are considered (§IV-B): most of the
// variance lives in the OS-centric counters.
func LMbench(cfg Config) Suite {
	s := Suite{
		Name: "lmbench",
		Description: "Microbenchmarks measuring latency and bandwidth of " +
			"individual OS and memory subsystems.",
	}
	add := func(name string, phases ...workload.Phase) {
		s.Specs = append(s.Specs, workload.Spec{
			Name:         "lmbench." + name,
			Instructions: cfg.Instructions,
			Seed:         seedFor(cfg, "lmbench", len(s.Specs)),
			Phases:       phases,
		})
	}

	// --- Syscall/OS latency micros: almost no memory traffic. ---
	add("lat_syscall-null", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.45, LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.1,
		LoadPattern:      workload.Sequential{WorkingSet: 32 * kib},
		BranchRegularity: 0.98, BranchTakenProb: 0.9, BranchSites: 2,
	})
	add("lat_syscall-read", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.4, LoadFrac: 0.1, BranchFrac: 0.1,
		LoadPattern:      workload.Sequential{WorkingSet: 64 * kib},
		BranchRegularity: 0.98, BranchTakenProb: 0.9, BranchSites: 2,
	})
	add("lat_syscall-write", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.4, StoreFrac: 0.1, BranchFrac: 0.1,
		StorePattern:     workload.Sequential{WorkingSet: 64 * kib},
		BranchRegularity: 0.98, BranchTakenProb: 0.9, BranchSites: 2,
	})
	add("lat_syscall-stat", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.35, LoadFrac: 0.15, BranchFrac: 0.12,
		LoadPattern:      workload.Random{WorkingSet: 32 * kib},
		BranchRegularity: 0.9, BranchTakenProb: 0.7, BranchSites: 6,
	})
	add("lat_syscall-open", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.35, LoadFrac: 0.18, BranchFrac: 0.15,
		LoadPattern:      workload.Random{WorkingSet: 128 * kib},
		BranchRegularity: 0.85, BranchTakenProb: 0.65, BranchSites: 10,
	})
	add("lat_sig-install", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.5, LoadFrac: 0.1, StoreFrac: 0.03, BranchFrac: 0.08,
		LoadPattern:      workload.Sequential{WorkingSet: 32 * kib},
		BranchRegularity: 0.98, BranchTakenProb: 0.9, BranchSites: 2,
	})
	add("lat_sig-catch", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.42, LoadFrac: 0.08, BranchFrac: 0.1,
		LoadPattern:      workload.Sequential{WorkingSet: 16 * kib},
		BranchRegularity: 0.95, BranchTakenProb: 0.85, BranchSites: 4,
	})
	// Process creation: syscalls that fault heavily (fresh address spaces).
	add("lat_proc-fork", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.5, StoreFrac: 0.1, BranchFrac: 0.1,
		StorePattern:     workload.Sequential{WorkingSet: 8 * mib, Stride: 4096},
		SyscallFaultProb: 0.95,
		BranchRegularity: 0.9, BranchTakenProb: 0.8, BranchSites: 4,
	})
	add("lat_proc-exec", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.5, LoadFrac: 0.12, BranchFrac: 0.08,
		LoadPattern:      workload.Sequential{WorkingSet: 4 * mib},
		SyscallFaultProb: 0.95,
		BranchRegularity: 0.9, BranchTakenProb: 0.8, BranchSites: 4,
	})
	// Page-fault latency: mmap/unmap cycles that fault on nearly every
	// syscall. The footprint itself is small — the cost is in the OS.
	add("lat_pagefault", workload.Phase{
		Name: "loop", Weight: 1, SyscallFrac: 0.5, LoadFrac: 0.1, BranchFrac: 0.05,
		LoadPattern:      workload.Sequential{WorkingSet: 1 * mib},
		SyscallFaultProb: 1.0,
		BranchRegularity: 0.98, BranchTakenProb: 0.95, BranchSites: 2,
	})

	// --- Memory read latency at each hierarchy level (lat_mem_rd). ---
	for _, lvl := range []struct {
		name string
		ws   uint64
	}{
		{"lat_mem_rd-16k", 16 * kib},   // L1-resident
		{"lat_mem_rd-64k", 64 * kib},   // L2-resident, TLB-friendly
		{"lat_mem_rd-128k", 128 * kib}, // L2-resident
		{"lat_mem_rd-256k", 256 * kib}, // L3-resident, fits L1 TLB reach
		{"lat_mem_rd-4m", 4 * mib},     // L3-resident, TLB-hostile
	} {
		add(lvl.name, workload.Phase{
			Name: "chase", Weight: 1, LoadFrac: 0.45, BranchFrac: 0.05,
			LoadPattern:      workload.PointerChase{WorkingSet: lvl.ws},
			BranchRegularity: 0.98, BranchTakenProb: 0.95, BranchSites: 2,
		})
	}

	// --- Memory bandwidth (bw_mem): sequential floods. ---
	add("bw_mem-rd", workload.Phase{
		Name: "sweep", Weight: 1, LoadFrac: 0.5, BranchFrac: 0.04,
		LoadPattern:      workload.Sequential{WorkingSet: 128 * mib},
		BranchRegularity: 0.99, BranchTakenProb: 0.97, BranchSites: 1,
	})
	add("bw_mem-wr", workload.Phase{
		Name: "sweep", Weight: 1, StoreFrac: 0.45, LoadFrac: 0.05, BranchFrac: 0.04,
		LoadPattern:      workload.Sequential{WorkingSet: 64 * kib},
		StorePattern:     workload.Sequential{WorkingSet: 128 * mib},
		BranchRegularity: 0.99, BranchTakenProb: 0.97, BranchSites: 1,
	})
	add("bw_mem-cp", workload.Phase{
		Name: "sweep", Weight: 1, LoadFrac: 0.35, StoreFrac: 0.35, BranchFrac: 0.04,
		LoadPattern:      workload.Sequential{WorkingSet: 64 * mib},
		StorePattern:     workload.Sequential{WorkingSet: 64 * mib},
		BranchRegularity: 0.99, BranchTakenProb: 0.97, BranchSites: 1,
	})
	// Cached file I/O: medium buffer re-read plus syscalls.
	add("bw_file_rd", workload.Phase{
		Name: "read", Weight: 1, LoadFrac: 0.5, SyscallFrac: 0.08, BranchFrac: 0.06,
		LoadPattern:      workload.Sequential{WorkingSet: 1 * mib},
		BranchRegularity: 0.95, BranchTakenProb: 0.9, BranchSites: 3,
	})
	add("bw_pipe", workload.Phase{
		Name: "pipe", Weight: 1, LoadFrac: 0.25, StoreFrac: 0.25, SyscallFrac: 0.15, BranchFrac: 0.06,
		LoadPattern:      workload.Sequential{WorkingSet: 256 * kib},
		StorePattern:     workload.Sequential{WorkingSet: 256 * kib},
		BranchRegularity: 0.95, BranchTakenProb: 0.9, BranchSites: 3,
	})
	add("bw_unix", workload.Phase{
		Name: "sock", Weight: 1, LoadFrac: 0.2, StoreFrac: 0.2, SyscallFrac: 0.2, BranchFrac: 0.08,
		LoadPattern:      workload.Sequential{WorkingSet: 128 * kib},
		StorePattern:     workload.Sequential{WorkingSet: 128 * kib},
		BranchRegularity: 0.9, BranchTakenProb: 0.85, BranchSites: 4,
	})
	// Context switching: TLB/cache pollution plus syscalls.
	add("lat_ctx-2p", workload.Phase{
		Name: "switch", Weight: 1, LoadFrac: 0.3, SyscallFrac: 0.18, BranchFrac: 0.1,
		LoadPattern:      workload.Random{WorkingSet: 2 * mib},
		BranchRegularity: 0.7, BranchTakenProb: 0.6, BranchSites: 16,
	})
	add("lat_ctx-16p", workload.Phase{
		Name: "switch", Weight: 1, LoadFrac: 0.35, SyscallFrac: 0.2, BranchFrac: 0.1,
		LoadPattern:      workload.Random{WorkingSet: 3 * mib},
		BranchRegularity: 0.65, BranchTakenProb: 0.55, BranchSites: 24,
	})
	// ALU micros: integer/float op latency, no memory at all.
	add("lat_ops-int", workload.Phase{
		Name: "alu", Weight: 1, LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.06,
		LoadPattern:      workload.Sequential{WorkingSet: 16 * kib},
		BranchRegularity: 0.99, BranchTakenProb: 0.97, BranchSites: 1,
	})
	add("lat_ops-float", workload.Phase{
		Name: "alu", Weight: 1, LoadFrac: 0.14, StoreFrac: 0.05, BranchFrac: 0.04,
		LoadPattern:      workload.Streams{WorkingSet: 32 * kib, Count: 2},
		BranchRegularity: 0.99, BranchTakenProb: 0.97, BranchSites: 1,
	})
	// Branch-hostile micro (lat_branch): random direction.
	add("lat_branch", workload.Phase{
		Name: "branch", Weight: 1, BranchFrac: 0.5, LoadFrac: 0.1, StoreFrac: 0.03,
		LoadPattern:      workload.Sequential{WorkingSet: 16 * kib},
		BranchRegularity: 0.02, BranchTakenProb: 0.5, BranchSites: 8,
	})
	return s
}
