package suites

import (
	"fmt"

	"perspector/internal/workload"
)

// ligraFamily groups Ligra algorithms that share a kernel style. Members
// of a family differ only by a tiny jitter; families differ substantially.
// Combined with the identical load/decode front-end, this reproduces the
// paper's observation that Ligra's workloads cluster strongly (§IV-A):
// "as a large portion of the code base is shared, the workloads are
// expected to behave similarly".
type ligraFamily struct {
	name    string
	members []string
	kernel  func(jitter float64) workload.Phase
}

// Ligra models the Ligra graph-processing framework (Shun & Blelloch,
// PPoPP'13). Every workload shares the same two-part structure: a common
// graph load/decode front-end followed by an algorithm kernel built on
// the shared edgeMap/vertexMap primitives. Kernels fall into a handful of
// families (frontier traversal, iterative ranking, neighborhood counting,
// structure extraction), so the suite's counter vectors form a few tight
// clusters — the worst (highest) ClusterScore of the six suites.
func Ligra(cfg Config) Suite {
	const graphBytes = 48 * mib
	families := []ligraFamily{
		{
			name:    "traversal",
			members: []string{"BFS", "BC", "BFSCC", "BFS-Bitvector", "Radii"},
			kernel: func(j float64) workload.Phase {
				return workload.Phase{
					Name: "frontier", Weight: 0.62,
					LoadFrac: 0.46 + j, StoreFrac: 0.08, BranchFrac: 0.18,
					LoadPattern:      workload.Zipf{WorkingSet: graphBytes, Alpha: 0.6},
					StorePattern:     workload.Random{WorkingSet: graphBytes / 8},
					BranchRegularity: 0.4, BranchTakenProb: 0.55, BranchSites: 20,
				}
			},
		},
		{
			name:    "iterative",
			members: []string{"PageRank", "PageRankDelta", "BellmanFord", "CF", "GraphColoring"},
			kernel: func(j float64) workload.Phase {
				return workload.Phase{
					Name: "iterate", Weight: 0.62,
					LoadFrac: 0.44 + j, StoreFrac: 0.14, BranchFrac: 0.1,
					LoadPattern:      workload.Zipf{WorkingSet: graphBytes, Alpha: 0.95},
					StorePattern:     workload.Sequential{WorkingSet: graphBytes / 6},
					BranchRegularity: 0.75, BranchTakenProb: 0.7, BranchSites: 10,
				}
			},
		},
		{
			name:    "counting",
			members: []string{"Triangle", "KCore", "DensestSubgraph", "SetCover", "LocalCluster"},
			kernel: func(j float64) workload.Phase {
				return workload.Phase{
					Name: "count", Weight: 0.62,
					LoadFrac: 0.5 + j, StoreFrac: 0.05, BranchFrac: 0.14,
					LoadPattern:      workload.Random{WorkingSet: graphBytes},
					BranchRegularity: 0.55, BranchTakenProb: 0.6, BranchSites: 16,
				}
			},
		},
		{
			name:    "structure",
			members: []string{"Components", "MIS", "MaximalMatching", "SpanningForest", "Diameter"},
			kernel: func(j float64) workload.Phase {
				return workload.Phase{
					Name: "contract", Weight: 0.62,
					LoadFrac: 0.38 + j, StoreFrac: 0.18, BranchFrac: 0.14,
					LoadPattern:      workload.HotCold{HotSet: 2 * mib, ColdSet: graphBytes, HotFrac: 0.55},
					BranchRegularity: 0.6, BranchTakenProb: 0.6, BranchSites: 14,
				}
			},
		},
	}

	s := Suite{
		Name: "ligra",
		Description: "Lightweight graph processing framework; all workloads " +
			"share the load/decode front-end and edgeMap/vertexMap kernels.",
	}
	idx := 0
	for _, fam := range families {
		for mi, algo := range fam.members {
			// Within-family jitter is tiny; the framework and family
			// parameters dominate.
			jitter := float64(mi) * 0.004
			spec := workload.Spec{
				Name:         fmt.Sprintf("ligra.%s", algo),
				Instructions: cfg.Instructions,
				Seed:         seedFor(cfg, "ligra", idx),
				Phases: []workload.Phase{
					{
						// Shared framework: stream the graph file, build CSR.
						Name: "load-decode", Weight: 0.38,
						LoadFrac: 0.34, StoreFrac: 0.18, BranchFrac: 0.1,
						LoadPattern:      workload.Sequential{WorkingSet: graphBytes},
						StorePattern:     workload.Sequential{WorkingSet: graphBytes / 2},
						BranchRegularity: 0.9, BranchTakenProb: 0.7, BranchSites: 12,
					},
					fam.kernel(jitter),
				},
			}
			s.Specs = append(s.Specs, spec)
			idx++
		}
	}
	return s
}
