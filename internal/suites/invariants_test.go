package suites

// Cross-module property tests: for arbitrary (valid) workload specs, the
// simulator's PMU counters must satisfy the structural invariants of the
// machine model. These catch accounting bugs that unit tests on
// individual components cannot (e.g. a counter charged on the wrong
// path).

import (
	"testing"
	"testing/quick"

	"perspector/internal/perf"
	"perspector/internal/rng"
	"perspector/internal/uarch"
	"perspector/internal/workload"
)

// randomSpec builds a random-but-valid workload spec from a seed.
func randomSpec(seed uint64) workload.Spec {
	src := rng.New(seed)
	nPhases := 1 + src.Intn(3)
	spec := workload.Spec{
		Name:         "prop",
		Instructions: 5_000 + uint64(src.Intn(20_000)),
		Seed:         src.Uint64(),
	}
	patterns := []func() workload.PatternSpec{
		func() workload.PatternSpec {
			return workload.Sequential{WorkingSet: uint64(1+src.Intn(1024)) * 4096}
		},
		func() workload.PatternSpec {
			return workload.Random{WorkingSet: uint64(1+src.Intn(1024)) * 4096}
		},
		func() workload.PatternSpec {
			return workload.Zipf{WorkingSet: uint64(1+src.Intn(256)) * 4096, Alpha: src.Range(0, 1.5)}
		},
		func() workload.PatternSpec {
			return workload.PointerChase{WorkingSet: uint64(1+src.Intn(256)) * 4096}
		},
		func() workload.PatternSpec {
			return workload.HotCold{
				HotSet:  uint64(1+src.Intn(16)) * 4096,
				ColdSet: uint64(1+src.Intn(512)) * 4096,
				HotFrac: src.Range(0.1, 0.9),
			}
		},
		func() workload.PatternSpec {
			return workload.Streams{WorkingSet: uint64(2+src.Intn(128)) * 8192, Count: 1 + src.Intn(4)}
		},
	}
	for p := 0; p < nPhases; p++ {
		load := src.Range(0, 0.5)
		store := src.Range(0, 0.25)
		branch := src.Range(0, 0.2)
		syscall := src.Range(0, 0.04)
		ph := workload.Phase{
			Name: "p", Weight: src.Range(0.1, 1),
			LoadFrac: load, StoreFrac: store, BranchFrac: branch, SyscallFrac: syscall,
			BranchRegularity: src.Range(0, 1),
			BranchTakenProb:  src.Range(0, 1),
			BranchSites:      1 + src.Intn(32),
			SyscallFaultProb: src.Range(0, 1),
		}
		if load > 0 || store > 0 {
			ph.LoadPattern = patterns[src.Intn(len(patterns))]()
		}
		spec.Phases = append(spec.Phases, ph)
	}
	return spec
}

func TestSimulatorCounterInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		spec := randomSpec(seed)
		prog, err := workload.Compile(spec)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		cfg := uarch.DefaultMachineConfig()
		cfg.SampleInterval = spec.Instructions / 10
		m, err := uarch.NewMachine(cfg)
		if err != nil {
			return false
		}
		meas, err := m.Run(prog, spec.Instructions)
		if err != nil {
			return false
		}
		tot := &meas.Totals

		// CPI >= 1: every instruction takes at least one cycle.
		if tot.Get(perf.CPUCycles) < spec.Instructions {
			t.Logf("seed %d: cycles %d < instructions %d", seed, tot.Get(perf.CPUCycles), spec.Instructions)
			return false
		}
		// Misses never exceed accesses, per event class. (OS-noise deltas
		// preserve these inequalities by construction: miss rates are
		// below access rates in the noise profile too.)
		checks := [][2]perf.Counter{
			{perf.DTLBLoadMisses, perf.DTLBLoads},
			{perf.DTLBStoreMisses, perf.DTLBStores},
			{perf.LLCLoadMisses, perf.LLCLoads},
			{perf.LLCStoreMisses, perf.LLCStores},
			{perf.LLCLoads, perf.DTLBLoads},   // LLC demand loads ⊆ all loads
			{perf.LLCStores, perf.DTLBStores}, // same for stores
			{perf.BranchMisses, perf.BranchInstructions},
		}
		for _, c := range checks {
			if tot.Get(c[0]) > tot.Get(c[1]) {
				t.Logf("seed %d: %v (%d) > %v (%d)", seed,
					c[0], tot.Get(c[0]), c[1], tot.Get(c[1]))
				return false
			}
		}
		// Stall cycles and walk cycles are bounded by total cycles.
		if tot.Get(perf.StallsMemAny) > tot.Get(perf.CPUCycles) {
			return false
		}
		if tot.Get(perf.DTLBWalkPending) > tot.Get(perf.CPUCycles) {
			return false
		}
		// Series deltas sum to totals.
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			sum := 0.0
			for _, v := range meas.Series.Series(c) {
				sum += v
			}
			if uint64(sum) > tot.Get(c) {
				t.Logf("seed %d: %v series sum %v > total %d", seed, c, sum, tot.Get(c))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorExtremeConfigs(t *testing.T) {
	// Failure injection: degenerate-but-legal machine geometries must
	// still produce consistent measurements.
	extremes := []func(*uarch.MachineConfig){
		func(c *uarch.MachineConfig) { // minimal caches
			c.L1 = uarch.CacheConfig{Name: "L1", SizeB: 128, LineB: 64, Ways: 2, LatencyC: 1}
			c.L2 = uarch.CacheConfig{Name: "L2", SizeB: 256, LineB: 64, Ways: 2, LatencyC: 2}
			c.L3 = uarch.CacheConfig{Name: "L3", SizeB: 512, LineB: 64, Ways: 2, LatencyC: 4}
		},
		func(c *uarch.MachineConfig) { // tiny TLB
			c.TLB.L1Entries = 2
			c.TLB.L1Ways = 2
			c.TLB.L2Entries = 4
			c.TLB.L2Ways = 4
		},
		func(c *uarch.MachineConfig) { // tiny predictor
			c.BranchTableBits = 2
			c.BranchHistoryBits = 1
		},
		func(c *uarch.MachineConfig) { // huge penalties
			c.DRAMCycles = 10_000
			c.MinorFaultCycles = 100_000
		},
	}
	spec := randomSpec(42)
	for i, mutate := range extremes {
		cfg := uarch.DefaultMachineConfig()
		mutate(&cfg)
		m, err := uarch.NewMachine(cfg)
		if err != nil {
			t.Fatalf("extreme %d: %v", i, err)
		}
		prog, err := workload.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := m.Run(prog, spec.Instructions)
		if err != nil {
			t.Fatalf("extreme %d: %v", i, err)
		}
		if meas.Totals.Get(perf.CPUCycles) < spec.Instructions {
			t.Fatalf("extreme %d: CPI < 1", i)
		}
	}
}

// TestGoldenDeterminism pins the exact counter totals of one fixed
// workload on the default machine. Any change to the simulator, the RNG,
// or the workload compiler that alters observable behaviour must update
// this golden value knowingly (and note it in EXPERIMENTS.md if it shifts
// the reproduced results).
func TestGoldenDeterminism(t *testing.T) {
	cfg := Config{Instructions: 50_000, Samples: 10, Seed: 1234, Machine: uarch.DefaultMachineConfig()}
	s := Nbench(cfg)
	sm, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint: sum of all counters across all workloads.
	var fingerprint uint64
	for _, m := range sm.Workloads {
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			fingerprint += m.Totals.Get(c)
		}
	}
	const want = 8480205
	if fingerprint != want {
		t.Fatalf("golden fingerprint = %d, want %d — simulator behaviour changed; "+
			"verify EXPERIMENTS.md results still hold and update this constant",
			fingerprint, want)
	}
}
