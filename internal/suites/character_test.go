package suites

// Per-suite behavioural tests: the modelled workloads must show the
// microarchitectural character their real counterparts are known for.
// These tests pin the *reasons* behind the Fig. 3 orderings, so a
// regression in a suite model fails here with a named workload instead of
// as an opaque score shift.

import (
	"strings"
	"testing"

	"perspector/internal/perf"
)

// measure returns the full-budget measurement of one suite, cached per
// test run via t.Cleanup-free package-level memoization (tests only).
var characterCache = map[string]*perf.SuiteMeasurement{}

func measureSuite(t *testing.T, name string) *perf.SuiteMeasurement {
	t.Helper()
	if sm, ok := characterCache[name]; ok {
		return sm
	}
	cfg := DefaultConfig()
	cfg.Instructions = 120_000
	cfg.Samples = 30
	s, err := ByName(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	characterCache[name] = sm
	return sm
}

// rate returns counter c per instruction-proxy (cpu-cycles normalizes
// differently per workload, so use the raw total: budgets are equal).
func findWorkload(t *testing.T, sm *perf.SuiteMeasurement, name string) *perf.Measurement {
	t.Helper()
	for i := range sm.Workloads {
		if sm.Workloads[i].Workload == name {
			return &sm.Workloads[i]
		}
	}
	t.Fatalf("workload %q not in %s", name, sm.Suite)
	return nil
}

func TestSPEC17Character(t *testing.T) {
	sm := measureSuite(t, "spec17")
	mcf := findWorkload(t, sm, "spec17.605.mcf_s")
	exchange := findWorkload(t, sm, "spec17.548.exchange2_r")
	lbm := findWorkload(t, sm, "spec17.619.lbm_s")
	leela := findWorkload(t, sm, "spec17.541.leela_r")

	// mcf: pointer chasing over a huge graph — worst TLB walker in the suite.
	maxWalk := uint64(0)
	var maxWalkName string
	for _, m := range sm.Workloads {
		if w := m.Totals.Get(perf.DTLBWalkPending); w > maxWalk {
			maxWalk = w
			maxWalkName = m.Workload
		}
	}
	if !strings.Contains(maxWalkName, "mcf") {
		t.Errorf("worst TLB walker is %s, want an mcf variant", maxWalkName)
	}
	// exchange2: tiny footprint — near-minimal LLC misses.
	if exchange.Totals.Get(perf.LLCLoadMisses) > mcf.Totals.Get(perf.LLCLoadMisses)/10 {
		t.Errorf("exchange2 LLC misses %d not an order below mcf %d",
			exchange.Totals.Get(perf.LLCLoadMisses), mcf.Totals.Get(perf.LLCLoadMisses))
	}
	// lbm: streaming — among the heaviest LLC load traffic.
	if lbm.Totals.Get(perf.LLCLoads) < exchange.Totals.Get(perf.LLCLoads)*5 {
		t.Errorf("lbm LLC loads %d not well above exchange2 %d",
			lbm.Totals.Get(perf.LLCLoads), exchange.Totals.Get(perf.LLCLoads))
	}
	// leela: branchy game tree — worse branch miss *rate* than lbm.
	leelaRate := float64(leela.Totals.Get(perf.BranchMisses)) / float64(leela.Totals.Get(perf.BranchInstructions))
	lbmRate := float64(lbm.Totals.Get(perf.BranchMisses)) / float64(lbm.Totals.Get(perf.BranchInstructions))
	if leelaRate <= 2*lbmRate {
		t.Errorf("leela branch miss rate %.3f not well above lbm %.3f", leelaRate, lbmRate)
	}
}

func TestLMbenchCharacter(t *testing.T) {
	sm := measureSuite(t, "lmbench")
	branch := findWorkload(t, sm, "lmbench.lat_branch")
	bwRd := findWorkload(t, sm, "lmbench.bw_mem-rd")
	sysNull := findWorkload(t, sm, "lmbench.lat_syscall-null")
	pagefault := findWorkload(t, sm, "lmbench.lat_pagefault")

	// lat_branch owns the worst branch miss rate.
	worstRate, worstName := 0.0, ""
	for _, m := range sm.Workloads {
		if b := m.Totals.Get(perf.BranchInstructions); b > 0 {
			r := float64(m.Totals.Get(perf.BranchMisses)) / float64(b)
			if r > worstRate {
				worstRate = r
				worstName = m.Workload
			}
		}
	}
	if worstName != "lmbench.lat_branch" {
		t.Errorf("worst branch miss rate is %s, want lat_branch", worstName)
	}
	_ = branch
	// bw_mem-rd owns the most LLC load traffic.
	for _, m := range sm.Workloads {
		if m.Workload == bwRd.Workload {
			continue
		}
		if m.Totals.Get(perf.LLCLoads) > bwRd.Totals.Get(perf.LLCLoads) {
			t.Errorf("%s LLC loads %d above bw_mem-rd %d",
				m.Workload, m.Totals.Get(perf.LLCLoads), bwRd.Totals.Get(perf.LLCLoads))
		}
	}
	// lat_pagefault owns the most page faults; the null syscall micro is
	// near the bottom.
	if pagefault.Totals.Get(perf.PageFaults) < 20*sysNull.Totals.Get(perf.PageFaults) {
		t.Errorf("lat_pagefault faults %d not far above lat_syscall-null %d",
			pagefault.Totals.Get(perf.PageFaults), sysNull.Totals.Get(perf.PageFaults))
	}
	// Syscall micros burn more cycles per instruction than even the
	// DRAM-bound bandwidth micro (kernel entry ≈ 400 cycles vs ≈ 200 for
	// a memory miss at half the density).
	if sysNull.Totals.Get(perf.CPUCycles) < 13*bwRd.Totals.Get(perf.CPUCycles)/10 {
		t.Errorf("syscall micro cycles %d not clearly above bandwidth micro %d",
			sysNull.Totals.Get(perf.CPUCycles), bwRd.Totals.Get(perf.CPUCycles))
	}
}

func TestSGXGaugeCharacter(t *testing.T) {
	sm := measureSuite(t, "sgxgauge")
	btree := findWorkload(t, sm, "sgxgauge.btree")
	openssl := findWorkload(t, sm, "sgxgauge.openssl")

	// btree pointer-chases a 64 MiB index: far more TLB misses than the
	// crypto kernel.
	if btree.Totals.Get(perf.DTLBLoadMisses) < 5*openssl.Totals.Get(perf.DTLBLoadMisses) {
		t.Errorf("btree TLB misses %d not well above openssl %d",
			btree.Totals.Get(perf.DTLBLoadMisses), openssl.Totals.Get(perf.DTLBLoadMisses))
	}
}

func TestPARSECCharacter(t *testing.T) {
	sm := measureSuite(t, "parsec")
	canneal := findWorkload(t, sm, "parsec.canneal")
	swaptions := findWorkload(t, sm, "parsec.swaptions")

	// canneal (pointer chase over a 64 MiB netlist) stresses the TLB far
	// more than the compute-bound swaptions.
	if canneal.Totals.Get(perf.DTLBWalkPending) < 5*swaptions.Totals.Get(perf.DTLBWalkPending) {
		t.Errorf("canneal walk cycles %d not well above swaptions %d",
			canneal.Totals.Get(perf.DTLBWalkPending), swaptions.Totals.Get(perf.DTLBWalkPending))
	}
	// And spends far more of its time stalled on memory (2× bar: swaptions
	// has sequential setup/aggregate phases that stall too).
	if canneal.Totals.Get(perf.StallsMemAny) < 2*swaptions.Totals.Get(perf.StallsMemAny) {
		t.Errorf("canneal stalls %d not well above swaptions %d",
			canneal.Totals.Get(perf.StallsMemAny), swaptions.Totals.Get(perf.StallsMemAny))
	}
}

func TestLigraCharacterFamilies(t *testing.T) {
	sm := measureSuite(t, "ligra")
	// Workloads within a kernel family must be much closer to each other
	// than to other families: compare BFS↔BC (same family) against
	// BFS↔PageRank (different family) on the full counter vector.
	vec := func(name string) []float64 {
		return findWorkload(t, sm, name).Totals.Vector(perf.AllCounters())
	}
	norm := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			// Relative difference per counter avoids magnitude dominance.
			den := a[i] + b[i]
			if den == 0 {
				continue
			}
			diff := (a[i] - b[i]) / den
			d += diff * diff
		}
		return d
	}
	bfs, bc, pr := vec("ligra.BFS"), vec("ligra.BC"), vec("ligra.PageRank")
	within := norm(bfs, bc)
	across := norm(bfs, pr)
	if within*2 >= across {
		t.Errorf("family cohesion lost: BFS↔BC %v not well below BFS↔PageRank %v", within, across)
	}
}

func TestNbenchCharacter(t *testing.T) {
	sm := measureSuite(t, "nbench")
	// All Nbench kernels are cache-resident: every workload's LLC misses
	// stay tiny relative to its dTLB loads (memory activity proxy).
	for _, m := range sm.Workloads {
		loads := m.Totals.Get(perf.DTLBLoads)
		misses := m.Totals.Get(perf.LLCLoadMisses)
		if loads == 0 {
			continue
		}
		// 0.12 bar: at the short test budget the cold fill of the larger
		// kernels (neural-net 192 KiB, lu 256 KiB) is still a visible
		// fraction of their loads.
		if float64(misses)/float64(loads) > 0.12 {
			t.Errorf("%s LLC miss per load %.3f too high for a cache-resident kernel",
				m.Workload, float64(misses)/float64(loads))
		}
	}
}
