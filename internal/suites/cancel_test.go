package suites

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"perspector/internal/stage"
)

// TestRunContextCancellationPrompt gives the simulator an instruction
// budget that would take far longer than the deadline and checks that
// cancellation lands within the poll stride — promptly, with a
// stage-tagged cancellation error — rather than after the run finishes.
func TestRunContextCancellationPrompt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instructions = 200_000_000 // minutes of simulation if not cancelled
	cfg.Samples = 100
	s, err := ByName("parsec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = RunContext(ctx, s, cfg)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !stage.Canceled(err) {
		t.Fatalf("error not recognized as cancellation: %v", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) {
		t.Fatalf("error carries no stage tag: %v", err)
	}
	if se.Stage != stage.Measure || se.Suite == "" {
		t.Fatalf("stage tag incomplete: %+v", se)
	}
	// Generous bound: the deadline is 30ms and the poll stride is a few
	// thousand simulated instructions, so even a loaded CI machine stays
	// well under this.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunContextCancelNoGoroutineLeak runs many cancelled measurements
// and checks the goroutine count settles back — cancelled fan-outs must
// not strand workers.
func TestRunContextCancelNoGoroutineLeak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	s, err := ByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up the worker pool so its long-lived goroutines are part of
	// the baseline.
	if _, err := RunContext(context.Background(), s, cfg); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := RunContext(ctx, s, cfg); err == nil {
			t.Fatal("cancelled run succeeded")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
