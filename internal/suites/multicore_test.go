package suites

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/workload"
)

func TestRunMulticoreBasics(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	sm, err := RunMulticore(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Workloads) != len(s.Specs) {
		t.Fatalf("workloads = %d", len(sm.Workloads))
	}
	solo, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sm.Workloads {
		// 2 threads execute ~2x the instructions of the solo run.
		multi := sm.Workloads[i].Totals.Get(perf.DTLBLoads)
		one := solo.Workloads[i].Totals.Get(perf.DTLBLoads)
		if multi < one || multi > 3*one {
			t.Fatalf("%s: 2-thread loads %d vs solo %d out of plausible range",
				sm.Workloads[i].Workload, multi, one)
		}
		if sm.Workloads[i].Series.Len() < cfg.Samples-1 {
			t.Fatalf("%s: %d samples", sm.Workloads[i].Workload, sm.Workloads[i].Series.Len())
		}
	}
}

func TestRunMulticoreDeterministic(t *testing.T) {
	cfg := testConfig()
	s := SGXGauge(cfg)
	a, err := RunMulticore(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulticore(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workloads {
		if a.Workloads[i].Totals != b.Workloads[i].Totals {
			t.Fatalf("%s: non-deterministic multicore run", a.Workloads[i].Workload)
		}
	}
}

func TestRunMulticoreThreadsDiffer(t *testing.T) {
	// Thread clones must not be lockstep-identical: with 2 threads the
	// counter totals are not exactly 2x the solo totals for noisy
	// counters (different seeds → different addresses → different misses).
	cfg := testConfig()
	cfg.Instructions = 40_000
	s := SGXGauge(cfg)
	solo, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulticore(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	identical := 0
	for i := range multi.Workloads {
		if multi.Workloads[i].Totals.Get(perf.LLCLoadMisses) ==
			2*solo.Workloads[i].Totals.Get(perf.LLCLoadMisses) {
			identical++
		}
	}
	if identical == len(multi.Workloads) {
		t.Fatal("all multicore runs are exactly 2x solo — thread clones are lockstep")
	}
}

func TestRunMulticoreErrors(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	if _, err := RunMulticore(s, cfg, 0); err == nil {
		t.Fatal("0 threads accepted")
	}
	if _, err := RunMulticore(Suite{Name: "empty"}, cfg, 2); err == nil {
		t.Fatal("empty suite accepted")
	}
	bad := cfg
	bad.Samples = 0
	if _, err := RunMulticore(s, bad, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunMulticoreContentionVisible(t *testing.T) {
	// A 4 MiB re-sweep fits the 12 MiB shared L3 solo (high hit rate),
	// but four private clones demand 16 MiB and thrash it.
	cfg := testConfig()
	cfg.Instructions = 500_000
	single := Suite{Name: "contend", Specs: []workload.Spec{{
		Name: "contend.sweep", Instructions: cfg.Instructions, Seed: 5,
		Phases: []workload.Phase{{
			Name: "sweep", Weight: 1, LoadFrac: 0.5,
			LoadPattern:      workload.Sequential{WorkingSet: 4 << 20},
			BranchRegularity: 0.95, BranchTakenProb: 0.9,
		}},
	}}}
	solo, err := Run(single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulticore(single, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(m *perf.Measurement) float64 {
		loads := m.Totals.Get(perf.LLCLoads)
		if loads == 0 {
			return 0
		}
		return float64(m.Totals.Get(perf.LLCLoadMisses)) / float64(loads)
	}
	soloRate := rate(&solo.Workloads[0])
	multiRate := rate(&multi.Workloads[0])
	if multiRate <= soloRate {
		t.Fatalf("no contention: solo LLC miss rate %.3f, 4-thread %.3f", soloRate, multiRate)
	}
}
