package suites

import (
	"strings"
	"testing"

	"perspector/internal/perf"
	"perspector/internal/workload"
)

// testConfig keeps suite tests fast: small instruction budgets.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 20
	return cfg
}

func TestSuiteSizesMatchPaper(t *testing.T) {
	cfg := testConfig()
	cases := []struct {
		suite Suite
		want  int
	}{
		{SPEC17(cfg), 43}, // "43 in SPEC'17" (§I)
		{PARSEC(cfg), 13},
		{Ligra(cfg), 20},
		{LMbench(cfg), 26},
		{Nbench(cfg), 10},
		{SGXGauge(cfg), 8},
	}
	for _, c := range cases {
		if len(c.suite.Specs) != c.want {
			t.Errorf("%s has %d workloads, want %d", c.suite.Name, len(c.suite.Specs), c.want)
		}
	}
}

func TestAllSpecsValid(t *testing.T) {
	cfg := testConfig()
	for _, s := range All(cfg) {
		for _, spec := range s.Specs {
			if err := spec.Validate(); err != nil {
				t.Errorf("%s/%s: %v", s.Name, spec.Name, err)
			}
			if _, err := workload.Compile(spec); err != nil {
				t.Errorf("%s/%s compile: %v", s.Name, spec.Name, err)
			}
		}
	}
}

func TestWorkloadNamesUniqueAndPrefixed(t *testing.T) {
	cfg := testConfig()
	for _, s := range All(cfg) {
		seen := map[string]bool{}
		for _, spec := range s.Specs {
			if !strings.HasPrefix(spec.Name, s.Name+".") {
				t.Errorf("workload %q not prefixed with suite %q", spec.Name, s.Name)
			}
			if seen[spec.Name] {
				t.Errorf("duplicate workload name %q", spec.Name)
			}
			seen[spec.Name] = true
		}
	}
}

func TestByName(t *testing.T) {
	cfg := testConfig()
	for _, name := range []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"} {
		s, err := ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := ByName("bogus", cfg); err == nil {
		t.Fatal("bogus suite accepted")
	}
}

func TestSeedsStableAcrossComposition(t *testing.T) {
	cfg := testConfig()
	// Workload i's seed must not depend on other workloads existing.
	a := seedFor(cfg, "spec17", 5)
	b := seedFor(cfg, "spec17", 5)
	if a != b {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor(cfg, "spec17", 5) == seedFor(cfg, "parsec", 5) {
		t.Fatal("suites share workload seeds")
	}
}

func TestRunSmallSuite(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	sm, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Suite != "nbench" {
		t.Fatalf("suite name %q", sm.Suite)
	}
	if len(sm.Workloads) != len(s.Specs) {
		t.Fatalf("measurements %d, want %d", len(sm.Workloads), len(s.Specs))
	}
	for i, m := range sm.Workloads {
		if m.Workload != s.Specs[i].Name {
			t.Fatalf("order broken: slot %d is %q, want %q", i, m.Workload, s.Specs[i].Name)
		}
		if m.Totals.Get(perf.CPUCycles) == 0 {
			t.Fatalf("%s: zero cycles", m.Workload)
		}
		if m.Series.Len() < cfg.Samples-1 {
			t.Fatalf("%s: %d samples, want ~%d", m.Workload, m.Series.Len(), cfg.Samples)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig()
	s := SGXGauge(cfg)
	a, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workloads {
		if a.Workloads[i].Totals != b.Workloads[i].Totals {
			t.Fatalf("%s: non-deterministic run", a.Workloads[i].Workload)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	bad := cfg
	bad.Instructions = 0
	if _, err := Run(s, bad); err == nil {
		t.Fatal("zero instructions accepted")
	}
	bad = cfg
	bad.Samples = 0
	if _, err := Run(s, bad); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Run(Suite{Name: "empty"}, cfg); err == nil {
		t.Fatal("empty suite accepted")
	}
}

func TestLigraWorkloadsAreSimilar(t *testing.T) {
	// The defining property of the Ligra model: its workloads share a
	// framework, so their counter vectors must be much closer to each
	// other than SGXGauge's are — the basis of Fig. 3a's cluster scores.
	cfg := testConfig()
	cfg.Instructions = 60_000
	ligra, err := Run(Ligra(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sgx, err := Run(SGXGauge(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize both suites jointly per counter (the paper's Eq. 9–10),
	// then compare each suite's mean pairwise distance. Ligra's shared
	// framework must make it markedly tighter than SGXGauge.
	lx := ligra.Matrix(perf.AllCounters())
	gx := sgx.Matrix(perf.AllCounters())
	m := len(lx[0])
	for j := 0; j < m; j++ {
		lo, hi := lx[0][j], lx[0][j]
		for _, row := range lx {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		for _, row := range gx {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		span := hi - lo
		for _, rows := range [][][]float64{lx, gx} {
			for _, row := range rows {
				if span > 0 {
					row[j] = (row[j] - lo) / span
				} else {
					row[j] = 0
				}
			}
		}
	}
	meanPairDist := func(x [][]float64) float64 {
		total, pairs := 0.0, 0
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				d := 0.0
				for k := range x[i] {
					diff := x[i][k] - x[j][k]
					d += diff * diff
				}
				total += d
				pairs++
			}
		}
		return total / float64(pairs)
	}
	lDist, gDist := meanPairDist(lx), meanPairDist(gx)
	if lDist >= gDist {
		t.Fatalf("ligra pairwise distance %v not below sgxgauge %v — framework sharing lost", lDist, gDist)
	}
}

func TestNbenchSteadyTrends(t *testing.T) {
	// Nbench's series must be flat: the delta variance of LLC misses in
	// the second half is close to the first half (no phase shift).
	cfg := testConfig()
	cfg.Instructions = 60_000
	sm, err := Run(Nbench(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sm.Workloads {
		series := m.Series.Series(perf.CPUCycles)
		if len(series) < 12 {
			t.Fatalf("%s: too few samples", m.Workload)
		}
		// Skip the first quarter: cold caches and first-touch faults make
		// a warmup transient that is not a phase.
		warm := series[len(series)/4:]
		half := len(warm) / 2
		m1, m2 := mean(warm[:half]), mean(warm[half:])
		if m1 == 0 {
			continue
		}
		ratio := m2 / m1
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("%s: cycle rate shifted %vx across halves — not steady", m.Workload, ratio)
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestPhaseShiftVisibleInPARSEC(t *testing.T) {
	// At least half the PARSEC workloads must show a detectable level
	// shift in some counter across phase boundaries.
	cfg := testConfig()
	cfg.Instructions = 60_000
	sm, err := Run(PARSEC(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	shifted := 0
	for _, m := range sm.Workloads {
		for _, c := range []perf.Counter{perf.LLCLoadMisses, perf.StallsMemAny, perf.BranchMisses, perf.DTLBLoadMisses} {
			series := m.Series.Series(c)
			half := len(series) / 2
			a, b := mean(series[:half]), mean(series[half:])
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo == 0 && hi > 0 {
				shifted++
				break
			}
			if lo > 0 && hi/lo > 1.5 {
				shifted++
				break
			}
		}
	}
	if shifted < len(sm.Workloads)/2 {
		t.Fatalf("only %d/%d PARSEC workloads show phase shifts", shifted, len(sm.Workloads))
	}
}

func TestLMbenchExtremes(t *testing.T) {
	// LMbench must contain both near-zero and extreme values for several
	// counters — the corner-covering property behind its CoverageScore.
	cfg := testConfig()
	cfg.Instructions = 60_000
	sm, err := Run(LMbench(cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []perf.Counter{perf.PageFaults, perf.LLCLoads, perf.BranchMisses, perf.StallsMemAny} {
		lo, hi := ^uint64(0), uint64(0)
		for _, m := range sm.Workloads {
			v := m.Totals.Get(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == 0 {
			t.Fatalf("%v: no workload exercises this counter", c)
		}
		if lo*20 > hi {
			t.Fatalf("%v: range [%d, %d] too narrow for a microbenchmark suite", c, lo, hi)
		}
	}
}

func TestRunAllOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 5_000
	cfg.Samples = 5
	all, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"}
	if len(all) != len(wantOrder) {
		t.Fatalf("RunAll returned %d suites", len(all))
	}
	for i, sm := range all {
		if sm.Suite != wantOrder[i] {
			t.Fatalf("slot %d is %q, want %q", i, sm.Suite, wantOrder[i])
		}
	}
}
