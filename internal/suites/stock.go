package suites

import (
	"bytes"
	"fmt"
)

// stockBuilders are the pre-refactor Go constructors of the six
// Table-III suites. They are no longer on the runtime resolution path —
// ByName/All build from the embedded declarative specs — but stay as
// the generation source for those specs (go generate ./internal/suites)
// and as the oracle of the golden equivalence test that pins the
// embedded specs bit-identical to them.
var stockBuilders = []struct {
	name  string
	build func(Config) Suite
}{
	{"parsec", PARSEC},
	{"spec17", SPEC17},
	{"ligra", Ligra},
	{"lmbench", LMbench},
	{"nbench", Nbench},
	{"sgxgauge", SGXGauge},
}

// StockSpecJSON renders the named stock suite's constructor output as
// the canonical indented spec document — the exact bytes of the
// embedded specs/<name>.json file. The gen tool writes these files and
// the drift test asserts the embedded copies still match.
func StockSpecJSON(name string) ([]byte, error) {
	for _, b := range stockBuilders {
		if b.name != name {
			continue
		}
		cfg := DefaultConfig()
		var buf bytes.Buffer
		if err := EncodeSuiteSpec(&buf, SpecOf(b.build(cfg), cfg)); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("suites: no stock builder %q", name)
}

// StockNames returns the six Table-III suite names in paper order.
func StockNames() []string {
	names := make([]string, len(stockBuilders))
	for i, b := range stockBuilders {
		names[i] = b.name
	}
	return names
}
