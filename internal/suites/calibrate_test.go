package suites

import (
	"testing"

	"perspector/internal/perf"
)

func TestCalibrateEqualizesCycles(t *testing.T) {
	cfg := testConfig()
	// Nbench mixes fast ALU kernels and memory-bound kernels, so raw
	// cycle counts differ; after calibration they must agree within 2x.
	s := Nbench(cfg)
	const target = 2_000_000
	cal, err := Calibrate(s, cfg, target, 1_000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Specs) != len(s.Specs) {
		t.Fatalf("workload count changed: %d", len(cal.Specs))
	}
	calCfg := cfg
	sm, err := Run(cal, calCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Note Run caps at spec.Instructions, which Calibrate rewrote.
	lo, hi := ^uint64(0), uint64(0)
	for _, m := range sm.Workloads {
		c := m.Totals.Get(perf.CPUCycles)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(hi)/float64(lo) > 2 {
		t.Fatalf("calibrated cycles span %d..%d (> 2x)", lo, hi)
	}
	// And they should bracket the target.
	if hi < target/2 || lo > target*2 {
		t.Fatalf("calibrated cycles %d..%d far from target %d", lo, hi, target)
	}
}

func TestCalibrateRespectsBounds(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	cal, err := Calibrate(s, cfg, 1_000_000_000, 1_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range cal.Specs {
		if spec.Instructions > 30_000 || spec.Instructions < 1_000 {
			t.Fatalf("%s budget %d outside bounds", spec.Name, spec.Instructions)
		}
	}
}

func TestCalibrateDoesNotMutateInput(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	orig := s.Specs[0].Instructions
	if _, err := Calibrate(s, cfg, 1_000_000, 1_000, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if s.Specs[0].Instructions != orig {
		t.Fatal("Calibrate mutated the input suite")
	}
}

func TestCalibrateErrors(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	if _, err := Calibrate(s, cfg, 0, 1, 10); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := Calibrate(s, cfg, 100, 0, 10); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := Calibrate(s, cfg, 100, 10, 5); err == nil {
		t.Fatal("max < min accepted")
	}
	if _, err := Calibrate(Suite{Name: "empty"}, cfg, 100, 1, 10); err == nil {
		t.Fatal("empty suite accepted")
	}
	bad := cfg
	bad.Instructions = 0
	if _, err := Calibrate(s, bad, 100, 1, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	cfg := testConfig()
	s := Nbench(cfg)
	a, err := Calibrate(s, cfg, 5_000_000, 1_000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(s, cfg, 5_000_000, 1_000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Specs {
		if a.Specs[i].Instructions != b.Specs[i].Instructions {
			t.Fatalf("non-deterministic calibration for %s", a.Specs[i].Name)
		}
	}
}
