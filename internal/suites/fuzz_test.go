package suites

import (
	"testing"
)

// FuzzDecodeSuiteSpec holds the never-panic line of the suite-spec
// decoder: suite specs cross a network boundary (perspectord inline
// submissions) and a file boundary (-suite-file), so malformed JSON,
// out-of-range weights and working sets, unknown generator kinds, and
// hostile nesting must all surface as errors — never as panics or
// unbounded allocations. Successfully decoded documents must then also
// survive Build under the default config.
func FuzzDecodeSuiteSpec(f *testing.F) {
	// The embedded registry specs seed the happy-path corpus.
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Near-miss seeds steer the fuzzer at the rejection paths.
	for _, s := range []string{
		``,
		`{}`,
		`{"version":1,"name":"x","workloads":[]}`,
		`{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":1}]}]}`,
		`{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":-3,"load_frac":2,"load_pattern":{"kind":"random","working_set":64}}]}]}`,
		`{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":1,"load_frac":0.5,"load_pattern":{"kind":"warp","working_set":64}}]}]}`,
		`{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":1,"load_frac":0.5,"load_pattern":{"kind":"alternating","a":{"kind":"random","working_set":64},"b":{"kind":"random","working_set":64},"period":-5}}]}]}`,
		`{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":1,"load_frac":0.5,"load_pattern":{"kind":"random","working_set":18446744073709551615}}]}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := UnmarshalSuiteSpec(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must build without error or panic.
		if _, err := sp.Build(DefaultConfig()); err != nil {
			t.Fatalf("decoded spec failed to build: %v", err)
		}
	})
}
