package suites

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"perspector/internal/par"
)

// TestEmbeddedSpecsMatchOracles is the drift gate for the generated
// spec files: every embedded specs/<name>.json must be byte-identical
// to a fresh rendering of its Go constructor oracle. When a constructor
// changes, run go generate ./internal/suites to refresh the files.
func TestEmbeddedSpecsMatchOracles(t *testing.T) {
	for _, name := range StockNames() {
		want, err := StockSpecJSON(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := specFS.ReadFile("specs/" + name + ".json")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("embedded specs/%s.json drifted from its constructor; run go generate ./internal/suites", name)
		}
	}
}

// TestRegistryOrderAndNames pins the listing contract: the stock six in
// paper order first, the spec-only families after, and the
// unknown-suite error derived from the same table.
func TestRegistryOrderAndNames(t *testing.T) {
	names := Names()
	wantPrefix := []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"}
	if len(names) < len(wantPrefix) {
		t.Fatalf("registry has %d suites, want at least %d", len(names), len(wantPrefix))
	}
	for i, w := range wantPrefix {
		if names[i] != w {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], w)
		}
	}
	for _, extra := range []string{"bigdatabench", "cpu2026"} {
		found := false
		for _, n := range names {
			if n == extra {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing spec-only suite %q", extra)
		}
	}
	cfg := DefaultConfig()
	if len(All(cfg)) != 6 {
		t.Errorf("All() returns %d suites, want the stock six", len(All(cfg)))
	}
	if got := len(Registered(cfg)); got != len(names) {
		t.Errorf("Registered() returns %d suites, Names() lists %d", got, len(names))
	}
	_, err := ByName("nosuch", cfg)
	if err == nil {
		t.Fatal("unknown suite accepted")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-suite error %q does not list %q", err, n)
		}
	}
}

// TestSuiteSpecRoundTrip: a registered spec survives
// Marshal→Unmarshal unchanged, and Build is deterministic.
func TestSuiteSpecRoundTrip(t *testing.T) {
	for _, e := range registry {
		data, err := MarshalSuiteSpec(e.spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", e.name, err)
		}
		back, err := UnmarshalSuiteSpec(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", e.name, err)
		}
		if !reflect.DeepEqual(e.spec, back) {
			t.Errorf("%s: spec round-trip drift", e.name)
		}
	}
}

// TestBuildMatchesConstructors: the registry materialization of every
// stock suite is structurally identical (DeepEqual: names, budgets,
// derived seeds, every phase and pattern parameter) to the constructor
// output, across several configs.
func TestBuildMatchesConstructors(t *testing.T) {
	cfgs := []Config{DefaultConfig(), {Instructions: 1000, Samples: 10, Seed: 7}, {Instructions: 123457, Samples: 3, Seed: 0xfeedface}}
	for _, cfg := range cfgs {
		for _, b := range stockBuilders {
			want := b.build(cfg)
			got, err := ByName(b.name, cfg)
			if err != nil {
				t.Fatalf("ByName(%s): %v", b.name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("suite %s (seed %d): registry build differs from constructor", b.name, cfg.Seed)
			}
		}
	}
}

// TestSpecGoldenEquivalence is the golden acceptance gate of the
// declarative-spec refactor: measuring each stock suite built from its
// embedded spec must be hex-float bit-identical (every counter total,
// every series sample) to measuring the pre-refactor constructor
// output — at several worker counts, with TotalsOnly off and on.
func TestSpecGoldenEquivalence(t *testing.T) {
	baseCfg := shardConfig()
	for _, workers := range []int{1, 3} {
		prev := par.SetWorkers(workers)
		for _, totalsOnly := range []bool{false, true} {
			cfg := baseCfg
			cfg.TotalsOnly = totalsOnly
			for _, b := range stockBuilders {
				oracle, err := Run(b.build(cfg), cfg)
				if err != nil {
					t.Fatalf("constructor %s: %v", b.name, err)
				}
				fromSpec, err := ByName(b.name, cfg)
				if err != nil {
					t.Fatalf("ByName(%s): %v", b.name, err)
				}
				got, err := Run(fromSpec, cfg)
				if err != nil {
					t.Fatalf("spec-built %s: %v", b.name, err)
				}
				label := "spec-vs-constructor"
				if totalsOnly {
					label += "/totals-only"
				}
				requireIdenticalMeasurements(t, label, oracle, got)
			}
		}
		par.SetWorkers(prev)
	}
}

// TestSpecOnlySuitesRun: the two PAPERS.md-derived families have no
// constructor — the registry is their only source — and must validate,
// build, and simulate end to end.
func TestSpecOnlySuitesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 20
	for _, name := range []string{"bigdatabench", "cpu2026"} {
		s, err := ByName(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Specs) < 8 {
			t.Errorf("%s: only %d workloads", name, len(s.Specs))
		}
		for i := range s.Specs {
			if err := s.Specs[i].Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if !strings.HasPrefix(s.Specs[i].Name, name+".") {
				t.Errorf("%s: workload %q not prefixed", name, s.Specs[i].Name)
			}
		}
		sm, err := Run(s, cfg)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		for i := range sm.Workloads {
			if sm.Workloads[i].Totals.Get(0) == 0 {
				t.Errorf("%s: workload %s measured zero cycles", name, sm.Workloads[i].Workload)
			}
		}
	}
}

// TestDecodeSuiteSpecRejects covers the spec-level failure modes that
// sit above the workload codec: version, naming, duplicates, emptiness.
func TestDecodeSuiteSpecRejects(t *testing.T) {
	phases := `[{"weight":1,"load_frac":0.2,"load_pattern":{"kind":"random","working_set":65536}}]`
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad version", `{"version":9,"name":"x","workloads":[{"name":"x.a","phases":` + phases + `}]}`, "version"},
		{"no name", `{"version":1,"name":"","workloads":[{"name":"x.a","phases":` + phases + `}]}`, "no name"},
		{"no workloads", `{"version":1,"name":"x","workloads":[]}`, "no workloads"},
		{"unnamed workload", `{"version":1,"name":"x","workloads":[{"name":"","phases":` + phases + `}]}`, "no name"},
		{"duplicate workload", `{"version":1,"name":"x","workloads":[{"name":"x.a","phases":` + phases + `},{"name":"x.a","phases":` + phases + `}]}`, "duplicate"},
		{"no phases", `{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[]}]}`, "phases"},
		{"unknown field", `{"version":1,"name":"x","suites":1,"workloads":[{"name":"x.a","phases":` + phases + `}]}`, "unknown field"},
		{"bad weight", `{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":-1,"load_frac":0.2,"load_pattern":{"kind":"random","working_set":65536}}]}]}`, "weight"},
		{"unknown kind", `{"version":1,"name":"x","workloads":[{"name":"x.a","phases":[{"weight":1,"load_frac":0.2,"load_pattern":{"kind":"gather","working_set":65536}}]}]}`, "unknown pattern kind"},
	}
	for _, tc := range cases {
		_, err := UnmarshalSuiteSpec([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecOfInverse: SpecOf is Build's inverse on every registered
// suite, including pinned per-workload budgets.
func TestSpecOfInverse(t *testing.T) {
	cfg := DefaultConfig()
	for _, e := range registry {
		s := e.build(cfg)
		back := SpecOf(s, cfg)
		rebuilt, err := back.Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if !reflect.DeepEqual(s, rebuilt) {
			t.Errorf("%s: SpecOf∘Build not identity", e.name)
		}
	}
}
