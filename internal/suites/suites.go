// Package suites models the six benchmark suites of the paper's Table III
// as synthetic workload specs for the uarch simulator. The models encode
// each suite's published character rather than its code: Ligra's workloads
// share a graph-loading framework and differ only in the compute kernel;
// LMbench's microbenchmarks each hammer one subsystem to an extreme;
// PARSEC and SGXGauge are phase-rich real-world applications; Nbench is a
// set of steady compute kernels; SPEC'17 spans 43 diverse int/fp
// workloads. Those structural properties — not the exact programs — are
// what Perspector's scores react to, so preserving them preserves the
// paper's findings.
package suites

import (
	"context"
	"fmt"
	"runtime/pprof"

	"perspector/internal/obs"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/rng"
	"perspector/internal/stage"
	"perspector/internal/uarch"
	"perspector/internal/workload"
)

// Config controls suite construction and execution.
type Config struct {
	// Instructions is the dynamic instruction budget per workload. The
	// paper tunes inputs so all workloads run for roughly the same time;
	// a fixed instruction budget is the simulator analogue.
	Instructions uint64
	// Samples is the number of PMU time-series samples per workload.
	Samples int
	// Seed drives all randomness; per-workload seeds are derived from it.
	Seed uint64
	// Machine configures the simulated core; SampleInterval is overridden
	// per workload from Samples.
	Machine uarch.MachineConfig
	// TotalsOnly skips the per-workload sampled series: scoring paths
	// that only read Totals (spread, compare, totals-only CSV) set it to
	// drop the series bookkeeping the measurement would discard. The
	// sample interval still ticks — the OS-noise model charges totals at
	// interval boundaries — so Totals stay bit-identical to a full run
	// with the same Samples count.
	TotalsOnly bool
}

// DefaultConfig returns the configuration used for the paper reproduction.
func DefaultConfig() Config {
	return Config{
		Instructions: 400_000,
		Samples:      100,
		Seed:         2023, // DATE'23
		Machine:      uarch.DefaultMachineConfig(),
	}
}

// Validate checks a Config.
func (c *Config) Validate() error {
	if c.Instructions == 0 {
		return fmt.Errorf("suites: zero instruction budget")
	}
	if c.Samples < 1 {
		return fmt.Errorf("suites: need at least one sample, got %d", c.Samples)
	}
	if uint64(c.Samples) > c.Instructions {
		return fmt.Errorf("suites: more samples (%d) than instructions (%d)", c.Samples, c.Instructions)
	}
	return nil
}

// Suite is a named set of workload specs.
type Suite struct {
	Name        string
	Description string
	Specs       []workload.Spec
}

// fnv1a hashes a suite name into the seed-derivation domain.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// seedFor derives the deterministic seed of workload i in suite name.
func seedFor(cfg Config, name string, i int) uint64 {
	return rng.ChildSeed(cfg.Seed^fnv1a(name), i)
}

// Run executes every workload of the suite on a fresh machine and collects
// totals and time series. Workloads run in parallel; results keep suite
// order and are fully deterministic (each workload owns its machine and
// RNG streams).
func Run(s Suite, cfg Config) (*perf.SuiteMeasurement, error) {
	return RunContext(context.Background(), s, cfg)
}

// RunContext is Run with end-to-end cancellation: ctx flows through the
// worker-pool fan-out into every simulator loop, so a cancelled context
// stops the measurement within one sample batch. Failures and
// cancellations surface as *stage.Error values tagged with the suite and
// (when one was executing) the workload.
func RunContext(ctx context.Context, s Suite, cfg Config) (*perf.SuiteMeasurement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(s.Specs) == 0 {
		return nil, fmt.Errorf("suites: suite %q has no workloads", s.Name)
	}
	sm := &perf.SuiteMeasurement{
		Suite:     s.Name,
		Workloads: make([]perf.Measurement, len(s.Specs)),
	}
	// The suite label rides the context into the pool workers (DoErrCtx
	// re-applies context labels per worker goroutine), so CPU-profile
	// samples of simulator work attribute to the suite being measured.
	ctx = pprof.WithLabels(ctx, pprof.Labels("suite", s.Name))
	// One machine per worker, held across every workload that worker
	// shards: Reconfigure resets it between items exactly as a pool Get
	// would, so results are bit-identical to per-workload Get/Put while
	// the pool lock is taken once per worker instead of once per workload.
	machines := make([]*uarch.Machine, par.Workers())
	err := par.DoErrCtx(ctx, len(s.Specs), func(ctx context.Context, worker, i int) error {
		wctx, span := obs.Start(ctx, "workload",
			obs.String("suite", s.Name), obs.String("workload", s.Specs[i].Name))
		span.SetWorker(worker)
		meas, err := runOne(wctx, s.Specs[i], cfg, &machines[worker])
		span.End()
		if err != nil {
			return stage.Wrap(stage.Measure, s.Name, s.Specs[i].Name, err)
		}
		sm.Workloads[i] = *meas
		return nil
	})
	for _, m := range machines {
		uarch.DefaultMachinePool.Put(m)
	}
	if err != nil {
		// Covers the path where ctx fired before any workload failed:
		// DoErr returns the bare ctx.Err(), which still deserves a tag.
		return nil, stage.Wrap(stage.Measure, s.Name, "", err)
	}
	return sm, nil
}

// runOne measures one workload on the worker's machine. slot holds the
// machine the calling worker keeps across workloads: reconfigured in
// place when the structural geometry matches, replaced through the shared
// pool otherwise (a reused machine is Reset either way, so it is
// indistinguishable from a fresh one, and the 12288-set L3 allocation is
// paid once per worker instead of once per workload). The caller returns
// slot machines to the pool after the fan-out.
func runOne(ctx context.Context, spec workload.Spec, cfg Config, slot **uarch.Machine) (*perf.Measurement, error) {
	prog, err := workload.Compile(spec)
	if err != nil {
		return nil, err
	}
	mc := cfg.Machine
	mc.SampleInterval = spec.Instructions / uint64(cfg.Samples)
	if mc.SampleInterval == 0 {
		mc.SampleInterval = 1
	}
	mc.CountersOnly = cfg.TotalsOnly
	m := *slot
	if m == nil || !m.Reconfigure(mc) {
		uarch.DefaultMachinePool.Put(m) // structural mismatch; Put(nil) is a no-op
		if m, err = uarch.DefaultMachinePool.Get(mc); err != nil {
			*slot = nil
			return nil, err
		}
		*slot = m
	}
	// pprof.Do scopes the workload/stage labels to exactly the simulator
	// run, so /debug/pprof/profile samples attribute to pipeline work.
	var meas *perf.Measurement
	pprof.Do(ctx, pprof.Labels("workload", spec.Name, "stage", "measure"), func(ctx context.Context) {
		meas, err = m.RunContext(ctx, prog, spec.Instructions)
	})
	return meas, err
}

// RunAll executes every Table-III suite and returns the measurements in
// paper order. Suites fan out in parallel on top of Run's per-workload
// fan-out; the first error in suite order wins, as in the serial loop.
func RunAll(cfg Config) ([]*perf.SuiteMeasurement, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext is RunAll with cancellation (see RunContext).
func RunAllContext(ctx context.Context, cfg Config) ([]*perf.SuiteMeasurement, error) {
	all := All(cfg)
	out := make([]*perf.SuiteMeasurement, len(all))
	err := par.DoErr(ctx, len(all), func(_, i int) error {
		sm, err := RunContext(ctx, all[i], cfg)
		if err != nil {
			return err
		}
		out[i] = sm
		return nil
	})
	if err != nil {
		return nil, stage.Wrap(stage.Measure, "", "", err)
	}
	return out, nil
}

// Sizes used across suite definitions, named for readability.
const (
	kib = uint64(1) << 10
	mib = uint64(1) << 20
)
