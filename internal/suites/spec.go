// Declarative suite specs: the serialized form of a Suite. A spec file
// names the suite and lists its workloads; each workload is a phase list
// in the internal/workload codec format. Instruction budgets and
// per-workload seeds are *derived*, not stored — Build assigns
// cfg.Instructions (unless a workload pins its own budget) and
// seedFor(cfg, suite, i), exactly as the retired Go constructors did —
// so one spec file measures identically at any -instr/-samples/-seed
// and the six embedded stock specs compile bit-identically to their
// constructors (pinned by the golden equivalence test).
package suites

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"perspector/internal/workload"
)

// SpecVersion is the suite-spec document version. Decoders accept
// exactly this version.
const SpecVersion = 1

// MaxSuiteSpecBytes bounds one suite-spec document. It covers the
// largest stock suite (spec17, 43 workloads) roughly forty times over
// while keeping hostile perspectord uploads from ballooning memory
// before validation rejects them.
const MaxSuiteSpecBytes = 4 << 20

// SuiteSpec is a decoded suite-spec document: a declarative Suite whose
// workload seeds and default instruction budgets bind at Build time.
type SuiteSpec struct {
	Name        string
	Description string
	Workloads   []WorkloadSpec
}

// WorkloadSpec is one workload entry of a SuiteSpec.
type WorkloadSpec struct {
	// Name is the full workload name (e.g. "parsec.blackscholes").
	Name string
	// Instructions, when non-zero, pins this workload's dynamic
	// instruction budget; zero means "use cfg.Instructions".
	Instructions uint64
	// Phases is the workload's phase list.
	Phases []workload.Phase
}

// Serialized forms.
type suiteSpecJSON struct {
	Version     int                `json:"version"`
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Workloads   []workloadSpecJSON `json:"workloads"`
}

type workloadSpecJSON struct {
	Name         string          `json:"name"`
	Instructions uint64          `json:"instructions,omitempty"`
	Phases       json.RawMessage `json:"phases"`
}

// MarshalSuiteSpec renders sp as its versioned JSON document.
func MarshalSuiteSpec(sp *SuiteSpec) ([]byte, error) {
	env := suiteSpecJSON{
		Version:     SpecVersion,
		Name:        sp.Name,
		Description: sp.Description,
		Workloads:   make([]workloadSpecJSON, len(sp.Workloads)),
	}
	for i, w := range sp.Workloads {
		phases, err := workload.MarshalPhases(w.Phases)
		if err != nil {
			return nil, fmt.Errorf("suites: workload %q: %w", w.Name, err)
		}
		env.Workloads[i] = workloadSpecJSON{Name: w.Name, Instructions: w.Instructions, Phases: phases}
	}
	return json.Marshal(env)
}

// EncodeSuiteSpec writes the indented JSON document of sp — the exact
// byte form the embedded spec files and the gen tool use, so
// regeneration is reproducible.
func EncodeSuiteSpec(w io.Writer, sp *SuiteSpec) error {
	data, err := MarshalSuiteSpec(sp)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// DecodeSuiteSpec reads and validates one suite-spec document. Decoding
// is strict — unknown fields, unknown generator kinds, out-of-bound
// pattern parameters, duplicate or empty workload names, and trailing
// input are errors, never panics (the fuzz target FuzzDecodeSuiteSpec
// holds the never-panic line). The returned spec builds cleanly under
// any valid Config.
func DecodeSuiteSpec(r io.Reader) (*SuiteSpec, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxSuiteSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("suites: spec: %w", err)
	}
	if len(data) > MaxSuiteSpecBytes {
		return nil, fmt.Errorf("suites: spec document exceeds %d bytes", MaxSuiteSpecBytes)
	}
	return UnmarshalSuiteSpec(data)
}

// UnmarshalSuiteSpec is DecodeSuiteSpec over an in-memory document.
func UnmarshalSuiteSpec(data []byte) (*SuiteSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env suiteSpecJSON
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("suites: spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("suites: spec: trailing data after document")
	}
	if env.Version != SpecVersion {
		return nil, fmt.Errorf("suites: spec version %d not supported (want %d)", env.Version, SpecVersion)
	}
	if env.Name == "" {
		return nil, fmt.Errorf("suites: spec has no name")
	}
	if len(env.Workloads) == 0 {
		return nil, fmt.Errorf("suites: spec %q has no workloads", env.Name)
	}
	sp := &SuiteSpec{
		Name:        env.Name,
		Description: env.Description,
		Workloads:   make([]WorkloadSpec, len(env.Workloads)),
	}
	seen := make(map[string]bool, len(env.Workloads))
	for i, w := range env.Workloads {
		if w.Name == "" {
			return nil, fmt.Errorf("suites: spec %q: workload %d has no name", env.Name, i)
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("suites: spec %q: duplicate workload %q", env.Name, w.Name)
		}
		seen[w.Name] = true
		if len(w.Phases) == 0 {
			return nil, fmt.Errorf("suites: spec %q: workload %q has no phases", env.Name, w.Name)
		}
		phases, err := workload.UnmarshalPhases(w.Phases)
		if err != nil {
			return nil, fmt.Errorf("suites: spec %q: workload %q: %w", env.Name, w.Name, err)
		}
		sp.Workloads[i] = WorkloadSpec{Name: w.Name, Instructions: w.Instructions, Phases: phases}
		// Semantic phase validation through the workload layer, with a
		// placeholder budget so a derived-budget workload still validates.
		probe := workload.Spec{Name: w.Name, Instructions: 1, Phases: phases}
		if w.Instructions != 0 {
			probe.Instructions = w.Instructions
		}
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("suites: spec %q: %w", env.Name, err)
		}
	}
	return sp, nil
}

// LoadSpecFile reads a suite-spec document from path.
func LoadSpecFile(path string) (*SuiteSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("suites: %w", err)
	}
	defer f.Close()
	sp, err := DecodeSuiteSpec(f)
	if err != nil {
		return nil, fmt.Errorf("suites: %s: %w", path, err)
	}
	return sp, nil
}

// Build materializes the suite under cfg: every workload gets
// cfg.Instructions (unless it pins its own budget) and the same derived
// seed the Go constructors assigned — seedFor(cfg, suite name, index) —
// so an embedded stock spec builds a Suite reflect.DeepEqual to its
// pre-refactor constructor output.
func (sp *SuiteSpec) Build(cfg Config) (Suite, error) {
	s := Suite{Name: sp.Name, Description: sp.Description}
	for i, w := range sp.Workloads {
		instr := w.Instructions
		if instr == 0 {
			instr = cfg.Instructions
		}
		spec := workload.Spec{
			Name:         w.Name,
			Instructions: instr,
			Seed:         seedFor(cfg, sp.Name, i),
			Phases:       w.Phases,
		}
		if err := spec.Validate(); err != nil {
			return Suite{}, fmt.Errorf("suites: spec %q: %w", sp.Name, err)
		}
		s.Specs = append(s.Specs, spec)
	}
	return s, nil
}

// SpecOf reverses Build: it renders a materialized Suite back into its
// declarative form, dropping the derived fields (instruction budgets
// matching cfg.Instructions and all seeds). The gen tool and the
// embedded-spec drift test both use it to render the stock constructors.
func SpecOf(s Suite, cfg Config) *SuiteSpec {
	sp := &SuiteSpec{Name: s.Name, Description: s.Description}
	for _, w := range s.Specs {
		ws := WorkloadSpec{Name: w.Name, Phases: w.Phases}
		if w.Instructions != cfg.Instructions {
			ws.Instructions = w.Instructions
		}
		sp.Workloads = append(sp.Workloads, ws)
	}
	return sp
}
