package suites

// Golden bit-identity of the sharded suite simulation: fanning workloads
// over the worker pool (with one machine held per worker, see RunContext)
// must produce measurements — totals AND sampled series — bit-identical
// to the serial path at every worker count, and the counters-only fast
// path must reproduce the full run's totals exactly. These tests pin both
// properties for all six stock suites; mismatches print float64 values in
// hex so a single reassociated bit is visible.

import (
	"math"
	"testing"

	"perspector/internal/par"
	"perspector/internal/perf"
)

// shardConfig is the reduced-budget configuration of the root
// determinism tests: big enough that every counter carries signal, small
// enough that measuring six suites at several worker counts stays
// test-sized.
func shardConfig() Config {
	cfg := DefaultConfig()
	cfg.Instructions = 40_000
	cfg.Samples = 50
	return cfg
}

// measureAllAt measures every stock suite with n workers.
func measureAllAt(t *testing.T, cfg Config, n int) []*perf.SuiteMeasurement {
	t.Helper()
	prev := par.SetWorkers(n)
	defer par.SetWorkers(prev)
	out := make([]*perf.SuiteMeasurement, 0, 6)
	for _, s := range All(cfg) {
		sm, err := Run(s, cfg)
		if err != nil {
			t.Fatalf("suite %s at %d workers: %v", s.Name, n, err)
		}
		out = append(out, sm)
	}
	return out
}

// requireIdenticalMeasurements compares two suite measurements
// bit-for-bit: every counter total and every series sample.
func requireIdenticalMeasurements(t *testing.T, label string, want, got *perf.SuiteMeasurement) {
	t.Helper()
	if len(want.Workloads) != len(got.Workloads) {
		t.Fatalf("%s: suite %s: %d workloads vs %d",
			label, want.Suite, len(want.Workloads), len(got.Workloads))
	}
	for i := range want.Workloads {
		w, g := &want.Workloads[i], &got.Workloads[i]
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			if w.Totals.Get(c) != g.Totals.Get(c) {
				t.Errorf("%s: suite %s workload %s counter %v: total %d != %d",
					label, want.Suite, w.Workload, c, w.Totals.Get(c), g.Totals.Get(c))
			}
			ws, gs := w.Series.Samples[c], g.Series.Samples[c]
			if len(ws) != len(gs) {
				t.Errorf("%s: suite %s workload %s counter %v: %d samples vs %d",
					label, want.Suite, w.Workload, c, len(ws), len(gs))
				continue
			}
			for j := range ws {
				if math.Float64bits(ws[j]) != math.Float64bits(gs[j]) {
					t.Errorf("%s: suite %s workload %s counter %v sample %d: %x != %x",
						label, want.Suite, w.Workload, c, j, ws[j], gs[j])
				}
			}
		}
	}
}

// TestShardedMatchesSerialGolden pins the sharded simulation to the
// serial one: workers=1 is the golden reference, and 2, 3 and 8 workers
// must reproduce every total and every sample of all six suites exactly.
func TestShardedMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites at four worker counts")
	}
	cfg := shardConfig()
	serial := measureAllAt(t, cfg, 1)
	for _, n := range []int{2, 3, 8} {
		sharded := measureAllAt(t, cfg, n)
		for i := range serial {
			requireIdenticalMeasurements(t, "workers="+itoa(n), serial[i], sharded[i])
		}
	}
}

// TestCountersOnlyMatchesFullTotals pins the counters-only fast path:
// with TotalsOnly set the measurement must carry no series — that is the
// point — while every counter total stays bit-identical to the full
// sampled run (the OS-noise model still ticks at the same interval
// boundaries, so skipping the series bookkeeping must not move a single
// count).
func TestCountersOnlyMatchesFullTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites twice")
	}
	cfg := shardConfig()
	full := measureAllAt(t, cfg, 1)
	totalsCfg := cfg
	totalsCfg.TotalsOnly = true
	only := measureAllAt(t, totalsCfg, 4)
	for i := range full {
		w, o := full[i], only[i]
		if len(w.Workloads) != len(o.Workloads) {
			t.Fatalf("suite %s: %d workloads vs %d", w.Suite, len(w.Workloads), len(o.Workloads))
		}
		for j := range w.Workloads {
			fw, ow := &w.Workloads[j], &o.Workloads[j]
			if ow.Series.Len() != 0 {
				t.Errorf("suite %s workload %s: counters-only run carries %d samples",
					w.Suite, fw.Workload, ow.Series.Len())
			}
			if fw.Totals != ow.Totals {
				t.Errorf("suite %s workload %s: counters-only totals diverge:\n  full %v\n  only %v",
					w.Suite, fw.Workload, fw.Totals, ow.Totals)
			}
		}
	}
}

// itoa avoids strconv for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
