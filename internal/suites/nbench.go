package suites

import "perspector/internal/workload"

// Nbench models the BYTE Nbench kernels: small, steady, compute-bound
// loops over modest working sets. They execute a single phase with a
// stable counter profile, so their time series are flat (the Fig. 5
// contrast with SPEC'17) and their counter vectors cluster (Fig. 4).
func Nbench(cfg Config) Suite {
	s := Suite{
		Name: "nbench",
		Description: "Steady compute kernels testing integer, floating " +
			"point, and memory operation speed.",
	}
	add := func(name string, ph workload.Phase) {
		ph.Name = "kernel"
		ph.Weight = 1
		s.Specs = append(s.Specs, workload.Spec{
			Name:         "nbench." + name,
			Instructions: cfg.Instructions,
			Seed:         seedFor(cfg, "nbench", len(s.Specs)),
			Phases:       []workload.Phase{ph},
		})
	}

	add("numeric-sort", workload.Phase{
		LoadFrac: 0.3, StoreFrac: 0.15, BranchFrac: 0.18,
		LoadPattern:      workload.Random{WorkingSet: 64 * kib},
		BranchRegularity: 0.6, BranchTakenProb: 0.5, BranchSites: 8,
	})
	add("string-sort", workload.Phase{
		LoadFrac: 0.32, StoreFrac: 0.14, BranchFrac: 0.2,
		LoadPattern:      workload.Random{WorkingSet: 96 * kib},
		BranchRegularity: 0.55, BranchTakenProb: 0.5, BranchSites: 10,
	})
	add("bitfield", workload.Phase{
		LoadFrac: 0.22, StoreFrac: 0.2, BranchFrac: 0.12,
		LoadPattern:      workload.Sequential{WorkingSet: 32 * kib},
		BranchRegularity: 0.92, BranchTakenProb: 0.8, BranchSites: 4,
	})
	add("fp-emulation", workload.Phase{
		LoadFrac: 0.15, StoreFrac: 0.08, BranchFrac: 0.22,
		LoadPattern:      workload.Sequential{WorkingSet: 16 * kib},
		BranchRegularity: 0.75, BranchTakenProb: 0.6, BranchSites: 14,
	})
	add("fourier", workload.Phase{
		LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.08,
		LoadPattern:      workload.Streams{WorkingSet: 24 * kib, Count: 2},
		BranchRegularity: 0.95, BranchTakenProb: 0.9, BranchSites: 3,
	})
	add("assignment", workload.Phase{
		LoadFrac: 0.35, StoreFrac: 0.1, BranchFrac: 0.16,
		LoadPattern:      workload.Random{WorkingSet: 128 * kib},
		BranchRegularity: 0.65, BranchTakenProb: 0.55, BranchSites: 8,
	})
	add("idea", workload.Phase{
		LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.06,
		LoadPattern:      workload.Sequential{WorkingSet: 8 * kib},
		BranchRegularity: 0.97, BranchTakenProb: 0.95, BranchSites: 2,
	})
	add("huffman", workload.Phase{
		LoadFrac: 0.3, StoreFrac: 0.12, BranchFrac: 0.24,
		LoadPattern:      workload.HotCold{HotSet: 4 * kib, ColdSet: 64 * kib, HotFrac: 0.7},
		BranchRegularity: 0.5, BranchTakenProb: 0.45, BranchSites: 16,
	})
	add("neural-net", workload.Phase{
		LoadFrac: 0.34, StoreFrac: 0.12, BranchFrac: 0.06,
		LoadPattern:      workload.Streams{WorkingSet: 192 * kib, Count: 3},
		BranchRegularity: 0.96, BranchTakenProb: 0.93, BranchSites: 2,
	})
	add("lu-decomposition", workload.Phase{
		LoadFrac: 0.36, StoreFrac: 0.14, BranchFrac: 0.07,
		LoadPattern:      workload.Streams{WorkingSet: 256 * kib, Count: 2},
		BranchRegularity: 0.95, BranchTakenProb: 0.92, BranchSites: 3,
	})
	return s
}
