package suites

import (
	"context"
	"fmt"

	"perspector/internal/perf"
	"perspector/internal/uarch"
)

// Calibrate rescales each workload's instruction budget so that every
// workload consumes approximately targetCycles CPU cycles — the simulator
// analogue of the paper's §IV methodology: "we ensure that the execution
// times of all the workloads are roughly the same by tweaking the input
// values".
//
// Each workload is probed once at the cfg budget to estimate its CPI;
// the returned suite carries Instructions = targetCycles / CPI, clamped
// to [minInstr, maxInstr]. The probe is deterministic, so calibration is
// reproducible.
func Calibrate(s Suite, cfg Config, targetCycles, minInstr, maxInstr uint64) (Suite, error) {
	if targetCycles == 0 {
		return Suite{}, fmt.Errorf("suites: Calibrate with zero target cycles")
	}
	if minInstr == 0 || maxInstr < minInstr {
		return Suite{}, fmt.Errorf("suites: Calibrate bounds [%d, %d] invalid", minInstr, maxInstr)
	}
	if err := cfg.Validate(); err != nil {
		return Suite{}, err
	}
	if len(s.Specs) == 0 {
		return Suite{}, fmt.Errorf("suites: Calibrate on empty suite %q", s.Name)
	}

	out := Suite{Name: s.Name, Description: s.Description}
	out.Specs = append(out.Specs, s.Specs...)

	// Probe with sampling disabled and the series skipped entirely: only
	// the cycle total matters. CPI is budget-dependent (cold-start faults
	// dominate short runs), so the estimate is refined over a few rounds:
	// each round re-probes at the previous round's budget, converging on
	// the fixed point cycles(budget) ≈ targetCycles. The probes run
	// serially, so one machine slot serves them all.
	const rounds = 3
	probeCfg := cfg
	probeCfg.Samples = 1
	probeCfg.TotalsOnly = true
	var slot *uarch.Machine
	defer func() { uarch.DefaultMachinePool.Put(slot) }()
	for i := range out.Specs {
		for r := 0; r < rounds; r++ {
			meas, err := runOne(context.Background(), out.Specs[i], probeCfg, &slot)
			if err != nil {
				return Suite{}, fmt.Errorf("suites: Calibrate probe %q: %w", out.Specs[i].Name, err)
			}
			cycles := meas.Totals.Get(perf.CPUCycles)
			if cycles == 0 {
				return Suite{}, fmt.Errorf("suites: Calibrate probe %q recorded zero cycles", out.Specs[i].Name)
			}
			cpi := float64(cycles) / float64(out.Specs[i].Instructions)
			budget := uint64(float64(targetCycles) / cpi)
			if budget < minInstr {
				budget = minInstr
			}
			if budget > maxInstr {
				budget = maxInstr
			}
			prev := out.Specs[i].Instructions
			out.Specs[i].Instructions = budget
			// Converged within 5 %: stop early.
			diff := int64(budget) - int64(prev)
			if diff < 0 {
				diff = -diff
			}
			if uint64(diff)*20 <= prev {
				break
			}
		}
	}
	return out, nil
}
