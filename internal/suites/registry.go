// The suite registry: every suite Perspector can resolve by name, built
// from embedded declarative spec files. The six Table-III stock suites
// come first in paper order — they remain the All() set every paper
// figure and default compare run reads — followed by the spec-only
// families (no Go constructor exists for those; the JSON document *is*
// the suite). Listings, CLI help, and the unknown-suite error all derive
// from this one table, so a newly added spec file can never drift out of
// them.
package suites

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:generate go run ./gen

//go:embed specs/*.json
var specFS embed.FS

type registryEntry struct {
	name string
	spec *SuiteSpec
}

// registry holds every embedded suite spec: stock six first in paper
// order, then the extra families sorted by name.
var registry = loadRegistry()

func loadRegistry() []registryEntry {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("suites: embedded specs: %v", err))
	}
	byName := make(map[string]*SuiteSpec, len(entries))
	for _, e := range entries {
		data, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("suites: embedded spec %s: %v", e.Name(), err))
		}
		sp, err := UnmarshalSuiteSpec(data)
		if err != nil {
			panic(fmt.Sprintf("suites: embedded spec %s: %v", e.Name(), err))
		}
		want := strings.TrimSuffix(e.Name(), ".json")
		if sp.Name != want {
			panic(fmt.Sprintf("suites: embedded spec %s names suite %q", e.Name(), sp.Name))
		}
		byName[sp.Name] = sp
	}
	var out []registryEntry
	for _, b := range stockBuilders {
		sp, ok := byName[b.name]
		if !ok {
			panic(fmt.Sprintf("suites: stock suite %q has no embedded spec", b.name))
		}
		out = append(out, registryEntry{name: b.name, spec: sp})
		delete(byName, b.name)
	}
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, registryEntry{name: name, spec: byName[name]})
	}
	return out
}

// Names returns every registered suite name, stock six first in paper
// order. CLI help, server listings, and the unknown-suite error text all
// derive from it.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// NameList renders the registered names for help and error text.
func NameList() string {
	return strings.Join(Names(), ", ")
}

// build materializes a registry entry; embedded specs were validated at
// load, so a Build failure here is a programming error.
func (e registryEntry) build(cfg Config) Suite {
	s, err := e.spec.Build(cfg)
	if err != nil {
		panic(fmt.Sprintf("suites: embedded suite %q: %v", e.name, err))
	}
	return s
}

// All returns the six Table-III suites in paper order, built from their
// embedded declarative specs (bit-identical to the retired constructor
// path — see the golden equivalence test).
func All(cfg Config) []Suite {
	out := make([]Suite, len(stockBuilders))
	for i := range stockBuilders {
		out[i] = registry[i].build(cfg)
	}
	return out
}

// Registered returns every registered suite — the stock six plus the
// spec-only families — in listing order.
func Registered(cfg Config) []Suite {
	out := make([]Suite, len(registry))
	for i, e := range registry {
		out[i] = e.build(cfg)
	}
	return out
}

// ByName returns the named registered suite. The error text lists every
// registered name, so it can never drift from the registry contents.
func ByName(name string, cfg Config) (Suite, error) {
	for _, e := range registry {
		if e.name == name {
			return e.build(cfg), nil
		}
	}
	return Suite{}, fmt.Errorf("suites: unknown suite %q (registered: %s)", name, NameList())
}

// SpecByName returns the named suite's declarative spec.
func SpecByName(name string) (*SuiteSpec, bool) {
	for _, e := range registry {
		if e.name == name {
			return e.spec, true
		}
	}
	return nil, false
}
