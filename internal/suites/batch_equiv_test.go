package suites

import (
	"reflect"
	"testing"

	"perspector/internal/uarch"
	"perspector/internal/workload"
)

// legacyProgram wraps a compiled workload but hides its NextBatch method,
// forcing the machine onto the per-instruction Next fallback path.
type legacyProgram struct {
	p uarch.Program
}

func (l *legacyProgram) Name() string              { return l.p.Name() }
func (l *legacyProgram) Next(in *uarch.Instr) bool { return l.p.Next(in) }
func (l *legacyProgram) Reset()                    { l.p.Reset() }

// TestBatchedPathMatchesLegacyNext pins the tentpole equivalence claim:
// for every workload of all six suites, the batched NextBatch execution
// path produces totals AND sampled series bit-identical to the legacy
// one-instruction-at-a-time path. Budgets are reduced so the whole matrix
// stays fast; the golden tests cover full-budget values separately.
func TestBatchedPathMatchesLegacyNext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	for _, s := range All(cfg) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, spec := range s.Specs {
				batched, err := workload.Compile(spec)
				if err != nil {
					t.Fatalf("compile %s: %v", spec.Name, err)
				}
				legacy, err := workload.Compile(spec)
				if err != nil {
					t.Fatalf("compile %s: %v", spec.Name, err)
				}
				if _, ok := uarch.Program(batched).(uarch.BatchProgram); !ok {
					t.Fatalf("%s: compiled program does not implement BatchProgram", spec.Name)
				}
				mc := cfg.Machine
				mc.SampleInterval = spec.Instructions / uint64(cfg.Samples)
				if mc.SampleInterval == 0 {
					mc.SampleInterval = 1
				}
				mb, err := uarch.NewMachine(mc)
				if err != nil {
					t.Fatal(err)
				}
				ml, err := uarch.NewMachine(mc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := mb.Run(batched, spec.Instructions)
				if err != nil {
					t.Fatalf("batched run %s: %v", spec.Name, err)
				}
				want, err := ml.Run(&legacyProgram{p: legacy}, spec.Instructions)
				if err != nil {
					t.Fatalf("legacy run %s: %v", spec.Name, err)
				}
				if got.Totals != want.Totals {
					t.Errorf("%s: totals diverge between batched and legacy paths\nbatched: %v\nlegacy:  %v",
						spec.Name, got.Totals, want.Totals)
				}
				if got.Series.Interval != want.Series.Interval {
					t.Errorf("%s: sample interval diverges: %d vs %d",
						spec.Name, got.Series.Interval, want.Series.Interval)
				}
				if !reflect.DeepEqual(got.Series.Samples, want.Series.Samples) {
					t.Errorf("%s: sampled series diverge between batched and legacy paths", spec.Name)
				}
			}
		})
	}
}
