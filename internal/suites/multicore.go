package suites

import (
	"context"
	"fmt"

	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/rng"
	"perspector/internal/stage"
	"perspector/internal/uarch"
	"perspector/internal/workload"
)

// RunMulticore executes every workload of the suite as `threads` parallel
// process clones on a shared-L3 multicore machine (private
// L1/L2/TLB/predictor per core). Each clone gets an independent seed and
// a private address-space offset, so the clones are homologous processes
// with disjoint footprints contending for the shared LLC — the rate-style
// multiprogrammed setup (cf. SPECrate). Counter totals and series
// aggregate across threads, like system-wide `perf stat -a`.
//
// This is an extension beyond the paper's single-threaded methodology;
// use Run for the paper reproduction.
func RunMulticore(s Suite, cfg Config, threads int) (*perf.SuiteMeasurement, error) {
	return RunMulticoreContext(context.Background(), s, cfg, threads)
}

// RunMulticoreContext is RunMulticore with cancellation (see RunContext).
func RunMulticoreContext(ctx context.Context, s Suite, cfg Config, threads int) (*perf.SuiteMeasurement, error) {
	if threads < 1 {
		return nil, fmt.Errorf("suites: RunMulticore with %d threads", threads)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(s.Specs) == 0 {
		return nil, fmt.Errorf("suites: suite %q has no workloads", s.Name)
	}
	sm := &perf.SuiteMeasurement{
		Suite:     s.Name,
		Workloads: make([]perf.Measurement, len(s.Specs)),
	}

	err := par.DoErr(ctx, len(s.Specs), func(_, i int) error {
		meas, err := runOneMulticore(ctx, s.Specs[i], cfg, threads)
		if err != nil {
			return stage.Wrap(stage.Measure, s.Name, s.Specs[i].Name, err)
		}
		sm.Workloads[i] = *meas
		return nil
	})
	if err != nil {
		return nil, stage.Wrap(stage.Measure, s.Name, "", err)
	}
	return sm, nil
}

func runOneMulticore(ctx context.Context, spec workload.Spec, cfg Config, threads int) (*perf.Measurement, error) {
	progs := make([]uarch.Program, threads)
	for th := 0; th < threads; th++ {
		threadSpec := spec
		threadSpec.Seed = rng.ChildSeed(spec.Seed, th+1)
		threadSpec.BaseOffset = uint64(th) << 40 // disjoint address spaces
		p, err := workload.Compile(threadSpec)
		if err != nil {
			return nil, err
		}
		progs[th] = p
	}
	mc := cfg.Machine
	// Sample against the aggregate instruction count so the series length
	// stays cfg.Samples regardless of the thread count.
	total := spec.Instructions * uint64(threads)
	mc.SampleInterval = total / uint64(cfg.Samples)
	if mc.SampleInterval == 0 {
		mc.SampleInterval = 1
	}
	m, err := uarch.NewMultiCore(mc, threads)
	if err != nil {
		return nil, err
	}
	return m.RunParallelContext(ctx, progs, spec.Instructions)
}
