// Command gen regenerates the embedded stock-suite spec files
// (internal/suites/specs/<name>.json) from the Go constructor oracles.
// Run it via go generate ./internal/suites after changing a stock
// constructor; the drift test TestEmbeddedSpecsMatchOracles fails until
// the files are regenerated.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"perspector/internal/suites"
)

func main() {
	dir := "specs"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
	for _, name := range suites.StockNames() {
		data, err := suites.StockSpecJSON(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gen:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
