package suites

import "perspector/internal/workload"

// spec17Row captures the modelled character of one SPEC CPU2017 benchmark.
// ws is the dominant working set; the archetype selects the phase
// structure. Speed (_s) variants reuse the rate archetype with a scaled
// working set, mirroring the larger inputs of the speed suite.
type spec17Row struct {
	name      string
	archetype func(ws uint64) []workload.Phase
	ws        uint64
}

// SPEC17 models SPEC CPU2017's 43 workloads (rate + speed). The
// characters follow the published characterization literature
// (Limaye & Adegbija ISPASS'18; Panda et al. HPCA'17): mcf/omnetpp are
// pointer-chasing and TLB-hostile, lbm/bwaves are streaming
// bandwidth-bound, deepsjeng/leela/exchange2 are branchy and
// cache-resident, xz alternates compression phases, the fp codes are
// multi-array stencil sweeps. Working sets span four orders of magnitude,
// giving SPEC'17 the well-spread coverage the paper reports (best
// SpreadScore; best CoverageScore under TLB-only events).
func SPEC17(cfg Config) Suite {
	rows := spec17Rows()
	s := Suite{
		Name:        "spec17",
		Description: "SPEC CPU2017: 43 diverse CPU- and memory-intensive workloads.",
	}
	for i, r := range rows {
		s.Specs = append(s.Specs, workload.Spec{
			Name:         "spec17." + r.name,
			Instructions: cfg.Instructions,
			Seed:         seedFor(cfg, "spec17", i),
			Phases:       jitterPhases(r.archetype(r.ws), i),
		})
	}
	return s
}

// jitterPhases applies a deterministic per-workload perturbation to an
// archetype's instruction mix and phase weights. Benchmarks sharing an
// archetype (e.g. a rate/speed pair, or the four stencil codes) are
// similar but not identical programs; without jitter they would collapse
// onto the same point of the counter space and fake clusters the real
// suite does not have. Low-discrepancy (golden-ratio) offsets keep the
// perturbations well spread.
func jitterPhases(phases []workload.Phase, idx int) []workload.Phase {
	const phi = 0.6180339887498949
	frac := func(k int) float64 {
		v := float64(idx*7+k+1) * phi
		return v - float64(int(v)) // in [0,1)
	}
	out := make([]workload.Phase, len(phases))
	for p := range phases {
		ph := phases[p]
		scale := func(v float64, k int) float64 {
			s := v * (0.82 + 0.36*frac(p*5+k))
			if s < 0 {
				s = 0
			}
			return s
		}
		ph.LoadFrac = scale(ph.LoadFrac, 0)
		ph.StoreFrac = scale(ph.StoreFrac, 1)
		ph.BranchFrac = scale(ph.BranchFrac, 2)
		ph.Weight = ph.Weight * (0.9 + 0.2*frac(p*5+3))
		if r := ph.BranchRegularity * (0.88 + 0.24*frac(p*5+4)); r <= 1 {
			ph.BranchRegularity = r
		}
		out[p] = ph
	}
	return out
}

func spec17Rows() []spec17Row {
	return []spec17Row{
		// --- intrate ---
		{"500.perlbench_r", archInterpreter, 48 * mib},
		{"502.gcc_r", archCompiler, 96 * mib},
		{"505.mcf_r", archPointerHeavy, 192 * mib},
		{"520.omnetpp_r", archDiscreteEvent, 128 * mib},
		{"523.xalancbmk_r", archTreeTransform, 96 * mib},
		{"525.x264_r", archVideo, 32 * mib},
		{"531.deepsjeng_r", archGameTree, 4 * mib},
		{"541.leela_r", archGameTree, 1 * mib},
		{"548.exchange2_r", archPuzzle, 256 * kib},
		{"557.xz_r", archCompress, 64 * mib},
		// --- fprate ---
		{"503.bwaves_r", archStream, 96 * mib},
		{"507.cactuBSSN_r", archStencil, 64 * mib},
		{"508.namd_r", archParticle, 16 * mib},
		{"510.parest_r", archSparseSolve, 48 * mib},
		{"511.povray_r", archRender, 2 * mib},
		{"519.lbm_r", archStream, 128 * mib},
		{"521.wrf_r", archStencil, 80 * mib},
		{"526.blender_r", archRender, 24 * mib},
		{"527.cam4_r", archStencil, 56 * mib},
		{"538.imagick_r", archStreamSmall, 8 * mib},
		{"544.nab_r", archParticle, 4 * mib},
		{"549.fotonik3d_r", archStream, 72 * mib},
		{"554.roms_r", archStencil, 88 * mib},
		// --- intspeed (larger inputs) ---
		{"600.perlbench_s", archInterpreter, 96 * mib},
		{"602.gcc_s", archCompiler, 192 * mib},
		{"605.mcf_s", archPointerHeavy, 512 * mib},
		{"620.omnetpp_s", archDiscreteEvent, 256 * mib},
		{"623.xalancbmk_s", archTreeTransform, 160 * mib},
		{"625.x264_s", archVideo, 64 * mib},
		{"631.deepsjeng_s", archGameTree, 12 * mib},
		{"641.leela_s", archGameTree, 2 * mib},
		{"648.exchange2_s", archPuzzle, 512 * kib},
		{"657.xz_s", archCompress, 256 * mib},
		// --- fpspeed ---
		{"603.bwaves_s", archStream, 256 * mib},
		{"607.cactuBSSN_s", archStencil, 160 * mib},
		{"619.lbm_s", archStream, 384 * mib},
		{"621.wrf_s", archStencil, 192 * mib},
		{"627.cam4_s", archStencil, 128 * mib},
		{"628.pop2_s", archSparseSolve, 144 * mib},
		{"638.imagick_s", archStreamSmall, 24 * mib},
		{"644.nab_s", archParticle, 12 * mib},
		{"649.fotonik3d_s", archStream, 176 * mib},
		{"654.roms_s", archStencil, 224 * mib},
	}
}

// archInterpreter: perlbench — bytecode dispatch: hot interpreter core,
// irregular indirect branches, hash-heavy data phase.
func archInterpreter(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "compile", Weight: 0.25,
			LoadFrac: 0.34, StoreFrac: 0.18, BranchFrac: 0.16,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 4},
			BranchRegularity: 0.7, BranchTakenProb: 0.6, BranchSites: 20},
		{Name: "interpret", Weight: 0.75,
			LoadFrac: 0.36, StoreFrac: 0.12, BranchFrac: 0.22,
			LoadPattern:      workload.HotCold{HotSet: 512 * kib, ColdSet: ws, HotFrac: 0.8},
			BranchRegularity: 0.45, BranchTakenProb: 0.55, BranchSites: 40},
	}
}

// archCompiler: gcc — pass-structured, pointer-rich IR walking with
// alternating allocation phases.
func archCompiler(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "parse", Weight: 0.3,
			LoadFrac: 0.4, StoreFrac: 0.2, BranchFrac: 0.18,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 3},
			BranchRegularity: 0.6, BranchTakenProb: 0.6, BranchSites: 30},
		{Name: "optimize", Weight: 0.5,
			LoadFrac: 0.42, StoreFrac: 0.14, BranchFrac: 0.18,
			LoadPattern:      workload.Zipf{WorkingSet: ws, Alpha: 0.7},
			BranchRegularity: 0.5, BranchTakenProb: 0.55, BranchSites: 36},
		{Name: "emit", Weight: 0.2,
			LoadFrac: 0.3, StoreFrac: 0.3, BranchFrac: 0.1,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 4},
			BranchRegularity: 0.8, BranchTakenProb: 0.75, BranchSites: 12},
	}
}

// archPointerHeavy: mcf — network-simplex over a huge sparse graph:
// dominant pointer chasing, brutal on TLB and LLC.
func archPointerHeavy(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "build-network", Weight: 0.2,
			LoadFrac: 0.3, StoreFrac: 0.26, BranchFrac: 0.08,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 2},
			StorePattern:     workload.Random{WorkingSet: ws},
			BranchRegularity: 0.85, BranchTakenProb: 0.8, BranchSites: 6},
		{Name: "simplex", Weight: 0.8,
			LoadFrac: 0.55, StoreFrac: 0.06, BranchFrac: 0.14,
			LoadPattern:      workload.PointerChase{WorkingSet: ws},
			BranchRegularity: 0.4, BranchTakenProb: 0.5, BranchSites: 16},
	}
}

// archDiscreteEvent: omnetpp — event-queue simulation: skewed reuse of
// queue heads over a large sparse heap.
func archDiscreteEvent(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "setup", Weight: 0.15,
			LoadFrac: 0.3, StoreFrac: 0.25, BranchFrac: 0.1,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 4},
			BranchRegularity: 0.85, BranchTakenProb: 0.8, BranchSites: 8},
		{Name: "simulate", Weight: 0.85,
			LoadFrac: 0.44, StoreFrac: 0.14, BranchFrac: 0.16,
			LoadPattern:      workload.Zipf{WorkingSet: ws, Alpha: 0.85},
			BranchRegularity: 0.5, BranchTakenProb: 0.55, BranchSites: 28},
	}
}

// archTreeTransform: xalancbmk — XML DOM traversal and transformation.
func archTreeTransform(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "parse-dom", Weight: 0.35,
			LoadFrac: 0.4, StoreFrac: 0.22, BranchFrac: 0.14,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 2},
			StorePattern:     workload.Random{WorkingSet: ws},
			BranchRegularity: 0.65, BranchTakenProb: 0.6, BranchSites: 18},
		{Name: "transform", Weight: 0.65,
			LoadFrac: 0.46, StoreFrac: 0.1, BranchFrac: 0.18,
			LoadPattern:      workload.PointerChase{WorkingSet: ws},
			BranchRegularity: 0.45, BranchTakenProb: 0.5, BranchSites: 26},
	}
}

// archVideo: x264 — motion estimation over frame windows.
func archVideo(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "analyse", Weight: 0.3,
			LoadFrac: 0.44, StoreFrac: 0.06, BranchFrac: 0.18,
			LoadPattern:      workload.Sequential{WorkingSet: ws},
			BranchRegularity: 0.7, BranchTakenProb: 0.6, BranchSites: 20},
		{Name: "motion", Weight: 0.45,
			LoadFrac: 0.48, StoreFrac: 0.06, BranchFrac: 0.2,
			LoadPattern:      workload.HotCold{HotSet: 512 * kib, ColdSet: ws, HotFrac: 0.7},
			BranchRegularity: 0.45, BranchTakenProb: 0.5, BranchSites: 30},
		{Name: "entropy", Weight: 0.25,
			LoadFrac: 0.3, StoreFrac: 0.2, BranchFrac: 0.24,
			LoadPattern:      workload.Random{WorkingSet: ws / 8},
			BranchRegularity: 0.4, BranchTakenProb: 0.45, BranchSites: 32},
	}
}

// archGameTree: deepsjeng/leela — alpha-beta/MCTS search: cache-resident
// tables, very branchy, low memory pressure.
func archGameTree(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "search", Weight: 0.8,
			LoadFrac: 0.34, StoreFrac: 0.1, BranchFrac: 0.26,
			LoadPattern:      workload.HotCold{HotSet: 256 * kib, ColdSet: ws, HotFrac: 0.85},
			BranchRegularity: 0.35, BranchTakenProb: 0.5, BranchSites: 48},
		{Name: "evaluate", Weight: 0.2,
			LoadFrac: 0.3, StoreFrac: 0.06, BranchFrac: 0.16,
			LoadPattern:      workload.Random{WorkingSet: ws / 2},
			BranchRegularity: 0.6, BranchTakenProb: 0.55, BranchSites: 24},
	}
}

// archPuzzle: exchange2 — tiny-footprint recursive solver, almost pure
// compute and regular branches.
func archPuzzle(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "solve", Weight: 1,
			LoadFrac: 0.22, StoreFrac: 0.12, BranchFrac: 0.2,
			LoadPattern:      workload.Random{WorkingSet: ws},
			BranchRegularity: 0.75, BranchTakenProb: 0.65, BranchSites: 16},
	}
}

// archCompress: xz — alternating match-finding (random) and encoding
// (sequential) phases.
func archCompress(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "read", Weight: 0.1,
			LoadFrac: 0.5, StoreFrac: 0.1, BranchFrac: 0.06,
			LoadPattern:      workload.Sequential{WorkingSet: ws},
			BranchRegularity: 0.92, BranchTakenProb: 0.9, BranchSites: 4},
		{Name: "match", Weight: 0.5,
			LoadFrac: 0.44, StoreFrac: 0.08, BranchFrac: 0.18,
			LoadPattern:      workload.Random{WorkingSet: ws / 2},
			BranchRegularity: 0.45, BranchTakenProb: 0.5, BranchSites: 22},
		{Name: "encode", Weight: 0.3,
			LoadFrac: 0.3, StoreFrac: 0.24, BranchFrac: 0.14,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 4},
			BranchRegularity: 0.7, BranchTakenProb: 0.65, BranchSites: 12},
	}
}

// archStream: lbm/bwaves/fotonik3d — bandwidth-bound array sweeps.
func archStream(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "init", Weight: 0.05,
			StoreFrac: 0.5, BranchFrac: 0.04,
			StorePattern:     workload.Sequential{WorkingSet: ws},
			BranchRegularity: 0.98, BranchTakenProb: 0.96, BranchSites: 2},
		{Name: "sweep", Weight: 0.9,
			LoadFrac: 0.42, StoreFrac: 0.2, BranchFrac: 0.04,
			LoadPattern:      workload.Streams{WorkingSet: ws, Count: 4},
			BranchRegularity: 0.98, BranchTakenProb: 0.96, BranchSites: 2},
	}
}

// archStreamSmall: imagick — streaming over mid-sized images with a
// compute-heavy filter phase.
func archStreamSmall(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "filter", Weight: 0.7,
			LoadFrac: 0.3, StoreFrac: 0.14, BranchFrac: 0.06,
			LoadPattern:      workload.Streams{WorkingSet: ws, Count: 3},
			BranchRegularity: 0.95, BranchTakenProb: 0.92, BranchSites: 4},
		{Name: "quantize", Weight: 0.3,
			LoadFrac: 0.34, StoreFrac: 0.2, BranchFrac: 0.12,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 2},
			BranchRegularity: 0.85, BranchTakenProb: 0.8, BranchSites: 8},
	}
}

// archStencil: wrf/cam4/roms/cactuBSSN — multi-array grid updates with
// moderate phases.
func archStencil(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "halo-exchange", Weight: 0.12,
			LoadFrac: 0.36, StoreFrac: 0.22, BranchFrac: 0.08,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 6},
			BranchRegularity: 0.9, BranchTakenProb: 0.85, BranchSites: 6},
		{Name: "update", Weight: 0.8,
			LoadFrac: 0.4, StoreFrac: 0.16, BranchFrac: 0.06,
			LoadPattern:      workload.Streams{WorkingSet: ws, Count: 6},
			BranchRegularity: 0.96, BranchTakenProb: 0.94, BranchSites: 3},
	}
}

// archParticle: namd/nab — particle interaction lists: mid-sized working
// set with pair-list locality.
func archParticle(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "pairlist", Weight: 0.25,
			LoadFrac: 0.38, StoreFrac: 0.18, BranchFrac: 0.12,
			LoadPattern:      workload.Random{WorkingSet: ws},
			BranchRegularity: 0.7, BranchTakenProb: 0.65, BranchSites: 10},
		{Name: "forces", Weight: 0.75,
			LoadFrac: 0.4, StoreFrac: 0.1, BranchFrac: 0.06,
			LoadPattern:      workload.HotCold{HotSet: ws / 8, ColdSet: ws, HotFrac: 0.7},
			BranchRegularity: 0.92, BranchTakenProb: 0.9, BranchSites: 5},
	}
}

// archSparseSolve: parest/pop2 — sparse linear algebra: indirect indexed
// gathers over matrices.
func archSparseSolve(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "assemble", Weight: 0.3,
			LoadFrac: 0.34, StoreFrac: 0.24, BranchFrac: 0.1,
			LoadPattern:      workload.Sequential{WorkingSet: ws / 2},
			StorePattern:     workload.Random{WorkingSet: ws},
			BranchRegularity: 0.8, BranchTakenProb: 0.75, BranchSites: 8},
		{Name: "solve", Weight: 0.7,
			LoadFrac: 0.46, StoreFrac: 0.1, BranchFrac: 0.07,
			LoadPattern:      workload.Zipf{WorkingSet: ws, Alpha: 0.5},
			BranchRegularity: 0.88, BranchTakenProb: 0.85, BranchSites: 6},
	}
}

// archRender: povray/blender — ray/scene intersection over BVH trees with
// hot shading kernels.
func archRender(ws uint64) []workload.Phase {
	return []workload.Phase{
		{Name: "build-scene", Weight: 0.15,
			LoadFrac: 0.32, StoreFrac: 0.24, BranchFrac: 0.1,
			LoadPattern:      workload.Sequential{WorkingSet: ws},
			BranchRegularity: 0.85, BranchTakenProb: 0.8, BranchSites: 8},
		{Name: "trace", Weight: 0.85,
			LoadFrac: 0.4, StoreFrac: 0.06, BranchFrac: 0.18,
			LoadPattern:      workload.Zipf{WorkingSet: ws, Alpha: 0.9},
			BranchRegularity: 0.55, BranchTakenProb: 0.55, BranchSites: 26},
	}
}
