package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"perspector/internal/metric"
	"perspector/internal/perf"
)

// FollowOptions configures FollowScores.
type FollowOptions struct {
	// Parse re-reads and parses the followed file into a measurement.
	// Called once per poll that observed a file change.
	Parse func() (*perf.SuiteMeasurement, error)
	// Stat reports a change token for the file (e.g. size+mtime); polls
	// whose token matches the previous one skip the re-parse. Nil means
	// re-parse on every poll.
	Stat func() (string, error)
	// Opts are the scoring options.
	Opts metric.Options
	// Poll is the file poll interval; 0 means one second.
	Poll time.Duration
	// Out receives the score table: a header, then one row per update.
	Out io.Writer
	// MaxUpdates stops after that many published score rows; 0 follows
	// until ctx ends.
	MaxUpdates int
}

// FollowScores tails a growing trace/CSV file: whenever the file
// changes, the new measurement is diffed against the accumulated one and
// the difference — appended workloads, grown counter totals, appended
// series samples — feeds a metric.IncrementalRun, so each update is
// rescored at delta cost and printed as a table row, bit-identical to a
// batch score of the file at that instant. A change that rewrites
// history (a shrunk total, an edited series prefix, a removed workload)
// cannot be expressed as an append; the run is rebuilt from scratch —
// the exact-recompute fallback — and following continues.
//
// Returns nil when ctx ends (the natural exit: Ctrl-C or -timeout) or
// when MaxUpdates rows have been printed.
func FollowScores(ctx context.Context, o FollowOptions) error {
	if o.Parse == nil {
		return fmt.Errorf("cli: FollowScores needs a Parse function")
	}
	if o.Poll <= 0 {
		o.Poll = time.Second
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if err := o.Opts.Validate(); err != nil {
		return err
	}

	var run *metric.IncrementalRun
	updates := 0
	lastToken := ""
	first := true
	ticker := time.NewTicker(o.Poll)
	defer ticker.Stop()
	for {
		if !first {
			select {
			case <-ctx.Done():
				return nil
			case <-ticker.C:
			}
		}
		first = false
		if o.Stat != nil {
			token, err := o.Stat()
			if err != nil {
				// The file may be mid-rotation; keep polling.
				continue
			}
			if token == lastToken {
				continue
			}
			lastToken = token
		}
		m, err := o.Parse()
		if err != nil {
			// A partially-written file parses again on a later poll.
			continue
		}
		next, changed, rebuilt, err := followDiff(run, m, o.Opts)
		if err != nil {
			return err
		}
		run = next
		if !changed {
			continue
		}
		if rebuilt {
			fmt.Fprintln(o.Out, "(input rewrote history: rebuilt from scratch, exact recompute)")
		}
		scores, err := run.Scores(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if updates == 0 {
			ScoreHeader(o.Out)
		}
		ScoreRow(o.Out, scores[0])
		updates++
		if o.MaxUpdates > 0 && updates >= o.MaxUpdates {
			return nil
		}
	}
}

// followDiff reconciles a freshly parsed measurement with the
// accumulated run. It returns the run to continue with (the same one
// grown in place, or a rebuilt one when cur cannot be reached from the
// accumulated state by appends alone), whether anything changed, and
// whether a rebuild happened.
func followDiff(run *metric.IncrementalRun, cur *perf.SuiteMeasurement, opts metric.Options) (next *metric.IncrementalRun, changed, rebuilt bool, err error) {
	rebuild := func() (*metric.IncrementalRun, bool, bool, error) {
		r, err := metric.NewIncrementalRun([]*perf.SuiteMeasurement{cur}, opts, nil)
		return r, len(cur.Workloads) > 0, run != nil, err
	}
	if run == nil {
		r, err := metric.NewIncrementalRun([]*perf.SuiteMeasurement{
			{Suite: cur.Suite},
		}, opts, nil)
		if err != nil {
			return nil, false, false, err
		}
		run = r
	}
	prev := run.Measurement(0)
	if prev.Suite != cur.Suite || len(cur.Workloads) < len(prev.Workloads) {
		return rebuild()
	}
	// Every accumulated workload must still be present: a removal or
	// rename cannot be expressed as an append.
	names := make(map[string]bool, len(cur.Workloads))
	for i := range cur.Workloads {
		names[cur.Workloads[i].Workload] = true
	}
	for i := range prev.Workloads {
		if !names[prev.Workloads[i].Workload] {
			return rebuild()
		}
	}
	for i := range cur.Workloads {
		w := &cur.Workloads[i]
		idx := run.WorkloadIndex(0, w.Workload)
		if idx < 0 {
			if err := run.AppendWorkload(0, *w); err != nil {
				return nil, false, false, err
			}
			changed = true
			continue
		}
		old := &run.Measurement(0).Workloads[idx]
		delta, tail, ok := appendDelta(old, w)
		if !ok {
			return rebuild()
		}
		if delta == (perf.Values{}) && tail == nil {
			continue
		}
		if err := run.AppendSamples(0, w.Workload, delta, tail); err != nil {
			return nil, false, false, err
		}
		changed = true
	}
	return run, changed, false, nil
}

// appendDelta expresses cur as old plus an append: the totals delta and
// the series tail. ok is false when cur is not a pure extension of old —
// a counter total shrank, a series got shorter, its sampled prefix was
// edited, or the sample interval changed.
func appendDelta(old, cur *perf.Measurement) (delta perf.Values, tail *perf.TimeSeries, ok bool) {
	for c := range cur.Totals {
		if cur.Totals[c] < old.Totals[c] {
			return perf.Values{}, nil, false
		}
		delta[c] = cur.Totals[c] - old.Totals[c]
	}
	grown := false
	for c := range cur.Series.Samples {
		olds, curs := old.Series.Samples[perf.Counter(c)], cur.Series.Samples[perf.Counter(c)]
		if len(curs) < len(olds) {
			return perf.Values{}, nil, false
		}
		for i := range olds {
			if curs[i] != olds[i] {
				return perf.Values{}, nil, false
			}
		}
		if len(curs) > len(olds) {
			grown = true
		}
	}
	if old.Series.Len() > 0 && cur.Series.Interval != old.Series.Interval {
		return perf.Values{}, nil, false
	}
	if grown {
		tail = &perf.TimeSeries{Interval: cur.Series.Interval}
		for c := range cur.Series.Samples {
			olds, curs := old.Series.Samples[perf.Counter(c)], cur.Series.Samples[perf.Counter(c)]
			if len(curs) > len(olds) {
				tail.Samples[perf.Counter(c)] = curs[len(olds):]
			}
		}
	}
	return delta, tail, true
}
