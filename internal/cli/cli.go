// Package cli is the shared driver behind cmd/perspector and
// cmd/figures. Both binaries used to wire the same stack by hand —
// simulation flags, worker bound, on-disk measurement cache, per-suite
// fan-out, verbose statistics — and the duplication had already started
// to drift. The driver owns that stack once:
//
//	flags → Config → Caching(Simulator) source → par.DoErr fan-out
//
// plus the run context: -timeout becomes a context deadline and SIGINT a
// graceful cancellation, both flowing through every measurement and
// scoring call, so an interrupted run stops within one sample batch and
// exits with a stage-tagged error instead of a half-written table.
package cli

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"perspector/internal/cache"
	"perspector/internal/metric"
	"perspector/internal/obs"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/source"
	"perspector/internal/suites"
)

// Flags holds the simulation and execution flags shared by both CLIs.
type Flags struct {
	Instr       uint64
	Samples     int
	Seed        uint64
	Workers     int
	CacheDir    string
	NoCache     bool
	TotalsOnly  bool
	Timeout     time.Duration
	Verbose     bool
	TraceOut    string
	ManifestOut string
}

// AddFlags registers the shared flags on fs and returns the destination
// struct. Command-specific flags (e.g. -group, -fig) stay with their
// commands.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.Uint64Var(&f.Instr, "instr", 400_000, "instructions per workload")
	fs.IntVar(&f.Samples, "samples", 100, "PMU samples per workload")
	fs.Uint64Var(&f.Seed, "seed", 2023, "master seed")
	fs.IntVar(&f.Workers, "workers", 0, "parallel workers (0 = all CPUs); results are identical at any count")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "measurement cache directory (empty = no cache)")
	fs.BoolVar(&f.NoCache, "no-cache", false, "disable the measurement cache even if -cache-dir is set")
	fs.BoolVar(&f.TotalsOnly, "totals-only", false, "measure counter totals only, skipping the sampled series (faster; series-based scores like trend are then unavailable)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration, e.g. 30s (0 = no limit)")
	fs.BoolVar(&f.Verbose, "v", false, "verbose: worker count and cache statistics on stderr")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace-event JSON of the run (view at ui.perfetto.dev)")
	fs.StringVar(&f.ManifestOut, "manifest", "", "write a JSON run manifest (per-stage durations, cache hits, worker busy fractions)")
	return f
}

// Config builds the simulation config from the flags.
func (f *Flags) Config() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = f.Instr
	cfg.Samples = f.Samples
	cfg.Seed = f.Seed
	cfg.TotalsOnly = f.TotalsOnly
	return cfg
}

// Driver is one command invocation's execution environment: the applied
// worker bound, the opened cache store, and the run context carrying the
// -timeout deadline and SIGINT cancellation.
type Driver struct {
	Flags *Flags
	// Store is the measurement cache; nil when disabled (pass-through).
	Store *cache.Store
	// Recorder collects the run's telemetry spans; nil unless -trace-out
	// or -manifest asked for it, so un-instrumented runs pay exactly the
	// nil-recorder pointer check.
	Recorder *obs.Recorder

	ctx       context.Context
	cancel    context.CancelFunc
	stop      context.CancelFunc
	runSpan   obs.Span
	resultKey string
}

// NewDriver applies the worker bound, opens the cache (unless disabled),
// and builds the run context. Callers must defer Close.
func (f *Flags) NewDriver() (*Driver, error) {
	if f.Workers != 0 {
		par.SetWorkers(f.Workers)
	}
	var store *cache.Store
	if f.CacheDir != "" && !f.NoCache {
		var err error
		if store, err = cache.Open(f.CacheDir); err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if f.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, f.Timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	d := &Driver{Flags: f, Store: store, cancel: cancel, stop: stop}
	if f.TraceOut != "" || f.ManifestOut != "" {
		d.Recorder = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, d.Recorder)
		ctx, d.runSpan = obs.Start(ctx, "run")
	}
	d.ctx = ctx
	return d, nil
}

// Context returns the run context. Pass it to every measurement and
// scoring call so -timeout and Ctrl-C reach the simulator loops.
func (d *Driver) Context() context.Context { return d.ctx }

// SetResult records the run's result document for the manifest: its
// content key is the SHA-256 of the serialized JSON, the same address a
// client would compute over the emitted ScoreSet. No-op without -manifest.
func (d *Driver) SetResult(v any) {
	if d.Recorder == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	sum := sha256.Sum256(data)
	d.resultKey = hex.EncodeToString(sum[:])
}

// Close releases the signal registration and the timeout timer, writes
// the telemetry artifacts (-trace-out, -manifest) and, under -v, prints
// worker/cache statistics to stderr.
func (d *Driver) Close() {
	d.stop()
	d.cancel()
	d.runSpan.End()
	if err := d.writeTelemetry(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
	}
	if d.Flags.Verbose {
		fmt.Fprintf(os.Stderr, "workers: %d\n", par.Workers())
		fmt.Fprintln(os.Stderr, d.Store.Stats())
	}
}

// writeTelemetry renders the recorder into the requested artifact files.
func (d *Driver) writeTelemetry() error {
	if d.Recorder == nil {
		return nil
	}
	if path := d.Flags.TraceOut; path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := d.Recorder.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if path := d.Flags.ManifestOut; path != "" {
		m := d.Recorder.Manifest()
		m.Generator = filepath.Base(os.Args[0])
		m.ResultKey = d.resultKey
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := obs.WriteManifest(f, m)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// Source returns the measuring source for cfg: the simulator wrapped in
// the cache decorator (a nil store passes straight through).
func (d *Driver) Source(cfg suites.Config) source.Source {
	return source.Caching{Inner: source.Simulator{Cfg: cfg}, Store: d.Store}
}

// Measure measures one suite under the flag config.
func (d *Driver) Measure(s suites.Suite) (*perf.SuiteMeasurement, error) {
	return d.Source(d.Flags.Config()).Measure(d.ctx, s)
}

// MeasureNamed resolves a registered suite by name and measures it.
func (d *Driver) MeasureNamed(name string) (*perf.SuiteMeasurement, error) {
	cfg := d.Flags.Config()
	s, err := suites.ByName(name, cfg)
	if err != nil {
		return nil, err
	}
	return d.Source(cfg).Measure(d.ctx, s)
}

// ResolveSuite returns the suite a command should operate on: when file
// is non-empty the suite is loaded from a declarative spec JSON file
// (-suite-file), otherwise name resolves against the registry (-suite).
// Spec-file suites build under cfg exactly like registered ones — seeds
// derive from cfg.Seed and unpinned workloads take cfg.Instructions — so
// a user-authored file scores on equal footing with the stock suites.
func ResolveSuite(name, file string, cfg suites.Config) (suites.Suite, error) {
	if file != "" {
		if name != "" {
			return suites.Suite{}, fmt.Errorf("pass -suite or -suite-file, not both")
		}
		sp, err := suites.LoadSpecFile(file)
		if err != nil {
			return suites.Suite{}, err
		}
		return sp.Build(cfg)
	}
	if name == "" {
		return suites.Suite{}, fmt.Errorf("no suite given: pass -suite <name> (registered: %s) or -suite-file <spec.json>", suites.NameList())
	}
	return suites.ByName(name, cfg)
}

// MeasureSuites measures several suites in parallel through the cache,
// keeping input order. The first error in suite order wins, as in a
// serial loop.
func (d *Driver) MeasureSuites(ss []suites.Suite) ([]*perf.SuiteMeasurement, error) {
	cfg := d.Flags.Config()
	src := d.Source(cfg)
	ms := make([]*perf.SuiteMeasurement, len(ss))
	err := par.DoErrCtx(d.ctx, len(ss), func(ctx context.Context, _, i int) error {
		m, err := src.Measure(ctx, ss[i])
		if err != nil {
			return err
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}

// MeasureNames resolves stock suites by name and measures them in
// parallel, keeping name order.
func (d *Driver) MeasureNames(names []string) ([]*perf.SuiteMeasurement, error) {
	cfg := d.Flags.Config()
	ss := make([]suites.Suite, len(names))
	for i, name := range names {
		s, err := suites.ByName(name, cfg)
		if err != nil {
			return nil, err
		}
		ss[i] = s
	}
	return d.MeasureSuites(ss)
}

// MeasureSeeds measures one named suite under n consecutive seeds
// (Seed, Seed+1, …) — the input of a score-stability analysis. Each seed
// is an independent simulation with its own cache entry.
func (d *Driver) MeasureSeeds(name string, n int) ([]*perf.SuiteMeasurement, error) {
	return d.MeasureSeedsFrom(func(cfg suites.Config) (suites.Suite, error) {
		return suites.ByName(name, cfg)
	}, n)
}

// MeasureSeedsFrom is MeasureSeeds for any suite source: build is called
// once per seed because suite construction itself depends on cfg.Seed
// (workload seeds derive from it), so the suite must be rebuilt, not
// reused, across the sweep. This is how -suite-file suites run a
// stability analysis.
func (d *Driver) MeasureSeedsFrom(build func(suites.Config) (suites.Suite, error), n int) ([]*perf.SuiteMeasurement, error) {
	runs := make([]*perf.SuiteMeasurement, n)
	err := par.DoErrCtx(d.ctx, n, func(ctx context.Context, _, r int) error {
		cfg := d.Flags.Config()
		cfg.Seed += uint64(r)
		s, err := build(cfg)
		if err != nil {
			return err
		}
		m, err := d.Source(cfg).Measure(ctx, s)
		if err != nil {
			return err
		}
		runs[r] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// ScoreHeader writes the shared four-score table header. The +/- marks
// the good direction: lower cluster/spread, higher trend/coverage.
func ScoreHeader(w io.Writer) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "suite",
		"cluster(-)", "trend(+)", "coverage(+)", "spread(-)")
}

// ScoreRow writes one suite's scores under ScoreHeader's columns.
func ScoreRow(w io.Writer, s metric.Scores) {
	fmt.Fprintf(w, "%-10s %12.4f %12.2f %12.5f %12.4f\n",
		s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
}
