package cli

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"perspector/internal/metric"
	"perspector/internal/perf"
)

// followTestMeasurement fabricates a deterministic measurement with n
// workloads, each with totals and a short series per counter.
func followTestMeasurement(seed int64, n, samples int) *perf.SuiteMeasurement {
	rnd := rand.New(rand.NewSource(seed))
	sm := &perf.SuiteMeasurement{Suite: "tailed"}
	for i := 0; i < n; i++ {
		m := perf.Measurement{Workload: fmt.Sprintf("w%d", i)}
		m.Series.Interval = 100
		for c := 0; c < int(perf.NumCounters); c++ {
			m.Totals[perf.Counter(c)] = uint64(rnd.Intn(5000))
			for s := 0; s < samples; s++ {
				m.Series.Samples[perf.Counter(c)] = append(m.Series.Samples[perf.Counter(c)],
					float64(rnd.Intn(200)))
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

func cloneFollowSuite(sm *perf.SuiteMeasurement) *perf.SuiteMeasurement {
	out := &perf.SuiteMeasurement{Suite: sm.Suite}
	for i := range sm.Workloads {
		w := sm.Workloads[i]
		cp := perf.Measurement{Workload: w.Workload, Totals: w.Totals}
		cp.Series.Interval = w.Series.Interval
		for c := range w.Series.Samples {
			cp.Series.Samples[c] = append([]float64(nil), w.Series.Samples[c]...)
		}
		out.Workloads = append(out.Workloads, cp)
	}
	return out
}

// growSamples returns a copy of sm with extra samples and totals added
// to one workload — a pure append.
func growSamples(sm *perf.SuiteMeasurement, idx int, seed int64) *perf.SuiteMeasurement {
	out := cloneFollowSuite(sm)
	rnd := rand.New(rand.NewSource(seed))
	w := &out.Workloads[idx]
	for c := 0; c < int(perf.NumCounters); c++ {
		w.Totals[perf.Counter(c)] += uint64(rnd.Intn(500))
		for s := 0; s < 3; s++ {
			w.Series.Samples[perf.Counter(c)] = append(w.Series.Samples[perf.Counter(c)],
				float64(rnd.Intn(200)))
		}
	}
	return out
}

func followTestOptions() metric.Options {
	opts := metric.DefaultOptions()
	opts.DTWGrid = 24
	opts.KMeansRestarts = 2
	return opts
}

// expectedRow renders the batch-scored row for one snapshot — the
// oracle a follow update must match byte for byte.
func expectedRow(t *testing.T, sm *perf.SuiteMeasurement, opts metric.Options) string {
	t.Helper()
	scores, err := metric.ScoreSuites(context.Background(),
		[]*perf.SuiteMeasurement{cloneFollowSuite(sm)}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ScoreRow(&buf, scores[0])
	return strings.TrimSuffix(buf.String(), "\n")
}

// TestFollowScoresTailsAppends drives FollowScores over an in-memory
// file history: initial snapshot, an appended workload, a sample-chunk
// append, and a history rewrite. Each printed row must equal the
// batch-scored row of that snapshot, and the rewrite must be called out
// as a rebuild.
func TestFollowScoresTailsAppends(t *testing.T) {
	opts := followTestOptions()
	base := followTestMeasurement(3, 3, 4)
	added := cloneFollowSuite(base)
	extra := followTestMeasurement(99, 4, 4).Workloads[3]
	added.Workloads = append(added.Workloads, extra)
	grown := growSamples(added, 1, 17)
	// The rewrite shrinks one series — not expressible as an append.
	rewritten := cloneFollowSuite(grown)
	s := rewritten.Workloads[0].Series.Samples[perf.Counter(0)]
	rewritten.Workloads[0].Series.Samples[perf.Counter(0)] = s[:len(s)-1]

	history := []*perf.SuiteMeasurement{base, added, grown, rewritten}
	idx := 0
	parse := func() (*perf.SuiteMeasurement, error) {
		sm := history[idx]
		if idx < len(history)-1 {
			idx++
		}
		// Fresh deep copy per poll, as a real re-parse would produce.
		return cloneFollowSuite(sm), nil
	}

	var out bytes.Buffer
	err := FollowScores(context.Background(), FollowOptions{
		Parse:      parse,
		Opts:       opts,
		Poll:       time.Millisecond,
		Out:        &out,
		MaxUpdates: len(history),
	})
	if err != nil {
		t.Fatalf("FollowScores: %v", err)
	}

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	// header + 3 append rows, then the rebuild notice + rebuilt row.
	if len(lines) != 6 {
		t.Fatalf("expected 6 output lines, got %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "suite") {
		t.Fatalf("first line is not the header: %q", lines[0])
	}
	for i, sm := range []*perf.SuiteMeasurement{base, added, grown} {
		if got, exp := lines[1+i], expectedRow(t, sm, opts); got != exp {
			t.Fatalf("update %d diverges from batch:\n got %q\nwant %q", i, got, exp)
		}
	}
	if !strings.Contains(lines[4], "rebuilt from scratch") {
		t.Fatalf("rewrite was not reported as a rebuild: %q", lines[4])
	}
	if got, exp := lines[5], expectedRow(t, rewritten, opts); got != exp {
		t.Fatalf("post-rebuild row diverges from batch:\n got %q\nwant %q", got, exp)
	}
}

// TestFollowScoresStatSkip: an unchanged stat token suppresses the
// re-parse; a context cancellation ends the loop cleanly.
func TestFollowScoresStatSkip(t *testing.T) {
	opts := followTestOptions()
	base := followTestMeasurement(5, 3, 4)
	parses := 0
	parse := func() (*perf.SuiteMeasurement, error) {
		parses++
		return cloneFollowSuite(base), nil
	}
	statCalls := 0
	stat := func() (string, error) {
		statCalls++
		return "constant", nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- FollowScores(ctx, FollowOptions{
			Parse: parse, Stat: stat, Opts: opts,
			Poll: time.Millisecond, Out: &out,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for statCalls < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("FollowScores: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FollowScores did not stop on cancel")
	}
	if parses != 1 {
		t.Fatalf("parsed %d times despite constant stat token, want 1", parses)
	}
	rows := strings.Count(out.String(), "\n")
	if rows != 2 { // header + one row
		t.Fatalf("expected header + 1 row, got output:\n%s", out.String())
	}
}
