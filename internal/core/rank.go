package core

import (
	"fmt"
	"sort"
)

// Ranking orders compared suites per metric and aggregates an overall
// recommendation, turning the four raw scores into the decision the
// paper's introduction motivates: "researchers must evaluate these
// suites quickly and decisively".
type Ranking struct {
	// ByCluster..BySpread list suite names best-first for each metric
	// (ClusterScore and SpreadScore ascending; TrendScore and
	// CoverageScore descending).
	ByCluster  []string
	ByTrend    []string
	ByCoverage []string
	BySpread   []string
	// Overall lists suites by mean rank across the four metrics,
	// best-first; MeanRank holds the corresponding values (1 = won every
	// metric).
	Overall  []string
	MeanRank map[string]float64
}

// Rank builds a Ranking from a set of comparable scores (produced by one
// ScoreSuites call so the normalization is shared). It errors on an empty
// or duplicate-named input.
func Rank(scores []Scores) (*Ranking, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("core: Rank with no scores")
	}
	seen := map[string]bool{}
	for _, s := range scores {
		if s.Suite == "" {
			return nil, fmt.Errorf("core: Rank with unnamed suite")
		}
		if seen[s.Suite] {
			return nil, fmt.Errorf("core: Rank with duplicate suite %q", s.Suite)
		}
		seen[s.Suite] = true
	}

	order := func(value func(Scores) float64, ascending bool) []string {
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := value(scores[idx[a]]), value(scores[idx[b]])
			if ascending {
				return va < vb
			}
			return va > vb
		})
		names := make([]string, len(idx))
		for i, k := range idx {
			names[i] = scores[k].Suite
		}
		return names
	}

	r := &Ranking{
		ByCluster:  order(func(s Scores) float64 { return s.Cluster }, true),
		ByTrend:    order(func(s Scores) float64 { return s.Trend }, false),
		ByCoverage: order(func(s Scores) float64 { return s.Coverage }, false),
		BySpread:   order(func(s Scores) float64 { return s.Spread }, true),
		MeanRank:   make(map[string]float64, len(scores)),
	}

	for _, list := range [][]string{r.ByCluster, r.ByTrend, r.ByCoverage, r.BySpread} {
		for pos, name := range list {
			r.MeanRank[name] += float64(pos+1) / 4
		}
	}
	r.Overall = make([]string, 0, len(scores))
	for _, s := range scores {
		r.Overall = append(r.Overall, s.Suite)
	}
	sort.SliceStable(r.Overall, func(a, b int) bool {
		return r.MeanRank[r.Overall[a]] < r.MeanRank[r.Overall[b]]
	})
	return r, nil
}
