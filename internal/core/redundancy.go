package core

import (
	"fmt"
	"math"
	"sort"

	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/stat"
)

// CounterRedundancy makes the PCA step's implicit finding explicit: which
// PMU counters move together across a suite's workloads and are therefore
// redundant for characterization. Prior work (§II) relied on PCA to
// silently drop such dimensions; reporting them lets a researcher trim
// the event list *before* measuring — relevant because capturing more
// events than hardware counters forces multiplexing and loses accuracy
// (the paper's footnote 1).

// RedundantPair is a pair of counters whose values are strongly
// correlated across the suite's workloads.
type RedundantPair struct {
	A, B perf.Counter
	// R is the Pearson correlation coefficient across workloads.
	R float64
}

// CounterRedundancy returns every counter pair with |Pearson r| >=
// threshold across the suite's workloads, strongest first. Constant
// counters correlate with nothing (r = 0 by convention). threshold must
// lie in (0, 1].
func CounterRedundancy(sm *perf.SuiteMeasurement, opts Options, threshold float64) ([]RedundantPair, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("core: redundancy threshold %v out of (0,1]", threshold)
	}
	if len(sm.Workloads) < 2 {
		return nil, fmt.Errorf("core: redundancy needs at least two workloads, got %d", len(sm.Workloads))
	}
	x := metric.NewArtifacts(sm, opts).Raw()
	var out []RedundantPair
	for i := 0; i < len(opts.Counters); i++ {
		for j := i + 1; j < len(opts.Counters); j++ {
			r := stat.Pearson(x.Col(i), x.Col(j))
			if math.Abs(r) >= threshold {
				out = append(out, RedundantPair{A: opts.Counters[i], B: opts.Counters[j], R: r})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].R) > math.Abs(out[b].R)
	})
	return out, nil
}
