package core

import (
	"fmt"

	"perspector/internal/stat"
)

// PhaseDetection is the extension sketched by the paper's citation of
// Nomani & Szefer [26]: hardware-counter time series expose program phase
// changes as level shifts. DetectPhases finds them with a two-window mean
// comparison: a change point is reported where the mean of the next
// `window` samples differs from the mean of the previous `window` samples
// by more than `threshold` times the *local* noise level (the larger of
// the two windows' standard deviations), keeping only local maxima of the
// shift magnitude. Normalizing by local noise rather than the global
// standard deviation matters: the global value is inflated by the very
// level shifts being detected.

// PhaseChange is one detected phase boundary.
type PhaseChange struct {
	// Index is the sample position of the boundary.
	Index int
	// Shift is the normalized magnitude of the level change (in units of
	// the local noise level).
	Shift float64
}

// DetectPhases returns the phase boundaries of a counter delta series.
// window is the half-window size in samples; threshold is the minimum
// shift in local-noise units (typical values: window 5–10, threshold
// 1.5–3). The first and last `window` samples cannot host a boundary.
func DetectPhases(series []float64, window int, threshold float64) ([]PhaseChange, error) {
	if window < 1 {
		return nil, fmt.Errorf("core: DetectPhases window %d < 1", window)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("core: DetectPhases threshold %v <= 0", threshold)
	}
	n := len(series)
	if n < 2*window+1 {
		return nil, nil // too short to contain a detectable boundary
	}
	if stat.StdDev(series) == 0 {
		return nil, nil // perfectly flat
	}

	// Shift magnitude at every candidate point, in units of local noise.
	// Perfectly flat windows get a tiny floor so a clean level change
	// yields a very large (finite) shift.
	shifts := make([]float64, n)
	for t := window; t <= n-window; t++ {
		leftW := series[t-window : t]
		rightW := series[t : t+window]
		diff := stat.Mean(rightW) - stat.Mean(leftW)
		if diff < 0 {
			diff = -diff
		}
		scale := stat.StdDev(leftW)
		if s := stat.StdDev(rightW); s > scale {
			scale = s
		}
		if scale == 0 {
			scale = 1e-12 * (1 + diff)
		}
		shifts[t] = diff / scale
	}

	// Keep local maxima above threshold, suppressing neighbours within a
	// window so one transition yields one boundary.
	var out []PhaseChange
	lastIdx := -2 * window
	for t := window; t <= n-window; t++ {
		if shifts[t] < threshold {
			continue
		}
		isPeak := true
		for d := 1; d <= window; d++ {
			if t-d >= 0 && shifts[t-d] > shifts[t] {
				isPeak = false
				break
			}
			if t+d < n && shifts[t+d] > shifts[t] {
				isPeak = false
				break
			}
		}
		if !isPeak {
			continue
		}
		if t-lastIdx < window {
			// Merge with the previous boundary, keeping the stronger.
			if len(out) > 0 && shifts[t] > out[len(out)-1].Shift {
				out[len(out)-1] = PhaseChange{Index: t, Shift: shifts[t]}
				lastIdx = t
			}
			continue
		}
		out = append(out, PhaseChange{Index: t, Shift: shifts[t]})
		lastIdx = t
	}
	return out, nil
}
