package core

import (
	"testing"
)

func TestRankOrdering(t *testing.T) {
	scores := []Scores{
		{Suite: "a", Cluster: 0.1, Trend: 100, Coverage: 0.5, Spread: 0.2},
		{Suite: "b", Cluster: 0.3, Trend: 50, Coverage: 0.1, Spread: 0.4},
		{Suite: "c", Cluster: 0.2, Trend: 75, Coverage: 0.3, Spread: 0.3},
	}
	r, err := Rank(scores)
	if err != nil {
		t.Fatal(err)
	}
	if r.ByCluster[0] != "a" || r.ByCluster[2] != "b" {
		t.Fatalf("ByCluster = %v", r.ByCluster)
	}
	if r.ByTrend[0] != "a" || r.ByTrend[2] != "b" {
		t.Fatalf("ByTrend = %v", r.ByTrend)
	}
	if r.ByCoverage[0] != "a" {
		t.Fatalf("ByCoverage = %v", r.ByCoverage)
	}
	if r.BySpread[0] != "a" {
		t.Fatalf("BySpread = %v", r.BySpread)
	}
	// a wins every metric: mean rank 1, overall first.
	if r.Overall[0] != "a" || r.Overall[2] != "b" {
		t.Fatalf("Overall = %v", r.Overall)
	}
	if r.MeanRank["a"] != 1 {
		t.Fatalf("MeanRank[a] = %v", r.MeanRank["a"])
	}
	if r.MeanRank["b"] != 3 {
		t.Fatalf("MeanRank[b] = %v", r.MeanRank["b"])
	}
}

func TestRankMixedWinners(t *testing.T) {
	scores := []Scores{
		{Suite: "x", Cluster: 0.1, Trend: 10, Coverage: 0.9, Spread: 0.9},
		{Suite: "y", Cluster: 0.9, Trend: 90, Coverage: 0.1, Spread: 0.1},
	}
	r, err := Rank(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Each wins two metrics: tied mean rank 1.5, stable order preserved.
	if r.MeanRank["x"] != 1.5 || r.MeanRank["y"] != 1.5 {
		t.Fatalf("MeanRank = %v", r.MeanRank)
	}
	if r.Overall[0] != "x" {
		t.Fatalf("stable tie-break broken: %v", r.Overall)
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := Rank(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Rank([]Scores{{Suite: ""}}); err == nil {
		t.Fatal("unnamed suite accepted")
	}
	if _, err := Rank([]Scores{{Suite: "a"}, {Suite: "a"}}); err == nil {
		t.Fatal("duplicate suite accepted")
	}
}

func TestRankSingleSuite(t *testing.T) {
	r, err := Rank([]Scores{{Suite: "only", Cluster: 1, Trend: 1, Coverage: 1, Spread: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Overall) != 1 || r.Overall[0] != "only" || r.MeanRank["only"] != 1 {
		t.Fatalf("singleton ranking %+v", r)
	}
}
