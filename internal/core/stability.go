package core

import (
	"fmt"
	"math"

	"perspector/internal/perf"
)

// Stability quantifies how sensitive a suite's Perspector scores are to
// the stochastic parts of measurement (workload input seeds, sampling
// alignment). A score that swings across seeds is not a property of the
// suite; reporting the spread keeps conclusions honest — the same reason
// hardware papers report run-to-run variation.
type Stability struct {
	Suite string
	// Mean and StdDev of each score across the runs.
	Mean, StdDev Scores
	// Runs is the number of measurements aggregated.
	Runs int
}

// RelativeStdDev returns per-score coefficient-of-variation values
// (StdDev/|Mean|, 0 when the mean is 0), a unitless stability summary.
func (s *Stability) RelativeStdDev() Scores {
	rel := func(sd, mean float64) float64 {
		if mean == 0 {
			return 0
		}
		return sd / math.Abs(mean)
	}
	return Scores{
		Suite:    s.Suite,
		Cluster:  rel(s.StdDev.Cluster, s.Mean.Cluster),
		Trend:    rel(s.StdDev.Trend, s.Mean.Trend),
		Coverage: rel(s.StdDev.Coverage, s.Mean.Coverage),
		Spread:   rel(s.StdDev.Spread, s.Mean.Spread),
	}
}

// ScoreStability scores several independent measurements of the same
// suite (typically produced with different Config seeds) in isolation and
// aggregates mean and standard deviation per metric. All measurements
// must belong to the same suite.
func ScoreStability(runs []*perf.SuiteMeasurement, opts Options) (*Stability, error) {
	if len(runs) < 2 {
		return nil, fmt.Errorf("core: ScoreStability needs at least 2 runs, got %d", len(runs))
	}
	name := runs[0].Suite
	var all []Scores
	for i, sm := range runs {
		if sm.Suite != name {
			return nil, fmt.Errorf("core: ScoreStability run %d is suite %q, want %q", i, sm.Suite, name)
		}
		s, err := ScoreSuite(sm, opts)
		if err != nil {
			return nil, fmt.Errorf("core: ScoreStability run %d: %w", i, err)
		}
		all = append(all, s)
	}

	n := float64(len(all))
	var mean Scores
	mean.Suite = name
	for _, s := range all {
		mean.Cluster += s.Cluster / n
		mean.Trend += s.Trend / n
		mean.Coverage += s.Coverage / n
		mean.Spread += s.Spread / n
	}
	var sd Scores
	sd.Suite = name
	for _, s := range all {
		sd.Cluster += sq(s.Cluster - mean.Cluster)
		sd.Trend += sq(s.Trend - mean.Trend)
		sd.Coverage += sq(s.Coverage - mean.Coverage)
		sd.Spread += sq(s.Spread - mean.Spread)
	}
	inv := 1 / (n - 1)
	sd.Cluster = math.Sqrt(sd.Cluster * inv)
	sd.Trend = math.Sqrt(sd.Trend * inv)
	sd.Coverage = math.Sqrt(sd.Coverage * inv)
	sd.Spread = math.Sqrt(sd.Spread * inv)

	return &Stability{Suite: name, Mean: mean, StdDev: sd, Runs: len(all)}, nil
}

func sq(v float64) float64 { return v * v }
