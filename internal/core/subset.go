package core

import (
	"fmt"
	"math"

	"perspector/internal/lhs"
	"perspector/internal/mat"
	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/stat"
)

// SubsetResult reports a generated workload subset and how faithfully it
// reproduces the full suite's Perspector scores (§IV-C).
type SubsetResult struct {
	// Indices are the selected workload positions within the suite,
	// ascending.
	Indices []int
	// Names are the corresponding workload names.
	Names []string
	// Full and Subset are the four scores of the complete suite and of
	// the selected subset, computed under joint normalization so the
	// coverage/spread comparison is apples-to-apples.
	Full, Subset Scores
	// Deviation is the mean relative deviation across the four scores,
	// the "6.53 %" quantity the paper reports for SPEC'17 43→8.
	Deviation float64
}

// SubsetOptions configures subset generation.
type SubsetOptions struct {
	// Size is the number of workloads to select.
	Size int
	// Seed drives the LHS design.
	Seed uint64
	// MaximinTries is the number of LHS designs drawn; the maximin-distance
	// one is kept. 1 means plain LHS.
	MaximinTries int
}

// DefaultSubsetOptions returns the §IV-C configuration (SPEC'17 43→8).
// Subset quality is seed-sensitive (EXPERIMENTS.md reports the spread);
// the default seed is a representative good draw.
func DefaultSubsetOptions(size int) SubsetOptions {
	return SubsetOptions{Size: size, Seed: 6, MaximinTries: 32}
}

// Subset selects a representative subset of the suite's workloads via
// Latin Hypercube Sampling over the normalized counter space: the LHS
// design places Size well-spread points in the m-dimensional unit cube,
// and each point is matched to its nearest workload (without
// replacement). It then scores the full suite and the subset and reports
// the deviation.
func Subset(sm *perf.SuiteMeasurement, opts Options, so SubsetOptions) (*SubsetResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(sm.Workloads)
	if so.Size < 2 {
		return nil, fmt.Errorf("core: subset size %d too small (need >= 2)", so.Size)
	}
	if so.Size >= n {
		return nil, fmt.Errorf("core: subset size %d not below suite size %d", so.Size, n)
	}
	if so.MaximinTries < 1 {
		return nil, fmt.Errorf("core: MaximinTries %d < 1", so.MaximinTries)
	}

	// Candidates live in rank-normalized space: each dimension is one PMU
	// counter (the LHS dimensions of §IV-C), and each workload's value is
	// replaced by its empirical-CDF rank within the suite. LHS strata are
	// equal-probability regions, so rank space is the space in which "one
	// point per region" translates to "one workload per quantile band";
	// min-max space would instead pull every LHS point toward the handful
	// of extreme-valued workloads and select near-duplicates.
	candidates := rankNormalizeColumns(metric.NewArtifacts(sm, opts).Raw())
	design, err := lhs.SampleMaximin(so.Size, candidates.Cols(), so.Seed, so.MaximinTries)
	if err != nil {
		return nil, fmt.Errorf("core: subset LHS: %w", err)
	}
	idx, err := lhs.NearestRows(design, candidates)
	if err != nil {
		return nil, fmt.Errorf("core: subset matching: %w", err)
	}

	sub := &perf.SuiteMeasurement{Suite: sm.Suite + "-subset"}
	names := make([]string, len(idx))
	for k, i := range idx {
		sub.Workloads = append(sub.Workloads, sm.Workloads[i])
		names[k] = sm.Workloads[i].Workload
	}

	// Joint normalization across full suite and subset keeps the
	// coverage/spread scores comparable.
	scores, err := ScoreSuites([]*perf.SuiteMeasurement{sm, sub}, opts)
	if err != nil {
		return nil, err
	}
	res := &SubsetResult{
		Indices: idx,
		Names:   names,
		Full:    scores[0],
		Subset:  scores[1],
	}
	res.Deviation = scoreDeviation(res.Full, res.Subset)
	return res, nil
}

// rankNormalizeColumns replaces each column's values by their empirical
// CDF ranks in (0,1]: the k-th smallest of n values maps to k/n. Ties map
// to the same (highest) rank.
func rankNormalizeColumns(x *mat.Matrix) *mat.Matrix {
	n := x.Rows()
	out := mat.New(n, x.Cols())
	for j := 0; j < x.Cols(); j++ {
		col := x.Col(j)
		ecdf := stat.NewECDF(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, ecdf.At(col[i]))
		}
	}
	return out
}

// scoreDeviation is the mean relative deviation across the four scores.
// Scores whose full-suite value is ~0 are compared absolutely to avoid
// division blow-ups.
func scoreDeviation(full, sub Scores) float64 {
	pairs := [][2]float64{
		{full.Cluster, sub.Cluster},
		{full.Trend, sub.Trend},
		{full.Coverage, sub.Coverage},
		{full.Spread, sub.Spread},
	}
	sum := 0.0
	for _, p := range pairs {
		f, s := p[0], p[1]
		if math.Abs(f) < 1e-9 {
			sum += math.Abs(s - f)
			continue
		}
		sum += math.Abs(s-f) / math.Abs(f)
	}
	return sum / float64(len(pairs))
}
