package core

import (
	"testing"

	"perspector/internal/cluster"
	"perspector/internal/perf"
	"perspector/internal/rng"
)

func TestHierarchicalBaselineTwoGroups(t *testing.T) {
	// Two distinct workload families: the baseline pipeline must separate
	// them and report a high silhouette at k=2.
	src := rng.New(1)
	var vecs [][]float64
	for i := 0; i < 6; i++ {
		vecs = append(vecs, fullVec(100, src))
	}
	for i := 0; i < 6; i++ {
		vecs = append(vecs, fullVec(1e6, src))
	}
	sm := synthSuite("base", vecs, nil)
	res, err := HierarchicalBaseline(sm, DefaultOptions(), cluster.AverageLinkage, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	// Each truth group must be pure.
	for i := 1; i < 6; i++ {
		if res.Labels[i] != res.Labels[0] {
			t.Fatalf("group A split: %v", res.Labels)
		}
	}
	for i := 7; i < 12; i++ {
		if res.Labels[i] != res.Labels[6] {
			t.Fatalf("group B split: %v", res.Labels)
		}
	}
	if res.Labels[0] == res.Labels[6] {
		t.Fatal("groups merged")
	}
	if res.Silhouette < 0.6 {
		t.Fatalf("silhouette = %v for clean groups", res.Silhouette)
	}
	if len(res.Representatives) != 2 {
		t.Fatalf("representatives = %v", res.Representatives)
	}
	// Representatives must come from different clusters.
	if res.Labels[res.Representatives[0]] == res.Labels[res.Representatives[1]] {
		t.Fatal("representatives from the same cluster")
	}
	if res.RetainedComponents < 1 {
		t.Fatal("no PCA components retained")
	}
}

func TestHierarchicalBaselineErrors(t *testing.T) {
	sm := synthSuite("e", [][]float64{{1, 2}, {3, 4}}, nil)
	if _, err := HierarchicalBaseline(sm, DefaultOptions(), cluster.AverageLinkage, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := HierarchicalBaseline(sm, DefaultOptions(), cluster.AverageLinkage, 3); err == nil {
		t.Fatal("k>n accepted")
	}
	bad := DefaultOptions()
	bad.Counters = nil
	if _, err := HierarchicalBaseline(sm, bad, cluster.AverageLinkage, 1); err == nil {
		t.Fatal("no counters accepted")
	}
}

func TestProfilePhases(t *testing.T) {
	// Workload 0: strong step in every counter. Workload 1: flat.
	phased := stepSeries(10, 2000, 60)
	flat := flatSeries(100, 60)
	sm := synthSuite("p", [][]float64{{1}, {1}},
		[][]float64{phased, flat})
	opts := DefaultOptions()
	opts.WarmupFrac = 0
	prof, err := ProfilePhases(sm, opts, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Boundaries) != 2 {
		t.Fatalf("boundaries = %v", prof.Boundaries)
	}
	// Workload 0 has one boundary per counter (14 counters).
	if prof.Boundaries[0] != int(perf.NumCounters) {
		t.Fatalf("phased workload boundaries = %d, want %d",
			prof.Boundaries[0], perf.NumCounters)
	}
	if prof.Boundaries[1] != 0 {
		t.Fatalf("flat workload boundaries = %d", prof.Boundaries[1])
	}
	wantMean := float64(perf.NumCounters) / 2
	if prof.MeanBoundaries != wantMean {
		t.Fatalf("mean = %v, want %v", prof.MeanBoundaries, wantMean)
	}
}

func TestProfilePhasesErrors(t *testing.T) {
	sm := synthSuite("e", [][]float64{{1}}, nil) // no series
	if _, err := ProfilePhases(sm, DefaultOptions(), 5, 2); err == nil {
		t.Fatal("missing series accepted")
	}
	withSeries := synthSuite("s", [][]float64{{1}}, [][]float64{flatSeries(1, 30)})
	if _, err := ProfilePhases(withSeries, DefaultOptions(), 0, 2); err == nil {
		t.Fatal("window 0 accepted")
	}
}

func TestProfilePhasesWarmupExcluded(t *testing.T) {
	// A shift entirely inside the warmup prefix must not count.
	series := make([]float64, 100)
	for i := range series {
		if i < 5 {
			series[i] = 5000 // warmup spike
		} else {
			series[i] = 100
		}
	}
	sm := synthSuite("w", [][]float64{{1}}, [][]float64{series})
	opts := DefaultOptions() // WarmupFrac = 0.1 drops the first 10 samples
	prof, err := ProfilePhases(sm, opts, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Boundaries[0] != 0 {
		t.Fatalf("warmup spike detected as %d phases", prof.Boundaries[0])
	}
}
