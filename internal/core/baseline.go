package core

import (
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/metric"
	"perspector/internal/pca"
	"perspector/internal/perf"
)

// This file implements the prior-work methodology of the paper's Table I
// (Phansalkar et al., Panda et al.): normalize → PCA → agglomerative
// hierarchical clustering. Perspector's §II critiques it for lacking a
// cluster-quality metric and ignoring phases; having it in the library
// makes the comparison runnable instead of rhetorical.

// BaselineResult is the outcome of the prior-work redundancy pipeline.
type BaselineResult struct {
	// Labels assigns each workload to one of K flat clusters.
	Labels []int
	// K is the number of clusters the dendrogram was cut into.
	K int
	// Silhouette is the quality of that flat clustering — the number the
	// prior work never computed.
	Silhouette float64
	// RetainedComponents is the PCA dimensionality after the variance
	// truncation.
	RetainedComponents int
	// Representatives proposes one workload index per cluster (the member
	// closest to its cluster's centroid in PCA space) — the subset the
	// prior-work methodology would run.
	Representatives []int
}

// HierarchicalBaseline runs the Table-I prior-work pipeline on a measured
// suite: per-counter min-max normalization, PCA retaining
// opts.PCAVariance, agglomerative clustering with the given linkage, cut
// at k clusters. It returns flat labels, the silhouette of the cut, and a
// representative workload per cluster.
func HierarchicalBaseline(sm *perf.SuiteMeasurement, opts Options, linkage cluster.Linkage, k int) (*BaselineResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(sm.Workloads)
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: baseline cut k=%d out of range for %d workloads", k, n)
	}
	x := metric.NewArtifacts(sm, opts).OwnNorm()
	res, err := pca.Fit(x, opts.PCAVariance)
	if err != nil {
		return nil, fmt.Errorf("core: baseline PCA: %w", err)
	}
	reduced := res.Transformed

	dg, err := cluster.Hierarchical(reduced, linkage)
	if err != nil {
		return nil, fmt.Errorf("core: baseline clustering: %w", err)
	}
	labels, err := dg.Cut(k)
	if err != nil {
		return nil, fmt.Errorf("core: baseline cut: %w", err)
	}
	sil, err := cluster.Silhouette(reduced, labels, k)
	if err != nil {
		return nil, fmt.Errorf("core: baseline silhouette: %w", err)
	}

	// Representatives: the member nearest its cluster centroid.
	d := reduced.Cols()
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for c := range centroids {
		centroids[c] = make([]float64, d)
	}
	for i, c := range labels {
		counts[c]++
		row := reduced.RowView(i)
		for j := 0; j < d; j++ {
			centroids[c][j] += row[j]
		}
	}
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			centroids[c][j] /= float64(counts[c])
		}
	}
	reps := make([]int, k)
	best := make([]float64, k)
	for c := range best {
		best[c] = -1
	}
	for i, c := range labels {
		row := reduced.RowView(i)
		dist := 0.0
		for j := 0; j < d; j++ {
			diff := row[j] - centroids[c][j]
			dist += diff * diff
		}
		if best[c] < 0 || dist < best[c] {
			best[c] = dist
			reps[c] = i
		}
	}

	return &BaselineResult{
		Labels:             labels,
		K:                  k,
		Silhouette:         sil,
		RetainedComponents: res.K(),
		Representatives:    reps,
	}, nil
}

// PhaseProfile summarizes the phase behaviour of a measured suite: for
// each workload, the number of detected phase boundaries, aggregated over
// the selected counters. This operationalizes the "phase analysis"
// capability (Table I, "PA?") that Perspector adds over prior work.
type PhaseProfile struct {
	// Boundaries[i] is the total number of phase boundaries detected
	// across the selected counters for workload i.
	Boundaries []int
	// MeanBoundaries is the suite-level average.
	MeanBoundaries float64
}

// ProfilePhases runs the phase detector over every workload and counter.
// window/threshold follow DetectPhases; warmup follows opts.WarmupFrac.
func ProfilePhases(sm *perf.SuiteMeasurement, opts Options, window int, threshold float64) (*PhaseProfile, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	prof := &PhaseProfile{Boundaries: make([]int, len(sm.Workloads))}
	total := 0
	for i := range sm.Workloads {
		for _, c := range opts.Counters {
			series := sm.Workloads[i].Series.Series(c)
			if len(series) == 0 {
				return nil, fmt.Errorf("core: ProfilePhases: workload %q has no samples for %v",
					sm.Workloads[i].Workload, c)
			}
			drop := int(opts.WarmupFrac * float64(len(series)))
			if drop >= len(series) {
				drop = len(series) - 1
			}
			changes, err := DetectPhases(series[drop:], window, threshold)
			if err != nil {
				return nil, err
			}
			prof.Boundaries[i] += len(changes)
		}
		total += prof.Boundaries[i]
	}
	if len(sm.Workloads) > 0 {
		prof.MeanBoundaries = float64(total) / float64(len(sm.Workloads))
	}
	return prof, nil
}
