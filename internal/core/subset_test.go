package core

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

// bigSyntheticSuite builds an n-workload suite with spread counter vectors
// and mildly varying step series.
func bigSyntheticSuite(n int, seed uint64) *perf.SuiteMeasurement {
	src := rng.New(seed)
	sm := &perf.SuiteMeasurement{Suite: "synthetic"}
	for i := 0; i < n; i++ {
		var m perf.Measurement
		m.Workload = "w" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			m.Totals[c] = uint64(1000 + src.Intn(1_000_000))
			lvl1 := float64(10 + src.Intn(100))
			lvl2 := float64(10 + src.Intn(2000))
			m.Series.Samples[c] = stepSeries(lvl1, lvl2, 40)
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

func TestSubsetBasic(t *testing.T) {
	sm := bigSyntheticSuite(43, 1)
	res, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 8 || len(res.Names) != 8 {
		t.Fatalf("subset size = %d", len(res.Indices))
	}
	seen := map[int]bool{}
	for k, i := range res.Indices {
		if i < 0 || i >= 43 || seen[i] {
			t.Fatalf("bad index set %v", res.Indices)
		}
		seen[i] = true
		if res.Names[k] != sm.Workloads[i].Workload {
			t.Fatalf("name mismatch at %d", k)
		}
	}
	if res.Deviation < 0 {
		t.Fatalf("negative deviation %v", res.Deviation)
	}
}

func TestSubsetDeterministic(t *testing.T) {
	sm := bigSyntheticSuite(30, 2)
	a, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("non-deterministic subset")
		}
	}
	if a.Deviation != b.Deviation {
		t.Fatal("non-deterministic deviation")
	}
}

func TestSubsetErrors(t *testing.T) {
	sm := bigSyntheticSuite(10, 3)
	if _, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(1)); err == nil {
		t.Fatal("size 1 accepted")
	}
	if _, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(10)); err == nil {
		t.Fatal("size == n accepted")
	}
	so := DefaultSubsetOptions(4)
	so.MaximinTries = 0
	if _, err := Subset(sm, DefaultOptions(), so); err == nil {
		t.Fatal("zero tries accepted")
	}
}

func TestSubsetBeatsWorstCase(t *testing.T) {
	// The LHS subset's deviation should be modest for a well-spread
	// synthetic suite — and far better than a degenerate subset made of
	// near-duplicates. We check the absolute bar the paper suggests
	// loosely (6.53% for SPEC'17; allow a generous margin for synthetic
	// data).
	sm := bigSyntheticSuite(43, 4)
	res, err := Subset(sm, DefaultOptions(), DefaultSubsetOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deviation > 0.5 {
		t.Fatalf("LHS subset deviation %v implausibly large", res.Deviation)
	}
}

func TestScoreDeviationZeroForIdentical(t *testing.T) {
	s := Scores{Cluster: 0.5, Trend: 100, Coverage: 0.02, Spread: 0.4}
	if d := scoreDeviation(s, s); d != 0 {
		t.Fatalf("identical deviation = %v", d)
	}
}

func TestScoreDeviationHandlesZeroFull(t *testing.T) {
	full := Scores{Cluster: 0, Trend: 1, Coverage: 1, Spread: 1}
	sub := Scores{Cluster: 0.1, Trend: 1, Coverage: 1, Spread: 1}
	d := scoreDeviation(full, sub)
	if d != 0.1/4 {
		t.Fatalf("zero-full deviation = %v, want 0.025", d)
	}
}

func TestDetectPhasesStep(t *testing.T) {
	series := stepSeries(10, 1000, 60)
	changes, err := DetectPhases(series, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("detected %d changes, want 1: %+v", len(changes), changes)
	}
	if c := changes[0].Index; c < 25 || c > 35 {
		t.Fatalf("boundary at %d, want ~30", c)
	}
}

func TestDetectPhasesFlat(t *testing.T) {
	changes, err := DetectPhases(flatSeries(100, 50), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("flat series produced changes: %+v", changes)
	}
}

func TestDetectPhasesMultiStep(t *testing.T) {
	var series []float64
	for _, lvl := range []float64{10, 500, 10, 800} {
		series = append(series, flatSeries(lvl, 25)...)
	}
	changes, err := DetectPhases(series, 5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 3 {
		t.Fatalf("detected %d changes, want 3: %+v", len(changes), changes)
	}
}

func TestDetectPhasesShortSeries(t *testing.T) {
	changes, err := DetectPhases([]float64{1, 2}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if changes != nil {
		t.Fatal("short series produced changes")
	}
}

func TestDetectPhasesErrors(t *testing.T) {
	if _, err := DetectPhases(flatSeries(1, 50), 0, 2); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := DetectPhases(flatSeries(1, 50), 5, 0); err == nil {
		t.Fatal("threshold 0 accepted")
	}
}

func TestDetectPhasesNoiseRobust(t *testing.T) {
	// A noisy but level series should not trigger at threshold 2.5.
	src := rng.New(9)
	series := make([]float64, 80)
	for i := range series {
		series[i] = 100 + src.Norm(0, 5)
	}
	changes, err := DetectPhases(series, 8, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("noise triggered %d changes", len(changes))
	}
}
