package core

import (
	"math"
	"testing"

	"perspector/internal/mat"
	"perspector/internal/perf"
	"perspector/internal/rng"
)

// synthSuite builds a SuiteMeasurement directly from counter vectors and
// per-counter series, bypassing the simulator, so metric behaviour can be
// tested against constructed ground truth.
func synthSuite(name string, vectors [][]float64, seriesPer [][]float64) *perf.SuiteMeasurement {
	sm := &perf.SuiteMeasurement{Suite: name}
	for i, v := range vectors {
		var m perf.Measurement
		m.Workload = name + "-" + string(rune('a'+i))
		for c := 0; c < len(v) && c < int(perf.NumCounters); c++ {
			m.Totals[c] = uint64(v[c])
		}
		if seriesPer != nil {
			for c := perf.Counter(0); c < perf.NumCounters; c++ {
				m.Series.Samples[c] = append([]float64(nil), seriesPer[i]...)
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

func flatSeries(level float64, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = level
	}
	return s
}

func stepSeries(a, b float64, n int) []float64 {
	return stepSeriesAt(a, b, n, n/2)
}

// stepSeriesAt switches from level a to level b at sample `at`. Different
// switch positions give different *shapes*, which is what the CDF/
// percentile normalization preserves (magnitude is deliberately erased).
func stepSeriesAt(a, b float64, n, at int) []float64 {
	s := make([]float64, n)
	for i := range s {
		if i < at {
			s[i] = a
		} else {
			s[i] = b
		}
	}
	return s
}

func fullVec(base float64, src *rng.Source) []float64 {
	v := make([]float64, perf.NumCounters)
	for i := range v {
		v[i] = base + src.Float64()*base
	}
	return v
}

func TestClusterScoreClusteredVsSpread(t *testing.T) {
	src := rng.New(1)
	// Clustered: two tight groups of 6.
	var clustered [][]float64
	for i := 0; i < 6; i++ {
		clustered = append(clustered, fullVec(100, src))
	}
	for i := 0; i < 6; i++ {
		clustered = append(clustered, fullVec(100000, src))
	}
	// Spread: 12 vectors i.i.d. uniform per counter — scattered through
	// the whole parameter space, the paper's notion of "well-spread".
	var spread [][]float64
	for i := 0; i < 12; i++ {
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = 1e6 * src.Float64()
		}
		spread = append(spread, v)
	}
	opts := DefaultOptions()
	cClustered, err := ClusterScore(synthSuite("c", clustered, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	cSpread, err := ClusterScore(synthSuite("s", spread, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 6 averages the silhouette over every k in [2, n−1], so even two
	// perfect blobs score well below 1 (the forced k>2 splits are poor);
	// the discriminating property is the clustered/spread ordering with a
	// clear margin.
	if cClustered <= cSpread+0.05 {
		t.Fatalf("clustered score %v not clearly above spread score %v", cClustered, cSpread)
	}
}

func TestClusterScoreTinySuites(t *testing.T) {
	opts := DefaultOptions()
	// n < 3: 0 by convention.
	s, err := ClusterScore(synthSuite("t", [][]float64{{1, 2}, {3, 4}}, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("n=2 score = %v", s)
	}
	// n = 3: single k=2 silhouette, must not error.
	if _, err := ClusterScore(synthSuite("t3", [][]float64{{1, 1}, {2, 2}, {9, 9}}, nil), opts); err != nil {
		t.Fatal(err)
	}
}

func TestClusterScoreDeterministic(t *testing.T) {
	src := rng.New(2)
	var vecs [][]float64
	for i := 0; i < 10; i++ {
		vecs = append(vecs, fullVec(1000, src))
	}
	sm := synthSuite("d", vecs, nil)
	opts := DefaultOptions()
	a, err := ClusterScore(sm, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterScore(sm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestTrendScorePhasedVsFlat(t *testing.T) {
	// Suite A: workloads with diverse step series. Suite B: all flat.
	phased := synthSuite("p", [][]float64{{1}, {1}, {1}, {1}},
		[][]float64{
			stepSeriesAt(10, 1000, 60, 15),
			stepSeriesAt(1000, 10, 60, 45),
			flatSeries(500, 60),
			stepSeriesAt(5, 50, 60, 30),
		})
	flat := synthSuite("f", [][]float64{{1}, {1}, {1}, {1}},
		[][]float64{
			flatSeries(100, 60),
			flatSeries(200, 60),
			flatSeries(300, 60),
			flatSeries(400, 60),
		})
	opts := DefaultOptions()
	tp, err := TrendScore(phased, opts)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := TrendScore(flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= tf {
		t.Fatalf("phased trend %v not above flat trend %v", tp, tf)
	}
}

func TestTrendScoreMagnitudeInvariant(t *testing.T) {
	// Scaling one workload's series by 10^6 must not change the score —
	// the whole point of the Fig. 1 normalization.
	mk := func(scale float64) *perf.SuiteMeasurement {
		s1 := stepSeries(10, 100, 50)
		for i := range s1 {
			s1[i] *= scale
		}
		return synthSuite("m", [][]float64{{1}, {1}},
			[][]float64{s1, stepSeries(100, 10, 50)})
	}
	opts := DefaultOptions()
	a, err := TrendScore(mk(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrendScore(mk(1e6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-6*(1+a) {
		t.Fatalf("trend not magnitude invariant: %v vs %v", a, b)
	}
}

func TestTrendScoreBandedOption(t *testing.T) {
	phased := synthSuite("p", [][]float64{{1}, {1}, {1}},
		[][]float64{
			stepSeriesAt(10, 1000, 60, 15),
			stepSeriesAt(1000, 10, 60, 45),
			flatSeries(500, 60),
		})
	full := DefaultOptions()
	banded := DefaultOptions()
	banded.DTWBand = 10
	tf, err := TrendScore(phased, full)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := TrendScore(phased, banded)
	if err != nil {
		t.Fatal(err)
	}
	// A band restricts warping: banded pairwise distances dominate full.
	if tb < tf-1e-9 {
		t.Fatalf("banded trend %v below full %v", tb, tf)
	}
	// Too-narrow bands against unequal grid lengths cannot occur (the
	// grid fixes lengths), but a zero band must equal the full DP.
	zero := DefaultOptions()
	zero.DTWBand = 0
	tz, err := TrendScore(phased, zero)
	if err != nil {
		t.Fatal(err)
	}
	if tz != tf {
		t.Fatalf("band 0 trend %v != full %v", tz, tf)
	}
}

func TestTrendScoreValueCDFOption(t *testing.T) {
	sm := synthSuite("v", [][]float64{{1}, {1}},
		[][]float64{
			stepSeriesAt(10, 1000, 60, 20),
			flatSeries(500, 60),
		})
	event := DefaultOptions()
	value := DefaultOptions()
	value.TrendValueCDF = true
	te, err := TrendScore(sm, event)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := TrendScore(sm, value)
	if err != nil {
		t.Fatal(err)
	}
	if te == tv {
		t.Fatal("value-CDF option had no effect")
	}
}

func TestTrendScoreSingleWorkload(t *testing.T) {
	sm := synthSuite("one", [][]float64{{1}}, [][]float64{flatSeries(1, 10)})
	s, err := TrendScore(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("single-workload trend = %v", s)
	}
}

func TestTrendScoreMissingSeries(t *testing.T) {
	sm := synthSuite("bad", [][]float64{{1}, {2}}, nil)
	if _, err := TrendScore(sm, DefaultOptions()); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestJointNormalizePreservesRelativeRange(t *testing.T) {
	// Suite A spans [0,10k], suite B spans [0,100k] in counter 0: after
	// joint normalization A's max is 0.1, B's max is 1 (§III-C1).
	a := mat.FromRows([][]float64{{0}, {10000}})
	b := mat.FromRows([][]float64{{0}, {100000}})
	normed, err := JointNormalize([]*mat.Matrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := normed[0].At(1, 0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("A max = %v, want 0.1", got)
	}
	if got := normed[1].At(1, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("B max = %v, want 1", got)
	}
}

func TestJointNormalizeErrors(t *testing.T) {
	if _, err := JointNormalize(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	a := mat.New(1, 2)
	b := mat.New(1, 3)
	if _, err := JointNormalize([]*mat.Matrix{a, b}); err == nil {
		t.Fatal("column mismatch accepted")
	}
	if _, err := JointNormalize([]*mat.Matrix{mat.New(0, 2)}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestCoverageScoreWideVsNarrow(t *testing.T) {
	src := rng.New(3)
	wide := mat.New(12, 4)
	narrow := mat.New(12, 4)
	for i := 0; i < 12; i++ {
		for j := 0; j < 4; j++ {
			wide.Set(i, j, src.Float64())            // spans [0,1]
			narrow.Set(i, j, 0.5+0.01*src.Float64()) // tiny blob
		}
	}
	opts := DefaultOptions()
	cw, err := CoverageScore(wide, opts)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := CoverageScore(narrow, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cw <= cn {
		t.Fatalf("wide coverage %v not above narrow %v", cw, cn)
	}
}

func TestSpreadScoreUniformVsClumped(t *testing.T) {
	src := rng.New(4)
	m := 14
	uniform := mat.New(8, m)
	clumped := mat.New(8, m)
	for i := 0; i < 8; i++ {
		for j := 0; j < m; j++ {
			uniform.Set(i, j, src.Float64())
			clumped.Set(i, j, 0.48+0.04*src.Float64())
		}
	}
	opts := DefaultOptions()
	su, err := SpreadScore(uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SpreadScore(clumped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if su >= sc {
		t.Fatalf("uniform spread %v not below clumped %v", su, sc)
	}
	if su > 0.5 {
		t.Fatalf("uniform rows should KS below 0.5, got %v", su)
	}
}

func TestScoreSuitesEndToEnd(t *testing.T) {
	src := rng.New(5)
	mkSeries := func(kind int) [][]float64 {
		var out [][]float64
		for i := 0; i < 6; i++ {
			if kind == 0 {
				out = append(out, flatSeries(100+float64(i), 40))
			} else {
				out = append(out, stepSeriesAt(float64(10*(i+1)), float64(1000*(i+1)), 40, 5+6*i))
			}
		}
		return out
	}
	var flatVecs, phasedVecs [][]float64
	for i := 0; i < 6; i++ {
		flatVecs = append(flatVecs, fullVec(1000, src))
		phasedVecs = append(phasedVecs, fullVec(100*math.Pow(3, float64(i)), src))
	}
	a := synthSuite("flat", flatVecs, mkSeries(0))
	b := synthSuite("phased", phasedVecs, mkSeries(1))
	scores, err := ScoreSuites([]*perf.SuiteMeasurement{a, b}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[0].Suite != "flat" || scores[1].Suite != "phased" {
		t.Fatalf("scores = %+v", scores)
	}
	if scores[1].Trend <= scores[0].Trend {
		t.Fatal("phased suite should out-trend flat suite")
	}
	for _, s := range scores {
		if s.Spread < 0 || s.Spread > 1 {
			t.Fatalf("spread out of [0,1]: %+v", s)
		}
		if s.Cluster < -1 || s.Cluster > 1 {
			t.Fatalf("cluster out of [-1,1]: %+v", s)
		}
		if s.Coverage < 0 {
			t.Fatalf("negative coverage: %+v", s)
		}
	}
}

func TestScoreSuiteMatchesScoreSuites(t *testing.T) {
	src := rng.New(6)
	var vecs [][]float64
	var series [][]float64
	for i := 0; i < 5; i++ {
		vecs = append(vecs, fullVec(500, src))
		series = append(series, stepSeries(float64(i+1), float64(100*(i+1)), 30))
	}
	sm := synthSuite("solo", vecs, series)
	one, err := ScoreSuite(sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	many, err := ScoreSuites([]*perf.SuiteMeasurement{sm}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if one != many[0] {
		t.Fatalf("ScoreSuite %+v != ScoreSuites[0] %+v", one, many[0])
	}
}

func TestOptionsValidation(t *testing.T) {
	sm := synthSuite("v", [][]float64{{1}, {2}, {3}, {4}}, nil)
	bad := DefaultOptions()
	bad.Counters = nil
	if _, err := ClusterScore(sm, bad); err == nil {
		t.Fatal("no counters accepted")
	}
	bad = DefaultOptions()
	bad.DTWGrid = 0
	if _, err := TrendScore(sm, bad); err == nil {
		t.Fatal("zero grid accepted")
	}
	bad = DefaultOptions()
	bad.PCAVariance = 0
	if _, err := CoverageScore(mat.New(2, 2), bad); err == nil {
		t.Fatal("zero variance accepted")
	}
	bad = DefaultOptions()
	bad.KMeansRestarts = 0
	if _, err := ClusterScore(sm, bad); err == nil {
		t.Fatal("zero restarts accepted")
	}
}

func TestFocusedScoringChangesScores(t *testing.T) {
	// A suite that forms two tight blobs in LLC space but is uniformly
	// spread in TLB space must score worse (higher ClusterScore) under
	// the LLC event group than under the TLB group — the §IV-B effect.
	src := rng.New(7)
	var vecs [][]float64
	for i := 0; i < 10; i++ {
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = 1000 + 500*src.Float64()
		}
		// TLB counters: spread smoothly across the range.
		for _, c := range perf.GroupTLB().Counters {
			v[c] = 1000 * float64(i+1) * (1 + 0.2*src.Float64())
		}
		// LLC counters: two tight blobs.
		blob := 1000.0
		if i >= 5 {
			blob = 1e6
		}
		for _, c := range perf.GroupLLC().Counters {
			v[c] = blob * (1 + 0.01*src.Float64())
		}
		vecs = append(vecs, v)
	}
	sm := synthSuite("focus", vecs, nil)
	llcOpts := DefaultOptions()
	llcOpts.Counters = perf.GroupLLC().Counters
	tlbOpts := DefaultOptions()
	tlbOpts.Counters = perf.GroupTLB().Counters
	cLLC, err := ClusterScore(sm, llcOpts)
	if err != nil {
		t.Fatal(err)
	}
	cTLB, err := ClusterScore(sm, tlbOpts)
	if err != nil {
		t.Fatal(err)
	}
	if cLLC <= cTLB {
		t.Fatalf("LLC-focused cluster %v should exceed TLB-focused %v (blobs live in LLC space)", cLLC, cTLB)
	}
}
