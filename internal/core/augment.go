package core

import (
	"fmt"
	"math"

	"perspector/internal/perf"
)

// Augmentation is the result of greedy suite construction: which
// candidate workloads to add to a base suite, in order, and the suite's
// scores after each addition.
type Augmentation struct {
	// Chosen are indices into the candidate measurement, in the order
	// they were added.
	Chosen []int
	// Names are the corresponding workload names.
	Names []string
	// Trace[k] is the score of base+Chosen[:k] (Trace[0] = base alone),
	// so the marginal value of every addition is visible.
	Trace []Scores
}

// AugmentObjective scores a suite for the greedy search; higher is
// better. The default balances the paper's four criteria.
type AugmentObjective func(Scores) float64

// DefaultObjective prefers high coverage and trend, low clustering and
// spread, each term scaled to comparable magnitudes.
func DefaultObjective(s Scores) float64 {
	return 4*s.Coverage + s.Trend/100 - s.Cluster - s.Spread/2
}

// Augment greedily grows a measured base suite with workloads from a
// measured candidate pool: at each of k steps it adds the candidate that
// maximizes the objective of the combined suite. This operationalizes the
// abstract's "systematically and rigorously create a suite of workloads":
// start from a seed suite, offer a pool, and let the metrics choose.
//
// Scores along the trace are computed in isolation (own-bounds
// normalization), which is the right frame for iterating on one suite.
func Augment(base, candidates *perf.SuiteMeasurement, opts Options, k int, objective AugmentObjective) (*Augmentation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: Augment with k=%d", k)
	}
	if k > len(candidates.Workloads) {
		return nil, fmt.Errorf("core: Augment wants %d additions from %d candidates",
			k, len(candidates.Workloads))
	}
	if len(base.Workloads) == 0 {
		return nil, fmt.Errorf("core: Augment with empty base suite")
	}
	if objective == nil {
		objective = DefaultObjective
	}

	current := &perf.SuiteMeasurement{Suite: base.Suite}
	current.Workloads = append(current.Workloads, base.Workloads...)
	baseScore, err := ScoreSuite(current, opts)
	if err != nil {
		return nil, err
	}
	aug := &Augmentation{Trace: []Scores{baseScore}}
	used := make([]bool, len(candidates.Workloads))

	for step := 0; step < k; step++ {
		bestIdx, bestVal := -1, math.Inf(-1)
		var bestScore Scores
		for c := range candidates.Workloads {
			if used[c] {
				continue
			}
			trial := &perf.SuiteMeasurement{Suite: current.Suite}
			trial.Workloads = append(trial.Workloads, current.Workloads...)
			trial.Workloads = append(trial.Workloads, candidates.Workloads[c])
			s, err := ScoreSuite(trial, opts)
			if err != nil {
				return nil, fmt.Errorf("core: Augment trial %q: %w",
					candidates.Workloads[c].Workload, err)
			}
			if v := objective(s); v > bestVal {
				bestVal = v
				bestIdx = c
				bestScore = s
			}
		}
		used[bestIdx] = true
		current.Workloads = append(current.Workloads, candidates.Workloads[bestIdx])
		aug.Chosen = append(aug.Chosen, bestIdx)
		aug.Names = append(aug.Names, candidates.Workloads[bestIdx].Workload)
		aug.Trace = append(aug.Trace, bestScore)
	}
	return aug, nil
}
