package core

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

func TestCounterRedundancyFindsCorrelatedPair(t *testing.T) {
	src := rng.New(1)
	var vecs [][]float64
	for i := 0; i < 20; i++ {
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = src.Float64() * 1000
		}
		// Force LLC-loads ≈ 2 × dTLB-loads: a perfectly redundant pair.
		v[perf.LLCLoads] = 2 * v[perf.DTLBLoads]
		vecs = append(vecs, v)
	}
	sm := synthSuite("red", vecs, nil)
	pairs, err := CounterRedundancy(sm, DefaultOptions(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no redundant pairs found")
	}
	found := false
	for _, p := range pairs {
		if (p.A == perf.DTLBLoads && p.B == perf.LLCLoads) ||
			(p.A == perf.LLCLoads && p.B == perf.DTLBLoads) {
			found = true
			if p.R < 0.99 {
				t.Fatalf("forced pair r = %v", p.R)
			}
		}
	}
	if !found {
		t.Fatalf("forced pair missing from %v", pairs)
	}
	// Strongest first.
	for i := 1; i < len(pairs); i++ {
		if absF(pairs[i].R) > absF(pairs[i-1].R)+1e-12 {
			t.Fatal("pairs not sorted by |r|")
		}
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestCounterRedundancyIndependentData(t *testing.T) {
	src := rng.New(2)
	var vecs [][]float64
	for i := 0; i < 60; i++ {
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = src.Float64()
		}
		vecs = append(vecs, v)
	}
	sm := synthSuite("ind", vecs, nil)
	pairs, err := CounterRedundancy(sm, DefaultOptions(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("independent data produced %d pairs above 0.9: %v", len(pairs), pairs)
	}
}

func TestCounterRedundancyErrors(t *testing.T) {
	sm := synthSuite("e", [][]float64{{1, 2}, {3, 4}}, nil)
	if _, err := CounterRedundancy(sm, DefaultOptions(), 0); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := CounterRedundancy(sm, DefaultOptions(), 1.5); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	one := synthSuite("one", [][]float64{{1, 2}}, nil)
	if _, err := CounterRedundancy(one, DefaultOptions(), 0.9); err == nil {
		t.Fatal("single workload accepted")
	}
}

func TestCounterRedundancyConstantCounter(t *testing.T) {
	// A constant counter must not correlate with anything.
	var vecs [][]float64
	for i := 0; i < 10; i++ {
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = float64((i*7 + j*3) % 13)
		}
		v[perf.PageFaults] = 42
		vecs = append(vecs, v)
	}
	sm := synthSuite("const", vecs, nil)
	pairs, err := CounterRedundancy(sm, DefaultOptions(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.A == perf.PageFaults || p.B == perf.PageFaults {
			t.Fatalf("constant counter reported redundant: %+v", p)
		}
	}
}
