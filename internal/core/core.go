// Package core is the analysis layer above the scoring engine: LHS-based
// subset generation (§IV-C), greedy augmentation, random/affinity
// baselines, redundancy analysis, ranking, stability, and counter-series
// phase detection.
//
// The four §III suite-quality scores themselves live in internal/metric
// as registered metrics over shared Artifacts; the identifiers here
// (Options, Scores, ClusterScore, …) are thin compatibility wrappers kept
// so existing callers and the public perspector package keep compiling.
// New code that wants cancellation or a custom metric set should call
// internal/metric directly.
package core

import (
	"context"

	"perspector/internal/mat"
	"perspector/internal/metric"
	"perspector/internal/perf"
)

// Options configures score computation. Alias of metric.Options.
type Options = metric.Options

// Scores holds the four Perspector metrics for one suite. Alias of
// metric.Scores.
type Scores = metric.Scores

// DefaultOptions mirrors the paper's configuration: all counters, 98 %
// retained variance, full DTW on a 100-point percentile grid.
func DefaultOptions() Options { return metric.DefaultOptions() }

// ClusterScore implements §III-A / Eq. 6. See metric.ClusterScore.
func ClusterScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	return metric.ClusterScore(sm, opts)
}

// TrendScore implements §III-B / Eq. 7–8. See metric.TrendScore.
func TrendScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	return metric.TrendScore(sm, opts)
}

// CoverageScore implements §III-C / Eq. 11–13 on an already-normalized
// matrix. See metric.CoverageScore.
func CoverageScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	return metric.CoverageScore(xNorm, opts)
}

// SpreadScore implements §III-D / Eq. 14 on an already-normalized
// matrix. See metric.SpreadScore.
func SpreadScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	return metric.SpreadScore(xNorm, opts)
}

// JointNormalize min-max normalizes the matrices of several suites with
// shared per-counter bounds (Eq. 9–10). See metric.JointNormalize.
func JointNormalize(xs []*mat.Matrix) ([]*mat.Matrix, error) {
	return metric.JointNormalize(xs)
}

// ScoreSuites computes all four Perspector scores for each suite under
// the joint normalization of Eq. 9–10, exactly as the paper compares
// suites in Fig. 3. Wrapper over metric.ScoreSuites with a background
// context and the default registry; totals-only measurements come back
// with Trend zero via the engine's capability check.
func ScoreSuites(sms []*perf.SuiteMeasurement, opts Options) ([]Scores, error) {
	return metric.ScoreSuites(context.Background(), sms, opts, nil)
}

// ScoreSuite scores one suite in isolation (joint normalization
// degenerates to the suite's own bounds).
func ScoreSuite(sm *perf.SuiteMeasurement, opts Options) (Scores, error) {
	return metric.ScoreSuite(context.Background(), sm, opts, nil)
}
