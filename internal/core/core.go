// Package core implements Perspector's contribution: the four benchmark
// suite quality scores of §III (ClusterScore, TrendScore, CoverageScore,
// SpreadScore), joint-normalization comparison of multiple suites,
// LHS-based subset generation (§IV-C), and counter-series phase detection.
package core

import (
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/dtw"
	"perspector/internal/mat"
	"perspector/internal/par"
	"perspector/internal/pca"
	"perspector/internal/perf"
	"perspector/internal/rng"
	"perspector/internal/stat"
)

// Options configures score computation.
type Options struct {
	// Counters is the event group to score over (the "focused scoring"
	// of §IV-B). Defaults to all Table-IV counters.
	Counters []perf.Counter
	// KMeansSeed drives k-means restarts deterministically.
	KMeansSeed uint64
	// KMeansRestarts is the number of k-means++ restarts per k.
	KMeansRestarts int
	// DTWGrid is the number of percentile-grid intervals used by the
	// TrendScore normalization (§III-B1); the series are resampled to
	// DTWGrid+1 points.
	DTWGrid int
	// DTWBand is the Sakoe–Chiba half-width; 0 means full DTW.
	DTWBand int
	// PCAVariance is the retained-variance fraction of Eq. 11–12.
	PCAVariance float64
	// SpreadSeed seeds the uniform draws of Eq. 14.
	SpreadSeed uint64
	// WarmupFrac is the fraction of leading time-series samples dropped
	// before trend analysis. Short simulated runs make cold-start effects
	// (cache/TLB fill, first-touch faults) a visible artificial "phase"
	// that real minutes-long executions do not show; discarding warmup is
	// the standard counter-measurement methodology.
	WarmupFrac float64
	// TrendValueCDF switches the TrendScore's y-axis normalization from
	// the event-CDF-over-time reading of §III-B1 to the alternative
	// value-CDF reading. Kept for the ablation study only: the value-CDF
	// variant rank-amplifies sampling noise on steady workloads and
	// inverts the paper's LMbench/Nbench trend results (see DESIGN.md).
	TrendValueCDF bool
}

// DefaultOptions mirrors the paper's configuration: all counters, 98 %
// retained variance, full DTW on a 100-point percentile grid.
func DefaultOptions() Options {
	return Options{
		Counters:       perf.AllCounters(),
		KMeansSeed:     1,
		KMeansRestarts: 8,
		DTWGrid:        100,
		PCAVariance:    0.98,
		SpreadSeed:     7,
		WarmupFrac:     0.1,
	}
}

func (o *Options) validate() error {
	if len(o.Counters) == 0 {
		return fmt.Errorf("core: no counters selected")
	}
	if o.DTWGrid < 1 {
		return fmt.Errorf("core: DTWGrid %d < 1", o.DTWGrid)
	}
	if o.PCAVariance <= 0 || o.PCAVariance > 1 {
		return fmt.Errorf("core: PCAVariance %v out of (0,1]", o.PCAVariance)
	}
	if o.KMeansRestarts < 1 {
		return fmt.Errorf("core: KMeansRestarts %d < 1", o.KMeansRestarts)
	}
	if o.WarmupFrac < 0 || o.WarmupFrac > 0.9 {
		return fmt.Errorf("core: WarmupFrac %v out of [0, 0.9]", o.WarmupFrac)
	}
	return nil
}

// Scores holds the four Perspector metrics for one suite.
// Lower is better for Cluster and Spread; higher is better for Trend and
// Coverage (§IV-A).
type Scores struct {
	Suite    string
	Cluster  float64
	Trend    float64
	Coverage float64
	Spread   float64
}

// normalizeColumns min-max normalizes each column of x into [0,1] using
// the column's own bounds (used when a suite is scored in isolation).
func normalizeColumns(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows(), x.Cols())
	for j := 0; j < x.Cols(); j++ {
		col := stat.Normalize(x.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out
}

// matrixFor extracts the n×m counter matrix of a suite restricted to the
// selected counters.
func matrixFor(sm *perf.SuiteMeasurement, counters []perf.Counter) *mat.Matrix {
	return mat.FromRows(sm.Matrix(counters))
}

// ClusterScore implements §III-A / Eq. 6: min-max normalize the suite's
// counter matrix, run k-means for every k in [2, n−1], compute the
// silhouette of each clustering, and average. Lower (poorer clustering)
// is better: the workloads do not clump.
//
// Suites with fewer than 4 workloads have no k in [2, n−1] beyond the
// trivial ones; for n == 3 the single k=2 silhouette is returned, and for
// n < 3 the score is 0 by the k=1 convention of Eq. 3.
func ClusterScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	if err := opts.validate(); err != nil {
		return 0, err
	}
	n := len(sm.Workloads)
	if n < 3 {
		return 0, nil
	}
	x := normalizeColumns(matrixFor(sm, opts.Counters))
	// One O(n²) distance matrix serves every silhouette of the sweep.
	dist := cluster.DistanceMatrix(x)
	ks := n - 2 // k in [2, n-1]
	sils := make([]float64, ks)
	errs := make([]error, ks)
	par.Do(ks, func(_, i int) {
		k := i + 2
		km := cluster.DefaultKMeansOptions(rng.ChildSeed(opts.KMeansSeed, k))
		km.Restarts = opts.KMeansRestarts
		res, err := cluster.KMeans(x, k, km)
		if err != nil {
			errs[i] = fmt.Errorf("core: ClusterScore k=%d: %w", k, err)
			return
		}
		// k-means can return fewer than k distinct labels only via the
		// empty-cluster repair, which guarantees non-empty clusters; the
		// silhouette is computed over exactly k clusters.
		s, err := cluster.SilhouetteDist(dist, res.Labels, k)
		if err != nil {
			errs[i] = fmt.Errorf("core: ClusterScore silhouette k=%d: %w", k, err)
			return
		}
		sils[i] = s
	})
	// Ordered reduction: the sum accumulates in k order exactly as the
	// serial loop did, so the score is bit-identical at any worker count.
	sum, count := 0.0, 0
	for i, s := range sils {
		if errs[i] != nil {
			return 0, errs[i]
		}
		sum += s
		count++
	}
	return sum / float64(count), nil
}

// TrendScore implements §III-B / Eq. 7–8: for every selected counter,
// normalize each workload's delta time series (CDF y-axis to [0,100],
// execution-percentile x-axis), compute all pairwise DTW distances, and
// average; the TrendScore is the mean over counters. Higher is better:
// the suite's workloads exhibit distinct phase behaviour.
func TrendScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	if err := opts.validate(); err != nil {
		return 0, err
	}
	n := len(sm.Workloads)
	if n < 2 {
		return 0, nil
	}
	// Enumerate the unordered pairs once, in the lexicographic order of
	// the serial double loop; the parallel gather below reduces in this
	// order, so the sum never reassociates.
	pairs := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	// Per-worker reusable DP scratch: the O(W²) DTW loop allocates
	// nothing per pair.
	scratch := make([]*dtw.Distancer, par.Workers())
	worker := func(w int) *dtw.Distancer {
		if scratch[w] == nil {
			scratch[w] = dtw.NewDistancer()
		}
		return scratch[w]
	}

	total := 0.0
	for _, c := range opts.Counters {
		series := sm.SeriesFor(c)
		// Normalize once per workload, dropping warmup samples first.
		norm := make([][]float64, n)
		normErrs := make([]error, n)
		par.Do(n, func(w, i int) {
			s := series[i]
			if len(s) == 0 {
				normErrs[i] = fmt.Errorf("core: TrendScore: workload %q has no samples for %v",
					sm.Workloads[i].Workload, c)
				return
			}
			drop := int(opts.WarmupFrac * float64(len(s)))
			if drop >= len(s) {
				drop = len(s) - 1
			}
			if opts.TrendValueCDF {
				norm[i] = dtw.NormalizeSeriesValueCDF(s[drop:], opts.DTWGrid)
			} else {
				norm[i] = worker(w).NormalizeSeries(s[drop:], opts.DTWGrid)
			}
		})
		for _, err := range normErrs {
			if err != nil {
				return 0, err
			}
		}

		dists := make([]float64, len(pairs))
		var dtwErrs []error
		if opts.DTWBand > 0 {
			dtwErrs = make([]error, len(pairs))
		}
		par.Do(len(pairs), func(w, p int) {
			i, j := pairs[p][0], pairs[p][1]
			dz := worker(w)
			if opts.DTWBand > 0 {
				d, err := dz.DistanceBanded(norm[i], norm[j], opts.DTWBand)
				if err != nil {
					dtwErrs[p] = fmt.Errorf("core: TrendScore DTW: %w", err)
					return
				}
				dists[p] = d
			} else {
				dists[p] = dz.Distance(norm[i], norm[j])
			}
		})
		sum := 0.0
		for p, d := range dists {
			if dtwErrs != nil && dtwErrs[p] != nil {
				return 0, dtwErrs[p]
			}
			sum += 2 * d // Eq. 7 sums ordered pairs; DTW is symmetric
		}
		total += sum / float64(n*(n-1))
	}
	return total / float64(len(opts.Counters)), nil
}

// CoverageScore implements §III-C / Eq. 11–13 on an already-normalized
// matrix (joint normalization is the caller's job — see ScoreSuites):
// PCA retaining opts.PCAVariance of the variance, then the mean variance
// of the retained components. Higher is better.
func CoverageScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	if err := opts.validate(); err != nil {
		return 0, err
	}
	res, err := pca.Fit(xNorm, opts.PCAVariance)
	if err != nil {
		return 0, fmt.Errorf("core: CoverageScore: %w", err)
	}
	return res.MeanComponentVariance(), nil
}

// SpreadScore implements §III-D / Eq. 14 on an already-normalized matrix:
// for each workload (row), the two-sample KS statistic between its
// normalized counter values and an equal number of seeded uniform draws;
// the score is the mean over workloads. Lower is better (closer to a
// uniform covering of the parameter space).
func SpreadScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	if err := opts.validate(); err != nil {
		return 0, err
	}
	if xNorm.Rows() == 0 {
		return 0, fmt.Errorf("core: SpreadScore on empty matrix")
	}
	src := rng.New(opts.SpreadSeed)
	m := xNorm.Cols()
	sum := 0.0
	for i := 0; i < xNorm.Rows(); i++ {
		uniform := make([]float64, m)
		for j := range uniform {
			uniform[j] = src.Float64()
		}
		sum += stat.KSTwoSample(xNorm.RowView(i), uniform)
	}
	return sum / float64(xNorm.Rows()), nil
}

// JointNormalize min-max normalizes the matrices of several suites with
// shared per-counter bounds (Eq. 9–10): the bounds come from the
// concatenation of all suites, so relative ranges between suites survive.
func JointNormalize(xs []*mat.Matrix) ([]*mat.Matrix, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: JointNormalize with no matrices")
	}
	m := xs[0].Cols()
	for _, x := range xs {
		if x.Cols() != m {
			return nil, fmt.Errorf("core: JointNormalize column mismatch %d vs %d", x.Cols(), m)
		}
		if x.Rows() == 0 {
			return nil, fmt.Errorf("core: JointNormalize with empty matrix")
		}
	}
	// Global bounds per counter (Eq. 9). Columns are independent, so the
	// bound scan fans out per column; each task writes only its own
	// mins[j]/maxs[j] slot.
	mins := make([]float64, m)
	maxs := make([]float64, m)
	par.Do(m, func(_, j int) {
		first := true
		for _, x := range xs {
			for i := 0; i < x.Rows(); i++ {
				v := x.At(i, j)
				if first || v < mins[j] {
					mins[j] = v
				}
				if first || v > maxs[j] {
					maxs[j] = v
				}
				first = false
			}
		}
	})
	// Normalization pass: one task per suite, each writing its own out[k].
	out := make([]*mat.Matrix, len(xs))
	par.Do(len(xs), func(_, k int) {
		x := xs[k]
		nx := mat.New(x.Rows(), m)
		for j := 0; j < m; j++ {
			col := stat.NormalizeWith(x.Col(j), mins[j], maxs[j])
			for i, v := range col {
				nx.Set(i, j, v)
			}
		}
		out[k] = nx
	})
	return out, nil
}

// ScoreSuites computes all four Perspector scores for each suite.
// ClusterScore and TrendScore are intrinsic to a suite; CoverageScore and
// SpreadScore use the joint normalization of Eq. 9–10 across all the
// suites passed in, exactly as the paper compares suites in Fig. 3.
func ScoreSuites(sms []*perf.SuiteMeasurement, opts Options) ([]Scores, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(sms) == 0 {
		return nil, fmt.Errorf("core: ScoreSuites with no suites")
	}
	raw := make([]*mat.Matrix, len(sms))
	for i, sm := range sms {
		raw[i] = matrixFor(sm, opts.Counters)
	}
	normed, err := JointNormalize(raw)
	if err != nil {
		return nil, err
	}
	// Per-suite fan-out: every suite's four scores are independent of the
	// others once the joint bounds are fixed, and each score is itself
	// deterministic, so out[i] is the same at any worker count. The first
	// error in suite order is returned, matching the serial loop.
	out := make([]Scores, len(sms))
	errs := make([]error, len(sms))
	par.Do(len(sms), func(_, i int) {
		sm := sms[i]
		cs, err := ClusterScore(sm, opts)
		if err != nil {
			errs[i] = fmt.Errorf("suite %q: %w", sm.Suite, err)
			return
		}
		ts, err := TrendScore(sm, opts)
		if err != nil {
			errs[i] = fmt.Errorf("suite %q: %w", sm.Suite, err)
			return
		}
		cov, err := CoverageScore(normed[i], opts)
		if err != nil {
			errs[i] = fmt.Errorf("suite %q: %w", sm.Suite, err)
			return
		}
		sp, err := SpreadScore(normed[i], opts)
		if err != nil {
			errs[i] = fmt.Errorf("suite %q: %w", sm.Suite, err)
			return
		}
		out[i] = Scores{Suite: sm.Suite, Cluster: cs, Trend: ts, Coverage: cov, Spread: sp}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScoreSuite scores one suite in isolation (joint normalization degenerates
// to the suite's own bounds).
func ScoreSuite(sm *perf.SuiteMeasurement, opts Options) (Scores, error) {
	res, err := ScoreSuites([]*perf.SuiteMeasurement{sm}, opts)
	if err != nil {
		return Scores{}, err
	}
	return res[0], nil
}

// ScoreSuiteNoTrend scores a suite that carries only counter totals (no
// sampled time series), e.g. data imported from a totals CSV: the
// ClusterScore, CoverageScore and SpreadScore are computed; Trend is 0.
func ScoreSuiteNoTrend(sm *perf.SuiteMeasurement, opts Options) (Scores, error) {
	if err := opts.validate(); err != nil {
		return Scores{}, err
	}
	raw := matrixFor(sm, opts.Counters)
	normed, err := JointNormalize([]*mat.Matrix{raw})
	if err != nil {
		return Scores{}, err
	}
	cs, err := ClusterScore(sm, opts)
	if err != nil {
		return Scores{}, err
	}
	cov, err := CoverageScore(normed[0], opts)
	if err != nil {
		return Scores{}, err
	}
	sp, err := SpreadScore(normed[0], opts)
	if err != nil {
		return Scores{}, err
	}
	return Scores{Suite: sm.Suite, Cluster: cs, Coverage: cov, Spread: sp}, nil
}
