package core

import (
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

// augmentFixtures builds a small base suite plus a candidate pool where
// one candidate is a near-duplicate of the base and others are distinct.
func augmentFixtures() (base, cands *perf.SuiteMeasurement) {
	src := rng.New(1)
	mkSeries := func(shift int) []float64 {
		return stepSeriesAt(10, 1000, 40, shift)
	}
	var baseVecs, candVecs [][]float64
	var baseSeries, candSeries [][]float64
	for i := 0; i < 5; i++ {
		baseVecs = append(baseVecs, fullVec(float64(1000*(i+1)), src))
		baseSeries = append(baseSeries, mkSeries(5+3*i))
	}
	// Candidate 0: near-duplicate of base workload 0 (should be avoided).
	dup := make([]float64, perf.NumCounters)
	copy(dup, baseVecs[0])
	candVecs = append(candVecs, dup)
	candSeries = append(candSeries, mkSeries(5))
	// Candidates 1..3: fill unexplored space with distinct shapes.
	for i := 1; i <= 3; i++ {
		candVecs = append(candVecs, fullVec(float64(20000*i), src))
		candSeries = append(candSeries, mkSeries(30-5*i))
	}
	return synthSuite("base", baseVecs, baseSeries),
		synthSuite("pool", candVecs, candSeries)
}

func TestAugmentBasics(t *testing.T) {
	base, cands := augmentFixtures()
	aug, err := Augment(base, cands, DefaultOptions(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aug.Chosen) != 2 || len(aug.Names) != 2 {
		t.Fatalf("chosen = %v", aug.Chosen)
	}
	if len(aug.Trace) != 3 {
		t.Fatalf("trace length = %d", len(aug.Trace))
	}
	if aug.Chosen[0] == aug.Chosen[1] {
		t.Fatal("candidate reused")
	}
	// The greedy objective must not decrease along the trace relative to
	// choosing nothing... it can decrease in principle (forced addition),
	// but with distinct candidates available the first pick should beat
	// adding the duplicate.
	for _, c := range aug.Chosen {
		if c == 0 {
			// Adding a duplicate first would be a clearly bad greedy move;
			// tolerate it only if selected last.
			if aug.Chosen[0] == 0 {
				t.Fatal("greedy picked the near-duplicate first")
			}
		}
	}
}

func TestAugmentObjectiveRespected(t *testing.T) {
	base, cands := augmentFixtures()
	// A deliberately perverse objective: prefer high clustering. The
	// duplicate candidate should then be attractive.
	perverse := func(s Scores) float64 { return s.Cluster }
	aug, err := Augment(base, cands, DefaultOptions(), 1, perverse)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Augment(base, cands, DefaultOptions(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Chosen[0] == def.Chosen[0] {
		t.Skipf("objectives agreed on candidate %d; cannot distinguish", aug.Chosen[0])
	}
}

func TestAugmentErrors(t *testing.T) {
	base, cands := augmentFixtures()
	if _, err := Augment(base, cands, DefaultOptions(), 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Augment(base, cands, DefaultOptions(), 99, nil); err == nil {
		t.Fatal("k beyond pool accepted")
	}
	empty := &perf.SuiteMeasurement{Suite: "empty"}
	if _, err := Augment(empty, cands, DefaultOptions(), 1, nil); err == nil {
		t.Fatal("empty base accepted")
	}
}

func TestAugmentDoesNotMutateInputs(t *testing.T) {
	base, cands := augmentFixtures()
	nBase, nCands := len(base.Workloads), len(cands.Workloads)
	if _, err := Augment(base, cands, DefaultOptions(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if len(base.Workloads) != nBase || len(cands.Workloads) != nCands {
		t.Fatal("Augment mutated its inputs")
	}
}
