package core

import (
	"math"
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

// noisySuiteRun builds one "run" of the same logical suite with
// seed-dependent noise on the counter vectors and series.
func noisySuiteRun(seed uint64) *perf.SuiteMeasurement {
	src := rng.New(seed)
	var vecs [][]float64
	var series [][]float64
	for i := 0; i < 8; i++ {
		base := 1000.0 * float64(i+1)
		v := make([]float64, perf.NumCounters)
		for j := range v {
			v[j] = base * (1 + 0.02*src.Norm(0, 1))
			if v[j] < 1 {
				v[j] = 1
			}
		}
		vecs = append(vecs, v)
		series = append(series, stepSeriesAt(10, float64(100*(i+1)), 40, 5+4*i))
	}
	return synthSuite("noisy", vecs, series)
}

func TestScoreStabilityBasics(t *testing.T) {
	var runs []*perf.SuiteMeasurement
	for s := uint64(1); s <= 5; s++ {
		runs = append(runs, noisySuiteRun(s))
	}
	st, err := ScoreStability(runs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 5 || st.Suite != "noisy" {
		t.Fatalf("stability header %+v", st)
	}
	// 2 % input noise must not produce wild score swings.
	rel := st.RelativeStdDev()
	if rel.Trend > 0.3 || rel.Coverage > 0.5 || rel.Spread > 0.3 {
		t.Fatalf("scores unstable under small noise: %+v", rel)
	}
	if st.StdDev.Cluster < 0 || st.StdDev.Trend < 0 {
		t.Fatal("negative standard deviation")
	}
}

func TestScoreStabilityIdenticalRuns(t *testing.T) {
	a := noisySuiteRun(7)
	st, err := ScoreStability([]*perf.SuiteMeasurement{a, a, a}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Allow float round-off in the mean/variance accumulation.
	const eps = 1e-12
	if st.StdDev.Cluster > eps || st.StdDev.Trend > eps ||
		st.StdDev.Coverage > eps || st.StdDev.Spread > eps {
		t.Fatalf("identical runs produced spread: %+v", st.StdDev)
	}
}

func TestScoreStabilityErrors(t *testing.T) {
	a := noisySuiteRun(1)
	if _, err := ScoreStability([]*perf.SuiteMeasurement{a}, DefaultOptions()); err == nil {
		t.Fatal("single run accepted")
	}
	b := noisySuiteRun(2)
	b.Suite = "other"
	if _, err := ScoreStability([]*perf.SuiteMeasurement{a, b}, DefaultOptions()); err == nil {
		t.Fatal("mixed suites accepted")
	}
}

func TestRelativeStdDevZeroMean(t *testing.T) {
	st := &Stability{Mean: Scores{Cluster: 0}, StdDev: Scores{Cluster: 0.5}}
	if r := st.RelativeStdDev(); r.Cluster != 0 {
		t.Fatalf("zero-mean relative sd = %v", r.Cluster)
	}
	if math.IsNaN(st.RelativeStdDev().Trend) {
		t.Fatal("NaN in relative sd")
	}
}
