// Package pca implements principal component analysis over a
// samples×features matrix, exactly as Perspector's CoverageScore pipeline
// requires (Eq. 11–13): decompose the feature covariance, keep the leading
// components until a target fraction of variance is retained, and report
// the per-component variance of the projected data.
//
// The eigendecomposition is the deterministic cyclic Jacobi method from
// internal/mat, so results are reproducible across runs and platforms.
package pca

import (
	"fmt"

	"perspector/internal/mat"
)

// Result holds a fitted PCA model and the projection of the input.
type Result struct {
	// Components is a features×k matrix whose columns are the retained
	// principal axes, ordered by descending explained variance.
	Components *mat.Matrix
	// Transformed is the samples×k projection of the (centered) input.
	Transformed *mat.Matrix
	// Variances[i] is the variance of the data along component i
	// (the i-th eigenvalue of the covariance matrix).
	Variances []float64
	// ExplainedRatio[i] is Variances[i] / total variance.
	ExplainedRatio []float64
	// Means is the per-feature mean used for centering.
	Means []float64
}

// K returns the number of retained components.
func (r *Result) K() int { return len(r.Variances) }

// Fit computes PCA on x (rows = samples, cols = features) and keeps the
// smallest number of leading components whose cumulative explained variance
// reaches retainVariance (in (0,1]); the paper uses 0.98. If the total
// variance is zero (all rows identical), a single zero-variance component
// is retained so downstream code always has at least one dimension.
func Fit(x *mat.Matrix, retainVariance float64) (*Result, error) {
	if retainVariance <= 0 || retainVariance > 1 {
		return nil, fmt.Errorf("pca: retainVariance %v out of (0,1]", retainVariance)
	}
	if x.Rows() == 0 || x.Cols() == 0 {
		return nil, fmt.Errorf("pca: Fit on empty %dx%d matrix", x.Rows(), x.Cols())
	}
	cov := x.Covariance()
	eig, err := mat.SymEigen(cov, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition failed: %w", err)
	}

	total := 0.0
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	k := 1
	if total > 0 {
		acc := 0.0
		k = 0
		for _, v := range eig.Values {
			if v < 0 {
				v = 0 // clamp round-off negatives in PSD spectra
			}
			acc += v
			k++
			if acc/total >= retainVariance {
				break
			}
		}
	}

	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	components := eig.Vectors.SelectCols(idx)

	// Center and project.
	means := x.ColMeans()
	centered := x.Clone()
	for i := 0; i < centered.Rows(); i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	transformed := centered.Mul(components)

	res := &Result{
		Components:     components,
		Transformed:    transformed,
		Variances:      make([]float64, k),
		ExplainedRatio: make([]float64, k),
		Means:          means,
	}
	for i := 0; i < k; i++ {
		v := eig.Values[i]
		if v < 0 {
			v = 0
		}
		res.Variances[i] = v
		if total > 0 {
			res.ExplainedRatio[i] = v / total
		}
	}
	return res, nil
}

// Project maps new rows (same feature count as the fitted data) into the
// retained component space using the stored means.
func (r *Result) Project(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols() != len(r.Means) {
		return nil, fmt.Errorf("pca: Project with %d features, model has %d", x.Cols(), len(r.Means))
	}
	centered := x.Clone()
	for i := 0; i < centered.Rows(); i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= r.Means[j]
		}
	}
	return centered.Mul(r.Components), nil
}

// MeanComponentVariance is the CoverageScore aggregation of Eq. 13: the
// average, over retained components, of the variance of the transformed
// data along that component.
func (r *Result) MeanComponentVariance() float64 {
	if len(r.Variances) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.Variances {
		sum += v
	}
	return sum / float64(len(r.Variances))
}
