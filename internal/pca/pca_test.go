package pca

import (
	"math"
	"testing"

	"perspector/internal/mat"
	"perspector/internal/rng"
	"perspector/internal/stat"
)

func TestFitLine(t *testing.T) {
	// Points on the line y = 2x: one component captures everything.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	res, err := Fit(mat.FromRows(rows), 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 {
		t.Fatalf("K = %d, want 1", res.K())
	}
	if res.ExplainedRatio[0] < 0.999 {
		t.Fatalf("explained = %v", res.ExplainedRatio[0])
	}
	// The principal axis is (1,2)/√5 up to sign.
	c := res.Components
	ratio := c.At(1, 0) / c.At(0, 0)
	if math.Abs(ratio-2) > 1e-8 {
		t.Fatalf("axis = (%v, %v), want slope 2", c.At(0, 0), c.At(1, 0))
	}
}

func TestFitRetainsVarianceFraction(t *testing.T) {
	// Three independent axes with variances ~100, ~1, ~0.01: retaining 0.98
	// keeps the first two at most.
	src := rng.New(1)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{src.Norm(0, 10), src.Norm(0, 1), src.Norm(0, 0.1)}
	}
	res, err := Fit(mat.FromRows(rows), 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() < 1 || res.K() > 2 {
		t.Fatalf("K = %d, want 1 or 2", res.K())
	}
	sum := 0.0
	for _, r := range res.ExplainedRatio {
		sum += r
	}
	if sum < 0.98 {
		t.Fatalf("cumulative explained = %v < 0.98", sum)
	}
}

func TestTransformedVarianceMatchesEigenvalue(t *testing.T) {
	src := rng.New(2)
	rows := make([][]float64, 100)
	for i := range rows {
		a, b := src.Norm(0, 3), src.Norm(0, 1)
		rows[i] = []float64{a + b, a - b, b * 2}
	}
	res, err := Fit(mat.FromRows(rows), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < res.K(); c++ {
		col := res.Transformed.Col(c)
		v := stat.Variance(col)
		if math.Abs(v-res.Variances[c]) > 1e-6*(1+res.Variances[c]) {
			t.Fatalf("component %d: projected variance %v != eigenvalue %v", c, v, res.Variances[c])
		}
	}
}

func TestTransformedComponentsUncorrelated(t *testing.T) {
	src := rng.New(3)
	rows := make([][]float64, 80)
	for i := range rows {
		a := src.Norm(0, 2)
		rows[i] = []float64{a, a + src.Norm(0, 1), src.Norm(0, 1)}
	}
	res, err := Fit(mat.FromRows(rows), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Transformed.Covariance()
	for i := 0; i < res.K(); i++ {
		for j := 0; j < res.K(); j++ {
			if i == j {
				continue
			}
			if math.Abs(cov.At(i, j)) > 1e-6 {
				t.Fatalf("components %d,%d correlated: %v", i, j, cov.At(i, j))
			}
		}
	}
}

func TestFitConstantData(t *testing.T) {
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := Fit(mat.FromRows(rows), 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 {
		t.Fatalf("constant data K = %d, want 1 fallback component", res.K())
	}
	if res.Variances[0] != 0 {
		t.Fatalf("constant data variance = %v", res.Variances[0])
	}
	if res.MeanComponentVariance() != 0 {
		t.Fatal("constant data MeanComponentVariance != 0")
	}
}

func TestFitErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}})
	if _, err := Fit(x, 0); err == nil {
		t.Fatal("retain=0 accepted")
	}
	if _, err := Fit(x, 1.5); err == nil {
		t.Fatal("retain>1 accepted")
	}
	if _, err := Fit(mat.New(0, 0), 0.98); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestProject(t *testing.T) {
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	res, err := Fit(mat.FromRows(rows), 0.98)
	if err != nil {
		t.Fatal(err)
	}
	// Projecting the training data must match Transformed.
	p, err := res.Project(mat.FromRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(res.Transformed, 1e-9) {
		t.Fatal("Project(train) != Transformed")
	}
	if _, err := res.Project(mat.New(1, 5)); err == nil {
		t.Fatal("feature count mismatch accepted")
	}
}

func TestMeanComponentVariance(t *testing.T) {
	src := rng.New(4)
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{src.Norm(0, 2), src.Norm(0, 1)}
	}
	res, err := Fit(mat.FromRows(rows), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range res.Variances {
		want += v
	}
	want /= float64(len(res.Variances))
	if math.Abs(res.MeanComponentVariance()-want) > 1e-12 {
		t.Fatal("MeanComponentVariance mismatch")
	}
}

func TestTotalVariancePreservedAtFullRetention(t *testing.T) {
	// With retain=1.0, the sum of component variances equals the sum of
	// feature variances (trace preservation).
	src := rng.New(5)
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{src.Float64() * 3, src.Float64(), src.Float64() * 0.5, src.Norm(1, 2)}
	}
	x := mat.FromRows(rows)
	res, err := Fit(x, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	featVar := 0.0
	for j := 0; j < x.Cols(); j++ {
		featVar += stat.Variance(x.Col(j))
	}
	compVar := 0.0
	for _, v := range res.Variances {
		compVar += v
	}
	if math.Abs(featVar-compVar) > 1e-6*(1+featVar) {
		t.Fatalf("trace not preserved: features %v vs components %v", featVar, compVar)
	}
}

func TestSpectrumInvariantUnderFeaturePermutation(t *testing.T) {
	// Permuting feature columns permutes the covariance rows/cols by the
	// same orthogonal transform: the eigenvalue spectrum (and hence the
	// CoverageScore) must not change.
	src := rng.New(7)
	rows := make([][]float64, 40)
	for i := range rows {
		a := src.Norm(0, 2)
		rows[i] = []float64{a, a + src.Norm(0, 1), src.Float64() * 3, src.Norm(1, 0.5)}
	}
	x := mat.FromRows(rows)
	perm := []int{2, 0, 3, 1}
	xp := x.SelectCols(perm)

	r1, err := Fit(x, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(xp, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.K() != r2.K() {
		t.Fatalf("component counts differ: %d vs %d", r1.K(), r2.K())
	}
	for i := range r1.Variances {
		if math.Abs(r1.Variances[i]-r2.Variances[i]) > 1e-8*(1+r1.Variances[i]) {
			t.Fatalf("eigenvalue %d changed under permutation: %v vs %v",
				i, r1.Variances[i], r2.Variances[i])
		}
	}
	if math.Abs(r1.MeanComponentVariance()-r2.MeanComponentVariance()) > 1e-9 {
		t.Fatal("coverage aggregation not permutation invariant")
	}
}

func BenchmarkFit43x14(b *testing.B) {
	src := rng.New(1)
	rows := make([][]float64, 43)
	for i := range rows {
		row := make([]float64, 14)
		for j := range row {
			row[j] = src.Float64()
		}
		rows[i] = row
	}
	x := mat.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, 0.98); err != nil {
			b.Fatal(err)
		}
	}
}
