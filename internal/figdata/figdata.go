// Package figdata computes the data behind every figure of the paper as
// structured values, decoupled from rendering. cmd/figures formats these
// for the terminal; tests assert the figures' defining properties without
// scraping text output.
package figdata

import (
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/core"
	"perspector/internal/dtw"
	"perspector/internal/mat"
	"perspector/internal/pca"
	"perspector/internal/perf"
	"perspector/internal/rng"
)

// Fig1Series is one workload's raw and normalized LLC-load-miss trend
// (the paper's Fig. 1).
type Fig1Series struct {
	Workload   string
	RawMin     float64
	RawMax     float64
	RawLen     int
	Normalized []float64 // event-CDF over time percentiles, in [0,100]
}

// Fig1Workloads are the five SGXGauge workloads the paper plots.
var Fig1Workloads = []string{
	"sgxgauge.pagerank", "sgxgauge.hashjoin", "sgxgauge.bfs",
	"sgxgauge.btree", "sgxgauge.openssl",
}

// Fig1 extracts and normalizes the LLC-load-miss series of the Fig. 1
// workloads from an SGXGauge measurement. grid controls the percentile
// resolution of the normalized curve; warmupFrac samples are dropped
// first (see DESIGN.md decision log).
func Fig1(sgx *perf.SuiteMeasurement, grid int, warmupFrac float64) ([]Fig1Series, error) {
	if grid < 1 {
		return nil, fmt.Errorf("figdata: Fig1 grid %d < 1", grid)
	}
	want := map[string]bool{}
	for _, w := range Fig1Workloads {
		want[w] = true
	}
	var out []Fig1Series
	for i := range sgx.Workloads {
		m := &sgx.Workloads[i]
		if !want[m.Workload] {
			continue
		}
		raw := m.Series.Series(perf.LLCLoadMisses)
		if len(raw) == 0 {
			return nil, fmt.Errorf("figdata: Fig1 workload %q has no samples", m.Workload)
		}
		lo, hi := raw[0], raw[0]
		for _, v := range raw {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		drop := int(warmupFrac * float64(len(raw)))
		if drop >= len(raw) {
			drop = len(raw) - 1
		}
		out = append(out, Fig1Series{
			Workload:   m.Workload,
			RawMin:     lo,
			RawMax:     hi,
			RawLen:     len(raw),
			Normalized: dtw.NormalizeSeries(raw[drop:], grid),
		})
	}
	if len(out) != len(Fig1Workloads) {
		return nil, fmt.Errorf("figdata: Fig1 found %d of %d workloads", len(out), len(Fig1Workloads))
	}
	return out, nil
}

// Fig2Result is the coverage-vs-spread demonstration of the paper's
// Fig. 2: suite WA has outlier-inflated coverage and poor spread; suite
// WB fills the space uniformly.
type Fig2Result struct {
	CoverageA, CoverageB float64
	SpreadA, SpreadB     float64
}

// Fig2 builds the two synthetic point sets and scores them.
func Fig2(seed uint64, opts core.Options) (*Fig2Result, error) {
	src := rng.New(seed)
	const dims = 8
	wa := mat.New(16, dims)
	for i := 0; i < 14; i++ {
		for j := 0; j < dims; j++ {
			wa.Set(i, j, 0.45+0.1*src.Float64())
		}
	}
	for j := 0; j < dims; j++ {
		wa.Set(14, j, 0)
		wa.Set(15, j, 1)
	}
	wb := mat.New(16, dims)
	for i := 0; i < 16; i++ {
		for j := 0; j < dims; j++ {
			wb.Set(i, j, src.Float64())
		}
	}
	var res Fig2Result
	var err error
	if res.CoverageA, err = core.CoverageScore(wa, opts); err != nil {
		return nil, err
	}
	if res.CoverageB, err = core.CoverageScore(wb, opts); err != nil {
		return nil, err
	}
	if res.SpreadA, err = core.SpreadScore(wa, opts); err != nil {
		return nil, err
	}
	if res.SpreadB, err = core.SpreadScore(wb, opts); err != nil {
		return nil, err
	}
	return &res, nil
}

// Fig4Point is one workload in the 2-PC projection with its k-means
// cluster label (the paper's Fig. 4).
type Fig4Point struct {
	Workload string
	PC1, PC2 float64
	Cluster  int
}

// Fig4 projects a suite's normalized counter matrix onto its first two
// principal components and labels the workloads with k-means (k=2).
func Fig4(sm *perf.SuiteMeasurement, seed uint64) ([]Fig4Point, error) {
	x := mat.FromRows(sm.Matrix(perf.AllCounters()))
	normed, err := core.JointNormalize([]*mat.Matrix{x})
	if err != nil {
		return nil, err
	}
	res, err := pca.Fit(normed[0], 1.0)
	if err != nil {
		return nil, err
	}
	km, err := cluster.KMeans(normed[0], 2, cluster.DefaultKMeansOptions(seed))
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Point, len(sm.Workloads))
	for i := range sm.Workloads {
		p := Fig4Point{Workload: sm.Workloads[i].Workload, Cluster: km.Labels[i]}
		p.PC1 = res.Transformed.At(i, 0)
		if res.K() > 1 {
			p.PC2 = res.Transformed.At(i, 1)
		}
		out[i] = p
	}
	return out, nil
}

// Fig5Series is one workload's normalized LLC-miss trend curve (the
// paper's Fig. 5).
type Fig5Series struct {
	Workload string
	Curve    []float64 // in [0,100] over grid+1 time percentiles
}

// Fig5 normalizes the LLC-load-miss trends of the first n workloads of a
// suite.
func Fig5(sm *perf.SuiteMeasurement, n, grid int, warmupFrac float64) ([]Fig5Series, error) {
	if n < 1 || grid < 1 {
		return nil, fmt.Errorf("figdata: Fig5 n=%d grid=%d invalid", n, grid)
	}
	if n > len(sm.Workloads) {
		n = len(sm.Workloads)
	}
	out := make([]Fig5Series, n)
	for i := 0; i < n; i++ {
		raw := sm.Workloads[i].Series.Series(perf.LLCLoadMisses)
		if len(raw) == 0 {
			return nil, fmt.Errorf("figdata: Fig5 workload %q has no samples", sm.Workloads[i].Workload)
		}
		drop := int(warmupFrac * float64(len(raw)))
		if drop >= len(raw) {
			drop = len(raw) - 1
		}
		out[i] = Fig5Series{
			Workload: sm.Workloads[i].Workload,
			Curve:    dtw.NormalizeSeries(raw[drop:], grid),
		}
	}
	return out, nil
}

// Fig6Result is the joint-PCA projection of two suites (the paper's
// Fig. 6: LMbench vs SPEC'17 coverage).
type Fig6Result struct {
	// A and B are the projected points of the two suites on the plane of
	// the union's first two principal components.
	A, B []Fig4Point
	// SpanA1, SpanA2, SpanB1, SpanB2 are the PC1/PC2 extents per suite.
	SpanA1, SpanA2, SpanB1, SpanB2 float64
}

// Fig6 jointly normalizes two measured suites, fits one PCA on the union
// and projects both.
func Fig6(a, b *perf.SuiteMeasurement) (*Fig6Result, error) {
	xa := mat.FromRows(a.Matrix(perf.AllCounters()))
	xb := mat.FromRows(b.Matrix(perf.AllCounters()))
	normed, err := core.JointNormalize([]*mat.Matrix{xa, xb})
	if err != nil {
		return nil, err
	}
	union := normed[0].VStack(normed[1])
	res, err := pca.Fit(union, 1.0)
	if err != nil {
		return nil, err
	}
	projA, err := res.Project(normed[0])
	if err != nil {
		return nil, err
	}
	projB, err := res.Project(normed[1])
	if err != nil {
		return nil, err
	}
	points := func(sm *perf.SuiteMeasurement, proj *mat.Matrix) []Fig4Point {
		out := make([]Fig4Point, len(sm.Workloads))
		for i := range sm.Workloads {
			p := Fig4Point{Workload: sm.Workloads[i].Workload, PC1: proj.At(i, 0)}
			if res.K() > 1 {
				p.PC2 = proj.At(i, 1)
			}
			out[i] = p
		}
		return out
	}
	r := &Fig6Result{A: points(a, projA), B: points(b, projB)}
	r.SpanA1, r.SpanA2 = spans(r.A)
	r.SpanB1, r.SpanB2 = spans(r.B)
	return r, nil
}

func spans(ps []Fig4Point) (s1, s2 float64) {
	if len(ps) == 0 {
		return 0, 0
	}
	min1, max1 := ps[0].PC1, ps[0].PC1
	min2, max2 := ps[0].PC2, ps[0].PC2
	for _, p := range ps[1:] {
		if p.PC1 < min1 {
			min1 = p.PC1
		}
		if p.PC1 > max1 {
			max1 = p.PC1
		}
		if p.PC2 < min2 {
			min2 = p.PC2
		}
		if p.PC2 > max2 {
			max2 = p.PC2
		}
	}
	return max1 - min1, max2 - min2
}
