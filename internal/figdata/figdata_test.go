package figdata

import (
	"math"
	"testing"

	"perspector/internal/core"
	"perspector/internal/perf"
	"perspector/internal/suites"
)

var figCache = map[string]*perf.SuiteMeasurement{}

func measure(t *testing.T, name string) *perf.SuiteMeasurement {
	t.Helper()
	if sm, ok := figCache[name]; ok {
		return sm
	}
	// Full default budget: shorter runs starve low-activity counters of
	// the OS-noise trickle and the trend curves degrade into staircases
	// (see DESIGN.md decision log), which would fail the Fig. 5 check.
	cfg := suites.DefaultConfig()
	s, err := suites.ByName(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := suites.Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	figCache[name] = sm
	return sm
}

func TestFig1Properties(t *testing.T) {
	sgx := measure(t, "sgxgauge")
	series, err := Fig1(sgx, 40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series = %d, want the 5 paper workloads", len(series))
	}
	for _, s := range series {
		if len(s.Normalized) != 41 {
			t.Fatalf("%s grid length %d", s.Workload, len(s.Normalized))
		}
		for i, v := range s.Normalized {
			if v < -1e-9 || v > 100+1e-9 {
				t.Fatalf("%s normalized[%d] = %v out of [0,100]", s.Workload, i, v)
			}
			if i > 0 && v < s.Normalized[i-1]-1e-9 {
				t.Fatalf("%s normalized curve not monotone at %d", s.Workload, i)
			}
		}
		if s.RawMax < s.RawMin {
			t.Fatalf("%s raw bounds inverted", s.Workload)
		}
		// Event CDF ends at 100.
		if math.Abs(s.Normalized[len(s.Normalized)-1]-100) > 1e-9 {
			t.Fatalf("%s curve does not end at 100", s.Workload)
		}
	}
}

func TestFig1Errors(t *testing.T) {
	sgx := measure(t, "sgxgauge")
	if _, err := Fig1(sgx, 0, 0.1); err == nil {
		t.Fatal("grid 0 accepted")
	}
	nb := measure(t, "nbench")
	if _, err := Fig1(nb, 40, 0.1); err == nil {
		t.Fatal("suite without the Fig. 1 workloads accepted")
	}
}

func TestFig2Properties(t *testing.T) {
	res, err := Fig2(2023, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The figure's point: WA's outliers inflate coverage, only spread
	// exposes the emptiness.
	if res.CoverageA <= res.CoverageB {
		t.Fatalf("WA coverage %v not above WB %v", res.CoverageA, res.CoverageB)
	}
	if res.SpreadA <= res.SpreadB {
		t.Fatalf("WA spread %v not worse than WB %v", res.SpreadA, res.SpreadB)
	}
}

func TestFig4Properties(t *testing.T) {
	for _, name := range []string{"nbench", "sgxgauge"} {
		sm := measure(t, name)
		points, err := Fig4(sm, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != len(sm.Workloads) {
			t.Fatalf("%s: %d points for %d workloads", name, len(points), len(sm.Workloads))
		}
		clusters := map[int]int{}
		for _, p := range points {
			if math.IsNaN(p.PC1) || math.IsNaN(p.PC2) {
				t.Fatalf("%s: NaN projection for %s", name, p.Workload)
			}
			if p.Cluster < 0 || p.Cluster > 1 {
				t.Fatalf("%s: cluster label %d", name, p.Cluster)
			}
			clusters[p.Cluster]++
		}
		if len(clusters) != 2 {
			t.Fatalf("%s: k-means produced %d clusters", name, len(clusters))
		}
	}
}

func TestFig5Properties(t *testing.T) {
	nb := measure(t, "nbench")
	curves, err := Fig5(nb, 4, 40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	// Nbench steady-state curves hug the diagonal: max deviation from the
	// diagonal must be small.
	for _, c := range curves {
		maxDev := 0.0
		n := len(c.Curve)
		for i, v := range c.Curve {
			diag := 100 * float64(i) / float64(n-1)
			if d := math.Abs(v - diag); d > maxDev {
				maxDev = d
			}
		}
		if maxDev > 15 {
			t.Fatalf("%s deviates %.1f from the diagonal — not steady", c.Workload, maxDev)
		}
	}
	// Clamp n beyond suite size.
	all, err := Fig5(nb, 1000, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(nb.Workloads) {
		t.Fatalf("unclamped n: %d", len(all))
	}
	if _, err := Fig5(nb, 0, 10, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFig6Properties(t *testing.T) {
	lm := measure(t, "lmbench")
	nb := measure(t, "nbench")
	res, err := Fig6(lm, nb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.A) != len(lm.Workloads) || len(res.B) != len(nb.Workloads) {
		t.Fatalf("point counts %d/%d", len(res.A), len(res.B))
	}
	if res.SpanA1 <= 0 || res.SpanB1 < 0 {
		t.Fatalf("spans %v %v", res.SpanA1, res.SpanB1)
	}
	// LMbench's corner micros must span far more of the shared plane than
	// Nbench's tight kernels.
	if res.SpanA1 <= 2*res.SpanB1 {
		t.Fatalf("lmbench PC1 span %v not well above nbench %v", res.SpanA1, res.SpanB1)
	}
}
