package workload

import (
	"testing"

	"perspector/internal/rng"
	"perspector/internal/uarch"
)

func TestSequentialWraps(t *testing.T) {
	g, err := Sequential{WorkingSet: 256, Stride: 64}.Instantiate(0x1000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1000}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("step %d: %#x, want %#x", i, got, w)
		}
	}
}

func TestSequentialDefaultStride(t *testing.T) {
	g, err := Sequential{WorkingSet: 128}.Instantiate(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	g.Next()
	if got := g.Next(); got != 64 {
		t.Fatalf("default stride: second addr %#x, want 64", got)
	}
}

func TestSequentialErrors(t *testing.T) {
	if _, err := (Sequential{}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("zero working set accepted")
	}
}

func TestStreamsInterleave(t *testing.T) {
	g, err := Streams{WorkingSet: 4096, Count: 2, Stride: 64}.Instantiate(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a0 := g.Next() // stream 0
	a1 := g.Next() // stream 1
	a2 := g.Next() // stream 0 again
	if a1-a0 != 2048 {
		t.Fatalf("streams not 2048 apart: %#x %#x", a0, a1)
	}
	if a2-a0 != 64 {
		t.Fatalf("stream 0 did not advance by stride: %#x %#x", a0, a2)
	}
}

func TestStreamsErrors(t *testing.T) {
	if _, err := (Streams{WorkingSet: 4096, Count: 0}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := (Streams{WorkingSet: 64, Count: 4}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("working set smaller than streams accepted")
	}
}

func TestRandomInBounds(t *testing.T) {
	ws := uint64(1 << 16)
	g, err := Random{WorkingSet: ws}.Instantiate(0x10000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a < 0x10000 || a >= 0x10000+ws {
			t.Fatalf("address %#x out of region", a)
		}
		if a%64 != 0 {
			t.Fatalf("address %#x not line aligned", a)
		}
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := (Random{WorkingSet: 32}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("sub-line working set accepted")
	}
}

func TestZipfSkewsPages(t *testing.T) {
	ws := uint64(256 * 4096)
	g, err := Zipf{WorkingSet: ws, Alpha: 1.2}.Instantiate(0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		a := g.Next()
		if a >= ws {
			t.Fatalf("address %#x out of region", a)
		}
		counts[a/4096]++
	}
	if counts[0] <= counts[128] {
		t.Fatalf("zipf not skewed: page0=%d page128=%d", counts[0], counts[128])
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := (Zipf{WorkingSet: 1024}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("sub-page working set accepted")
	}
	if _, err := (Zipf{WorkingSet: 4096, Alpha: -1}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestPointerChaseFullCycle(t *testing.T) {
	ws := uint64(64 * 64) // 64 lines
	g, err := PointerChase{WorkingSet: ws}.Instantiate(0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		a := g.Next()
		if a >= ws || a%64 != 0 {
			t.Fatalf("address %#x invalid", a)
		}
		if seen[a] {
			t.Fatalf("line %#x revisited before full cycle", a)
		}
		seen[a] = true
	}
	if len(seen) != 64 {
		t.Fatalf("cycle covered %d lines, want 64", len(seen))
	}
	// The next access restarts the same cycle.
	first := g.Next()
	if !seen[first] {
		t.Fatal("second cycle visits new address")
	}
}

func TestPointerChaseErrors(t *testing.T) {
	if _, err := (PointerChase{WorkingSet: 32}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("sub-line working set accepted")
	}
	if _, err := (PointerChase{WorkingSet: 1 << 40}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("oversized working set accepted")
	}
}

func TestHotColdSplit(t *testing.T) {
	h := HotCold{HotSet: 4096, ColdSet: 1 << 20, HotFrac: 0.9}
	g, err := h.Instantiate(0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for i := 0; i < 20000; i++ {
		a := g.Next()
		switch {
		case a < 4096:
			hot++
		case a < 4096+1<<20:
			cold++
		default:
			t.Fatalf("address %#x out of region", a)
		}
	}
	frac := float64(hot) / 20000
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("hot fraction = %v, want ~0.9", frac)
	}
	if cold == 0 {
		t.Fatal("no cold accesses")
	}
}

func TestHotColdErrors(t *testing.T) {
	if _, err := (HotCold{HotSet: 0, ColdSet: 4096, HotFrac: 0.5}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("zero hot set accepted")
	}
	if _, err := (HotCold{HotSet: 4096, ColdSet: 4096, HotFrac: 2}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestAlternatingSwitches(t *testing.T) {
	a := Sequential{WorkingSet: 4096}
	b := Sequential{WorkingSet: 4096}
	g, err := Alternating{A: a, B: b, Period: 4}.Instantiate(0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// First 4 accesses in region A ([0, 4096)), next 4 in region B.
	for i := 0; i < 4; i++ {
		if addr := g.Next(); addr >= 4096 {
			t.Fatalf("access %d at %#x escaped region A", i, addr)
		}
	}
	for i := 0; i < 4; i++ {
		if addr := g.Next(); addr < 4096 || addr >= 8192 {
			t.Fatalf("access %d at %#x outside region B", i, addr)
		}
	}
	// And back to A.
	if addr := g.Next(); addr >= 4096 {
		t.Fatalf("did not return to region A: %#x", addr)
	}
}

func TestAlternatingDefaultPeriod(t *testing.T) {
	g, err := Alternating{
		A: Sequential{WorkingSet: 64 * 64},
		B: Sequential{WorkingSet: 64 * 64},
	}.Instantiate(0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	inA := 0
	for i := 0; i < 64; i++ {
		if g.Next() < 64*64 {
			inA++
		}
	}
	if inA != 64 {
		t.Fatalf("default period: first 64 accesses had %d in region A, want 64", inA)
	}
	if g.Next() < 64*64 {
		t.Fatal("access 65 still in region A")
	}
}

func TestAlternatingErrors(t *testing.T) {
	if _, err := (Alternating{A: Sequential{WorkingSet: 64}}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("missing B accepted")
	}
	if _, err := (Alternating{
		A: Sequential{WorkingSet: 64}, B: Sequential{WorkingSet: 64}, Period: -1,
	}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("negative period accepted")
	}
	if _, err := (Alternating{
		A: Sequential{}, B: Sequential{WorkingSet: 64},
	}).Instantiate(0, rng.New(1)); err == nil {
		t.Fatal("invalid sub-pattern accepted")
	}
}

func TestAlternatingInSpec(t *testing.T) {
	spec := Spec{
		Name: "alt", Instructions: 5000, Seed: 8,
		Phases: []Phase{{
			Name: "mix", Weight: 1, LoadFrac: 0.5,
			LoadPattern: Alternating{
				A:      Random{WorkingSet: 1 << 20},
				B:      Sequential{WorkingSet: 1 << 20},
				Period: 16,
			},
		}},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	n := 0
	for prog.Next(&in) {
		n++
	}
	if n != 5000 {
		t.Fatalf("alternating spec produced %d instructions", n)
	}
}

func TestFootprints(t *testing.T) {
	cases := []struct {
		spec PatternSpec
		want uint64
	}{
		{Sequential{WorkingSet: 100}, 100},
		{Streams{WorkingSet: 200}, 200},
		{Random{WorkingSet: 300}, 300},
		{Zipf{WorkingSet: 400}, 400},
		{PointerChase{WorkingSet: 500}, 500},
		{HotCold{HotSet: 100, ColdSet: 200}, 300},
		{Alternating{A: Sequential{WorkingSet: 100}, B: Random{WorkingSet: 200}}, 300},
		{Alternating{}, 0},
	}
	for _, c := range cases {
		if got := c.spec.Footprint(); got != c.want {
			t.Fatalf("%T footprint = %d, want %d", c.spec, got, c.want)
		}
	}
}
