package workload

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"perspector/internal/uarch"
)

// roundTripSpec is a spec exercising every pattern kind, nil store
// patterns, explicit store patterns, and non-trivial float parameters.
func roundTripSpec() Spec {
	return Spec{
		Name:         "codec.roundtrip",
		Instructions: 123_456,
		Seed:         0xdeadbeef,
		Phases: []Phase{
			{
				Name: "seq", Weight: 0.3, LoadFrac: 0.25, StoreFrac: 0.1,
				BranchFrac: 0.05, LoadPattern: Sequential{WorkingSet: 8 << 20, Stride: 64},
				BranchRegularity: 0.97, BranchTakenProb: 0.95, BranchSites: 12,
			},
			{
				Name: "streams", Weight: 1.7, LoadFrac: 0.4,
				LoadPattern:  Streams{WorkingSet: 4 << 20, Count: 4, Stride: 128},
				StorePattern: Random{WorkingSet: 1 << 20},
			},
			{
				Name: "graph", Weight: 0.61803398874989484, LoadFrac: 0.33,
				LoadPattern: Zipf{WorkingSet: 64 << 20, Alpha: 0.9},
				BranchFrac:  0.12, BranchRegularity: 0.55, BranchTakenProb: 0.5,
			},
			{
				Name: "chase", Weight: 1, LoadFrac: 0.5,
				LoadPattern: PointerChase{WorkingSet: 1 << 20},
				SyscallFrac: 0.002, SyscallFaultProb: 0.25,
			},
			{
				Name: "mixed", Weight: 0.004, LoadFrac: 0.2, StoreFrac: 0.2,
				LoadPattern: Alternating{
					A:      HotCold{HotSet: 64 << 10, ColdSet: 32 << 20, HotFrac: 0.85},
					B:      Sequential{WorkingSet: 256 << 10},
					Period: 96,
				},
			},
		},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	orig := roundTripSpec()
	data, err := MarshalSpec(orig)
	if err != nil {
		t.Fatalf("MarshalSpec: %v", err)
	}
	got, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatalf("UnmarshalSpec: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip drift:\norig %+v\ngot  %+v", orig, got)
	}
	// A second trip through the indented encoder must also be stable.
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, got); err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	again, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Fatalf("indented round trip drift")
	}
}

func TestPatternRoundTripEveryKind(t *testing.T) {
	pats := []PatternSpec{
		Sequential{WorkingSet: 4096, Stride: 64},
		Sequential{WorkingSet: 4096}, // zero stride stays zero (default applies at Instantiate)
		Streams{WorkingSet: 1 << 20, Count: 7, Stride: 256},
		Random{WorkingSet: 64},
		Zipf{WorkingSet: 8192, Alpha: 1.2},
		Zipf{WorkingSet: 8192}, // alpha 0 = uniform
		PointerChase{WorkingSet: 1 << 16},
		HotCold{HotSet: 64, ColdSet: 128, HotFrac: 0.5},
		Alternating{A: Random{WorkingSet: 64}, B: Sequential{WorkingSet: 4096}, Period: 32},
		Alternating{ // nested alternating
			A:      Alternating{A: Random{WorkingSet: 64}, B: Random{WorkingSet: 128}},
			B:      Sequential{WorkingSet: 4096},
			Period: 8,
		},
	}
	for _, p := range pats {
		raw, err := MarshalPattern(p)
		if err != nil {
			t.Fatalf("MarshalPattern(%+v): %v", p, err)
		}
		got, err := UnmarshalPattern(raw)
		if err != nil {
			t.Fatalf("UnmarshalPattern(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Errorf("pattern drift: %+v -> %s -> %+v", p, raw, got)
		}
	}
}

func TestUnmarshalPatternRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"unknown kind", `{"kind":"prefetch","working_set":64}`, "unknown pattern kind"},
		{"missing kind", `{"working_set":64}`, "missing kind"},
		{"unknown field", `{"kind":"random","working_set":64,"sets":3}`, "unknown field"},
		{"zero working set", `{"kind":"random","working_set":0}`, "zero working set"},
		{"huge working set", `{"kind":"random","working_set":2199023255552}`, "exceeds"},
		{"negative working set", `{"kind":"random","working_set":-1}`, "cannot unmarshal"},
		{"streams zero count", `{"kind":"streams","working_set":4096,"count":0}`, "out of"},
		{"streams huge count", `{"kind":"streams","working_set":4096,"count":100000}`, "out of"},
		{"zipf negative alpha", `{"kind":"zipf","working_set":8192,"alpha":-0.5}`, "alpha"},
		{"zipf huge alpha", `{"kind":"zipf","working_set":8192,"alpha":1e6}`, "alpha"},
		{"hotcold bad frac", `{"kind":"hot_cold","hot_set":64,"cold_set":64,"hot_frac":1.5}`, "hot_frac"},
		{"alternating missing sub", `{"kind":"alternating","a":{"kind":"random","working_set":64}}`, "both sub-patterns"},
		{"alternating negative period", `{"kind":"alternating","a":{"kind":"random","working_set":64},"b":{"kind":"random","working_set":64},"period":-1}`, "period"},
		{"not json", `{{`, ""},
	}
	for _, tc := range cases {
		_, err := UnmarshalPattern(json.RawMessage(tc.in))
		if err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.in)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestUnmarshalPatternDepthBound(t *testing.T) {
	// Build alternating nesting deeper than maxAltDepth.
	inner := `{"kind":"random","working_set":64}`
	doc := inner
	for i := 0; i < maxAltDepth+2; i++ {
		doc = `{"kind":"alternating","a":` + doc + `,"b":` + inner + `}`
	}
	if _, err := UnmarshalPattern(json.RawMessage(doc)); err == nil {
		t.Fatal("accepted over-deep alternating nesting")
	}
}

func TestUnmarshalSpecRejects(t *testing.T) {
	valid := func() []byte {
		data, err := MarshalSpec(roundTripSpec())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}()
	cases := []struct {
		name   string
		mutate func(map[string]any)
		want   string
	}{
		{"wrong version", func(m map[string]any) { m["version"] = 2 }, "version"},
		{"missing version", func(m map[string]any) { delete(m, "version") }, "version"},
		{"no name", func(m map[string]any) { m["name"] = "" }, "no name"},
		{"no phases", func(m map[string]any) { m["phases"] = []any{} }, "phases"},
	}
	for _, tc := range cases {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		tc.mutate(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalSpec(data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Semantic validation is reached too: a phase with memory fractions
	// but no pattern decodes structurally but fails Spec.Validate.
	doc := `{"version":1,"name":"w","instructions":1000,"phases":[{"weight":1,"load_frac":0.5}]}`
	if _, err := UnmarshalSpec([]byte(doc)); err == nil || !strings.Contains(err.Error(), "no pattern") {
		t.Errorf("patternless memory phase: err = %v", err)
	}
	// Trailing garbage after the document is rejected.
	if _, err := UnmarshalSpec(append(append([]byte{}, valid...), []byte(`{"x":1}`)...)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDecodeSpecSizeBound(t *testing.T) {
	huge := `{"version":1,"name":"` + strings.Repeat("x", maxSpecDocBytes) + `"`
	if _, err := DecodeSpec(strings.NewReader(huge)); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized document: err = %v", err)
	}
}

// TestDecodedSpecCompiles pins that a decoded spec is not just
// DeepEqual but actually compiles and emits the same instruction stream
// as the original.
func TestDecodedSpecCompiles(t *testing.T) {
	orig := roundTripSpec()
	orig.Instructions = 10_000
	data, err := MarshalSpec(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Compile(orig)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(dec)
	if err != nil {
		t.Fatal(err)
	}
	var a, b [256]uarch.Instr
	for {
		n1 := p1.NextBatch(a[:])
		n2 := p2.NextBatch(b[:])
		if n1 != n2 {
			t.Fatalf("stream lengths diverge: %d vs %d", n1, n2)
		}
		if a != b {
			t.Fatal("instruction streams diverge")
		}
		if n1 == 0 {
			break
		}
	}
}
