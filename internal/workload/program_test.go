package workload

import (
	"math"
	"testing"

	"perspector/internal/perf"
	"perspector/internal/uarch"
)

func simpleSpec(name string, instrs uint64) Spec {
	return Spec{
		Name:         name,
		Instructions: instrs,
		Seed:         42,
		Phases: []Phase{{
			Name: "main", Weight: 1,
			LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15,
			LoadPattern:      Random{WorkingSet: 1 << 20},
			BranchRegularity: 0.8, BranchTakenProb: 0.5,
		}},
	}
}

func TestCompileAndRun(t *testing.T) {
	prog, err := Compile(simpleSpec("w", 10000))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "w" {
		t.Fatalf("name %q", prog.Name())
	}
	var in uarch.Instr
	count := 0
	kinds := map[uarch.InstrKind]int{}
	for prog.Next(&in) {
		count++
		kinds[in.Kind]++
	}
	if count != 10000 {
		t.Fatalf("produced %d instructions, want 10000", count)
	}
	// Mix roughly as configured.
	if f := float64(kinds[uarch.Load]) / 10000; math.Abs(f-0.3) > 0.03 {
		t.Fatalf("load fraction %v, want ~0.3", f)
	}
	if f := float64(kinds[uarch.Store]) / 10000; math.Abs(f-0.1) > 0.02 {
		t.Fatalf("store fraction %v, want ~0.1", f)
	}
	if f := float64(kinds[uarch.Branch]) / 10000; math.Abs(f-0.15) > 0.02 {
		t.Fatalf("branch fraction %v, want ~0.15", f)
	}
}

func TestCompileValidation(t *testing.T) {
	bad := []Spec{
		{},                            // no name
		{Name: "x"},                   // no instructions
		{Name: "x", Instructions: 10}, // no phases
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 0}}},                                // zero weight
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 1, LoadFrac: 0.9, StoreFrac: 0.5}}}, // mix > 1
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 1, LoadFrac: 0.5}}},                 // pattern missing
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 1, BranchRegularity: 2}}},           // regularity > 1
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 1, BranchTakenProb: -0.1}}},
		{Name: "x", Instructions: 10, Phases: []Phase{{Weight: 1, SyscallFaultProb: 1.5}}},
	}
	for i, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestProgramDeterministic(t *testing.T) {
	p1, err := Compile(simpleSpec("w", 5000))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(simpleSpec("w", 5000))
	if err != nil {
		t.Fatal(err)
	}
	var a, b uarch.Instr
	for i := 0; i < 5000; i++ {
		okA, okB := p1.Next(&a), p2.Next(&b)
		if okA != okB || a != b {
			t.Fatalf("programs diverged at instruction %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestProgramReset(t *testing.T) {
	prog, err := Compile(simpleSpec("w", 1000))
	if err != nil {
		t.Fatal(err)
	}
	var first []uarch.Instr
	var in uarch.Instr
	for i := 0; i < 100; i++ {
		prog.Next(&in)
		first = append(first, in)
	}
	prog.Reset()
	for i := 0; i < 100; i++ {
		prog.Next(&in)
		if in != first[i] {
			t.Fatalf("Reset did not replay instruction %d", i)
		}
	}
}

func TestProgramEnds(t *testing.T) {
	prog, err := Compile(simpleSpec("w", 10))
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	for i := 0; i < 10; i++ {
		if !prog.Next(&in) {
			t.Fatalf("ended early at %d", i)
		}
	}
	if prog.Next(&in) {
		t.Fatal("program did not end")
	}
	if prog.Next(&in) {
		t.Fatal("program resumed after end")
	}
}

func TestPhaseTransitions(t *testing.T) {
	// Two phases with very different mixes: the observed mix must shift at
	// the boundary.
	spec := Spec{
		Name: "phased", Instructions: 20000, Seed: 7,
		Phases: []Phase{
			{Name: "mem", Weight: 1, LoadFrac: 0.8, LoadPattern: Random{WorkingSet: 1 << 16}},
			{Name: "alu", Weight: 1, BranchFrac: 0.05},
		},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	loadsFirst, loadsSecond := 0, 0
	for i := 0; i < 20000; i++ {
		prog.Next(&in)
		if in.Kind == uarch.Load {
			if i < 10000 {
				loadsFirst++
			} else {
				loadsSecond++
			}
		}
	}
	if loadsFirst < 7000 {
		t.Fatalf("first phase loads = %d, want ~8000", loadsFirst)
	}
	if loadsSecond != 0 {
		t.Fatalf("second phase loads = %d, want 0", loadsSecond)
	}
}

func TestPhaseWeightsNormalized(t *testing.T) {
	// Weights 3 and 1 split 4000 instructions 3000/1000.
	spec := Spec{
		Name: "weighted", Instructions: 4000, Seed: 1,
		Phases: []Phase{
			{Name: "a", Weight: 3, LoadFrac: 1, LoadPattern: Sequential{WorkingSet: 4096}},
			{Name: "b", Weight: 1},
		},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	loads := 0
	for prog.Next(&in) {
		if in.Kind == uarch.Load {
			loads++
		}
	}
	if loads != 3000 {
		t.Fatalf("phase-a loads = %d, want 3000", loads)
	}
}

func TestBranchRegularityAffectsPrediction(t *testing.T) {
	mkSpec := func(reg float64) Spec {
		return Spec{
			Name: "br", Instructions: 50000, Seed: 11,
			Phases: []Phase{{
				Name: "b", Weight: 1, BranchFrac: 0.5,
				BranchRegularity: reg, BranchTakenProb: 0.5, BranchSites: 4,
			}},
		}
	}
	run := func(reg float64) float64 {
		prog, err := Compile(mkSpec(reg))
		if err != nil {
			t.Fatal(err)
		}
		m, err := uarch.NewMachine(uarch.DefaultMachineConfig())
		if err != nil {
			t.Fatal(err)
		}
		meas, err := m.Run(prog, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return float64(meas.Totals.Get(perf.BranchMisses)) /
			float64(meas.Totals.Get(perf.BranchInstructions))
	}
	regular := run(1.0)
	irregular := run(0.0)
	if regular >= irregular/2 {
		t.Fatalf("regular miss rate %v not clearly below irregular %v", regular, irregular)
	}
}

func TestStorePatternDefaultsToLoadPattern(t *testing.T) {
	spec := Spec{
		Name: "st", Instructions: 1000, Seed: 3,
		Phases: []Phase{{
			Name: "m", Weight: 1, LoadFrac: 0.2, StoreFrac: 0.2,
			LoadPattern: Sequential{WorkingSet: 4096},
		}},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	for prog.Next(&in) {
		if in.Kind == uarch.Store && in.Addr >= uint64(1)<<33+4096 {
			t.Fatalf("store address %#x outside shared region", in.Addr)
		}
	}
}

func TestSyscallFaults(t *testing.T) {
	spec := Spec{
		Name: "sys", Instructions: 10000, Seed: 9,
		Phases: []Phase{{
			Name: "io", Weight: 1, SyscallFrac: 0.3, SyscallFaultProb: 0.5,
		}},
	}
	prog, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in uarch.Instr
	sys, faults := 0, 0
	for prog.Next(&in) {
		if in.Kind == uarch.Syscall {
			sys++
			if in.Fault {
				faults++
			}
		}
	}
	if sys < 2500 {
		t.Fatalf("syscalls = %d, want ~3000", sys)
	}
	frac := float64(faults) / float64(sys)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("fault fraction = %v, want ~0.5", frac)
	}
}

func TestPhaseStreamIsolation(t *testing.T) {
	// Phase 2's instruction stream must be identical whether phase 1 is
	// memory-light or memory-heavy: each phase derives its RNG stream from
	// ChildSeed(spec.Seed, phaseIndex), not from shared state.
	mk := func(phase1Load float64) []uarch.Instr {
		spec := Spec{
			Name: "iso", Instructions: 4000, Seed: 77,
			Phases: []Phase{
				{Name: "p1", Weight: 1, LoadFrac: phase1Load,
					LoadPattern: Sequential{WorkingSet: 1 << 16}},
				{Name: "p2", Weight: 1, LoadFrac: 0.4, BranchFrac: 0.2,
					LoadPattern:      Random{WorkingSet: 1 << 20},
					BranchRegularity: 0.5, BranchTakenProb: 0.5},
			},
		}
		prog, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		var out []uarch.Instr
		var in uarch.Instr
		i := 0
		for prog.Next(&in) {
			if i >= 2000 { // phase 2 half
				out = append(out, in)
			}
			i++
		}
		return out
	}
	a := mk(0.1)
	b := mk(0.7)
	if len(a) != len(b) {
		t.Fatalf("phase-2 lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Addresses differ (different region bases are possible when
		// footprints differ), but the *kind sequence* and branch stream
		// must be identical.
		if a[i].Kind != b[i].Kind || a[i].Taken != b[i].Taken || a[i].PC != b[i].PC {
			t.Fatalf("phase-2 streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSpecAccessors(t *testing.T) {
	prog, err := Compile(simpleSpec("w", 100))
	if err != nil {
		t.Fatal(err)
	}
	if prog.PhaseCount() != 1 {
		t.Fatalf("PhaseCount = %d", prog.PhaseCount())
	}
	if prog.Spec().Name != "w" {
		t.Fatal("Spec copy wrong")
	}
}

func BenchmarkProgramNext(b *testing.B) {
	prog, err := Compile(simpleSpec("bench", uint64(b.N)+1))
	if err != nil {
		b.Fatal(err)
	}
	var in uarch.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Next(&in)
	}
}

func BenchmarkProgramOnMachine(b *testing.B) {
	m, err := uarch.NewMachine(uarch.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := Compile(simpleSpec("bench", 100000))
		if err != nil {
			b.Fatal(err)
		}
		m.Reset()
		b.StartTimer()
		if _, err := m.Run(prog, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
