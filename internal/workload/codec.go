// Spec/Phase JSON codec: the serialized form behind declarative suite
// specs (internal/suites/specs), -suite-file, and perspectord inline
// suite submissions.
//
// # Format
//
// A serialized Spec is a versioned envelope:
//
//	{"version": 1, "name": "w", "instructions": 400000, "phases": [...]}
//
// Each phase carries the instruction mix, branch model, and up to two
// access patterns. Patterns are tagged unions — a named generator kind
// plus its typed parameter block:
//
//	{"kind": "sequential", "working_set": 8388608, "stride": 64}
//	{"kind": "streams", "working_set": 4194304, "count": 4}
//	{"kind": "random", "working_set": 1048576}
//	{"kind": "zipf", "working_set": 536870912, "alpha": 0.9}
//	{"kind": "pointer_chase", "working_set": 33554432}
//	{"kind": "hot_cold", "hot_set": 65536, "cold_set": 134217728, "hot_frac": 0.85}
//	{"kind": "alternating", "a": {...}, "b": {...}, "period": 256}
//
// # Guarantees
//
// Decoding is strict: unknown fields, unknown kinds, trailing input, and
// parameters outside structural bounds (working sets over 1 TiB, nested
// alternating patterns beyond depth 8, …) are errors, never panics —
// these documents cross a network boundary in perspectord. Encoding and
// decoding round-trip every value bit-exactly: encoding/json emits the
// shortest float64 representation that parses back to the same bits, and
// integers are decoded from their exact literals, so a decoded spec is
// reflect.DeepEqual to its source and simulates to bit-identical
// measurements (pinned by the suite golden tests).

package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// CodecVersion is the serialized Spec format version. Decoders accept
// exactly this version; bump it whenever the schema changes shape.
const CodecVersion = 1

// Structural bounds on decoded pattern parameters. They are deliberately
// far above anything the stock suites use: their job is to stop a hostile
// or corrupt document from requesting absurd allocations at Compile time
// (a PointerChase table, a Streams base array), not to second-guess the
// modeller. Semantic validation stays with Validate/Instantiate.
const (
	maxPatternBytes = uint64(1) << 40 // 1 TiB working set
	maxStreamCount  = 1 << 16
	maxZipfAlpha    = 64.0
	maxAltPeriod    = 1 << 30
	maxAltDepth     = 8
)

// Pattern kind tags.
const (
	kindSequential   = "sequential"
	kindStreams      = "streams"
	kindRandom       = "random"
	kindZipf         = "zipf"
	kindPointerChase = "pointer_chase"
	kindHotCold      = "hot_cold"
	kindAlternating  = "alternating"
)

// PatternKinds returns the registered generator kind tags, in the order
// they are documented.
func PatternKinds() []string {
	return []string{
		kindSequential, kindStreams, kindRandom, kindZipf,
		kindPointerChase, kindHotCold, kindAlternating,
	}
}

// Per-kind parameter blocks. Each embeds its kind tag so one strict
// decode of the full struct both dispatches and rejects unknown fields.
type sequentialJSON struct {
	Kind       string `json:"kind"`
	WorkingSet uint64 `json:"working_set"`
	Stride     uint64 `json:"stride,omitempty"`
}

type streamsJSON struct {
	Kind       string `json:"kind"`
	WorkingSet uint64 `json:"working_set"`
	Count      int    `json:"count"`
	Stride     uint64 `json:"stride,omitempty"`
}

type randomJSON struct {
	Kind       string `json:"kind"`
	WorkingSet uint64 `json:"working_set"`
}

type zipfJSON struct {
	Kind       string  `json:"kind"`
	WorkingSet uint64  `json:"working_set"`
	Alpha      float64 `json:"alpha,omitempty"`
}

type pointerChaseJSON struct {
	Kind       string `json:"kind"`
	WorkingSet uint64 `json:"working_set"`
}

type hotColdJSON struct {
	Kind    string  `json:"kind"`
	HotSet  uint64  `json:"hot_set"`
	ColdSet uint64  `json:"cold_set"`
	HotFrac float64 `json:"hot_frac"`
}

type alternatingJSON struct {
	Kind   string          `json:"kind"`
	A      json.RawMessage `json:"a"`
	B      json.RawMessage `json:"b"`
	Period int             `json:"period,omitempty"`
}

// MarshalPattern renders a pattern spec as its tagged parameter block.
func MarshalPattern(p PatternSpec) (json.RawMessage, error) {
	switch v := p.(type) {
	case Sequential:
		return json.Marshal(sequentialJSON{Kind: kindSequential, WorkingSet: v.WorkingSet, Stride: v.Stride})
	case Streams:
		return json.Marshal(streamsJSON{Kind: kindStreams, WorkingSet: v.WorkingSet, Count: v.Count, Stride: v.Stride})
	case Random:
		return json.Marshal(randomJSON{Kind: kindRandom, WorkingSet: v.WorkingSet})
	case Zipf:
		return json.Marshal(zipfJSON{Kind: kindZipf, WorkingSet: v.WorkingSet, Alpha: v.Alpha})
	case PointerChase:
		return json.Marshal(pointerChaseJSON{Kind: kindPointerChase, WorkingSet: v.WorkingSet})
	case HotCold:
		return json.Marshal(hotColdJSON{Kind: kindHotCold, HotSet: v.HotSet, ColdSet: v.ColdSet, HotFrac: v.HotFrac})
	case Alternating:
		a, err := MarshalPattern(v.A)
		if err != nil {
			return nil, fmt.Errorf("workload: alternating sub-pattern A: %w", err)
		}
		b, err := MarshalPattern(v.B)
		if err != nil {
			return nil, fmt.Errorf("workload: alternating sub-pattern B: %w", err)
		}
		return json.Marshal(alternatingJSON{Kind: kindAlternating, A: a, B: b, Period: v.Period})
	case nil:
		return nil, fmt.Errorf("workload: cannot marshal nil pattern")
	default:
		return nil, fmt.Errorf("workload: unregistered pattern type %T", p)
	}
}

// UnmarshalPattern decodes a tagged parameter block into its pattern
// spec. Unknown kinds, unknown fields, and parameters outside the
// structural bounds are errors.
func UnmarshalPattern(data json.RawMessage) (PatternSpec, error) {
	return unmarshalPattern(data, 0)
}

// decodeStrict decodes data into v rejecting unknown fields and any
// trailing non-whitespace input.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}

func checkWorkingSet(kind string, ws uint64) error {
	if ws == 0 {
		return fmt.Errorf("workload: %s pattern with zero working set", kind)
	}
	if ws > maxPatternBytes {
		return fmt.Errorf("workload: %s working set %d exceeds %d-byte bound", kind, ws, maxPatternBytes)
	}
	return nil
}

func unmarshalPattern(data json.RawMessage, depth int) (PatternSpec, error) {
	if depth > maxAltDepth {
		return nil, fmt.Errorf("workload: pattern nesting exceeds depth %d", maxAltDepth)
	}
	var tag struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &tag); err != nil {
		return nil, fmt.Errorf("workload: pattern: %w", err)
	}
	switch tag.Kind {
	case kindSequential:
		var v sequentialJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.WorkingSet); err != nil {
			return nil, err
		}
		if v.Stride > maxPatternBytes {
			return nil, fmt.Errorf("workload: %s stride %d exceeds bound", tag.Kind, v.Stride)
		}
		return Sequential{WorkingSet: v.WorkingSet, Stride: v.Stride}, nil
	case kindStreams:
		var v streamsJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.WorkingSet); err != nil {
			return nil, err
		}
		if v.Count < 1 || v.Count > maxStreamCount {
			return nil, fmt.Errorf("workload: %s count %d out of [1,%d]", tag.Kind, v.Count, maxStreamCount)
		}
		if v.Stride > maxPatternBytes {
			return nil, fmt.Errorf("workload: %s stride %d exceeds bound", tag.Kind, v.Stride)
		}
		return Streams{WorkingSet: v.WorkingSet, Count: v.Count, Stride: v.Stride}, nil
	case kindRandom:
		var v randomJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.WorkingSet); err != nil {
			return nil, err
		}
		return Random{WorkingSet: v.WorkingSet}, nil
	case kindZipf:
		var v zipfJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.WorkingSet); err != nil {
			return nil, err
		}
		if v.Alpha < 0 || v.Alpha > maxZipfAlpha {
			return nil, fmt.Errorf("workload: %s alpha %v out of [0,%v]", tag.Kind, v.Alpha, maxZipfAlpha)
		}
		return Zipf{WorkingSet: v.WorkingSet, Alpha: v.Alpha}, nil
	case kindPointerChase:
		var v pointerChaseJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.WorkingSet); err != nil {
			return nil, err
		}
		return PointerChase{WorkingSet: v.WorkingSet}, nil
	case kindHotCold:
		var v hotColdJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if err := checkWorkingSet(tag.Kind, v.HotSet); err != nil {
			return nil, err
		}
		if err := checkWorkingSet(tag.Kind, v.ColdSet); err != nil {
			return nil, err
		}
		if v.HotFrac < 0 || v.HotFrac > 1 {
			return nil, fmt.Errorf("workload: %s hot_frac %v out of [0,1]", tag.Kind, v.HotFrac)
		}
		return HotCold{HotSet: v.HotSet, ColdSet: v.ColdSet, HotFrac: v.HotFrac}, nil
	case kindAlternating:
		var v alternatingJSON
		if err := decodeStrict(data, &v); err != nil {
			return nil, fmt.Errorf("workload: %s pattern: %w", tag.Kind, err)
		}
		if v.Period < 0 || v.Period > maxAltPeriod {
			return nil, fmt.Errorf("workload: %s period %d out of [0,%d]", tag.Kind, v.Period, maxAltPeriod)
		}
		if len(v.A) == 0 || len(v.B) == 0 {
			return nil, fmt.Errorf("workload: %s needs both sub-patterns", tag.Kind)
		}
		a, err := unmarshalPattern(v.A, depth+1)
		if err != nil {
			return nil, fmt.Errorf("workload: alternating sub-pattern A: %w", err)
		}
		b, err := unmarshalPattern(v.B, depth+1)
		if err != nil {
			return nil, fmt.Errorf("workload: alternating sub-pattern B: %w", err)
		}
		return Alternating{A: a, B: b, Period: v.Period}, nil
	case "":
		return nil, fmt.Errorf("workload: pattern missing kind tag")
	default:
		return nil, fmt.Errorf("workload: unknown pattern kind %q", tag.Kind)
	}
}

// phaseJSON is the serialized Phase.
type phaseJSON struct {
	Name             string          `json:"name,omitempty"`
	Weight           float64         `json:"weight"`
	LoadFrac         float64         `json:"load_frac,omitempty"`
	StoreFrac        float64         `json:"store_frac,omitempty"`
	BranchFrac       float64         `json:"branch_frac,omitempty"`
	SyscallFrac      float64         `json:"syscall_frac,omitempty"`
	LoadPattern      json.RawMessage `json:"load_pattern,omitempty"`
	StorePattern     json.RawMessage `json:"store_pattern,omitempty"`
	BranchRegularity float64         `json:"branch_regularity,omitempty"`
	BranchTakenProb  float64         `json:"branch_taken_prob,omitempty"`
	BranchSites      int             `json:"branch_sites,omitempty"`
	SyscallFaultProb float64         `json:"syscall_fault_prob,omitempty"`
}

func marshalPhase(p Phase) (phaseJSON, error) {
	out := phaseJSON{
		Name:             p.Name,
		Weight:           p.Weight,
		LoadFrac:         p.LoadFrac,
		StoreFrac:        p.StoreFrac,
		BranchFrac:       p.BranchFrac,
		SyscallFrac:      p.SyscallFrac,
		BranchRegularity: p.BranchRegularity,
		BranchTakenProb:  p.BranchTakenProb,
		BranchSites:      p.BranchSites,
		SyscallFaultProb: p.SyscallFaultProb,
	}
	if p.LoadPattern != nil {
		raw, err := MarshalPattern(p.LoadPattern)
		if err != nil {
			return phaseJSON{}, err
		}
		out.LoadPattern = raw
	}
	if p.StorePattern != nil {
		raw, err := MarshalPattern(p.StorePattern)
		if err != nil {
			return phaseJSON{}, err
		}
		out.StorePattern = raw
	}
	return out, nil
}

func unmarshalPhase(pj phaseJSON, i int) (Phase, error) {
	p := Phase{
		Name:             pj.Name,
		Weight:           pj.Weight,
		LoadFrac:         pj.LoadFrac,
		StoreFrac:        pj.StoreFrac,
		BranchFrac:       pj.BranchFrac,
		SyscallFrac:      pj.SyscallFrac,
		BranchRegularity: pj.BranchRegularity,
		BranchTakenProb:  pj.BranchTakenProb,
		BranchSites:      pj.BranchSites,
		SyscallFaultProb: pj.SyscallFaultProb,
	}
	if pj.BranchSites < 0 || pj.BranchSites > 1<<20 {
		return Phase{}, fmt.Errorf("workload: phase %d branch_sites %d out of range", i, pj.BranchSites)
	}
	if len(pj.LoadPattern) > 0 {
		pat, err := UnmarshalPattern(pj.LoadPattern)
		if err != nil {
			return Phase{}, fmt.Errorf("phase %d load pattern: %w", i, err)
		}
		p.LoadPattern = pat
	}
	if len(pj.StorePattern) > 0 {
		pat, err := UnmarshalPattern(pj.StorePattern)
		if err != nil {
			return Phase{}, fmt.Errorf("phase %d store pattern: %w", i, err)
		}
		p.StorePattern = pat
	}
	return p, nil
}

// MarshalPhases renders a phase list as a JSON array. The suites spec
// format embeds these arrays per workload.
func MarshalPhases(ps []Phase) (json.RawMessage, error) {
	out := make([]phaseJSON, len(ps))
	for i, p := range ps {
		pj, err := marshalPhase(p)
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		out[i] = pj
	}
	return json.Marshal(out)
}

// UnmarshalPhases decodes a JSON phase array (strict: unknown fields and
// out-of-bound pattern parameters are errors). The decoded phases are
// structurally checked but not semantically validated — callers assemble
// them into a Spec and call Validate.
func UnmarshalPhases(data json.RawMessage) ([]Phase, error) {
	var raw []phaseJSON
	if err := decodeStrict(data, &raw); err != nil {
		return nil, fmt.Errorf("workload: phases: %w", err)
	}
	out := make([]Phase, len(raw))
	for i, pj := range raw {
		p, err := unmarshalPhase(pj, i)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		out[i] = p
	}
	return out, nil
}

// specJSON is the versioned Spec envelope.
type specJSON struct {
	Version      int             `json:"version"`
	Name         string          `json:"name"`
	Instructions uint64          `json:"instructions,omitempty"`
	Seed         uint64          `json:"seed,omitempty"`
	BaseOffset   uint64          `json:"base_offset,omitempty"`
	Phases       json.RawMessage `json:"phases"`
}

// MarshalSpec renders a complete Spec as its versioned JSON document.
func MarshalSpec(s Spec) ([]byte, error) {
	phases, err := MarshalPhases(s.Phases)
	if err != nil {
		return nil, err
	}
	return json.Marshal(specJSON{
		Version:      CodecVersion,
		Name:         s.Name,
		Instructions: s.Instructions,
		Seed:         s.Seed,
		BaseOffset:   s.BaseOffset,
		Phases:       phases,
	})
}

// UnmarshalSpec decodes a versioned Spec document and validates it.
// Round-trip guarantee: UnmarshalSpec(MarshalSpec(s)) is
// reflect.DeepEqual to s for any valid spec built from registered
// pattern kinds.
func UnmarshalSpec(data []byte) (Spec, error) {
	var env specJSON
	if err := decodeStrict(data, &env); err != nil {
		return Spec{}, fmt.Errorf("workload: spec: %w", err)
	}
	if env.Version != CodecVersion {
		return Spec{}, fmt.Errorf("workload: spec version %d not supported (want %d)", env.Version, CodecVersion)
	}
	if len(env.Phases) == 0 {
		return Spec{}, fmt.Errorf("workload: spec %q has no phases", env.Name)
	}
	phases, err := UnmarshalPhases(env.Phases)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %w", env.Name, err)
	}
	s := Spec{
		Name:         env.Name,
		Instructions: env.Instructions,
		Seed:         env.Seed,
		BaseOffset:   env.BaseOffset,
		Phases:       phases,
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// EncodeSpec writes the indented JSON document of s.
func EncodeSpec(w io.Writer, s Spec) error {
	data, err := MarshalSpec(s)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// DecodeSpec reads one versioned Spec document from r.
func DecodeSpec(r io.Reader) (Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSpecDocBytes+1))
	if err != nil {
		return Spec{}, fmt.Errorf("workload: spec: %w", err)
	}
	if len(data) > maxSpecDocBytes {
		return Spec{}, fmt.Errorf("workload: spec document exceeds %d bytes", maxSpecDocBytes)
	}
	return UnmarshalSpec(data)
}

// maxSpecDocBytes bounds a single decoded spec document — far above any
// realistic spec, small enough that a hostile upload cannot balloon
// memory before validation rejects it.
const maxSpecDocBytes = 4 << 20
