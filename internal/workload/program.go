package workload

import (
	"fmt"
	"math"
	"math/bits"

	"perspector/internal/rng"
	"perspector/internal/uarch"
)

// Phase describes one execution phase of a workload. Fractions are
// per-instruction probabilities; the remainder after loads, stores,
// branches and syscalls is ALU work.
type Phase struct {
	// Name labels the phase (diagnostics only).
	Name string
	// Weight is the phase's share of the workload's instructions;
	// weights are normalized across phases.
	Weight float64

	// LoadFrac, StoreFrac, BranchFrac, SyscallFrac give the instruction
	// mix. Their sum must not exceed 1.
	LoadFrac    float64
	StoreFrac   float64
	BranchFrac  float64
	SyscallFrac float64

	// LoadPattern and StorePattern drive address generation. StorePattern
	// defaults to LoadPattern when nil.
	LoadPattern  PatternSpec
	StorePattern PatternSpec

	// BranchRegularity is the probability a branch outcome follows its
	// site's deterministic loop pattern (predictable); otherwise the
	// outcome is a coin flip with BranchTakenProb.
	BranchRegularity float64
	// BranchTakenProb is the taken probability of irregular branches.
	BranchTakenProb float64
	// BranchSites is the number of static branch PCs; 0 defaults to 16.
	BranchSites int

	// SyscallFaultProb is the probability a syscall raises a page fault.
	SyscallFaultProb float64
}

func (p *Phase) validate(i int) error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.SyscallFrac
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || p.SyscallFrac < 0 || sum > 1+1e-9 {
		return fmt.Errorf("workload: phase %d mix invalid (sum %v)", i, sum)
	}
	if p.Weight <= 0 {
		return fmt.Errorf("workload: phase %d weight %v not positive", i, p.Weight)
	}
	if (p.LoadFrac > 0 || p.StoreFrac > 0) && p.LoadPattern == nil && p.StorePattern == nil {
		return fmt.Errorf("workload: phase %d has memory work but no pattern", i)
	}
	if p.BranchRegularity < 0 || p.BranchRegularity > 1 {
		return fmt.Errorf("workload: phase %d branch regularity %v out of [0,1]", i, p.BranchRegularity)
	}
	if p.BranchTakenProb < 0 || p.BranchTakenProb > 1 {
		return fmt.Errorf("workload: phase %d taken prob %v out of [0,1]", i, p.BranchTakenProb)
	}
	if p.SyscallFaultProb < 0 || p.SyscallFaultProb > 1 {
		return fmt.Errorf("workload: phase %d fault prob %v out of [0,1]", i, p.SyscallFaultProb)
	}
	return nil
}

// Spec is a complete workload description.
type Spec struct {
	// Name identifies the workload within its suite.
	Name string
	// Instructions is the dynamic instruction budget.
	Instructions uint64
	// Seed makes the workload deterministic.
	Seed uint64
	// BaseOffset shifts every memory region of the workload by a fixed
	// amount. Zero for ordinary runs; multicore rate-style execution gives
	// each process clone a distinct offset so their footprints are
	// private (separate address spaces).
	BaseOffset uint64
	// Phases run in order, splitting Instructions by Weight.
	Phases []Phase
}

// Validate checks the spec without compiling it.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has no name")
	}
	if s.Instructions == 0 {
		return fmt.Errorf("workload: spec %q has zero instructions", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec %q has no phases", s.Name)
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(i); err != nil {
			return fmt.Errorf("%w (spec %q)", err, s.Name)
		}
	}
	return nil
}

// Program is a compiled Spec implementing uarch.Program.
type Program struct {
	spec   Spec
	phases []compiledPhase
	bounds []uint64 // cumulative instruction boundary per phase
	pos    uint64
	cur    int
}

type compiledPhase struct {
	p         *Phase
	loadGen   addrStream
	storeGen  addrStream
	src       *rng.Source
	branchPCs []uint64
	branchCnt []uint32
	branchPer []uint32
	// Cumulative kind thresholds (load, store, branch, syscall) and the
	// branch/syscall probabilities, pre-scaled to the integer domain of
	// Float64's 53 significant bits (see probThreshold). Comparing the raw
	// RNG draw against these is bit-for-bit equivalent to comparing
	// Float64() against the float probabilities, without the int→float
	// conversion on the per-instruction path.
	uLoad, uStore, uBranch, uSyscall uint64
	uRegular, uTaken, uFault         uint64
	// Lemire sampling constants for the branch-site draw: the site count
	// and 2^64 mod it, so emit draws a site without calling rng.Intn
	// (identical stream; see the note on rng.Intn).
	siteBound, siteThr uint64
}

// probThreshold converts a probability to the 53-bit integer domain:
// Float64() < p  ⟺  Uint64()>>11 < probThreshold(p). Exact, because
// Float64 is float64(u>>11)/2^53 where both the int→float conversion
// (≤53 bits) and the power-of-two division are lossless, so scaling the
// comparison by 2^53 changes nothing; the ceiling accounts for the draw
// being an integer (x < p·2^53 ⟺ x < ceil(p·2^53) for integer x, with
// equality impossible at non-integral p·2^53).
func probThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// addrStream buffers an AddrGen so the per-address interface dispatch is
// amortized over a block refill. Safe for lookahead: every generator owns
// a private RNG stream, so drawing addresses early produces exactly the
// values later one-at-a-time calls would.
// addrBatch is the refill size of an addrStream.
const addrBatch = 64

type addrStream struct {
	gen AddrGen
	buf [addrBatch]uint64
	i   int
}

func newAddrStream(gen AddrGen) addrStream {
	// Start with the buffer exhausted so the first next() refills.
	return addrStream{gen: gen, i: addrBatch}
}

func (s *addrStream) next() uint64 {
	if s.i == len(s.buf) {
		if bg, ok := s.gen.(BatchAddrGen); ok {
			bg.NextBatch(s.buf[:])
		} else {
			for j := range s.buf {
				s.buf[j] = s.gen.Next()
			}
		}
		s.i = 0
	}
	a := s.buf[s.i]
	s.i++
	return a
}

// Compile validates a spec and builds its deterministic Program. Each
// phase gets an independent RNG stream and its own address-space region,
// so phase order changes never alias working sets.
func Compile(spec Spec) (*Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{spec: spec}

	totalW := 0.0
	for i := range spec.Phases {
		totalW += spec.Phases[i].Weight
	}

	// Region layout: phases are placed end to end with a guard gap.
	const guard = 1 << 21 // 2 MiB between regions
	base := uint64(1)<<33 + spec.BaseOffset
	var cum uint64
	for i := range spec.Phases {
		ph := &spec.Phases[i]
		src := rng.New(rng.ChildSeed(spec.Seed, i))
		cp := compiledPhase{p: ph, src: src}

		if ph.LoadPattern != nil || ph.StorePattern != nil {
			loadSpec := ph.LoadPattern
			if loadSpec == nil {
				loadSpec = ph.StorePattern
			}
			storeSpec := ph.StorePattern
			if storeSpec == nil {
				storeSpec = ph.LoadPattern
			}
			loadGen, err := loadSpec.Instantiate(base, src.Split())
			if err != nil {
				return nil, fmt.Errorf("workload: spec %q phase %d load pattern: %w", spec.Name, i, err)
			}
			cp.loadGen = newAddrStream(loadGen)
			sharedRegion := loadSpec == storeSpec ||
				(ph.LoadPattern != nil && ph.StorePattern == nil) ||
				(ph.LoadPattern == nil && ph.StorePattern != nil)
			storeBase := base
			if !sharedRegion {
				storeBase = base + loadSpec.Footprint() + guard
			}
			storeGen, err := storeSpec.Instantiate(storeBase, src.Split())
			if err != nil {
				return nil, fmt.Errorf("workload: spec %q phase %d store pattern: %w", spec.Name, i, err)
			}
			cp.storeGen = newAddrStream(storeGen)
			base = storeBase + storeSpec.Footprint() + guard
		}

		sites := ph.BranchSites
		if sites <= 0 {
			sites = 16
		}
		cp.branchPCs = make([]uint64, sites)
		cp.branchCnt = make([]uint32, sites)
		cp.branchPer = make([]uint32, sites)
		for s := 0; s < sites; s++ {
			cp.branchPCs[s] = 0x400000 + uint64(i)<<16 + uint64(s)*4
			// Loop periods between 4 and 35, deterministic per site.
			cp.branchPer[s] = uint32(4 + (s*7)%32)
		}
		cp.siteBound = uint64(sites)
		cp.siteThr = -cp.siteBound % cp.siteBound

		tLoad := ph.LoadFrac
		tStore := tLoad + ph.StoreFrac
		tBranch := tStore + ph.BranchFrac
		tSyscall := tBranch + ph.SyscallFrac
		cp.uLoad = probThreshold(tLoad)
		cp.uStore = probThreshold(tStore)
		cp.uBranch = probThreshold(tBranch)
		cp.uSyscall = probThreshold(tSyscall)
		cp.uRegular = probThreshold(ph.BranchRegularity)
		cp.uTaken = probThreshold(ph.BranchTakenProb)
		cp.uFault = probThreshold(ph.SyscallFaultProb)

		prog.phases = append(prog.phases, cp)

		share := ph.Weight / totalW
		cum += uint64(share * float64(spec.Instructions))
		prog.bounds = append(prog.bounds, cum)
	}
	// Absorb rounding into the final phase.
	prog.bounds[len(prog.bounds)-1] = spec.Instructions
	return prog, nil
}

// Name implements uarch.Program.
func (pr *Program) Name() string { return pr.spec.Name }

// Reset implements uarch.Program by recompiling the generators from the
// original spec, restoring the exact initial stream.
func (pr *Program) Reset() {
	fresh, err := Compile(pr.spec)
	if err != nil {
		// Compile succeeded once with the same spec; a failure here is a
		// programming error.
		panic(fmt.Sprintf("workload: Reset recompile failed: %v", err))
	}
	*pr = *fresh
}

// emit produces one instruction of this phase. It is the shared body of
// Next and NextBatch, so both paths draw from the RNG streams in exactly
// the same order and produce identical instruction sequences.
func (cp *compiledPhase) emit(in *uarch.Instr) {
	// Each case overwrites every field in one composite store: callers
	// reuse the same Instr across calls. Kind selection and coin flips
	// draw Uint64()>>11 — the significand Float64 would build — and
	// compare in the integer domain (see probThreshold); each comparison
	// consumes exactly one RNG draw, like the Float64/Bool calls it
	// replaces, so the streams stay aligned.
	r := cp.src.Uint64() >> 11
	switch {
	case r < cp.uLoad:
		*in = uarch.Instr{Kind: uarch.Load, Addr: cp.loadGen.next()}
	case r < cp.uStore:
		*in = uarch.Instr{Kind: uarch.Store, Addr: cp.storeGen.next()}
	case r < cp.uBranch:
		site, lo := bits.Mul64(cp.src.Uint64(), cp.siteBound)
		for lo < cp.siteThr {
			site, lo = bits.Mul64(cp.src.Uint64(), cp.siteBound)
		}
		var taken bool
		if cp.src.Uint64()>>11 < cp.uRegular {
			// Loop-style pattern: taken except every period-th execution.
			cp.branchCnt[site]++
			taken = cp.branchCnt[site]%cp.branchPer[site] != 0
		} else {
			taken = cp.src.Uint64()>>11 < cp.uTaken
		}
		*in = uarch.Instr{Kind: uarch.Branch, PC: cp.branchPCs[site], Taken: taken}
	case r < cp.uSyscall:
		*in = uarch.Instr{Kind: uarch.Syscall, Fault: cp.src.Uint64()>>11 < cp.uFault}
	default:
		*in = uarch.Instr{Kind: uarch.ALU}
	}
}

// Next implements uarch.Program.
func (pr *Program) Next(in *uarch.Instr) bool {
	if pr.pos >= pr.spec.Instructions {
		return false
	}
	for pr.pos >= pr.bounds[pr.cur] {
		pr.cur++
	}
	cp := &pr.phases[pr.cur]
	pr.pos++
	cp.emit(in)
	return true
}

// NextBatch implements uarch.BatchProgram: it emits up to len(dst)
// instructions, resolving the active phase once per run instead of once
// per instruction.
func (pr *Program) NextBatch(dst []uarch.Instr) int {
	n := 0
	for n < len(dst) && pr.pos < pr.spec.Instructions {
		for pr.pos >= pr.bounds[pr.cur] {
			pr.cur++
		}
		cp := &pr.phases[pr.cur]
		take := uint64(len(dst) - n)
		if rem := pr.bounds[pr.cur] - pr.pos; rem < take {
			take = rem
		}
		pr.pos += take
		for ; take > 0; take-- {
			cp.emit(&dst[n])
			n++
		}
	}
	return n
}

// PhaseCount returns the number of phases.
func (pr *Program) PhaseCount() int { return len(pr.phases) }

// Spec returns a copy of the program's spec.
func (pr *Program) Spec() Spec { return pr.spec }
