package workload

import (
	"fmt"

	"perspector/internal/rng"
	"perspector/internal/uarch"
)

// Phase describes one execution phase of a workload. Fractions are
// per-instruction probabilities; the remainder after loads, stores,
// branches and syscalls is ALU work.
type Phase struct {
	// Name labels the phase (diagnostics only).
	Name string
	// Weight is the phase's share of the workload's instructions;
	// weights are normalized across phases.
	Weight float64

	// LoadFrac, StoreFrac, BranchFrac, SyscallFrac give the instruction
	// mix. Their sum must not exceed 1.
	LoadFrac    float64
	StoreFrac   float64
	BranchFrac  float64
	SyscallFrac float64

	// LoadPattern and StorePattern drive address generation. StorePattern
	// defaults to LoadPattern when nil.
	LoadPattern  PatternSpec
	StorePattern PatternSpec

	// BranchRegularity is the probability a branch outcome follows its
	// site's deterministic loop pattern (predictable); otherwise the
	// outcome is a coin flip with BranchTakenProb.
	BranchRegularity float64
	// BranchTakenProb is the taken probability of irregular branches.
	BranchTakenProb float64
	// BranchSites is the number of static branch PCs; 0 defaults to 16.
	BranchSites int

	// SyscallFaultProb is the probability a syscall raises a page fault.
	SyscallFaultProb float64
}

func (p *Phase) validate(i int) error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.SyscallFrac
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || p.SyscallFrac < 0 || sum > 1+1e-9 {
		return fmt.Errorf("workload: phase %d mix invalid (sum %v)", i, sum)
	}
	if p.Weight <= 0 {
		return fmt.Errorf("workload: phase %d weight %v not positive", i, p.Weight)
	}
	if (p.LoadFrac > 0 || p.StoreFrac > 0) && p.LoadPattern == nil && p.StorePattern == nil {
		return fmt.Errorf("workload: phase %d has memory work but no pattern", i)
	}
	if p.BranchRegularity < 0 || p.BranchRegularity > 1 {
		return fmt.Errorf("workload: phase %d branch regularity %v out of [0,1]", i, p.BranchRegularity)
	}
	if p.BranchTakenProb < 0 || p.BranchTakenProb > 1 {
		return fmt.Errorf("workload: phase %d taken prob %v out of [0,1]", i, p.BranchTakenProb)
	}
	if p.SyscallFaultProb < 0 || p.SyscallFaultProb > 1 {
		return fmt.Errorf("workload: phase %d fault prob %v out of [0,1]", i, p.SyscallFaultProb)
	}
	return nil
}

// Spec is a complete workload description.
type Spec struct {
	// Name identifies the workload within its suite.
	Name string
	// Instructions is the dynamic instruction budget.
	Instructions uint64
	// Seed makes the workload deterministic.
	Seed uint64
	// BaseOffset shifts every memory region of the workload by a fixed
	// amount. Zero for ordinary runs; multicore rate-style execution gives
	// each process clone a distinct offset so their footprints are
	// private (separate address spaces).
	BaseOffset uint64
	// Phases run in order, splitting Instructions by Weight.
	Phases []Phase
}

// Validate checks the spec without compiling it.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has no name")
	}
	if s.Instructions == 0 {
		return fmt.Errorf("workload: spec %q has zero instructions", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec %q has no phases", s.Name)
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(i); err != nil {
			return fmt.Errorf("%w (spec %q)", err, s.Name)
		}
	}
	return nil
}

// Program is a compiled Spec implementing uarch.Program.
type Program struct {
	spec   Spec
	phases []compiledPhase
	bounds []uint64 // cumulative instruction boundary per phase
	pos    uint64
	cur    int
}

type compiledPhase struct {
	p         *Phase
	loadGen   AddrGen
	storeGen  AddrGen
	src       *rng.Source
	branchPCs []uint64
	branchCnt []uint32
	branchPer []uint32
	// cumulative kind thresholds in [0,1): load, store, branch, syscall
	tLoad, tStore, tBranch, tSyscall float64
}

// Compile validates a spec and builds its deterministic Program. Each
// phase gets an independent RNG stream and its own address-space region,
// so phase order changes never alias working sets.
func Compile(spec Spec) (*Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{spec: spec}

	totalW := 0.0
	for i := range spec.Phases {
		totalW += spec.Phases[i].Weight
	}

	// Region layout: phases are placed end to end with a guard gap.
	const guard = 1 << 21 // 2 MiB between regions
	base := uint64(1)<<33 + spec.BaseOffset
	var cum uint64
	for i := range spec.Phases {
		ph := &spec.Phases[i]
		src := rng.New(rng.ChildSeed(spec.Seed, i))
		cp := compiledPhase{p: ph, src: src}

		if ph.LoadPattern != nil || ph.StorePattern != nil {
			loadSpec := ph.LoadPattern
			if loadSpec == nil {
				loadSpec = ph.StorePattern
			}
			storeSpec := ph.StorePattern
			if storeSpec == nil {
				storeSpec = ph.LoadPattern
			}
			var err error
			cp.loadGen, err = loadSpec.Instantiate(base, src.Split())
			if err != nil {
				return nil, fmt.Errorf("workload: spec %q phase %d load pattern: %w", spec.Name, i, err)
			}
			sharedRegion := loadSpec == storeSpec ||
				(ph.LoadPattern != nil && ph.StorePattern == nil) ||
				(ph.LoadPattern == nil && ph.StorePattern != nil)
			storeBase := base
			if !sharedRegion {
				storeBase = base + loadSpec.Footprint() + guard
			}
			cp.storeGen, err = storeSpec.Instantiate(storeBase, src.Split())
			if err != nil {
				return nil, fmt.Errorf("workload: spec %q phase %d store pattern: %w", spec.Name, i, err)
			}
			base = storeBase + storeSpec.Footprint() + guard
		}

		sites := ph.BranchSites
		if sites <= 0 {
			sites = 16
		}
		cp.branchPCs = make([]uint64, sites)
		cp.branchCnt = make([]uint32, sites)
		cp.branchPer = make([]uint32, sites)
		for s := 0; s < sites; s++ {
			cp.branchPCs[s] = 0x400000 + uint64(i)<<16 + uint64(s)*4
			// Loop periods between 4 and 35, deterministic per site.
			cp.branchPer[s] = uint32(4 + (s*7)%32)
		}

		cp.tLoad = ph.LoadFrac
		cp.tStore = cp.tLoad + ph.StoreFrac
		cp.tBranch = cp.tStore + ph.BranchFrac
		cp.tSyscall = cp.tBranch + ph.SyscallFrac

		prog.phases = append(prog.phases, cp)

		share := ph.Weight / totalW
		cum += uint64(share * float64(spec.Instructions))
		prog.bounds = append(prog.bounds, cum)
	}
	// Absorb rounding into the final phase.
	prog.bounds[len(prog.bounds)-1] = spec.Instructions
	return prog, nil
}

// Name implements uarch.Program.
func (pr *Program) Name() string { return pr.spec.Name }

// Reset implements uarch.Program by recompiling the generators from the
// original spec, restoring the exact initial stream.
func (pr *Program) Reset() {
	fresh, err := Compile(pr.spec)
	if err != nil {
		// Compile succeeded once with the same spec; a failure here is a
		// programming error.
		panic(fmt.Sprintf("workload: Reset recompile failed: %v", err))
	}
	*pr = *fresh
}

// Next implements uarch.Program.
func (pr *Program) Next(in *uarch.Instr) bool {
	if pr.pos >= pr.spec.Instructions {
		return false
	}
	for pr.pos >= pr.bounds[pr.cur] {
		pr.cur++
	}
	cp := &pr.phases[pr.cur]
	pr.pos++

	// Overwrite every field: callers reuse the same Instr across calls.
	*in = uarch.Instr{}
	r := cp.src.Float64()
	switch {
	case r < cp.tLoad:
		in.Kind = uarch.Load
		in.Addr = cp.loadGen.Next()
	case r < cp.tStore:
		in.Kind = uarch.Store
		in.Addr = cp.storeGen.Next()
	case r < cp.tBranch:
		in.Kind = uarch.Branch
		site := cp.src.Intn(len(cp.branchPCs))
		in.PC = cp.branchPCs[site]
		if cp.src.Bool(cp.p.BranchRegularity) {
			// Loop-style pattern: taken except every period-th execution.
			cp.branchCnt[site]++
			in.Taken = cp.branchCnt[site]%cp.branchPer[site] != 0
		} else {
			in.Taken = cp.src.Bool(cp.p.BranchTakenProb)
		}
	case r < cp.tSyscall:
		in.Kind = uarch.Syscall
		in.Fault = cp.src.Bool(cp.p.SyscallFaultProb)
	default:
		in.Kind = uarch.ALU
	}
	return true
}

// PhaseCount returns the number of phases.
func (pr *Program) PhaseCount() int { return len(pr.phases) }

// Spec returns a copy of the program's spec.
func (pr *Program) Spec() Spec { return pr.spec }
