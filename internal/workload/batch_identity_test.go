package workload

import (
	"testing"

	"perspector/internal/uarch"
)

func multiPhaseSpec() Spec {
	return Spec{
		Name:         "multi",
		Instructions: 30_000,
		Seed:         7,
		Phases: []Phase{
			{
				Name: "gather", Weight: 2,
				LoadFrac: 0.4, StoreFrac: 0.05, BranchFrac: 0.2, SyscallFrac: 0.001,
				LoadPattern:      Random{WorkingSet: 256 << 10},
				BranchRegularity: 0.7, BranchTakenProb: 0.6,
				SyscallFaultProb: 0.1,
			},
			{
				Name: "stream", Weight: 1,
				LoadFrac: 0.3, StoreFrac: 0.2, BranchFrac: 0.1,
				LoadPattern:      Sequential{WorkingSet: 64 << 10},
				StorePattern:     HotCold{HotSet: 4 << 10, ColdSet: 32 << 10, HotFrac: 0.8},
				BranchRegularity: 0.9, BranchTakenProb: 0.5,
			},
			{
				Name: "mix", Weight: 1,
				LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.25,
				LoadPattern:      Streams{WorkingSet: 96 << 10, Count: 3},
				BranchRegularity: 0.2, BranchTakenProb: 0.3,
			},
		},
	}
}

// TestNextBatchMatchesNext drives two identically compiled programs — one
// instruction at a time versus NextBatch with deliberately awkward chunk
// sizes — across phase boundaries and program end, requiring the two
// instruction streams to be structurally identical. This is the
// workload-level half of the batching equivalence contract (the
// machine-level half lives in internal/suites).
func TestNextBatchMatchesNext(t *testing.T) {
	chunks := []int{1, 3, 7, 64, 129, 1000, 4096}
	for _, chunk := range chunks {
		scalar, err := Compile(multiPhaseSpec())
		if err != nil {
			t.Fatal(err)
		}
		batched, err := Compile(multiPhaseSpec())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]uarch.Instr, chunk)
		var pos uint64
		for {
			n := batched.NextBatch(buf)
			for i := 0; i < n; i++ {
				var want uarch.Instr
				if !scalar.Next(&want) {
					t.Fatalf("chunk %d: scalar stream ended at %d while batch produced more", chunk, pos)
				}
				if buf[i] != want {
					t.Fatalf("chunk %d: instruction %d diverges: batch %+v, scalar %+v",
						chunk, pos, buf[i], want)
				}
				pos++
			}
			if n < chunk {
				break
			}
		}
		var extra uarch.Instr
		if scalar.Next(&extra) {
			t.Fatalf("chunk %d: scalar stream continues past batch end at %d", chunk, pos)
		}
		if pos != 30_000 {
			t.Fatalf("chunk %d: stream ended after %d instructions, want 30000", chunk, pos)
		}
	}
}

// TestNextBatchAfterReset checks that Reset rewinds the batched path to an
// identical replay, interleaving batch sizes before and after.
func TestNextBatchAfterReset(t *testing.T) {
	prog, err := Compile(multiPhaseSpec())
	if err != nil {
		t.Fatal(err)
	}
	first := make([]uarch.Instr, 500)
	if n := prog.NextBatch(first); n != len(first) {
		t.Fatalf("short first batch: %d", n)
	}
	// Consume some more with a different chunking, then rewind.
	rest := make([]uarch.Instr, 333)
	prog.NextBatch(rest)
	prog.Reset()
	replay := make([]uarch.Instr, 500)
	if n := prog.NextBatch(replay); n != len(replay) {
		t.Fatalf("short replay batch: %d", n)
	}
	for i := range first {
		if first[i] != replay[i] {
			t.Fatalf("instruction %d not replayed after Reset: %+v vs %+v", i, first[i], replay[i])
		}
	}
}
