// Package workload models synthetic programs for the uarch simulator.
// A workload is a Spec: a named sequence of phases, each phase defining an
// instruction mix, memory access patterns, branch behaviour, and syscall
// rate. Compiling a Spec yields a deterministic uarch.Program whose PMU
// signature — cache/TLB locality, branch predictability, phase structure —
// is controlled by the Spec's parameters. The six suite models in
// internal/suites are built entirely from these pieces.
package workload

import (
	"fmt"
	"math/bits"

	"perspector/internal/rng"
)

// AddrGen produces a stream of virtual addresses.
type AddrGen interface {
	Next() uint64
}

// BatchAddrGen is an AddrGen that can fill a whole slice per call.
// Address streams are infinite, so NextBatch always fills all of dst, and
// it MUST produce exactly the values len(dst) successive Next calls
// would. Every built-in pattern implements it; generators draw from
// private RNG streams (split off at Instantiate), so producing addresses
// ahead of consumption cannot perturb any other stream.
type BatchAddrGen interface {
	AddrGen
	NextBatch(dst []uint64)
}

// PatternSpec describes a memory access pattern; Instantiate binds it to a
// base address and an RNG stream, yielding a fresh generator.
type PatternSpec interface {
	// Instantiate creates a generator addressing [base, base+Footprint).
	Instantiate(base uint64, src *rng.Source) (AddrGen, error)
	// Footprint is the size in bytes of the region the pattern touches.
	Footprint() uint64
}

// --- Sequential ---

// Sequential sweeps a working set cyclically with a fixed stride,
// modelling streaming kernels (memcpy, vector ops, I/O buffers).
type Sequential struct {
	// WorkingSet is the region size in bytes.
	WorkingSet uint64
	// Stride is the distance between consecutive accesses; 0 defaults to 64.
	Stride uint64
}

// Footprint returns the working-set size.
func (s Sequential) Footprint() uint64 { return s.WorkingSet }

// Instantiate builds the sweep generator.
func (s Sequential) Instantiate(base uint64, _ *rng.Source) (AddrGen, error) {
	if s.WorkingSet == 0 {
		return nil, fmt.Errorf("workload: Sequential with zero working set")
	}
	stride := s.Stride
	if stride == 0 {
		stride = 64
	}
	return &seqGen{base: base, ws: s.WorkingSet, stride: stride}, nil
}

type seqGen struct {
	base, ws, stride, pos uint64
}

func (g *seqGen) Next() uint64 {
	addr := g.base + g.pos
	g.pos += g.stride
	if g.pos >= g.ws {
		g.pos = 0
	}
	return addr
}

func (g *seqGen) NextBatch(dst []uint64) {
	base, ws, stride, pos := g.base, g.ws, g.stride, g.pos
	for i := range dst {
		dst[i] = base + pos
		pos += stride
		if pos >= ws {
			pos = 0
		}
	}
	g.pos = pos
}

// --- Strided multi-stream ---

// Streams interleaves several independent sequential streams, modelling
// stencil and multi-array kernels. Each stream sweeps WorkingSet/Count
// bytes.
type Streams struct {
	WorkingSet uint64
	Count      int
	Stride     uint64
}

// Footprint returns the combined working-set size.
func (s Streams) Footprint() uint64 { return s.WorkingSet }

// Instantiate builds the interleaved generator.
func (s Streams) Instantiate(base uint64, _ *rng.Source) (AddrGen, error) {
	if s.Count <= 0 {
		return nil, fmt.Errorf("workload: Streams with count %d", s.Count)
	}
	if s.WorkingSet == 0 {
		return nil, fmt.Errorf("workload: Streams with zero working set")
	}
	stride := s.Stride
	if stride == 0 {
		stride = 64
	}
	per := s.WorkingSet / uint64(s.Count)
	if per < stride {
		return nil, fmt.Errorf("workload: Streams working set %d too small for %d streams", s.WorkingSet, s.Count)
	}
	g := &streamsGen{stride: stride, per: per}
	for i := 0; i < s.Count; i++ {
		g.bases = append(g.bases, base+uint64(i)*per)
		g.pos = append(g.pos, 0)
	}
	return g, nil
}

type streamsGen struct {
	bases  []uint64
	pos    []uint64
	per    uint64
	stride uint64
	turn   int
}

func (g *streamsGen) Next() uint64 {
	i := g.turn
	g.turn = (g.turn + 1) % len(g.bases)
	addr := g.bases[i] + g.pos[i]
	g.pos[i] += g.stride
	if g.pos[i] >= g.per {
		g.pos[i] = 0
	}
	return addr
}

func (g *streamsGen) NextBatch(dst []uint64) {
	turn, n := g.turn, len(g.bases)
	for i := range dst {
		s := turn
		if turn++; turn == n {
			turn = 0
		}
		dst[i] = g.bases[s] + g.pos[s]
		g.pos[s] += g.stride
		if g.pos[s] >= g.per {
			g.pos[s] = 0
		}
	}
	g.turn = turn
}

// --- Uniform random ---

// Random draws uniformly over the working set at cache-line granularity,
// modelling hash tables and GUPS-style updates: hostile to every level of
// the hierarchy once the set exceeds its capacity.
type Random struct {
	WorkingSet uint64
}

// Footprint returns the working-set size.
func (r Random) Footprint() uint64 { return r.WorkingSet }

// Instantiate builds the uniform generator.
func (r Random) Instantiate(base uint64, src *rng.Source) (AddrGen, error) {
	if r.WorkingSet < 64 {
		return nil, fmt.Errorf("workload: Random working set %d below one line", r.WorkingSet)
	}
	lines := r.WorkingSet / 64
	return &randGen{base: base, lines: lines, thr: -lines % lines, src: src}, nil
}

type randGen struct {
	base  uint64
	lines uint64
	thr   uint64 // 2^64 mod lines, Lemire rejection threshold
	src   *rng.Source
}

func (g *randGen) Next() uint64 {
	return g.base + uint64(g.src.Intn(int(g.lines)))*64
}

// NextBatch hand-inlines rng.Intn's Lemire sampling with the threshold
// precomputed at construction, so the per-address draw compiles down to
// an inlined xoshiro step and one widening multiply — no calls. The draw
// stream is identical to Next's (see the note on rng.Intn).
func (g *randGen) NextBatch(dst []uint64) {
	base, lines, thr, src := g.base, g.lines, g.thr, g.src
	for i := range dst {
		hi, lo := bits.Mul64(src.Uint64(), lines)
		for lo < thr {
			hi, lo = bits.Mul64(src.Uint64(), lines)
		}
		dst[i] = base + hi*64
	}
}

// --- Zipf / graph-like ---

// Zipf draws pages from a power-law distribution and lines uniformly
// within the page, modelling graph analytics: heavy reuse of hub pages
// with a long cold tail. Page- vs line-level locality decouple, which is
// what separates TLB behaviour from cache behaviour in the suites.
type Zipf struct {
	WorkingSet uint64
	// Alpha is the skew exponent; 0 is uniform, ≥1 strongly skewed.
	Alpha float64
}

// Footprint returns the working-set size.
func (z Zipf) Footprint() uint64 { return z.WorkingSet }

// Instantiate builds the Zipf generator.
func (z Zipf) Instantiate(base uint64, src *rng.Source) (AddrGen, error) {
	pages := z.WorkingSet / 4096
	if pages == 0 {
		return nil, fmt.Errorf("workload: Zipf working set %d below one page", z.WorkingSet)
	}
	if z.Alpha < 0 {
		return nil, fmt.Errorf("workload: Zipf alpha %v negative", z.Alpha)
	}
	return &zipfGen{
		base: base,
		zipf: rng.NewZipf(src, int(pages), z.Alpha),
		src:  src,
	}, nil
}

type zipfGen struct {
	base uint64
	zipf *rng.Zipf
	src  *rng.Source
}

func (g *zipfGen) Next() uint64 {
	page := uint64(g.zipf.Next())
	line := uint64(g.src.Intn(4096 / 64))
	return g.base + page*4096 + line*64
}

func (g *zipfGen) NextBatch(dst []uint64) {
	for i := range dst {
		page := uint64(g.zipf.Next())
		// Intn(64) never rejects (2^64 mod 64 = 0), so the draw is the
		// top six bits of one xoshiro word — same stream, no call.
		line := g.src.Uint64() >> 58
		dst[i] = g.base + page*4096 + line*64
	}
}

// --- Pointer chase ---

// PointerChase walks a pseudo-random permutation cycle over the lines of
// the working set, modelling linked-list and B-tree traversal: every line
// is visited exactly once per cycle (no short-term reuse), with an
// unpredictable page sequence.
type PointerChase struct {
	WorkingSet uint64
}

// Footprint returns the working-set size.
func (p PointerChase) Footprint() uint64 { return p.WorkingSet }

// Instantiate builds the permutation-walk generator.
func (p PointerChase) Instantiate(base uint64, src *rng.Source) (AddrGen, error) {
	lines := p.WorkingSet / 64
	if lines == 0 {
		return nil, fmt.Errorf("workload: PointerChase working set %d below one line", p.WorkingSet)
	}
	const maxLines = 1 << 24 // 1 GiB of chase nodes; beyond this the table is impractical
	if lines > maxLines {
		return nil, fmt.Errorf("workload: PointerChase working set %d too large", p.WorkingSet)
	}
	// Build a single cycle with Sattolo's algorithm so the walk covers the
	// whole set before repeating.
	next := make([]uint32, lines)
	for i := range next {
		next[i] = uint32(i)
	}
	for i := int(lines) - 1; i > 0; i-- {
		j := src.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	return &chaseGen{base: base, next: next}, nil
}

type chaseGen struct {
	base uint64
	next []uint32
	cur  uint32
}

func (g *chaseGen) Next() uint64 {
	g.cur = g.next[g.cur]
	return g.base + uint64(g.cur)*64
}

func (g *chaseGen) NextBatch(dst []uint64) {
	base, next, cur := g.base, g.next, g.cur
	for i := range dst {
		cur = next[cur]
		dst[i] = base + uint64(cur)*64
	}
	g.cur = cur
}

// --- Hot/cold mix ---

// HotCold accesses a small hot region with probability HotFrac and a large
// cold region otherwise, both uniformly. It models partitioned working
// sets (e.g. an index plus a heap) and produces mid-range hit ratios the
// pure patterns cannot.
type HotCold struct {
	HotSet  uint64
	ColdSet uint64
	HotFrac float64
}

// Footprint returns the combined region size.
func (h HotCold) Footprint() uint64 { return h.HotSet + h.ColdSet }

// Instantiate builds the mixed generator.
func (h HotCold) Instantiate(base uint64, src *rng.Source) (AddrGen, error) {
	if h.HotSet < 64 || h.ColdSet < 64 {
		return nil, fmt.Errorf("workload: HotCold regions below one line (%d, %d)", h.HotSet, h.ColdSet)
	}
	if h.HotFrac < 0 || h.HotFrac > 1 {
		return nil, fmt.Errorf("workload: HotCold fraction %v out of [0,1]", h.HotFrac)
	}
	hot, cold := h.HotSet/64, h.ColdSet/64
	return &hotColdGen{
		base: base, hotLines: hot, hotThr: -hot % hot,
		coldBase: base + h.HotSet, coldLines: cold, coldThr: -cold % cold,
		hotFrac: h.HotFrac, src: src,
	}, nil
}

type hotColdGen struct {
	base      uint64
	hotLines  uint64
	hotThr    uint64
	coldBase  uint64
	coldLines uint64
	coldThr   uint64
	hotFrac   float64
	src       *rng.Source
}

func (g *hotColdGen) Next() uint64 {
	if g.src.Bool(g.hotFrac) {
		return g.base + uint64(g.src.Intn(int(g.hotLines)))*64
	}
	return g.coldBase + uint64(g.src.Intn(int(g.coldLines)))*64
}

// NextBatch hand-inlines the two fixed-bound Lemire draws (see randGen).
func (g *hotColdGen) NextBatch(dst []uint64) {
	src := g.src
	for i := range dst {
		if src.Bool(g.hotFrac) {
			hi, lo := bits.Mul64(src.Uint64(), g.hotLines)
			for lo < g.hotThr {
				hi, lo = bits.Mul64(src.Uint64(), g.hotLines)
			}
			dst[i] = g.base + hi*64
		} else {
			hi, lo := bits.Mul64(src.Uint64(), g.coldLines)
			for lo < g.coldThr {
				hi, lo = bits.Mul64(src.Uint64(), g.coldLines)
			}
			dst[i] = g.coldBase + hi*64
		}
	}
}

// --- Alternating ---

// Alternating switches between two sub-patterns every Period accesses,
// modelling fine-grained phase behaviour *within* a workload phase — e.g.
// a loop that interleaves a gather step with a sequential update step.
// The sub-patterns address disjoint regions.
type Alternating struct {
	A, B PatternSpec
	// Period is the number of accesses spent in each sub-pattern before
	// switching; 0 defaults to 64.
	Period int
}

// Footprint returns the combined region size.
func (a Alternating) Footprint() uint64 {
	if a.A == nil || a.B == nil {
		return 0
	}
	return a.A.Footprint() + a.B.Footprint()
}

// Instantiate builds both sub-generators over adjacent regions.
func (a Alternating) Instantiate(base uint64, src *rng.Source) (AddrGen, error) {
	if a.A == nil || a.B == nil {
		return nil, fmt.Errorf("workload: Alternating needs both sub-patterns")
	}
	if a.Period < 0 {
		return nil, fmt.Errorf("workload: Alternating period %d negative", a.Period)
	}
	period := a.Period
	if period == 0 {
		period = 64
	}
	genA, err := a.A.Instantiate(base, src.Split())
	if err != nil {
		return nil, fmt.Errorf("workload: Alternating sub-pattern A: %w", err)
	}
	genB, err := a.B.Instantiate(base+a.A.Footprint(), src.Split())
	if err != nil {
		return nil, fmt.Errorf("workload: Alternating sub-pattern B: %w", err)
	}
	return &altGen{a: genA, b: genB, period: period}, nil
}

type altGen struct {
	a, b   AddrGen
	period int
	count  int
	inB    bool
}

func (g *altGen) Next() uint64 {
	if g.count >= g.period {
		g.count = 0
		g.inB = !g.inB
	}
	g.count++
	if g.inB {
		return g.b.Next()
	}
	return g.a.Next()
}

// NextBatch chunks the request at sub-pattern switch points, forwarding
// each run of ≤ Period accesses to the active sub-generator in one call.
func (g *altGen) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		if g.count >= g.period {
			g.count = 0
			g.inB = !g.inB
		}
		n := g.period - g.count
		if n > len(dst) {
			n = len(dst)
		}
		cur := g.a
		if g.inB {
			cur = g.b
		}
		if bg, ok := cur.(BatchAddrGen); ok {
			bg.NextBatch(dst[:n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = cur.Next()
			}
		}
		g.count += n
		dst = dst[n:]
	}
}
