package trace

import (
	"bytes"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"

	"perspector/internal/uarch"
	"perspector/internal/workload"
)

// logSpec is a small phase-rich workload whose compiled program
// exercises every record kind (loads, stores, branches, syscalls, ALU).
func logSpec(instr uint64) workload.Spec {
	return workload.Spec{
		Name:         "stream.w",
		Instructions: instr,
		Seed:         42,
		Phases: []workload.Phase{
			{Name: "mix", Weight: 1,
				LoadFrac: 0.3, StoreFrac: 0.12, BranchFrac: 0.15, SyscallFrac: 0.01,
				LoadPattern:      workload.HotCold{HotSet: 64 << 10, ColdSet: 4 << 20, HotFrac: 0.7},
				BranchRegularity: 0.6, BranchTakenProb: 0.55, BranchSites: 12,
				SyscallFaultProb: 0.3},
		},
	}
}

// TestStreamRoundTripBitIdentical is the reader's golden: simulating a
// workload directly and simulating its recorded instruction log through
// ProgramReader must produce bit-identical measurements — totals and
// every series sample.
func TestStreamRoundTripBitIdentical(t *testing.T) {
	const instr = 50_000
	spec := logSpec(instr)
	mc := uarch.DefaultMachineConfig()
	mc.SampleInterval = instr / 50

	direct, err := workload.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := uarch.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m1.Run(direct, instr)
	if err != nil {
		t.Fatal(err)
	}

	rec, err := workload.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	n, err := WriteInstrLog(&log, rec, instr)
	if err != nil {
		t.Fatal(err)
	}
	if n != instr {
		t.Fatalf("recorded %d instructions, want %d", n, instr)
	}

	pr := NewProgramReader(&log, spec.Name)
	m2, err := uarch.NewMachine(mc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Run(pr, instr)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	if pr.Count() != instr {
		t.Fatalf("reader emitted %d instructions, want %d", pr.Count(), instr)
	}
	for c := range want.Totals {
		if want.Totals[c] != got.Totals[c] {
			t.Errorf("counter %d: total %d != %d", c, want.Totals[c], got.Totals[c])
		}
		ws, gs := want.Series.Samples[c], got.Series.Samples[c]
		if len(ws) != len(gs) {
			t.Fatalf("counter %d: %d samples vs %d", c, len(ws), len(gs))
		}
		for j := range ws {
			if math.Float64bits(ws[j]) != math.Float64bits(gs[j]) {
				t.Errorf("counter %d sample %d: %x != %x", c, j, ws[j], gs[j])
			}
		}
	}
}

func TestStreamParsing(t *testing.T) {
	log := "# provenance header\n" +
		"A\n" +
		"L,1234\n" +
		"\n" +
		"S,5678\r\n" +
		"B,4194304,1\n" +
		"Y,0\n" +
		"B,4194308,0" // unterminated final line
	pr := NewProgramReader(strings.NewReader(log), "t")
	var got []uarch.Instr
	var in uarch.Instr
	for pr.Next(&in) {
		got = append(got, in)
	}
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	want := []uarch.Instr{
		{Kind: uarch.ALU},
		{Kind: uarch.Load, Addr: 1234},
		{Kind: uarch.Store, Addr: 5678},
		{Kind: uarch.Branch, PC: 4194304, Taken: true},
		{Kind: uarch.Syscall},
		{Kind: uarch.Branch, PC: 4194308},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestStreamMalformedRecords(t *testing.T) {
	cases := []string{
		"X,12\n",
		"L\n",
		"L,\n",
		"L,12x\n",
		"L,99999999999999999999999\n", // uint64 overflow
		"B,123\n",
		"B,123,2\n",
		"Y,\n",
		"A,1\n",
		"A" + strings.Repeat("A", 8192) + "\n", // oversized record
	}
	for _, c := range cases {
		pr := NewProgramReader(strings.NewReader("A\n"+c), "t")
		var in uarch.Instr
		n := 0
		for pr.Next(&in) {
			n++
		}
		if n != 1 {
			t.Errorf("%q: parsed %d records before stopping, want 1", c[:min(len(c), 16)], n)
		}
		if pr.Err() == nil {
			t.Errorf("%q: no error reported", c[:min(len(c), 16)])
		}
	}
}

func TestStreamResetIsOneShot(t *testing.T) {
	pr := NewProgramReader(strings.NewReader("A\nA\n"), "t")
	pr.Reset() // before consumption: fine
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
	var in uarch.Instr
	if !pr.Next(&in) {
		t.Fatal("empty read")
	}
	pr.Reset() // after consumption: poisons
	if pr.Err() == nil {
		t.Fatal("Reset after consumption not reported")
	}
	if pr.Next(&in) {
		t.Fatal("poisoned reader kept producing")
	}
}

// synthLog serves count repetitions of a prebuilt line block without
// ever materializing the whole log — the generator side of the
// bounded-memory contract.
type synthLog struct {
	block  []byte
	reps   int
	off    int
	served int
}

func (s *synthLog) Read(p []byte) (int, error) {
	if s.served >= s.reps {
		return 0, io.EOF
	}
	n := copy(p, s.block[s.off:])
	s.off += n
	if s.off == len(s.block) {
		s.off = 0
		s.served++
	}
	return n, nil
}

// synthBlock builds ~1 MiB of log lines cycling through every record
// kind, returning the block and its record count.
func synthBlock() ([]byte, uint64) {
	var b bytes.Buffer
	var records uint64
	addr := uint64(1) << 33
	for b.Len() < 1<<20 {
		b.WriteString("L,")
		b.WriteString(uitoa(addr))
		b.WriteString("\nS,")
		b.WriteString(uitoa(addr + 64))
		b.WriteString("\nA\nB,4194304,1\nY,0\n")
		addr += 4096
		records += 5
	}
	return b.Bytes(), records
}

func uitoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// TestStreamBoundedMemory is the at-scale acceptance gate: ingesting a
// synthetic ~1 GiB instruction log must allocate O(chunk) — a few MiB
// of fixed buffers — not O(file). A regression to line-slurping or
// per-record allocation blows the bound immediately (the log is ~40M
// records; even 32 bytes per record would allocate >1 GiB).
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1 GiB synthetic ingest; skipped under -short")
	}
	block, perBlock := synthBlock()
	reps := (1 << 30) / len(block)
	src := &synthLog{block: block, reps: reps}
	pr := NewProgramReader(src, "synth")

	batch := make([]uarch.Instr, 4096)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var total uint64
	var checksum uint64
	for {
		n := pr.NextBatch(batch)
		if n == 0 {
			break
		}
		total += uint64(n)
		// Touch the records so the parse cannot be optimized away.
		for i := 0; i < n; i++ {
			checksum += batch[i].Addr
		}
	}
	runtime.ReadMemStats(&after)
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	want := perBlock * uint64(reps)
	if total != want {
		t.Fatalf("ingested %d records, want %d", total, want)
	}
	if checksum == 0 {
		t.Fatal("checksum zero: addresses not parsed")
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	const bound = 8 << 20 // O(chunk): reader buffer + batch + noise, not O(1 GiB file)
	if allocated > bound {
		t.Fatalf("ingesting ~1 GiB allocated %d bytes, bound %d (allocations must be O(chunk), not O(file))", allocated, bound)
	}
	t.Logf("ingested %d records (~1 GiB) with %d bytes allocated", total, allocated)
}

// BenchmarkStreamIngest measures streaming-parse throughput over the
// synthetic log generator (b.SetBytes reports MB/s).
func BenchmarkStreamIngest(b *testing.B) {
	block, _ := synthBlock()
	const reps = 64 // ~64 MiB per iteration
	batch := make([]uarch.Instr, 4096)
	b.SetBytes(int64(len(block)) * reps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := NewProgramReader(&synthLog{block: block, reps: reps}, "bench")
		for pr.NextBatch(batch) > 0 {
		}
		if err := pr.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
