package trace

import (
	"bytes"
	"strings"
	"testing"

	"perspector/internal/perf"
	"perspector/internal/rng"
)

func sampleMeasurement(withSeries bool) *perf.SuiteMeasurement {
	src := rng.New(1)
	sm := &perf.SuiteMeasurement{Suite: "sample"}
	for i := 0; i < 3; i++ {
		var m perf.Measurement
		m.Workload = "w" + string(rune('a'+i))
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			m.Totals.Add(c, uint64(src.Intn(1_000_000)))
			if withSeries {
				m.Series.Interval = 1000
				s := make([]float64, 20)
				for k := range s {
					s[k] = float64(src.Intn(500))
				}
				m.Series.Samples[c] = s
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

func TestJSONRoundTripWithSeries(t *testing.T) {
	orig := sampleMeasurement(true)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Suite != orig.Suite || len(back.Workloads) != len(orig.Workloads) {
		t.Fatalf("shape mismatch: %+v", back)
	}
	for i := range orig.Workloads {
		if back.Workloads[i].Totals != orig.Workloads[i].Totals {
			t.Fatalf("workload %d totals differ", i)
		}
		if back.Workloads[i].Series.Interval != 1000 {
			t.Fatalf("interval lost: %d", back.Workloads[i].Series.Interval)
		}
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			a := orig.Workloads[i].Series.Series(c)
			b := back.Workloads[i].Series.Series(c)
			if len(a) != len(b) {
				t.Fatalf("series length mismatch for %v", c)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("series value mismatch at %v[%d]", c, k)
				}
			}
		}
	}
}

func TestJSONRoundTripTotalsOnly(t *testing.T) {
	orig := sampleMeasurement(false)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Workloads {
		if back.Workloads[i].Series.Len() != 0 {
			t.Fatal("series materialized from nothing")
		}
		if back.Workloads[i].Totals != orig.Workloads[i].Totals {
			t.Fatal("totals differ")
		}
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad version":     `{"version":99,"suite":"x","counters":[],"workloads":[]}`,
		"missing suite":   `{"version":1,"counters":[],"workloads":[]}`,
		"unknown counter": `{"version":1,"suite":"x","counters":["nope"],"workloads":[]}`,
		"totals mismatch": `{"version":1,"suite":"x","counters":["cpu-cycles"],"workloads":[{"name":"w","totals":[1,2]}]}`,
		"unnamed workload": `{"version":1,"suite":"x","counters":["cpu-cycles"],` +
			`"workloads":[{"name":"","totals":[1]}]}`,
		"ragged series": `{"version":1,"suite":"x","counters":["cpu-cycles"],` +
			`"workloads":[{"name":"w","totals":[1],"series":[[1,2],[1]]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := sampleMeasurement(false)
	counters := perf.AllCounters()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig, counters); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != 3 {
		t.Fatalf("workloads = %d", len(back.Workloads))
	}
	for i := range orig.Workloads {
		if back.Workloads[i].Totals != orig.Workloads[i].Totals {
			t.Fatalf("workload %d totals differ", i)
		}
	}
}

func TestCSVSubsetOfCounters(t *testing.T) {
	orig := sampleMeasurement(false)
	counters := perf.GroupLLC().Counters
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig, counters); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "llc-only")
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Workloads {
		for _, c := range counters {
			if back.Workloads[i].Totals.Get(c) != orig.Workloads[i].Totals.Get(c) {
				t.Fatalf("LLC counter %v differs", c)
			}
		}
		// Unexported counters stay zero.
		if back.Workloads[i].Totals.Get(perf.CPUCycles) != 0 {
			t.Fatal("cpu-cycles materialized from an LLC-only CSV")
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "foo,cpu-cycles\nw,1\n",
		"unknown counter":   "workload,bogus\nw,1\n",
		"non-numeric":       "workload,cpu-cycles\nw,abc\n",
		"empty name":        "workload,cpu-cycles\n,1\n",
		"duplicate name":    "workload,cpu-cycles\nw,1\nw,2\n",
		"no rows":           "workload,cpu-cycles\n",
		"short header only": "workload\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "x"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadCSV(strings.NewReader("workload,cpu-cycles\nw,1\n"), ""); err == nil {
		t.Error("empty suite name accepted")
	}
}

func TestWriteCSVNoCounters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleMeasurement(false), nil); err == nil {
		t.Fatal("no counters accepted")
	}
}

// allCountersForTest returns the full counter list for fuzz round-trips.
func allCountersForTest() []perf.Counter { return perf.AllCounters() }
