// Streaming instruction-log ingestion. A recorded instruction log — the
// at-scale input Perspector accepts from real collection pipelines — can
// run to many gigabytes, so it must never be materialized: ProgramReader
// parses the log chunk-at-a-time straight off any io.Reader and feeds
// the simulator through uarch.BatchProgram, holding memory proportional
// to one chunk (O(chunk), not O(file) — pinned by the bounded-memory
// test over a synthetic ~1 GiB log).
//
// # Log format
//
// Text lines, one dynamic instruction per line, first field the kind:
//
//	A                ALU (register-only) instruction
//	L,<addr>         load from decimal virtual address
//	S,<addr>         store to decimal virtual address
//	B,<pc>,<taken>   branch at decimal PC, taken 1 or 0
//	Y,<fault>        syscall, page-faulting 1 or 0
//
// Blank lines and lines starting with '#' are skipped, so logs can carry
// provenance headers. WriteInstrLog emits exactly this format.
package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"

	"perspector/internal/uarch"
)

// streamChunk is the ProgramReader refill size: big enough to amortize
// Read syscalls over ~10k lines, small enough that per-reader memory
// stays trivial.
const streamChunk = 256 << 10

// maxLogLine bounds one log line; anything longer is corrupt input, not
// a legitimate record (the longest well-formed line is under 64 bytes).
const maxLogLine = 4096

// ProgramReader streams an instruction log as a uarch.BatchProgram.
// It is strictly one-shot: a byte stream cannot rewind, so Reset after
// consumption puts the reader into a permanent error state instead of
// silently replaying wrong data. Parse failures end the stream early —
// the simulator sees a short batch and stops — and are reported by Err;
// callers must check it after the run.
type ProgramReader struct {
	name    string
	r       io.Reader
	buf     []byte
	start   int // first unconsumed byte in buf
	end     int // one past the last valid byte in buf
	eof     bool
	err     error
	line    uint64 // 1-based line number of the next record, for errors
	started bool
	count   uint64 // instructions emitted
}

// NewProgramReader returns a streaming program named name over the log
// in r. The reader allocates its chunk buffer once, up front.
func NewProgramReader(r io.Reader, name string) *ProgramReader {
	return &ProgramReader{name: name, r: r, buf: make([]byte, streamChunk), line: 1}
}

// Name implements uarch.Program.
func (pr *ProgramReader) Name() string { return pr.name }

// Reset implements uarch.Program. A stream cannot rewind: Reset before
// any consumption is a no-op; after consumption it poisons the reader so
// a replay bug surfaces as an error, never as silently truncated data.
func (pr *ProgramReader) Reset() {
	if pr.started {
		pr.err = fmt.Errorf("trace: ProgramReader %q is one-shot and cannot Reset after reading", pr.name)
	}
}

// Err returns the first error the stream hit: a malformed record, an
// underlying read failure, or a Reset-after-consumption. io.EOF is not
// an error. Callers must check Err after the simulator run, because the
// simulator cannot distinguish "log ended" from "log broke".
func (pr *ProgramReader) Err() error { return pr.err }

// Count returns the number of instructions emitted so far.
func (pr *ProgramReader) Count() uint64 { return pr.count }

// Next implements uarch.Program.
func (pr *ProgramReader) Next(in *uarch.Instr) bool {
	var one [1]uarch.Instr
	if pr.NextBatch(one[:]) == 0 {
		return false
	}
	*in = one[0]
	return true
}

// refill slides the unconsumed tail to the front of the buffer and reads
// more bytes behind it. Reports whether any new bytes arrived.
func (pr *ProgramReader) refill() bool {
	if pr.eof {
		return false
	}
	if pr.start > 0 {
		copy(pr.buf, pr.buf[pr.start:pr.end])
		pr.end -= pr.start
		pr.start = 0
	}
	if pr.end == len(pr.buf) {
		// A line longer than the whole chunk buffer: corrupt input.
		pr.err = fmt.Errorf("trace: %s line %d: record exceeds %d bytes", pr.name, pr.line, maxLogLine)
		return false
	}
	n, err := pr.r.Read(pr.buf[pr.end:])
	pr.end += n
	if err == io.EOF {
		pr.eof = true
	} else if err != nil {
		pr.err = fmt.Errorf("trace: %s line %d: %w", pr.name, pr.line, err)
		pr.eof = true
	}
	return n > 0
}

// NextBatch implements uarch.BatchProgram: it parses up to len(dst)
// records. A short count means the stream ended — cleanly at EOF, or on
// the first malformed record (check Err).
func (pr *ProgramReader) NextBatch(dst []uarch.Instr) int {
	pr.started = true
	n := 0
	for n < len(dst) && pr.err == nil {
		// Find the end of the current line, refilling as needed.
		nl := bytes.IndexByte(pr.buf[pr.start:pr.end], '\n')
		for nl < 0 && !pr.eof {
			if pr.end-pr.start > maxLogLine {
				pr.err = fmt.Errorf("trace: %s line %d: record exceeds %d bytes", pr.name, pr.line, maxLogLine)
				return n
			}
			if !pr.refill() && pr.err != nil {
				return n
			}
			nl = bytes.IndexByte(pr.buf[pr.start:pr.end], '\n')
		}
		var rec []byte
		if nl >= 0 {
			rec = pr.buf[pr.start : pr.start+nl]
			pr.start += nl + 1
		} else {
			// EOF with an unterminated final line.
			if pr.start == pr.end {
				break
			}
			rec = pr.buf[pr.start:pr.end]
			pr.start = pr.end
		}
		// Trim a trailing \r so CRLF logs parse.
		if len(rec) > 0 && rec[len(rec)-1] == '\r' {
			rec = rec[:len(rec)-1]
		}
		if len(rec) == 0 || rec[0] == '#' {
			pr.line++
			continue
		}
		if !pr.parseRecord(rec, &dst[n]) {
			return n
		}
		pr.line++
		pr.count++
		n++
	}
	return n
}

// parseUint parses a decimal uint64 without allocation.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func (pr *ProgramReader) fail(rec []byte) bool {
	pr.err = fmt.Errorf("trace: %s line %d: malformed record %q", pr.name, pr.line, rec)
	return false
}

// parseRecord decodes one log line into in.
func (pr *ProgramReader) parseRecord(rec []byte, in *uarch.Instr) bool {
	kind := rec[0]
	rest := rec[1:]
	if len(rest) > 0 {
		if rest[0] != ',' {
			return pr.fail(rec)
		}
		rest = rest[1:]
	}
	switch kind {
	case 'A':
		if len(rest) != 0 {
			return pr.fail(rec)
		}
		*in = uarch.Instr{Kind: uarch.ALU}
	case 'L', 'S':
		addr, ok := parseUint(rest)
		if !ok {
			return pr.fail(rec)
		}
		k := uarch.Load
		if kind == 'S' {
			k = uarch.Store
		}
		*in = uarch.Instr{Kind: k, Addr: addr}
	case 'B':
		comma := bytes.IndexByte(rest, ',')
		if comma < 0 {
			return pr.fail(rec)
		}
		pc, ok := parseUint(rest[:comma])
		if !ok {
			return pr.fail(rec)
		}
		taken, ok := parseBit(rest[comma+1:])
		if !ok {
			return pr.fail(rec)
		}
		*in = uarch.Instr{Kind: uarch.Branch, PC: pc, Taken: taken}
	case 'Y':
		fault, ok := parseBit(rest)
		if !ok {
			return pr.fail(rec)
		}
		*in = uarch.Instr{Kind: uarch.Syscall, Fault: fault}
	default:
		return pr.fail(rec)
	}
	return true
}

func parseBit(b []byte) (bool, bool) {
	if len(b) != 1 || (b[0] != '0' && b[0] != '1') {
		return false, false
	}
	return b[0] == '1', true
}

// WriteInstrLog records up to max instructions of prog (0 = until the
// program ends) as an instruction log on w — the inverse of
// ProgramReader, used to archive synthetic workloads as replayable logs.
func WriteInstrLog(w io.Writer, prog uarch.Program, max uint64) (uint64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var (
		in      uarch.Instr
		scratch [32]byte
		n       uint64
	)
	for (max == 0 || n < max) && prog.Next(&in) {
		var line []byte
		switch in.Kind {
		case uarch.ALU:
			line = append(scratch[:0], 'A', '\n')
		case uarch.Load, uarch.Store:
			c := byte('L')
			if in.Kind == uarch.Store {
				c = 'S'
			}
			line = append(scratch[:0], c, ',')
			line = strconv.AppendUint(line, in.Addr, 10)
			line = append(line, '\n')
		case uarch.Branch:
			line = append(scratch[:0], 'B', ',')
			line = strconv.AppendUint(line, in.PC, 10)
			line = append(line, ',', bit(in.Taken), '\n')
		case uarch.Syscall:
			line = append(scratch[:0], 'Y', ',', bit(in.Fault), '\n')
		default:
			return n, fmt.Errorf("trace: unknown instruction kind %d", in.Kind)
		}
		if _, err := bw.Write(line); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

func bit(b bool) byte {
	if b {
		return '1'
	}
	return '0'
}
