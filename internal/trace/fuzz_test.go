package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the external-data parsers: arbitrary input must never
// panic, and any successfully parsed measurement must round-trip.

func FuzzReadCSV(f *testing.F) {
	f.Add("workload,cpu-cycles\nw,1\n")
	f.Add("workload,cpu-cycles,LLC-loads\na,1,2\nb,3,4\n")
	f.Add("workload\n")
	f.Add("")
	f.Add("workload,cpu-cycles\nw,99999999999999999999\n") // overflow
	f.Add("workload,cpu-cycles\n\"quoted,name\",5\n")
	f.Fuzz(func(t *testing.T, data string) {
		sm, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		// Parsed data must survive a write/read cycle unchanged.
		var buf bytes.Buffer
		counters := allCountersForTest()
		if err := WriteCSV(&buf, sm, counters); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Workloads) != len(sm.Workloads) {
			t.Fatalf("round trip changed workload count %d -> %d",
				len(sm.Workloads), len(back.Workloads))
		}
		for i := range sm.Workloads {
			if back.Workloads[i].Totals != sm.Workloads[i].Totals {
				t.Fatalf("round trip changed totals for %q", sm.Workloads[i].Workload)
			}
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	// Seed with a valid document.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleMeasurement(true)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"version":1,"suite":"x","counters":[],"workloads":[]}`)
	f.Add("null")
	f.Add("[")
	f.Fuzz(func(t *testing.T, data string) {
		sm, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSON(&out, sm); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadJSON(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
