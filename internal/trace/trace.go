// Package trace serializes suite measurements so Perspector can score
// counter data that did not come from the built-in simulator — e.g.
// numbers collected with `perf stat` on real hardware — and so simulated
// measurements can be archived and re-scored without re-running.
//
// Two formats are supported:
//
//   - JSON: the full measurement (totals + sampled time series), enough
//     to compute all four scores including the TrendScore.
//   - CSV: totals only (workload × counter). Enough for ClusterScore,
//     CoverageScore and SpreadScore; TrendScore needs series data.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"perspector/internal/perf"
)

// Version identifies the JSON schema; readers reject unknown versions.
const Version = 1

// jsonSuite is the serialized form of a perf.SuiteMeasurement.
type jsonSuite struct {
	Version   int            `json:"version"`
	Suite     string         `json:"suite"`
	Counters  []string       `json:"counters"`
	Interval  uint64         `json:"sample_interval"`
	Workloads []jsonWorkload `json:"workloads"`
}

type jsonWorkload struct {
	Name   string      `json:"name"`
	Totals []uint64    `json:"totals"` // parallel to Counters
	Series [][]float64 `json:"series,omitempty"`
}

// WriteJSON serializes a full measurement.
func WriteJSON(w io.Writer, sm *perf.SuiteMeasurement) error {
	counters := perf.AllCounters()
	out := jsonSuite{
		Version:  Version,
		Suite:    sm.Suite,
		Counters: make([]string, len(counters)),
	}
	for i, c := range counters {
		out.Counters[i] = c.String()
	}
	if len(sm.Workloads) > 0 {
		out.Interval = sm.Workloads[0].Series.Interval
	}
	for i := range sm.Workloads {
		m := &sm.Workloads[i]
		jw := jsonWorkload{Name: m.Workload, Totals: make([]uint64, len(counters))}
		for j, c := range counters {
			jw.Totals[j] = m.Totals.Get(c)
		}
		if m.Series.Len() > 0 {
			jw.Series = make([][]float64, len(counters))
			for j, c := range counters {
				jw.Series[j] = m.Series.Series(c)
			}
		}
		out.Workloads = append(out.Workloads, jw)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// ReadJSON reconstructs a measurement written by WriteJSON (or produced
// by an external tool following the same schema).
func ReadJSON(r io.Reader) (*perf.SuiteMeasurement, error) {
	var in jsonSuite
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if in.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", in.Version, Version)
	}
	if in.Suite == "" {
		return nil, fmt.Errorf("trace: missing suite name")
	}
	counters := make([]perf.Counter, len(in.Counters))
	for i, name := range in.Counters {
		c, err := perf.ParseCounter(name)
		if err != nil {
			return nil, fmt.Errorf("trace: column %d: %w", i, err)
		}
		counters[i] = c
	}
	sm := &perf.SuiteMeasurement{Suite: in.Suite}
	for wi, jw := range in.Workloads {
		if jw.Name == "" {
			return nil, fmt.Errorf("trace: workload %d has no name", wi)
		}
		if len(jw.Totals) != len(counters) {
			return nil, fmt.Errorf("trace: workload %q has %d totals for %d counters",
				jw.Name, len(jw.Totals), len(counters))
		}
		var m perf.Measurement
		m.Workload = jw.Name
		for j, c := range counters {
			m.Totals.Add(c, jw.Totals[j])
		}
		if jw.Series != nil {
			if len(jw.Series) != len(counters) {
				return nil, fmt.Errorf("trace: workload %q has %d series for %d counters",
					jw.Name, len(jw.Series), len(counters))
			}
			m.Series.Interval = in.Interval
			seriesLen := -1
			for j, c := range counters {
				if seriesLen == -1 {
					seriesLen = len(jw.Series[j])
				} else if len(jw.Series[j]) != seriesLen {
					return nil, fmt.Errorf("trace: workload %q has ragged series", jw.Name)
				}
				m.Series.Samples[c] = append([]float64(nil), jw.Series[j]...)
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm, nil
}

// WriteCSV writes the totals matrix: header "workload,<counter>,...",
// then one row per workload.
func WriteCSV(w io.Writer, sm *perf.SuiteMeasurement, counters []perf.Counter) error {
	if len(counters) == 0 {
		return fmt.Errorf("trace: WriteCSV with no counters")
	}
	cw := csv.NewWriter(w)
	header := make([]string, 1+len(counters))
	header[0] = "workload"
	for i, c := range counters {
		header[i+1] = c.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+len(counters))
	for i := range sm.Workloads {
		m := &sm.Workloads[i]
		row[0] = m.Workload
		for j, c := range counters {
			row[j+1] = strconv.FormatUint(m.Totals.Get(c), 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a totals matrix in the WriteCSV format. Counters are
// identified from the header; unknown columns are an error so silently
// dropped data cannot skew scores.
func ReadCSV(r io.Reader, suiteName string) (*perf.SuiteMeasurement, error) {
	if suiteName == "" {
		return nil, fmt.Errorf("trace: ReadCSV needs a suite name")
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if len(header) < 2 || header[0] != "workload" {
		return nil, fmt.Errorf("trace: header must start with \"workload\", got %v", header)
	}
	counters := make([]perf.Counter, len(header)-1)
	for i, name := range header[1:] {
		c, err := perf.ParseCounter(name)
		if err != nil {
			return nil, fmt.Errorf("trace: column %d: %w", i+1, err)
		}
		counters[i] = c
	}
	sm := &perf.SuiteMeasurement{Suite: suiteName}
	seen := map[string]bool{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if row[0] == "" {
			return nil, fmt.Errorf("trace: line %d: empty workload name", line)
		}
		if seen[row[0]] {
			return nil, fmt.Errorf("trace: duplicate workload %q", row[0])
		}
		seen[row[0]] = true
		var m perf.Measurement
		m.Workload = row[0]
		for j, c := range counters {
			v, err := strconv.ParseUint(row[j+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d column %q: %w", line, header[j+1], err)
			}
			m.Totals.Add(c, v)
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	if len(sm.Workloads) == 0 {
		return nil, fmt.Errorf("trace: no workload rows")
	}
	return sm, nil
}
