// Package store holds the machine-readable scoring document shared by
// the CLI and the perspectord service, and an append-only on-disk store
// of completed documents keyed by the same content address as
// internal/cache.
//
// The ScoreSet document is the single encoding of "a scoring run's
// result": `perspector score -json` and `perspector compare -json`
// print it, the perspectord result endpoints serve it, and the result
// store persists it. Because encoding/json round-trips float64 values
// bit-exactly (it emits the shortest decimal that parses back to the
// same bits), a ScoreSet that travels CLI → file → HTTP → store → client
// still carries the engine's scores down to the last bit — CLI and API
// outputs are interchangeable.
package store

import (
	"fmt"

	"perspector/internal/metric"
)

// SchemaVersion identifies the ScoreSet JSON schema; readers reject
// unknown versions. Bump it whenever a field changes meaning.
const SchemaVersion = 1

// Kinds of scoring runs a ScoreSet can describe.
const (
	// KindScore is a single-suite run: Coverage and Spread are
	// normalized against the suite's own counter ranges.
	KindScore = "score"
	// KindCompare is a multi-suite run under joint normalization
	// (the paper's Fig. 3 methodology).
	KindCompare = "compare"
)

// RunConfig is the simulation configuration a ScoreSet was produced
// under. It is nil for trace-file input, where the numbers were not
// simulated by this process.
type RunConfig struct {
	Instructions uint64 `json:"instructions"`
	Samples      int    `json:"samples"`
	Seed         uint64 `json:"seed"`
}

// SuiteScores is one suite's four Perspector metrics. The +/- direction
// convention matches the CLI table: lower cluster/spread and higher
// trend/coverage are better.
type SuiteScores struct {
	Suite    string  `json:"suite"`
	Cluster  float64 `json:"cluster"`
	Trend    float64 `json:"trend"`
	Coverage float64 `json:"coverage"`
	Spread   float64 `json:"spread"`
}

// ScoreSet is the complete result document of one scoring run.
type ScoreSet struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Group is the focused event group ("all", "llc", "tlb").
	Group string `json:"group,omitempty"`
	// Source says where the measurements came from: "simulator" or
	// "trace".
	Source string        `json:"source,omitempty"`
	Config *RunConfig    `json:"config,omitempty"`
	Suites []SuiteScores `json:"suites"`
}

// New assembles a ScoreSet from engine scores.
func New(kind, group, source string, cfg *RunConfig, scores []metric.Scores) ScoreSet {
	return ScoreSet{
		Schema: SchemaVersion,
		Kind:   kind,
		Group:  group,
		Source: source,
		Config: cfg,
		Suites: FromScores(scores),
	}
}

// FromScores converts engine scores to the document rows.
func FromScores(scores []metric.Scores) []SuiteScores {
	out := make([]SuiteScores, len(scores))
	for i, s := range scores {
		out[i] = SuiteScores{
			Suite:    s.Suite,
			Cluster:  s.Cluster,
			Trend:    s.Trend,
			Coverage: s.Coverage,
			Spread:   s.Spread,
		}
	}
	return out
}

// Scores converts the document rows back to engine scores — the inverse
// of FromScores, value-exact.
func (ss ScoreSet) Scores() []metric.Scores {
	out := make([]metric.Scores, len(ss.Suites))
	for i, s := range ss.Suites {
		out[i] = metric.Scores{
			Suite:    s.Suite,
			Cluster:  s.Cluster,
			Trend:    s.Trend,
			Coverage: s.Coverage,
			Spread:   s.Spread,
		}
	}
	return out
}

// Validate rejects documents this schema version cannot interpret.
func (ss ScoreSet) Validate() error {
	if ss.Schema != SchemaVersion {
		return fmt.Errorf("store: unsupported ScoreSet schema %d (want %d)", ss.Schema, SchemaVersion)
	}
	if ss.Kind != KindScore && ss.Kind != KindCompare {
		return fmt.Errorf("store: unknown ScoreSet kind %q", ss.Kind)
	}
	if len(ss.Suites) == 0 {
		return fmt.Errorf("store: ScoreSet with no suites")
	}
	return nil
}
