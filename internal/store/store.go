package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// logName is the append-only result log inside the store directory.
const logName = "results.jsonl"

// Record is one completed run in the store: the content address, the
// completion time, and the document itself.
type Record struct {
	// Key is the content address of the run that produced the set — the
	// same hash family as internal/cache, extended with the scoring
	// request (kind, group, suites). Identical requests share a key.
	Key string `json:"key"`
	// At is the completion time in RFC 3339 UTC.
	At  string   `json:"at"`
	Set ScoreSet `json:"set"`
}

// Summary is the listing row for one record: everything but the scores.
type Summary struct {
	Key    string   `json:"key"`
	At     string   `json:"at"`
	Kind   string   `json:"kind"`
	Group  string   `json:"group,omitempty"`
	Source string   `json:"source,omitempty"`
	Suites []string `json:"suites"`
}

// Store is an append-only on-disk store of completed ScoreSets. Every
// Put appends one JSON line to results.jsonl and never rewrites earlier
// bytes, so a crash can at worst truncate the final line — which Open
// detects and ignores, keeping every fully-written record. The newest
// record for a key wins on Get, so re-running a request after a schema
// bump simply shadows the old result.
//
// "Newest" is decided by the record's At timestamp, not by log
// position: with a deterministic tie-break for equal timestamps, the
// index is a pure function of the *set* of records replayed, so two
// nodes that apply each other's records in any interleaving — the fleet
// replication path (Apply) — converge to the same newest-per-key view.
//
// A nil *Store is a valid pass-through: Put is a no-op, Get always
// misses, List is empty — callers thread one variable through
// "no store configured" paths.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	index map[string]ScoreSet
	at    map[string]string
	order []string // keys in first-seen order
}

// Open opens (creating if needed) the store rooted at dir and replays
// the log into the in-memory index. A torn final line — the only
// corruption an append-only log can suffer from a crash — is skipped.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{f: f, index: make(map[string]ScoreSet), at: make(map[string]string)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn line: either the tail of a crashed append, or a line
			// garbled before a previous Open sealed the file. Skip it —
			// every complete line around it is still valid JSON.
			continue
		}
		if rec.Key == "" || rec.Set.Validate() != nil {
			continue // unknown schema: keep the bytes, skip the record
		}
		st.add(rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: replaying %s: %w", path, err)
	}
	// A crash mid-append leaves the file without a trailing '\n'. Seal it
	// now so the next append starts on a fresh line instead of merging
	// into the partial one (which would garble an otherwise-good record).
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], fi.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: sealing %s: %w", path, err)
			}
		}
	}
	return st, nil
}

// add indexes one replayed or freshly appended record, keeping the
// newest record per key. Caller holds mu (or is Open, before the store
// escapes).
func (st *Store) add(rec Record) {
	at, seen := st.at[rec.Key]
	if !seen {
		st.order = append(st.order, rec.Key)
	} else if !supersedes(rec, at, st.index[rec.Key]) {
		return
	}
	st.index[rec.Key] = rec.Set
	st.at[rec.Key] = rec.At
}

// supersedes reports whether rec should shadow the indexed (at, set)
// entry for its key. Later At wins; an equal At falls back to comparing
// the rendered documents, so the verdict depends only on the two records
// — never on which arrived first. Unparseable timestamps (hand-edited
// logs) compare as strings, which for RFC 3339 UTC is date order.
func supersedes(rec Record, at string, set ScoreSet) bool {
	ta, errA := time.Parse(time.RFC3339Nano, rec.At)
	tb, errB := time.Parse(time.RFC3339Nano, at)
	if errA == nil && errB == nil {
		if !ta.Equal(tb) {
			return ta.After(tb)
		}
	} else if rec.At != at {
		return rec.At > at
	}
	// Same instant: deterministic content tie-break. Identical documents
	// need no replacement either way.
	recJSON, _ := json.Marshal(rec.Set)
	oldJSON, _ := json.Marshal(set)
	return string(recJSON) > string(oldJSON)
}

// Put appends the document under its content address. The line is
// written with a single Write call on an O_APPEND descriptor, so
// concurrent Puts from this process never interleave bytes.
func (st *Store) Put(key string, set ScoreSet) error {
	if st == nil {
		return nil
	}
	rec := Record{Key: key, At: time.Now().UTC().Format(time.RFC3339Nano), Set: set}
	_, err := st.append(rec, false)
	return err
}

// Apply appends a record replicated from another node, preserving its
// original timestamp so every replica ranks it identically. It is
// idempotent: a record that would not supersede the indexed one for its
// key (it is older, or the identical document) is skipped without
// touching the log, so replaying a peer's full log over and over leaves
// both the index and the file unchanged. The bool reports whether the
// record was applied.
func (st *Store) Apply(rec Record) (bool, error) {
	if st == nil {
		return false, nil
	}
	if rec.At == "" {
		return false, fmt.Errorf("store: replicated record without a timestamp")
	}
	return st.append(rec, true)
}

// append writes one record to the log and index. When onlyNewer is set
// the write is skipped unless the record supersedes the current index
// entry for its key.
func (st *Store) append(rec Record, onlyNewer bool) (bool, error) {
	if rec.Key == "" {
		return false, fmt.Errorf("store: empty key")
	}
	if err := rec.Set.Validate(); err != nil {
		return false, err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if onlyNewer {
		if at, seen := st.at[rec.Key]; seen && !supersedes(rec, at, st.index[rec.Key]) {
			return false, nil
		}
	}
	if _, err := st.f.Write(line); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	st.add(rec)
	return true, nil
}

// Records returns the newest record per key, in first-seen key order —
// the snapshot a coordinator streams to a joining worker as backfill.
// Applying the result to any store is a no-op for every record it
// already holds.
func (st *Store) Records() []Record {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Record, 0, len(st.order))
	for _, key := range st.order {
		out = append(out, Record{Key: key, At: st.at[key], Set: st.index[key]})
	}
	return out
}

// Get returns the newest document stored under key.
func (st *Store) Get(key string) (ScoreSet, bool) {
	if st == nil {
		return ScoreSet{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	set, ok := st.index[key]
	return set, ok
}

// List returns one summary per distinct key, in first-seen order.
func (st *Store) List() []Summary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Summary, 0, len(st.order))
	for _, key := range st.order {
		set := st.index[key]
		names := make([]string, len(set.Suites))
		for i, s := range set.Suites {
			names[i] = s.Suite
		}
		out = append(out, Summary{
			Key: key, At: st.at[key],
			Kind: set.Kind, Group: set.Group, Source: set.Source,
			Suites: names,
		})
	}
	return out
}

// Len returns the number of distinct keys stored.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.order)
}

// Close syncs and closes the log file.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.f.Sync(); err != nil {
		st.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	return st.f.Close()
}
