package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stampedRecord builds a distinguishable record for key at a given
// virtual time; Cluster carries the serial so divergent winners are
// visible in failures.
func stampedRecord(key string, serial int) Record {
	set := sampleSet(KindScore, "parsec")
	set.Suites[0].Cluster = float64(serial)
	at := time.Date(2026, 8, 7, 12, 0, 0, serial*1000, time.UTC).Format(time.RFC3339Nano)
	return Record{Key: key, At: at, Set: set}
}

// newestPerKey is the reference semantics: the record with the greatest
// (At, rendered-set) pair wins per key, independent of order.
func newestPerKey(recs []Record) map[string]Record {
	want := make(map[string]Record)
	for _, r := range recs {
		cur, ok := want[r.Key]
		if !ok || supersedes(r, cur.At, cur.Set) {
			want[r.Key] = r
		}
	}
	return want
}

// interleavings enumerates every merge of a and b that preserves each
// log's internal order — the set of byte streams two replicas can
// produce when replaying one another.
func interleavings(a, b []Record) [][]Record {
	if len(a) == 0 {
		return [][]Record{append([]Record(nil), b...)}
	}
	if len(b) == 0 {
		return [][]Record{append([]Record(nil), a...)}
	}
	var out [][]Record
	for _, tail := range interleavings(a[1:], b) {
		out = append(out, append([]Record{a[0]}, tail...))
	}
	for _, tail := range interleavings(a, b[1:]) {
		out = append(out, append([]Record{b[0]}, tail...))
	}
	return out
}

// writeLog renders records as a results.jsonl under a fresh directory,
// optionally tearing the final line in half (the only corruption an
// append-only log can suffer from a crash).
func writeLog(t *testing.T, recs []Record, torn bool) string {
	t.Helper()
	dir := t.TempDir()
	var sb strings.Builder
	for i, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if torn && i == len(recs)-1 {
			sb.Write(line[:len(line)/2])
			break
		}
		sb.Write(line)
		sb.WriteString("\n")
	}
	if err := os.WriteFile(filepath.Join(dir, logName), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// indexOf opens dir and snapshots key → record for comparison.
func indexOf(t *testing.T, dir string) map[string]Record {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	out := make(map[string]Record)
	for _, r := range st.Records() {
		out[r.Key] = r
	}
	return out
}

// TestReplicationInterleavingsConverge is the replication property test:
// two nodes each hold a JSONL log; replaying ANY interleaving of the two
// logs — every order in which replicated lines could have been appended
// — must converge to the same newest-per-key index, including when the
// final line of the merged log was torn by a crash.
func TestReplicationInterleavingsConverge(t *testing.T) {
	logA := []Record{
		stampedRecord("k1", 1),
		stampedRecord("k2", 5),
		stampedRecord("k3", 3),
	}
	logB := []Record{
		stampedRecord("k1", 4), // newer k1 than A's
		stampedRecord("k2", 2), // older k2 than A's
		stampedRecord("k4", 6),
	}
	want := newestPerKey(append(append([]Record(nil), logA...), logB...))

	merges := interleavings(logA, logB)
	if len(merges) != 20 { // C(6,3)
		t.Fatalf("expected 20 interleavings, got %d", len(merges))
	}
	for i, merged := range merges {
		got := indexOf(t, writeLog(t, merged, false))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interleaving %d diverged:\n got %+v\nwant %+v", i, got, want)
		}

		// Torn tail: the last line is half-written. The surviving records
		// must still resolve to newest-per-key over what remains.
		tornWant := newestPerKey(merged[:len(merged)-1])
		got = indexOf(t, writeLog(t, merged, true))
		if !reflect.DeepEqual(got, tornWant) {
			t.Fatalf("torn interleaving %d diverged:\n got %+v\nwant %+v", i, got, tornWant)
		}
	}
}

// TestReplicationApplyConverges drives the live path: two stores start
// from different local histories and apply each other's records in
// opposite orders; both must end with identical indexes, and a second
// application of the same records must change nothing (idempotence).
func TestReplicationApplyConverges(t *testing.T) {
	mkStore := func(recs []Record) *Store {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if _, err := st.Apply(r); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	logA := []Record{stampedRecord("k1", 1), stampedRecord("k2", 5)}
	logB := []Record{stampedRecord("k1", 4), stampedRecord("k3", 2)}

	stA := mkStore(logA)
	defer stA.Close()
	stB := mkStore(logB)
	defer stB.Close()

	// Cross-apply: B's records to A in order, A's merged view to B in
	// reverse order.
	for _, r := range stB.Records() {
		if _, err := stA.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	recsA := stA.Records()
	for i := len(recsA) - 1; i >= 0; i-- {
		if _, err := stB.Apply(recsA[i]); err != nil {
			t.Fatal(err)
		}
	}

	snap := func(st *Store) map[string]Record {
		out := make(map[string]Record)
		for _, r := range st.Records() {
			out[r.Key] = r
		}
		return out
	}
	a, b := snap(stA), snap(stB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replicas diverged:\n A %+v\n B %+v", a, b)
	}
	want := newestPerKey(append(append([]Record(nil), logA...), logB...))
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("converged index is not newest-per-key:\n got %+v\nwant %+v", a, want)
	}

	// Idempotence: re-applying everything must be a pure no-op, down to
	// the log file size.
	size := func(st *Store) int64 {
		fi, err := st.f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := size(stA)
	for _, r := range stB.Records() {
		applied, err := stA.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			t.Fatalf("re-apply of %s/%s reported applied", r.Key, r.At)
		}
	}
	if after := size(stA); after != before {
		t.Fatalf("idempotent re-apply grew the log: %d -> %d", before, after)
	}
}

// TestApplyRejectsUnstamped pins that replication refuses records whose
// origin time was lost — ranking them would depend on arrival order.
func TestApplyRejectsUnstamped(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := stampedRecord("k1", 1)
	rec.At = ""
	if _, err := st.Apply(rec); err == nil {
		t.Fatal("Apply accepted a record without a timestamp")
	}
}
