package store

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perspector/internal/metric"
)

func sampleSet(kind string, suites ...string) ScoreSet {
	scores := make([]metric.Scores, len(suites))
	for i, s := range suites {
		scores[i] = metric.Scores{
			Suite:    s,
			Cluster:  0x1.67d5bbfac6474p-03,
			Trend:    0x1.45b6bdfe054f7p+06,
			Coverage: 0x1.54bae03eec78dp-04,
			Spread:   0x1.d89d89d89d89fp-02,
		}
	}
	return New(kind, "all", "simulator",
		&RunConfig{Instructions: 40_000, Samples: 50, Seed: 2023}, scores)
}

// TestScoreSetJSONRoundTripExact pins the interchangeability guarantee:
// a ScoreSet that goes through JSON comes back with bit-identical
// float64 scores, including awkward values.
func TestScoreSetJSONRoundTripExact(t *testing.T) {
	set := sampleSet(KindScore, "parsec")
	set.Suites[0].Coverage = math.Nextafter(0.1, 1) // not exactly representable
	set.Suites[0].Spread = 1.0 / 3.0
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back ScoreSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range set.Suites {
		if set.Suites[i] != back.Suites[i] {
			t.Fatalf("row %d not bit-identical:\n  out %+v\n  in  %+v", i, set.Suites[i], back.Suites[i])
		}
	}
	if *back.Config != *set.Config || back.Kind != set.Kind || back.Group != set.Group {
		t.Fatalf("metadata mangled: %+v vs %+v", back, set)
	}
	// And the metric.Scores conversion is its own inverse.
	again := FromScores(back.Scores())
	for i := range again {
		if again[i] != back.Suites[i] {
			t.Fatalf("Scores/FromScores not inverse at %d", i)
		}
	}
}

func TestStorePutGetListAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k1", sampleSet(KindScore, "parsec")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k2", sampleSet(KindCompare, "parsec", "spec17")); err != nil {
		t.Fatal(err)
	}
	// Newest record for a key wins.
	shadow := sampleSet(KindScore, "parsec")
	shadow.Suites[0].Cluster = 42
	if err := st.Put("k1", shadow); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	got, ok := st.Get("k1")
	if !ok || got.Suites[0].Cluster != 42 {
		t.Fatalf("k1 after reopen = %+v ok=%v, want shadowed record", got, ok)
	}
	if _, ok := st.Get("k3"); ok {
		t.Fatal("Get on absent key succeeded")
	}
	ls := st.List()
	if len(ls) != 2 || ls[0].Key != "k1" || ls[1].Key != "k2" {
		t.Fatalf("List = %+v", ls)
	}
	if ls[1].Kind != KindCompare || len(ls[1].Suites) != 2 {
		t.Fatalf("summary lost fields: %+v", ls[1])
	}
}

// TestStoreTornTailRecovers simulates a crash mid-append: the log's last
// line is truncated. Open must keep every complete record, ignore the
// torn tail, and seal the file so later appends stay parseable.
func TestStoreTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k1", sampleSet(KindScore, "parsec")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k2", sampleSet(KindScore, "nbench")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k1"); !ok {
		t.Fatal("complete record lost after torn tail")
	}
	if _, ok := st.Get("k2"); ok {
		t.Fatal("torn record resurrected")
	}
	// Appends after recovery must not merge with the torn bytes.
	if err := st.Put("k3", sampleSet(KindScore, "ligra")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.Get("k3"); !ok {
		t.Fatal("record appended after recovery lost")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (k1, k3)", st.Len())
	}
}

// TestStoreAppendOnly asserts the mechanism itself: Put never rewrites
// earlier bytes, it only appends.
func TestStoreAppendOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("k1", sampleSet(KindScore, "parsec")); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k2", sampleSet(KindScore, "nbench")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(after), string(before)) {
		t.Fatal("second Put rewrote earlier bytes")
	}
	if len(after) <= len(before) {
		t.Fatal("second Put appended nothing")
	}
}

func TestNilStorePassThrough(t *testing.T) {
	var st *Store
	if err := st.Put("k", sampleSet(KindScore, "parsec")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if st.List() != nil || st.Len() != 0 {
		t.Fatal("nil store lists entries")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("", sampleSet(KindScore, "parsec")); err == nil {
		t.Fatal("empty key accepted")
	}
	bad := sampleSet(KindScore, "parsec")
	bad.Schema = 99
	if err := st.Put("k", bad); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := st.Put("k", ScoreSet{Schema: SchemaVersion, Kind: "mystery", Suites: sampleSet(KindScore, "x").Suites}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
