package stat

import (
	"math"
	"testing"
	"testing/quick"

	"perspector/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatalf("Mean = %v", Mean([]float64{2, 4, 6}))
	}
}

func TestVariance(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton != 0")
	}
	// Var of {1,2,3,4} with n-1 denominator = 5/3.
	if v := Variance([]float64{1, 2, 3, 4}); !almostEq(v, 5.0/3, 1e-12) {
		t.Fatalf("Variance = %v, want 5/3", v)
	}
}

func TestPopVariance(t *testing.T) {
	if v := PopVariance([]float64{1, 2, 3, 4}); !almostEq(v, 1.25, 1e-12) {
		t.Fatalf("PopVariance = %v, want 1.25", v)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
}

func TestMinMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", out)
		}
	}
}

func TestNormalizeConstant(t *testing.T) {
	out := Normalize([]float64{5, 5, 5})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant Normalize = %v", out)
		}
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{1, 2}
	Normalize(in)
	if in[0] != 1 || in[1] != 2 {
		t.Fatal("Normalize mutated its input")
	}
}

func TestNormalizeWith(t *testing.T) {
	out := NormalizeWith([]float64{0, 50, 100, 200}, 0, 100)
	want := []float64{0, 0.5, 1, 1} // 200 clamps to 1
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("NormalizeWith = %v", out)
		}
	}
}

func TestNormalizeWithPreservesRelativeRange(t *testing.T) {
	// The paper's §III-C1 argument: joint bounds keep A:[0,10k] below
	// B:[0,100k] after normalization.
	a := NormalizeWith([]float64{10000}, 0, 100000)
	b := NormalizeWith([]float64{100000}, 0, 100000)
	if !(a[0] < b[0]) {
		t.Fatal("joint normalization lost relative range")
	}
	if !almostEq(a[0], 0.1, 1e-12) {
		t.Fatalf("a = %v, want 0.1", a[0])
	}
}

func TestZScore(t *testing.T) {
	out := ZScore([]float64{1, 2, 3, 4, 5})
	if !almostEq(Mean(out), 0, 1e-12) {
		t.Fatalf("ZScore mean = %v", Mean(out))
	}
	if !almostEq(Variance(out), 1, 1e-12) {
		t.Fatalf("ZScore variance = %v", Variance(out))
	}
}

func TestZScoreConstant(t *testing.T) {
	for _, v := range ZScore([]float64{3, 3, 3}) {
		if v != 0 {
			t.Fatal("constant ZScore not zero")
		}
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(raw [8]float64, q1, q2 float64) bool {
		vals := make([]float64, 0, 8)
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 100))
			}
		}
		if len(vals) == 0 {
			return true
		}
		if math.IsNaN(q1) || math.IsNaN(q2) || math.IsInf(q1, 0) || math.IsInf(q2, 0) {
			return true
		}
		a, b := math.Mod(q1, 100), math.Mod(q2, 100)
		if a > b {
			a, b = b, a
		}
		e := NewECDF(vals)
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 30 {
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Fatalf("P25 = %v", p)
	}
	if p := Percentile(xs, 12.5); !almostEq(p, 15, 1e-12) {
		t.Fatalf("P12.5 = %v, want 15 (interpolated)", p)
	}
}

func TestResampleToPercentiles(t *testing.T) {
	// Linear ramp resamples to a linear ramp.
	series := []float64{0, 1, 2, 3, 4}
	out := ResampleToPercentiles(series, 8)
	if len(out) != 9 {
		t.Fatalf("len = %d, want 9", len(out))
	}
	if out[0] != 0 || out[8] != 4 {
		t.Fatalf("endpoints = %v, %v", out[0], out[8])
	}
	if !almostEq(out[4], 2, 1e-12) {
		t.Fatalf("midpoint = %v, want 2", out[4])
	}
}

func TestResampleLengthIndependence(t *testing.T) {
	// Two ramps of different lengths resample to (nearly) the same curve —
	// the point of the x-axis normalization in §III-B1.
	short := ResampleToPercentiles([]float64{0, 1, 2}, 10)
	long := ResampleToPercentiles([]float64{0, 0.5, 1, 1.5, 2}, 10)
	for i := range short {
		if !almostEq(short[i], long[i], 1e-9) {
			t.Fatalf("resampled ramps differ at %d: %v vs %v", i, short[i], long[i])
		}
	}
}

func TestResampleEdgeCases(t *testing.T) {
	if out := ResampleToPercentiles(nil, 4); len(out) != 5 {
		t.Fatal("empty series should produce zero-filled grid")
	}
	out := ResampleToPercentiles([]float64{7}, 4)
	for _, v := range out {
		if v != 7 {
			t.Fatalf("singleton series resample = %v", out)
		}
	}
}

func TestCDFNormalizeBounds(t *testing.T) {
	series := []float64{5, 1, 100, 3, 2}
	out := CDFNormalize(series)
	for _, v := range out {
		if v < 0 || v > 100 {
			t.Fatalf("CDFNormalize out of [0,100]: %v", v)
		}
	}
	// Max value maps to 100.
	if out[2] != 100 {
		t.Fatalf("max mapped to %v, want 100", out[2])
	}
}

func TestCDFNormalizeOrderPreserving(t *testing.T) {
	f := func(raw [10]float64) bool {
		series := make([]float64, 0, 10)
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				series = append(series, v)
			}
		}
		if len(series) < 2 {
			return true
		}
		out := CDFNormalize(series)
		for i := range series {
			for j := range series {
				if series[i] < series[j] && out[i] > out[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFNormalizeScaleInvariant(t *testing.T) {
	// Scaling the raw series must not change the normalized series — this
	// is exactly why Fig. 1 uses the CDF.
	series := []float64{1, 5, 2, 9, 3}
	scaled := make([]float64, len(series))
	for i, v := range series {
		scaled[i] = v * 1e6
	}
	a, b := CDFNormalize(series), CDFNormalize(scaled)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-9) {
			t.Fatalf("CDF normalization not scale invariant at %d", i)
		}
	}
}

func TestKSOneSampleUniformPerfect(t *testing.T) {
	// A fine uniform grid has small D.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	if d := KSOneSampleUniform(xs); d > 0.01 {
		t.Fatalf("uniform grid D = %v", d)
	}
}

func TestKSOneSampleUniformDegenerate(t *testing.T) {
	// All mass at 0.5: D = 0.5.
	xs := []float64{0.5, 0.5, 0.5, 0.5}
	if d := KSOneSampleUniform(xs); !almostEq(d, 0.5, 1e-12) {
		t.Fatalf("degenerate D = %v, want 0.5", d)
	}
}

func TestKSOneSampleClamps(t *testing.T) {
	if d := KSOneSampleUniform([]float64{-1, 2}); d <= 0 || d > 1 {
		t.Fatalf("clamped D = %v", d)
	}
}

func TestKSTwoSampleIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSTwoSample(a, a); d != 0 {
		t.Fatalf("identical samples D = %v", d)
	}
}

func TestKSTwoSampleDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSTwoSample(a, b); !almostEq(d, 1, 1e-12) {
		t.Fatalf("disjoint samples D = %v, want 1", d)
	}
}

func TestKSTwoSampleSymmetric(t *testing.T) {
	src := rng.New(1)
	a := make([]float64, 50)
	b := make([]float64, 80)
	for i := range a {
		a[i] = src.Float64()
	}
	for i := range b {
		b[i] = src.Norm(0.5, 0.2)
	}
	if !almostEq(KSTwoSample(a, b), KSTwoSample(b, a), 1e-12) {
		t.Fatal("KSTwoSample not symmetric")
	}
}

func TestKSTwoSampleAgainstUniformDraws(t *testing.T) {
	// Uniform sample vs uniform draws should have modest D.
	src := rng.New(2)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = src.Float64()
		b[i] = src.Float64()
	}
	if d := KSTwoSample(a, b); d > 0.15 {
		t.Fatalf("uniform-vs-uniform D = %v", d)
	}
}

func TestKSBounds(t *testing.T) {
	f := func(rawA, rawB [6]float64) bool {
		a := make([]float64, 0, 6)
		bb := make([]float64, 0, 6)
		for _, v := range rawA {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				a = append(a, v)
			}
		}
		for _, v := range rawB {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				bb = append(bb, v)
			}
		}
		if len(a) == 0 || len(bb) == 0 {
			return true
		}
		d := KSTwoSample(a, bb)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2, 0, 1)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("Histogram = %v", counts)
	}
}

func TestHistogramIgnoresOutOfRange(t *testing.T) {
	counts := Histogram([]float64{-1, 0.5, 2}, 1, 0, 1)
	if counts[0] != 1 {
		t.Fatalf("Histogram = %v", counts)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonIndependent(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	if r := Pearson(xs, ys); math.Abs(r) > 0.06 {
		t.Fatalf("independent Pearson = %v", r)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("constant Pearson = %v, want 0", r)
	}
}

func TestPearsonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

func TestPearsonBounds(t *testing.T) {
	f := func(raw [8]float64, raw2 [8]float64) bool {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for i := range xs {
			xs[i] = math.Mod(sanitizeF(raw[i]), 1e6)
			ys[i] = math.Mod(sanitizeF(raw2[i]), 1e6)
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitizeF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman sees a monotone nonlinear relation as perfect; Pearson
	// does not.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if r := Spearman(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
	if r := Pearson(xs, ys); r > 0.999 {
		t.Fatalf("Pearson %v should be below Spearman for convex data", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Mid-rank tie handling keeps the coefficient defined and bounded.
	xs := []float64{1, 1, 2, 2, 3}
	ys := []float64{5, 5, 6, 6, 7}
	if r := Spearman(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("tied Spearman = %v, want 1", r)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almostEq(g, 10, 1e-9) {
		t.Fatalf("GeoMean = %v", g)
	}
}

func TestGeoMeanPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with 0 did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func BenchmarkKSTwoSample(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = src.Float64()
		y[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSTwoSample(x, y)
	}
}

func BenchmarkCDFNormalize(b *testing.B) {
	src := rng.New(1)
	series := make([]float64, 500)
	for i := range series {
		series[i] = src.Float64() * 1e9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CDFNormalize(series)
	}
}
