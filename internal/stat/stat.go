// Package stat provides the statistical primitives used across Perspector:
// moments, min-max and joint normalization (§III-C1 of the paper),
// empirical CDFs and percentile resampling (the TrendScore normalization of
// §III-B1), and one- and two-sample Kolmogorov–Smirnov tests (the
// SpreadScore of §III-D).
package stat

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance (n−1 denominator) of xs.
// It returns 0 for fewer than two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(n-1)
}

// PopVariance returns the population variance (n denominator) of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stat: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Normalize min-max scales xs into [0,1] in place semantics: it returns a
// new slice and leaves the input untouched. A constant input maps to all
// zeros (the paper's pipeline drops such degenerate counters anyway).
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	min, max := MinMax(xs)
	span := max - min
	if span == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - min) / span
	}
	return out
}

// NormalizeWith scales xs into [0,1] using externally supplied bounds, as
// required by the joint normalization of Eq. 9–10 where the bounds come
// from the concatenation of several suites' matrices. Values outside
// [min,max] are clamped. A degenerate range maps to zeros.
func NormalizeWith(xs []float64, min, max float64) []float64 {
	out := make([]float64, len(xs))
	span := max - min
	if span == 0 {
		return out
	}
	for i, x := range xs {
		v := (x - min) / span
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

// ZScore standardizes xs to zero mean and unit sample variance. A constant
// input maps to all zeros.
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	mean := Mean(xs)
	for i, x := range xs {
		out[i] = (x - mean) / sd
	}
	return out
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample. It panics on an empty sample.
func NewECDF(sample []float64) *ECDF {
	if len(sample) == 0 {
		panic("stat: NewECDF with empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x): the fraction of sample values <= x.
func (e *ECDF) At(x float64) float64 {
	// Index of the first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Percentile returns the p-th percentile (p in [0,100]) of the sample using
// linear interpolation between order statistics.
func (e *ECDF) Percentile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 100 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := p / 100 * float64(len(e.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return e.sorted[lo]
	}
	frac := rank - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[hi]*frac
}

// Percentile returns the p-th percentile of xs without constructing an ECDF.
func Percentile(xs []float64, p float64) float64 {
	return NewECDF(xs).Percentile(p)
}

// ResampleToPercentiles maps a time series onto a fixed percentile grid of
// the *time axis* with points+1 samples at 0%,…,100% of execution, using
// linear interpolation. This is the x-axis normalization of §III-B1: two
// series of different lengths become directly comparable.
func ResampleToPercentiles(series []float64, points int) []float64 {
	if points < 1 {
		panic(fmt.Sprintf("stat: ResampleToPercentiles with points=%d", points))
	}
	out := make([]float64, points+1)
	n := len(series)
	if n == 0 {
		return out
	}
	if n == 1 {
		for i := range out {
			out[i] = series[0]
		}
		return out
	}
	for i := 0; i <= points; i++ {
		pos := float64(i) / float64(points) * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = series[lo]
			continue
		}
		frac := pos - float64(lo)
		out[i] = series[lo]*(1-frac) + series[hi]*frac
	}
	return out
}

// CDFNormalize maps each value of the series to 100·F(v), where F is the
// empirical CDF of the series itself. This is the y-axis normalization of
// §III-B1 (Fig. 1): output values lie in [0,100] regardless of the raw
// counter magnitude, so no single high-magnitude series dominates DTW.
func CDFNormalize(series []float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	e := NewECDF(series)
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = 100 * e.At(v)
	}
	return out
}

// KSOneSampleUniform returns the one-sample Kolmogorov–Smirnov statistic
// D = sup |F_emp(x) − x| of xs against the U(0,1) CDF. Values are clamped
// to [0,1] first. It panics on an empty sample.
func KSOneSampleUniform(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: KSOneSampleUniform with empty sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i, v := range s {
		if v < 0 {
			s[i] = 0
		} else if v > 1 {
			s[i] = 1
		}
	}
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, v := range s {
		// The empirical CDF jumps at each order statistic; check both sides.
		upper := float64(i+1)/n - v
		lower := v - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d
}

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic
// D = sup |F_a(x) − F_b(x)|. This is the exact form of Eq. 14, which
// compares a workload's normalized counter column against m uniform draws.
// It panics if either sample is empty.
func KSTwoSample(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stat: KSTwoSample with empty sample")
	}
	sa := make([]float64, len(a))
	sb := make([]float64, len(b))
	copy(sa, a)
	copy(sb, b)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	na, nb := float64(len(sa)), float64(len(sb))
	d := 0.0
	for i < len(sa) && j < len(sb) {
		// Advance past every occurrence of the smaller current value in
		// both samples before comparing the CDFs, so ties are handled
		// correctly (the empirical CDFs only differ *between* values).
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// Histogram counts xs into bins equal-width bins over [min,max]. Values at
// max land in the last bin. It panics if bins < 1 or max <= min.
func Histogram(xs []float64, bins int, min, max float64) []int {
	if bins < 1 {
		panic("stat: Histogram with bins < 1")
	}
	if max <= min {
		panic("stat: Histogram with max <= min")
	}
	counts := make([]int, bins)
	width := (max - min) / float64(bins)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, in [−1, 1]. If either sample is constant the correlation is
// undefined and 0 is returned. It panics on length mismatch or fewer than
// two points.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stat: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stat: Pearson needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples: Pearson over the rank transforms, robust to monotone
// nonlinearity. Ties receive their mid-rank.
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns mid-rank transformed values.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stat: GeoMean with non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
