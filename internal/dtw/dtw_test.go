package dtw

import (
	"math"
	"testing"
	"testing/quick"

	"perspector/internal/rng"
)

// sanitize maps arbitrary quick-generated floats into a finite range so
// local-cost subtraction cannot overflow to +Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := Distance(a, a); d != 0 {
		t.Fatalf("identical series D = %v", d)
	}
}

func TestDistanceKnownSmall(t *testing.T) {
	// a = [0, 1], b = [0, 1, 1]: optimal path matches the trailing 1s, cost 0.
	if d := Distance([]float64{0, 1}, []float64{0, 1, 1}); d != 0 {
		t.Fatalf("D = %v, want 0", d)
	}
	// Constant offset of 1 across 3 matched points.
	if d := Distance([]float64{0, 0, 0}, []float64{1, 1, 1}); d != 3 {
		t.Fatalf("D = %v, want 3", d)
	}
}

func TestDistanceShiftInvariance(t *testing.T) {
	// DTW absorbs time shifts: a pulse early vs late costs much less than
	// the Euclidean mismatch.
	a := []float64{0, 0, 5, 0, 0, 0, 0, 0}
	b := []float64{0, 0, 0, 0, 0, 5, 0, 0}
	euclid := 0.0
	for i := range a {
		euclid += math.Abs(a[i] - b[i])
	}
	if d := Distance(a, b); d >= euclid {
		t.Fatalf("DTW %v >= L1 %v; warping failed", d, euclid)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(rawA, rawB [6]float64) bool {
		a, b := rawA[:], rawB[:]
		for i := range a {
			a[i] = sanitize(a[i])
			b[i] = sanitize(b[i])
		}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceNonNegative(t *testing.T) {
	f := func(rawA, rawB [5]float64) bool {
		a, b := rawA[:], rawB[:]
		for i := range a {
			a[i] = sanitize(a[i])
			b[i] = sanitize(b[i])
		}
		return Distance(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistancePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty series did not panic")
		}
	}()
	Distance(nil, []float64{1})
}

func TestDistanceBandedMatchesFullWhenWide(t *testing.T) {
	src := rng.New(1)
	a := make([]float64, 40)
	b := make([]float64, 50)
	for i := range a {
		a[i] = src.Float64()
	}
	for i := range b {
		b[i] = src.Float64()
	}
	full := Distance(a, b)
	banded, err := DistanceBanded(a, b, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-banded) > 1e-12 {
		t.Fatalf("wide band %v != full %v", banded, full)
	}
}

func TestDistanceBandedUpperBoundsFull(t *testing.T) {
	// A narrow band restricts paths, so banded >= full.
	src := rng.New(2)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = src.Float64() * 10
		b[i] = src.Float64() * 10
	}
	full := Distance(a, b)
	banded, err := DistanceBanded(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if banded < full-1e-9 {
		t.Fatalf("banded %v < full %v", banded, full)
	}
}

func TestDistanceBandedTooNarrow(t *testing.T) {
	if _, err := DistanceBanded([]float64{1}, []float64{1, 2, 3, 4, 5}, 1); err == nil {
		t.Fatal("band narrower than length difference accepted")
	}
}

func TestPathEndpoints(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 3}
	path, d := Path(a, b)
	if path[0] != [2]int{0, 0} {
		t.Fatalf("path start = %v", path[0])
	}
	if path[len(path)-1] != [2]int{2, 1} {
		t.Fatalf("path end = %v", path[len(path)-1])
	}
	if d != Distance(a, b) {
		t.Fatalf("Path distance %v != Distance %v", d, Distance(a, b))
	}
}

func TestPathMonotone(t *testing.T) {
	src := rng.New(3)
	a := make([]float64, 20)
	b := make([]float64, 15)
	for i := range a {
		a[i] = src.Float64()
	}
	for i := range b {
		b[i] = src.Float64()
	}
	path, _ := Path(a, b)
	for i := 1; i < len(path); i++ {
		di := path[i][0] - path[i-1][0]
		dj := path[i][1] - path[i-1][1]
		if di < 0 || dj < 0 || (di == 0 && dj == 0) || di > 1 || dj > 1 {
			t.Fatalf("non-monotone path step %v -> %v", path[i-1], path[i])
		}
	}
}

func TestNormalizeSeriesBounds(t *testing.T) {
	series := []float64{1e9, 2e9, 1e3, 5e9}
	out := NormalizeSeries(series, 100)
	if len(out) != 101 {
		t.Fatalf("grid length = %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 100 {
			t.Fatalf("normalized value %v out of [0,100]", v)
		}
	}
}

func TestNormalizeSeriesEmpty(t *testing.T) {
	out := NormalizeSeries(nil, 10)
	if len(out) != 11 {
		t.Fatalf("empty series grid length = %d", len(out))
	}
}

func TestNormalizedDistanceMagnitudeInvariance(t *testing.T) {
	// The Fig. 1 motivation: scaling one series by 10^6 must not change
	// the normalized DTW distance.
	src := rng.New(4)
	a := make([]float64, 60)
	b := make([]float64, 80)
	for i := range a {
		a[i] = src.Float64()
	}
	for i := range b {
		b[i] = src.Float64()
	}
	scaled := make([]float64, len(a))
	for i, v := range a {
		scaled[i] = v * 1e6
	}
	d1 := NormalizedDistance(a, b, 100)
	d2 := NormalizedDistance(scaled, b, 100)
	if math.Abs(d1-d2) > 1e-6 {
		t.Fatalf("normalization not magnitude invariant: %v vs %v", d1, d2)
	}
}

func TestNormalizedDistanceLengthInvariance(t *testing.T) {
	// The same phase structure sampled at different rates should have
	// near-zero normalized distance (x-axis percentile resampling): a
	// workload with rate 2 for the first half and rate 10 for the second
	// half has the same event CDF whether sampled 200 or 50 times.
	mk := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			if i < n/2 {
				s[i] = 2
			} else {
				s[i] = 10
			}
		}
		return s
	}
	long, short := mk(200), mk(50)
	d := NormalizedDistance(long, short, 100)
	// A flat (steady) workload normalizes to the diagonal — clearly
	// different from the kneed two-phase curve.
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 6
	}
	dFlat := NormalizedDistance(long, flat, 100)
	if d >= dFlat/5 {
		t.Fatalf("same-shape d=%v not clearly below different-shape d=%v", d, dFlat)
	}
}

func TestPhaseRichVsSteadyDistance(t *testing.T) {
	// A multi-phase series and a steady series must be far apart after
	// normalization — this is what makes the TrendScore discriminate
	// PARSEC from Nbench (Fig. 5).
	phased := make([]float64, 120)
	for i := range phased {
		switch {
		case i < 40:
			phased[i] = 10
		case i < 80:
			phased[i] = 1000
		default:
			phased[i] = 100
		}
	}
	steady := make([]float64, 120)
	for i := range steady {
		steady[i] = 500
	}
	steady2 := make([]float64, 120)
	for i := range steady2 {
		steady2[i] = 700
	}
	dPS := NormalizedDistance(phased, steady, 100)
	dSS := NormalizedDistance(steady, steady2, 100)
	if dPS <= dSS {
		t.Fatalf("phased-vs-steady %v <= steady-vs-steady %v", dPS, dSS)
	}
}

func TestBandedDistanceMonotoneInBand(t *testing.T) {
	// Widening the band can only admit more warping paths, so the
	// distance is non-increasing in the band width.
	src := rng.New(21)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = src.Float64() * 10
		b[i] = src.Float64() * 10
	}
	prev := math.Inf(1)
	for _, band := range []int{1, 2, 4, 8, 16, 32, 64} {
		d, err := DistanceBanded(a, b, band)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-9 {
			t.Fatalf("distance rose when band widened to %d: %v > %v", band, d, prev)
		}
		prev = d
	}
	// And the widest band equals the unconstrained distance.
	if full := Distance(a, b); math.Abs(full-prev) > 1e-9 {
		t.Fatalf("band 64 distance %v != full %v", prev, full)
	}
}

func BenchmarkDistance100(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 101)
	y := make([]float64, 101)
	for i := range x {
		x[i] = src.Float64()
		y[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistanceBanded100(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 101)
	y := make([]float64, 101)
	for i := range x {
		x[i] = src.Float64()
		y[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistanceBanded(x, y, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizedDistance(b *testing.B) {
	src := rng.New(1)
	x := make([]float64, 500)
	y := make([]float64, 400)
	for i := range x {
		x[i] = src.Float64() * 1e9
	}
	for i := range y {
		y[i] = src.Float64() * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizedDistance(x, y, 100)
	}
}
