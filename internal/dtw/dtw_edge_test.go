package dtw

import (
	"math"
	"testing"

	"perspector/internal/rng"
)

// randSeries draws a length-n series of values in [0, scale).
func randSeries(src *rng.Source, n int, scale float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = src.Float64() * scale
	}
	return s
}

func TestDistanceBandedBandExactlyLengthDifference(t *testing.T) {
	// The tightest legal band: exactly |len(a)-len(b)|. Every row's window
	// still admits a monotone path, so the call must succeed and
	// upper-bound the unconstrained distance.
	src := rng.New(11)
	for _, lens := range [][2]int{{10, 17}, {17, 10}, {1, 5}, {5, 1}, {3, 3}} {
		na, nb := lens[0], lens[1]
		a := randSeries(src, na, 10)
		b := randSeries(src, nb, 10)
		band := na - nb
		if band < 0 {
			band = -band
		}
		if band == 0 {
			band = 1 // equal lengths: band 0 means "unbounded", use 1
		}
		d, err := DistanceBanded(a, b, band)
		if err != nil {
			t.Fatalf("lengths %v band %d: %v", lens, band, err)
		}
		if full := Distance(a, b); d < full-1e-9 {
			t.Fatalf("lengths %v: banded %v < full %v", lens, d, full)
		}
		// One narrower must be rejected, not silently widened.
		if band > 1 {
			if _, err := DistanceBanded(a, b, band-1); err == nil && na != nb {
				t.Fatalf("lengths %v: band %d accepted", lens, band-1)
			}
		}
	}
}

func TestDistanceLengthOneSeries(t *testing.T) {
	// A length-1 series warps against every element of the other: the
	// distance is the sum of |a0 - b_j|.
	b := []float64{1, 3, 6, 10}
	want := 0.0
	for _, v := range b {
		want += math.Abs(2 - v)
	}
	if d := Distance([]float64{2}, b); d != want {
		t.Fatalf("[2] vs %v = %v, want %v", b, d, want)
	}
	if d := Distance(b, []float64{2}); d != want {
		t.Fatalf("transposed: %v, want %v", d, want)
	}
	if d := Distance([]float64{4}, []float64{7}); d != 3 {
		t.Fatalf("1x1 distance = %v, want 3", d)
	}
	// Banded 1x1 with band 1.
	if d, err := DistanceBanded([]float64{4}, []float64{7}, 1); err != nil || d != 3 {
		t.Fatalf("banded 1x1 = %v, %v", d, err)
	}
}

// naiveDistance is an independent full-matrix reference implementation.
func naiveDistance(a, b []float64) float64 {
	n, m := len(a), len(b)
	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, m+1)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := dp[i-1][j]
			if dp[i-1][j-1] < best {
				best = dp[i-1][j-1]
			}
			if dp[i][j-1] < best {
				best = dp[i][j-1]
			}
			dp[i][j] = math.Abs(a[i-1]-b[j-1]) + best
		}
	}
	return dp[n][m]
}

func TestPrunedMatchesNaiveBitExact(t *testing.T) {
	// The pruned DP must be BIT-identical to the reference DP — the
	// guarantee the parallel TrendScore's determinism rests on. Mix of
	// near-identical pairs (aggressive pruning) and unrelated ones.
	src := rng.New(5)
	for trial := 0; trial < 300; trial++ {
		n := 1 + src.Intn(60)
		m := 1 + src.Intn(60)
		a := randSeries(src, n, 100)
		var b []float64
		if trial%3 == 0 && m >= n {
			// Perturbed copy: strong pruning regime.
			b = append([]float64(nil), a...)
			for i := range b {
				b[i] += src.Float64()
			}
		} else {
			b = randSeries(src, m, 100)
		}
		got := Distance(a, b)
		want := naiveDistance(a, b)
		if got != want {
			t.Fatalf("trial %d (len %d vs %d): pruned %v != naive %v (diff %g)",
				trial, len(a), len(b), got, want, got-want)
		}
	}
}

func TestDistancerReuseAcrossShapes(t *testing.T) {
	// One Distancer across many shapes and bands must match fresh calls:
	// stale buffer contents must never leak between calls.
	src := rng.New(9)
	dz := NewDistancer()
	for trial := 0; trial < 200; trial++ {
		a := randSeries(src, 1+src.Intn(40), 50)
		b := randSeries(src, 1+src.Intn(40), 50)
		if got, want := dz.Distance(a, b), naiveDistance(a, b); got != want {
			t.Fatalf("trial %d: reused %v != fresh %v", trial, got, want)
		}
		band := abs(len(a)-len(b)) + src.Intn(5) + 1
		got, err := dz.DistanceBanded(a, b, band)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := DistanceBanded(a, b, band)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh {
			t.Fatalf("trial %d band %d: reused %v != fresh %v", trial, band, got, fresh)
		}
	}
}

func TestDistancerNormalizeSeriesMatchesPackage(t *testing.T) {
	src := rng.New(13)
	dz := NewDistancer()
	for trial := 0; trial < 50; trial++ {
		s := randSeries(src, 1+src.Intn(200), 1e6)
		got := dz.NormalizeSeries(s, 100)
		want := NormalizeSeries(s, 100)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: grid[%d] %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzBandedVsUnbanded cross-checks the banded DP (with a band wide
// enough to be unconstraining) against the unbanded pruned DP and the
// naive reference.
func FuzzBandedVsUnbanded(f *testing.F) {
	f.Add(uint64(1), 8, 12)
	f.Add(uint64(42), 1, 1)
	f.Add(uint64(7), 30, 5)
	f.Fuzz(func(t *testing.T, seed uint64, n, m int) {
		if n < 1 || m < 1 || n > 80 || m > 80 {
			t.Skip()
		}
		src := rng.New(seed)
		a := randSeries(src, n, 1000)
		b := randSeries(src, m, 1000)
		want := naiveDistance(a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("pruned %v != naive %v", got, want)
		}
		// A band covering the whole matrix admits every path.
		huge := n + m
		got, err := DistanceBanded(a, b, huge)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("huge band %v != naive %v", got, want)
		}
	})
}
